#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace fungusdb {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.ParallelFor(5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ConcurrentSumMatchesSerial) {
  ThreadPool pool(8);
  constexpr size_t kN = 4096;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(kN, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, SequentialParallelForsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    pool.ParallelFor(16, [&](size_t) {
      calls.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(calls.load(), 16);
  }
  EXPECT_EQ(pool.tasks_dispatched(), 50u * 16u);
}

TEST(ThreadPoolTest, MoreTasksThanMorselsCompletes) {
  ThreadPool pool(8);
  // n smaller than worker count: helpers are capped at n - 1 so nobody
  // waits on a task that can never claim work.
  std::atomic<int> calls{0};
  pool.ParallelFor(2, [&](size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace fungusdb
