#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("fungus");
  EXPECT_EQ(r->size(), 6u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto outer = [&]() -> Result<int> {
    FUNGUSDB_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  Result<int> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto gives = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    FUNGUSDB_ASSIGN_OR_RETURN(int v, gives());
    return v * 3;
  };
  Result<int> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 30);
}

TEST(ResultTest, CopyPreservesBothArms) {
  Result<int> ok = 1;
  Result<int> ok_copy = ok;
  EXPECT_TRUE(ok_copy.ok());
  Result<int> err = Status::Internal("e");
  Result<int> err_copy = err;
  EXPECT_FALSE(err_copy.ok());
  EXPECT_EQ(err_copy.status().message(), "e");
}

}  // namespace
}  // namespace fungusdb
