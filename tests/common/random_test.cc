#include "common/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextIntHitsBothEndpoints) {
  Rng rng(13);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000 && !(lo && hi); ++i) {
    const int64_t v = rng.NextInt(0, 3);
    if (v == 0) lo = true;
    if (v == 3) hi = true;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsCentered) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(41);
  Rng b = a.Split();
  // The split stream should not replicate the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

TEST(ZipfianTest, ProducesValuesInRange) {
  Rng rng(47);
  Zipfian zipf(100, 0.9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
}

TEST(ZipfianTest, SkewFavorsLowRanks) {
  Rng rng(53);
  Zipfian zipf(1000, 0.9);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 10) ++low;
  }
  // Under theta=0.9 the top-10 of 1000 items draw far more than the
  // uniform 1% of traffic.
  EXPECT_GT(static_cast<double>(low) / n, 0.25);
}

TEST(ZipfianTest, ZeroThetaIsRoughlyUniform) {
  Rng rng(59);
  Zipfian zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

}  // namespace
}  // namespace fungusdb
