#include "common/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fungusdb {
namespace {

// All tests share the process-wide tracer, so each starts from a
// clean, disabled state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  { FUNGUS_TRACE_SPAN("test.disabled"); }
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    EXPECT_STRNE(e.name, "test.disabled");
  }
}

TEST_F(TraceTest, EnabledSpansRecord) {
  Tracer::Global().Enable();
  { FUNGUS_TRACE_SPAN("test.span"); }
  Tracer::Global().Disable();
  bool found = false;
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    if (std::string(e.name) == "test.span") {
      found = true;
      EXPECT_FALSE(e.has_arg);
      EXPECT_GT(e.tid, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, SpanArgSurvives) {
  Tracer::Global().Enable();
  { FUNGUS_TRACE_SPAN("test.arg", 42); }
  Tracer::Global().Disable();
  bool found = false;
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    if (std::string(e.name) == "test.arg") {
      found = true;
      EXPECT_TRUE(e.has_arg);
      EXPECT_EQ(e.arg, 42u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, SnapshotIsStartOrdered) {
  Tracer::Global().Enable();
  for (int i = 0; i < 10; ++i) {
    FUNGUS_TRACE_SPAN("test.ordered", static_cast<uint64_t>(i));
  }
  Tracer::Global().Disable();
  const std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
}

TEST_F(TraceTest, ClearForgetsEvents) {
  Tracer::Global().Enable();
  { FUNGUS_TRACE_SPAN("test.cleared"); }
  Tracer::Global().Clear();
  Tracer::Global().Disable();
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    EXPECT_STRNE(e.name, "test.cleared");
  }
}

TEST_F(TraceTest, RingOverwritesOldest) {
  Tracer::Global().Enable();
  const size_t n = Tracer::kEventsPerThread + 100;
  for (size_t i = 0; i < n; ++i) {
    Tracer::Global().Record("test.ring", i, 1, 0, false);
  }
  Tracer::Global().Disable();
  size_t ring_events = 0;
  uint64_t min_start = UINT64_MAX;
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    if (std::string(e.name) == "test.ring") {
      ++ring_events;
      min_start = std::min(min_start, e.start_us);
    }
  }
  EXPECT_LE(ring_events, Tracer::kEventsPerThread);
  EXPECT_GE(min_start, 100u);  // the first 100 were overwritten
  EXPECT_GE(Tracer::Global().events_recorded(), n);
}

TEST_F(TraceTest, MultipleThreadsGetDistinctTids) {
  Tracer::Global().Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { FUNGUS_TRACE_SPAN("test.thread"); });
  }
  for (std::thread& t : threads) t.join();
  Tracer::Global().Disable();
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    if (std::string(e.name) == "test.thread") tids.push_back(e.tid);
  }
  EXPECT_EQ(tids.size(), 4u);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(TraceTest, ChromeJsonShape) {
  Tracer::Global().Enable();
  { FUNGUS_TRACE_SPAN("test.json", 7); }
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  // Single line: the only newline is the terminator.
  EXPECT_EQ(json.find('\n'), json.size() - 1);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceStillValidJson) {
  const std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace fungusdb
