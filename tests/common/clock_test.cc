#include "common/clock.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(VirtualClockTest, StartsAtEpoch) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0);
  VirtualClock offset(100);
  EXPECT_EQ(offset.Now(), 100);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.Advance(kSecond);
  clock.Advance(2 * kSecond);
  EXPECT_EQ(clock.Now(), 3 * kSecond);
}

TEST(VirtualClockTest, AdvanceZeroIsNoop) {
  VirtualClock clock(5);
  clock.Advance(0);
  EXPECT_EQ(clock.Now(), 5);
}

TEST(VirtualClockTest, SetTimeJumpsForward) {
  VirtualClock clock;
  clock.SetTime(kDay);
  EXPECT_EQ(clock.Now(), kDay);
}

TEST(SystemClockTest, IsMonotonicNonDecreasing) {
  SystemClock clock;
  const Timestamp a = clock.Now();
  const Timestamp b = clock.Now();
  EXPECT_LE(a, b);
  EXPECT_GE(a, 0);
}

TEST(DurationTest, UnitRatios) {
  EXPECT_EQ(kMillisecond, 1000);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(FormatDurationTest, RendersCompactUnits) {
  EXPECT_EQ(FormatDuration(0), "0us");
  EXPECT_EQ(FormatDuration(kSecond), "1s");
  EXPECT_EQ(FormatDuration(90 * kSecond), "1m30s");
  EXPECT_EQ(FormatDuration(2 * kDay + 3 * kHour), "2d3h");
  EXPECT_EQ(FormatDuration(450 * kMillisecond), "450ms");
}

TEST(FormatDurationTest, NegativeDurations) {
  EXPECT_EQ(FormatDuration(-kSecond), "-1s");
}

TEST(FormatDurationTest, AtMostTwoComponents) {
  // 1d 1h 1m 1s -> only the two most significant parts.
  EXPECT_EQ(FormatDuration(kDay + kHour + kMinute + kSecond), "1d1h");
}

TEST(ParseDurationTest, SingleUnits) {
  EXPECT_EQ(ParseDuration("5us").value(), 5);
  EXPECT_EQ(ParseDuration("450ms").value(), 450 * kMillisecond);
  EXPECT_EQ(ParseDuration("10s").value(), 10 * kSecond);
  EXPECT_EQ(ParseDuration("90m").value(), 90 * kMinute);
  EXPECT_EQ(ParseDuration("3h").value(), 3 * kHour);
  EXPECT_EQ(ParseDuration("7d").value(), 7 * kDay);
}

TEST(ParseDurationTest, CompoundDurations) {
  EXPECT_EQ(ParseDuration("2d3h").value(), 2 * kDay + 3 * kHour);
  EXPECT_EQ(ParseDuration("1m30s").value(), 90 * kSecond);
}

TEST(ParseDurationTest, RoundTripsWithFormat) {
  for (Duration d : {kSecond, 90 * kSecond, 2 * kDay + 3 * kHour,
                     450 * kMillisecond}) {
    EXPECT_EQ(ParseDuration(FormatDuration(d)).value(), d);
  }
}

TEST(ParseDurationTest, MalformedInputsFail) {
  EXPECT_FALSE(ParseDuration("").ok());
  EXPECT_FALSE(ParseDuration("abc").ok());
  EXPECT_FALSE(ParseDuration("5").ok());       // missing unit
  EXPECT_FALSE(ParseDuration("5parsecs").ok());
  EXPECT_FALSE(ParseDuration("h5").ok());
}

}  // namespace
}  // namespace fungusdb
