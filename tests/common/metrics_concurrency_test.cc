#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace fungusdb {
namespace {

// Run under TSan in CI: N writer threads hammer labeled counters and
// histograms while a reader repeatedly snapshots both report formats.
TEST(MetricsConcurrencyTest, LabeledWritesRaceCleanlyWithReaders) {
  MetricsRegistry m;
  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&m, w] {
      const std::string shard = "shard=" + std::to_string(w);
      for (int i = 0; i < kIterations; ++i) {
        m.IncrementCounter("fungusdb.test.ops", shard);
        m.IncrementCounter("fungusdb.test.ops");
        m.RecordHistogram("fungusdb.test.latency_us", shard, i % 1000);
        if (i % 64 == 0) {
          m.SetGauge("fungusdb.test.level", shard, static_cast<double>(i));
        }
      }
    });
  }

  std::atomic<bool> done{false};
  std::thread reader([&m, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string prom = m.PrometheusReport();
      EXPECT_NE(prom.find("# TYPE fungusdb_test_ops counter"),
                std::string::npos);
      (void)m.Report();
      (void)m.GetCounter("fungusdb.test.ops", "shard=0");
    }
  });

  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(m.GetCounter("fungusdb.test.ops"), kWriters * kIterations);
  int64_t histogram_total = 0;
  for (int w = 0; w < kWriters; ++w) {
    const std::string shard = "shard=" + std::to_string(w);
    EXPECT_EQ(m.GetCounter("fungusdb.test.ops", shard), kIterations);
    const HistogramMetric* h =
        m.FindHistogram("fungusdb.test.latency_us", shard);
    ASSERT_NE(h, nullptr);
    histogram_total += h->count();
  }
  EXPECT_EQ(histogram_total, kWriters * kIterations);
}

}  // namespace
}  // namespace fungusdb
