#include "common/buffer_io.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(BufferIoTest, PrimitivesRoundTrip) {
  BufferWriter out;
  out.WriteU8(0xAB);
  out.WriteU32(0xDEADBEEF);
  out.WriteU64(0x0123456789ABCDEFull);
  out.WriteI64(-42);
  out.WriteDouble(3.25);
  out.WriteBool(true);
  out.WriteBool(false);
  out.WriteString("fungus");

  BufferReader in(out.buffer());
  EXPECT_EQ(in.ReadU8().value(), 0xAB);
  EXPECT_EQ(in.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(in.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(in.ReadDouble().value(), 3.25);
  EXPECT_TRUE(in.ReadBool().value());
  EXPECT_FALSE(in.ReadBool().value());
  EXPECT_EQ(in.ReadString().value(), "fungus");
  EXPECT_TRUE(in.exhausted());
}

TEST(BufferIoTest, EmptyStringAndBinaryPayloads) {
  BufferWriter out;
  out.WriteString("");
  out.WriteString(std::string("\0\x01\xFF", 3));
  BufferReader in(out.buffer());
  EXPECT_EQ(in.ReadString().value(), "");
  const std::string binary = in.ReadString().value();
  ASSERT_EQ(binary.size(), 3u);
  EXPECT_EQ(binary[0], '\0');
  EXPECT_EQ(static_cast<unsigned char>(binary[2]), 0xFF);
}

TEST(BufferIoTest, ReadsPastEndFail) {
  BufferWriter out;
  out.WriteU32(7);
  BufferReader in(out.buffer());
  EXPECT_TRUE(in.ReadU32().ok());
  EXPECT_EQ(in.ReadU8().status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(in.ReadU64().status().code(), StatusCode::kOutOfRange);
}

TEST(BufferIoTest, TruncatedStringLengthFails) {
  BufferWriter out;
  out.WriteString("hello world");
  const std::string data = out.buffer().substr(0, out.size() - 4);
  BufferReader in(data);
  EXPECT_EQ(in.ReadString().status().code(), StatusCode::kOutOfRange);
}

TEST(BufferIoTest, HugeDeclaredLengthFailsCleanly) {
  BufferWriter out;
  out.WriteU64(UINT64_MAX);  // a string header promising 2^64 bytes
  BufferReader in(out.buffer());
  EXPECT_FALSE(in.ReadString().ok());
}

TEST(BufferIoTest, RemainingTracksPosition) {
  BufferWriter out;
  out.WriteU64(1);
  out.WriteU64(2);
  BufferReader in(out.buffer());
  EXPECT_EQ(in.remaining(), 16u);
  in.ReadU64().value();
  EXPECT_EQ(in.remaining(), 8u);
  EXPECT_FALSE(in.exhausted());
  in.ReadU64().value();
  EXPECT_TRUE(in.exhausted());
}

TEST(BufferIoTest, ReleaseMovesBuffer) {
  BufferWriter out;
  out.WriteU8(1);
  const std::string data = out.Release();
  EXPECT_EQ(data.size(), 1u);
}

}  // namespace
}  // namespace fungusdb
