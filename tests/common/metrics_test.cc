#include "common/metrics.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(MetricsTest, CountersStartAtZero) {
  MetricsRegistry m;
  EXPECT_EQ(m.GetCounter("absent"), 0);
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry m;
  m.IncrementCounter("rows");
  m.IncrementCounter("rows", 9);
  EXPECT_EQ(m.GetCounter("rows"), 10);
}

TEST(MetricsTest, GaugesOverwrite) {
  MetricsRegistry m;
  m.SetGauge("mem", 1.5);
  m.SetGauge("mem", 2.5);
  EXPECT_DOUBLE_EQ(m.GetGauge("mem"), 2.5);
  EXPECT_DOUBLE_EQ(m.GetGauge("absent"), 0.0);
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsRegistry m;
  m.IncrementCounter("a");
  m.SetGauge("b", 1.0);
  m.Histogram("c").Record(1);
  m.Reset();
  EXPECT_EQ(m.GetCounter("a"), 0);
  EXPECT_DOUBLE_EQ(m.GetGauge("b"), 0.0);
  EXPECT_EQ(m.FindHistogram("c"), nullptr);
}

TEST(MetricsTest, ReportContainsEntries) {
  MetricsRegistry m;
  m.IncrementCounter("x.count", 3);
  m.SetGauge("y.gauge", 7.0);
  const std::string report = m.Report();
  EXPECT_NE(report.find("x.count = 3"), std::string::npos);
  EXPECT_NE(report.find("y.gauge = 7"), std::string::npos);
}

TEST(HistogramMetricTest, EmptyHistogram) {
  HistogramMetric h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramMetricTest, BasicStats) {
  HistogramMetric h;
  for (int64_t v : {1, 2, 3, 4, 5}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 15);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HistogramMetricTest, QuantilesAreOrdered) {
  HistogramMetric h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p10 = h.Quantile(0.10);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0 + 1e-9);
}

TEST(HistogramMetricTest, SingleValueQuantiles) {
  HistogramMetric h;
  h.Record(42);
  EXPECT_NEAR(h.Quantile(0.5), 42.0, 42.0);  // within its bucket
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramMetricTest, NegativeValuesClampToFirstBucket) {
  HistogramMetric h;
  h.Record(-10);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), -10);
}

TEST(HistogramMetricTest, ResetZeroes) {
  HistogramMetric h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace fungusdb
