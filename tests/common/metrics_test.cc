#include "common/metrics.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(MetricsTest, CountersStartAtZero) {
  MetricsRegistry m;
  EXPECT_EQ(m.GetCounter("absent"), 0);
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry m;
  m.IncrementCounter("rows");
  m.IncrementCounter("rows", 9);
  EXPECT_EQ(m.GetCounter("rows"), 10);
}

TEST(MetricsTest, GaugesOverwrite) {
  MetricsRegistry m;
  m.SetGauge("mem", 1.5);
  m.SetGauge("mem", 2.5);
  EXPECT_DOUBLE_EQ(m.GetGauge("mem"), 2.5);
  EXPECT_DOUBLE_EQ(m.GetGauge("absent"), 0.0);
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsRegistry m;
  m.IncrementCounter("a");
  m.SetGauge("b", 1.0);
  m.Histogram("c").Record(1);
  m.Reset();
  EXPECT_EQ(m.GetCounter("a"), 0);
  EXPECT_DOUBLE_EQ(m.GetGauge("b"), 0.0);
  EXPECT_EQ(m.FindHistogram("c"), nullptr);
}

TEST(MetricsTest, ReportContainsEntries) {
  MetricsRegistry m;
  m.IncrementCounter("x.count", 3);
  m.SetGauge("y.gauge", 7.0);
  const std::string report = m.Report();
  EXPECT_NE(report.find("x.count = 3"), std::string::npos);
  EXPECT_NE(report.find("y.gauge = 7"), std::string::npos);
}

TEST(MetricsTest, LabeledCountersAreIndependentSeries) {
  MetricsRegistry m;
  m.IncrementCounter("fungusdb.decay.ticks");
  m.IncrementCounter("fungusdb.decay.ticks", "table=events", 3);
  m.IncrementCounter("fungusdb.decay.ticks", "table=logs", 5);
  EXPECT_EQ(m.GetCounter("fungusdb.decay.ticks"), 1);
  EXPECT_EQ(m.GetCounter("fungusdb.decay.ticks", "table=events"), 3);
  EXPECT_EQ(m.GetCounter("fungusdb.decay.ticks", "table=logs"), 5);
  EXPECT_EQ(m.GetCounter("fungusdb.decay.ticks", "table=absent"), 0);
}

TEST(MetricsTest, LabeledGaugesAndHistograms) {
  MetricsRegistry m;
  m.SetGauge("fungusdb.rot.oldest_live_ts", "table=events", 123.0);
  EXPECT_DOUBLE_EQ(m.GetGauge("fungusdb.rot.oldest_live_ts", "table=events"),
                   123.0);
  EXPECT_DOUBLE_EQ(m.GetGauge("fungusdb.rot.oldest_live_ts"), 0.0);
  m.RecordHistogram("fungusdb.decay.tick_duration_us", "table=events", 50);
  const HistogramMetric* h =
      m.FindHistogram("fungusdb.decay.tick_duration_us", "table=events");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1);
  EXPECT_EQ(m.FindHistogram("fungusdb.decay.tick_duration_us"), nullptr);
}

TEST(MetricsTest, ReportIsDeterministicallyOrdered) {
  MetricsRegistry m;
  m.IncrementCounter("b.counter");
  m.IncrementCounter("a.counter");
  m.IncrementCounter("a.counter", "table=z");
  m.IncrementCounter("a.counter", "table=a");
  m.SetGauge("g.gauge", 1.0);
  const std::string report = m.Report();
  const size_t a_plain = report.find("a.counter = ");
  const size_t a_la = report.find("a.counter{table=a} = ");
  const size_t a_lz = report.find("a.counter{table=z} = ");
  const size_t b = report.find("b.counter = ");
  const size_t g = report.find("g.gauge = ");
  ASSERT_NE(a_plain, std::string::npos);
  ASSERT_NE(a_la, std::string::npos);
  ASSERT_NE(a_lz, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  // Counters sorted by (name, label), then gauges.
  EXPECT_LT(a_plain, a_la);
  EXPECT_LT(a_la, a_lz);
  EXPECT_LT(a_lz, b);
  EXPECT_LT(b, g);
  // Two calls produce byte-identical output.
  EXPECT_EQ(report, m.Report());
}

TEST(MetricsTest, PrometheusReportShape) {
  MetricsRegistry m;
  m.IncrementCounter("fungusdb.query.executed", 4);
  m.IncrementCounter("fungusdb.server.errors", "code=2002", 2);
  m.SetGauge("fungusdb.rot.oldest_live_ts", "table=events", 99.0);
  m.RecordHistogram("fungusdb.server.statement_latency_us", 100);
  const std::string prom = m.PrometheusReport();
  EXPECT_NE(prom.find("# TYPE fungusdb_query_executed counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_query_executed 4\n"), std::string::npos);
  EXPECT_NE(prom.find("fungusdb_server_errors{code=\"2002\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE fungusdb_rot_oldest_live_ts gauge\n"),
            std::string::npos);
  EXPECT_NE(
      prom.find("fungusdb_rot_oldest_live_ts{table=\"events\"} 99\n"),
      std::string::npos);
  EXPECT_NE(
      prom.find("# TYPE fungusdb_server_statement_latency_us histogram\n"),
      std::string::npos);
  // 100 lands in bucket [64, 128) whose inclusive integer bound is 127.
  EXPECT_NE(
      prom.find("fungusdb_server_statement_latency_us_bucket{le=\"127\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      prom.find(
          "fungusdb_server_statement_latency_us_bucket{le=\"+Inf\"} 1\n"),
      std::string::npos);
  EXPECT_NE(prom.find("fungusdb_server_statement_latency_us_sum 100\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_server_statement_latency_us_count 1\n"),
            std::string::npos);
}

TEST(MetricsTest, PrometheusBucketMergesWithSeriesLabel) {
  MetricsRegistry m;
  m.RecordHistogram("fungusdb.decay.tick_duration_us", "table=t", 10);
  const std::string prom = m.PrometheusReport();
  EXPECT_NE(prom.find("fungusdb_decay_tick_duration_us_bucket{table=\"t\","
                      "le=\"15\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_decay_tick_duration_us_bucket{table=\"t\","
                      "le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_decay_tick_duration_us_count{table=\"t\"} 1"),
            std::string::npos);
}

TEST(MetricsTest, PrometheusBucketsAreCumulativeAndOrdered) {
  MetricsRegistry m;
  // One observation per decade: buckets le=0, le=1, le=15, le=127, +Inf.
  m.RecordHistogram("fungusdb.test.h", -5);
  m.RecordHistogram("fungusdb.test.h", 1);
  m.RecordHistogram("fungusdb.test.h", 9);
  m.RecordHistogram("fungusdb.test.h", 100);
  const std::string prom = m.PrometheusReport();
  const size_t b0 = prom.find("fungusdb_test_h_bucket{le=\"0\"} 1\n");
  const size_t b1 = prom.find("fungusdb_test_h_bucket{le=\"1\"} 2\n");
  const size_t b15 = prom.find("fungusdb_test_h_bucket{le=\"15\"} 3\n");
  const size_t b127 = prom.find("fungusdb_test_h_bucket{le=\"127\"} 4\n");
  const size_t binf = prom.find("fungusdb_test_h_bucket{le=\"+Inf\"} 4\n");
  ASSERT_NE(b0, std::string::npos);
  ASSERT_NE(b1, std::string::npos);
  ASSERT_NE(b15, std::string::npos);
  ASSERT_NE(b127, std::string::npos);
  ASSERT_NE(binf, std::string::npos);
  EXPECT_LT(b0, b1);
  EXPECT_LT(b1, b15);
  EXPECT_LT(b15, b127);
  EXPECT_LT(b127, binf);
  EXPECT_NE(prom.find("fungusdb_test_h_sum 105\n"), std::string::npos);
}

TEST(MetricsTest, PrometheusEmptyHistogramStillCloses) {
  MetricsRegistry m;
  m.Histogram("fungusdb.test.empty");
  const std::string prom = m.PrometheusReport();
  EXPECT_NE(prom.find("# TYPE fungusdb_test_empty histogram\n"),
            std::string::npos);
  // No finite buckets, but the +Inf / _sum / _count triplet must appear
  // so scrapers see a well-formed (zero-sample) histogram.
  EXPECT_EQ(prom.find("fungusdb_test_empty_bucket{le=\"0\""),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_test_empty_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_test_empty_sum 0\n"), std::string::npos);
  EXPECT_NE(prom.find("fungusdb_test_empty_count 0\n"), std::string::npos);
}

TEST(MetricsTest, PrometheusLabelValueEscaping) {
  MetricsRegistry m;
  m.IncrementCounter("fungusdb.test.escaped", "table=a\"b\\c\nd", 1);
  m.RecordHistogram("fungusdb.test.escaped_h", "table=q\"t", 7);
  const std::string prom = m.PrometheusReport();
  EXPECT_NE(prom.find("fungusdb_test_escaped{table=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fungusdb_test_escaped_h_bucket{table=\"q\\\"t\","
                      "le=\"7\"} 1\n"),
            std::string::npos);
}

TEST(HistogramMetricTest, CumulativeBucketsExactBounds) {
  HistogramMetric h;
  EXPECT_TRUE(h.CumulativeBuckets().empty());
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  const auto buckets = h.CumulativeBuckets();
  // 0 -> le=0; 1 -> le=1; 2,3 -> le=3; 4 -> le=7.
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(buckets[1], (std::pair<int64_t, int64_t>{1, 2}));
  EXPECT_EQ(buckets[2], (std::pair<int64_t, int64_t>{3, 4}));
  EXPECT_EQ(buckets[3], (std::pair<int64_t, int64_t>{7, 5}));
}

TEST(HistogramMetricTest, CumulativeBucketsOverflowOnlyInInf) {
  HistogramMetric h;
  h.Record(int64_t{1} << 62);  // Lands in the unbounded top bucket.
  h.Record(5);
  const auto buckets = h.CumulativeBuckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0], (std::pair<int64_t, int64_t>{7, 1}));
  EXPECT_EQ(h.count(), 2);  // +Inf series (count) covers the overflow.
}

TEST(HistogramMetricTest, EmptyHistogram) {
  HistogramMetric h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramMetricTest, BasicStats) {
  HistogramMetric h;
  for (int64_t v : {1, 2, 3, 4, 5}) h.Record(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 15);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 5);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HistogramMetricTest, QuantilesAreOrdered) {
  HistogramMetric h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p10 = h.Quantile(0.10);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0 + 1e-9);
}

TEST(HistogramMetricTest, SingleValueQuantiles) {
  HistogramMetric h;
  h.Record(42);
  EXPECT_NEAR(h.Quantile(0.5), 42.0, 42.0);  // within its bucket
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramMetricTest, ExtremeQuantilesAreExact) {
  HistogramMetric h;
  for (int64_t v : {3, 17, 900}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 900.0);
  // Out-of-range q clamps to the extremes.
  EXPECT_DOUBLE_EQ(h.Quantile(-2.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(5.0), 900.0);
}

TEST(HistogramMetricTest, SingleSampleEveryQuantileIsExact) {
  HistogramMetric h;
  h.Record(42);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(HistogramMetricTest, NegativeValuesClampToFirstBucket) {
  HistogramMetric h;
  h.Record(-10);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), -10);
  // The first bucket's lower bound follows the tracked minimum, so a
  // purely negative histogram never reports a quantile above its max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), -10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), -10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), -10.0);
}

TEST(HistogramMetricTest, MixedSignQuantilesStayInRange) {
  HistogramMetric h;
  for (int64_t v : {-100, -50, 0, 50, 100}) h.Record(v);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.Quantile(q), -100.0) << "q=" << q;
    EXPECT_LE(h.Quantile(q), 100.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), -100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
}

TEST(HistogramMetricTest, ResetZeroes) {
  HistogramMetric h;
  h.Record(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace fungusdb
