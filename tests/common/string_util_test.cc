#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(FormatBytesTest, SmallValuesInBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
}

TEST(FormatBytesTest, BinaryUnits) {
  EXPECT_EQ(FormatBytes(1024), "1.0 KiB");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(1024ull * 1024), "1.0 MiB");
  EXPECT_EQ(FormatBytes(3ull * 1024 * 1024 * 1024), "3.0 GiB");
}

TEST(FormatDoubleTest, FixedDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\na b\r "), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(EqualsIgnoreCaseTest, CaseInsensitive) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("MiXeD", "mIxEd"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(ToLowerTest, LowercasesAscii) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

}  // namespace
}  // namespace fungusdb
