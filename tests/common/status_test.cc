#include "common/status.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    FUNGUSDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    FUNGUSDB_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("sentinel");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kTypeMismatch), "TypeMismatch");
}

}  // namespace
}  // namespace fungusdb
