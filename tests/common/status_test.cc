#include "common/status.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    FUNGUSDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    FUNGUSDB_RETURN_IF_ERROR(succeeds());
    return Status::NotFound("sentinel");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeName(StatusCode::kTypeMismatch), "TypeMismatch");
}

TEST(ErrorCodeTest, NumericValuesAreAPublicContract) {
  // These numbers travel the wire and appear in logs/scripts; changing
  // one is a protocol break, so they are pinned here.
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kOk), 0);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kInvalidArgument), 1001);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kParseError), 1101);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kTableNotFound), 1203);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kOverloaded), 2002);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kTimeout), 2003);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kShuttingDown), 2004);
  EXPECT_EQ(static_cast<uint16_t>(ErrorCode::kWireFormat), 2301);
}

TEST(ErrorCodeTest, EveryStatusCarriesACode) {
  EXPECT_EQ(Status::OK().error_code(), ErrorCode::kOk);
  EXPECT_EQ(Status::NotFound("x").error_code(), ErrorCode::kNotFound);
  // Specific factories refine the generic category code.
  const Status table = Status::TableNotFound("no table named 't'");
  EXPECT_EQ(table.code(), StatusCode::kNotFound);
  EXPECT_EQ(table.error_code(), ErrorCode::kTableNotFound);
  EXPECT_EQ(table.ErrorLabel(), "E:1203 TableNotFound");
  EXPECT_EQ(Status::Overloaded("x").error_code(), ErrorCode::kOverloaded);
  EXPECT_EQ(Status::Timeout("x").error_code(), ErrorCode::kTimeout);
}

TEST(ErrorCodeTest, WireRoundTripPreservesTheCode) {
  const Status original = Status::Timeout("budget blown");
  const Status decoded = Status::FromWire(
      ErrorCodeFromWire(static_cast<uint16_t>(original.error_code())),
      original.message());
  EXPECT_EQ(decoded.error_code(), ErrorCode::kTimeout);
  EXPECT_EQ(decoded.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.message(), "budget blown");
}

TEST(ErrorCodeTest, UnknownWireCodeDegradesToInternal) {
  EXPECT_EQ(ErrorCodeFromWire(12345), ErrorCode::kInternal);
  EXPECT_EQ(ErrorCodeFromWire(0), ErrorCode::kOk);
}

TEST(ErrorCodeTest, NamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kTableNotFound), "TableNotFound");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOverloaded), "Overloaded");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kWireFormat), "WireFormat");
}

}  // namespace
}  // namespace fungusdb
