#!/bin/sh
# Compile-time verification of the epoch capability model.
#
# Usage: check_thread_safety.sh <clang++> <repo-root>
#
# Two checks, both syntax-only (no linking, no gtest needed):
#   1. epoch_capability_positive.cc compiles cleanly — correctly
#      annotated code does not fight the analysis;
#   2. epoch_capability_negative.cc FAILS with a -Wthread-safety
#      diagnostic — a reader pin cannot reach a REQUIRES(epoch) writer
#      API. A clean compile here means the contract has a hole.
#
# Registered as the `thread_safety_compile` ctest when clang++ is on
# PATH (the analysis is clang-only; GCC builds compile the annotations
# to nothing), and run unconditionally by the CI thread-safety job.

set -u

CLANGXX="$1"
ROOT="$2"
HERE="$ROOT/tests/analyze"

FLAGS="-std=c++20 -fsyntax-only -I$ROOT/src -I$ROOT/include \
  -Wthread-safety -Wthread-safety-beta \
  -Werror=thread-safety -Werror=thread-safety-beta"

status=0

if ! out=$("$CLANGXX" $FLAGS "$HERE/epoch_capability_positive.cc" 2>&1); then
  echo "FAIL: positive capability test did not compile:"
  echo "$out"
  status=1
else
  echo "ok: positive capability test compiles cleanly"
fi

if out=$("$CLANGXX" $FLAGS "$HERE/epoch_capability_negative.cc" 2>&1); then
  echo "FAIL: negative capability test COMPILED — a reader pin reached"
  echo "      a REQUIRES(epoch) writer API without a diagnostic"
  status=1
elif ! echo "$out" | grep -q "thread-safety"; then
  echo "FAIL: negative capability test failed for the wrong reason:"
  echo "$out"
  status=1
else
  echo "ok: negative capability test rejected with a thread-safety error"
fi

exit $status
