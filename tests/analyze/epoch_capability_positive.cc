// Positive half of the epoch-capability compile test: a writer holding
// the exclusive epoch section may call the mutating internal API, and a
// reader pin satisfies the shared-capability query surface. This
// translation unit must compile CLEANLY under
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// (driven by check_thread_safety.sh; see the negative twin for the
// build that must fail).

#include "core/database.h"
#include "core/internal_access.h"

namespace fungusdb {

void WriterMayMutate(Database& db) {
  EpochManager::WriteGuard guard(db.epochs());
  (void)internal::DatabaseInternal::MutableTable(db, "spores");
}

void ReaderMayQuery(Database& db) {
  EpochManager::ReadPin pin(db.epochs());
  (void)db.GetTable("spores");
}

}  // namespace fungusdb
