// Negative half of the epoch-capability compile test: a reader holding
// only a shared pin calls the mutating internal API, which requires the
// epoch capability EXCLUSIVELY. Under
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// this translation unit MUST FAIL to build with a thread-safety
// diagnostic ("requires holding ... exclusively"). If it ever compiles,
// the capability model has a hole — check_thread_safety.sh treats that
// as a test failure.

#include "core/database.h"
#include "core/internal_access.h"

namespace fungusdb {

void ReaderCallsWriterApi(Database& db) {
  EpochManager::ReadPin pin(db.epochs());
  (void)internal::DatabaseInternal::MutableTable(db, "spores");
}

}  // namespace fungusdb
