#include <set>

#include <gtest/gtest.h>

#include "workload/clickstream_workload.h"
#include "workload/iot_workload.h"
#include "workload/query_workload.h"
#include "workload/tick_workload.h"

namespace fungusdb {
namespace {

TEST(IotWorkloadTest, SchemaShape) {
  IotWorkload wl(IotWorkload::Params{});
  EXPECT_EQ(wl.schema().num_fields(), 4u);
  EXPECT_EQ(wl.schema().field(0).name, "sensor_id");
  EXPECT_EQ(wl.schema().field(1).type, DataType::kFloat64);
}

TEST(IotWorkloadTest, RecordsConformToSchema) {
  IotWorkload wl(IotWorkload::Params{});
  for (int i = 0; i < 100; ++i) {
    auto record = wl.Next();
    ASSERT_TRUE(record.has_value());
    ASSERT_EQ(record->size(), 4u);
    EXPECT_EQ((*record)[0].type(), DataType::kInt64);
    EXPECT_LT((*record)[0].AsInt64(), 100);
    EXPECT_EQ((*record)[3].type(), DataType::kString);
  }
}

TEST(IotWorkloadTest, DeterministicGivenSeed) {
  IotWorkload::Params p;
  p.seed = 99;
  IotWorkload a(p), b(p);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE((*a.Next())[1].Equals((*b.Next())[1]));
  }
}

TEST(IotWorkloadTest, FaultsAreRare) {
  IotWorkload wl(IotWorkload::Params{});
  int faults = 0;
  for (int i = 0; i < 5000; ++i) {
    if ((*wl.Next())[3].AsString() == "FAULT") ++faults;
  }
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, 200);  // ~0.5% expected
}

TEST(ClickstreamWorkloadTest, SessionsRollOver) {
  ClickstreamWorkload::Params p;
  p.num_users = 5;
  p.session_end_probability = 0.5;
  ClickstreamWorkload wl(p);
  std::set<int64_t> sessions;
  for (int i = 0; i < 500; ++i) {
    sessions.insert((*wl.Next())[1].AsInt64());
  }
  EXPECT_GT(sessions.size(), 20u);
}

TEST(ClickstreamWorkloadTest, HeavyUsersDominate) {
  ClickstreamWorkload::Params p;
  p.num_users = 1000;
  p.user_skew = 0.9;
  ClickstreamWorkload wl(p);
  int top_user_hits = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if ((*wl.Next())[0].AsInt64() < 10) ++top_user_hits;
  }
  EXPECT_GT(static_cast<double>(top_user_hits) / n, 0.2);
}

TEST(TickWorkloadTest, PricesStayPositive) {
  TickWorkload wl(TickWorkload::Params{});
  for (int i = 0; i < 2000; ++i) {
    auto record = *wl.Next();
    EXPECT_GT(record[1].AsFloat64(), 0.0);
    EXPECT_GT(record[2].AsInt64(), 0);
  }
}

TEST(TickWorkloadTest, SymbolNamesStable) {
  EXPECT_EQ(TickWorkload::SymbolName(0), "SYM000");
  EXPECT_EQ(TickWorkload::SymbolName(42), "SYM042");
}

TEST(QueryWorkloadTest, GeneratesAllClasses) {
  QueryWorkload wl(QueryWorkload::Params{});
  std::set<QueryWorkload::QueryClass> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(wl.Next(/*now=*/30 * kDay).query_class);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(QueryWorkloadTest, QueriesTargetConfiguredTable) {
  QueryWorkload::Params p;
  p.table_name = "mytable";
  QueryWorkload wl(p);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(wl.Next(0).query.table_name, "mytable");
  }
}

TEST(QueryWorkloadTest, HistoricalQueriesAreAggregates) {
  QueryWorkload::Params p;
  p.point_fraction = 0.0;
  p.value_range_fraction = 0.0;
  p.recent_fraction = 0.0;  // everything historical
  QueryWorkload wl(p);
  auto gen = wl.Next(/*now=*/30 * kDay);
  EXPECT_EQ(gen.query_class, QueryWorkload::QueryClass::kHistorical);
  EXPECT_EQ(gen.query.items.size(), 2u);
  EXPECT_TRUE(gen.query.items[0].expr->ContainsAggregate());
}

TEST(QueryWorkloadTest, ClassNames) {
  EXPECT_EQ(QueryWorkload::ClassName(QueryWorkload::QueryClass::kPoint),
            "point");
  EXPECT_EQ(
      QueryWorkload::ClassName(QueryWorkload::QueryClass::kHistorical),
      "historical");
}

}  // namespace
}  // namespace fungusdb
