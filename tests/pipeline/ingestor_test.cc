#include "pipeline/ingestor.h"

#include <gtest/gtest.h>

#include "summary/count_min_sketch.h"

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

std::vector<std::vector<Value>> MakeRows(int n) {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int64(i)});
  return rows;
}

TEST(VectorSourceTest, ProducesAllRowsThenDries) {
  VectorSource source(OneColSchema(), MakeRows(3));
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());
}

TEST(IngestorTest, IngestBatchStampsCurrentTime) {
  VirtualClock clock(5000);
  Ingestor ingestor(&clock, nullptr);
  Table t("t", OneColSchema());
  VectorSource source(OneColSchema(), MakeRows(4));
  EXPECT_EQ(ingestor.IngestBatch(source, t, 10).value(), 4u);
  EXPECT_EQ(t.live_rows(), 4u);
  EXPECT_EQ(t.InsertTime(0).value(), 5000);
  EXPECT_EQ(ingestor.total_ingested(), 4u);
}

TEST(IngestorTest, IngestBatchRespectsMax) {
  VirtualClock clock;
  Ingestor ingestor(&clock, nullptr);
  Table t("t", OneColSchema());
  VectorSource source(OneColSchema(), MakeRows(10));
  EXPECT_EQ(ingestor.IngestBatch(source, t, 3).value(), 3u);
  EXPECT_EQ(t.live_rows(), 3u);
}

TEST(IngestorTest, IngestPacedAdvancesClockPerRecord) {
  VirtualClock clock;
  Ingestor ingestor(&clock, nullptr);
  Table t("t", OneColSchema());
  VectorSource source(OneColSchema(), MakeRows(3));
  EXPECT_EQ(
      ingestor.IngestPaced(source, t, 3, clock, /*inter_arrival=*/kSecond)
          .value(),
      3u);
  EXPECT_EQ(t.InsertTime(0).value(), kSecond);
  EXPECT_EQ(t.InsertTime(2).value(), 3 * kSecond);
  EXPECT_EQ(clock.Now(), 3 * kSecond);
}

TEST(IngestorTest, CookOnIngestFeedsKitchen) {
  VirtualClock clock;
  Cellar cellar;
  Kitchen kitchen(&cellar);
  CookSpec spec;
  spec.table_name = "t";
  spec.trigger = CookTrigger::kOnIngest;
  spec.cellar_name = "v_counts";
  spec.column = "v";
  spec.factory = [] { return std::make_unique<CountMinSketch>(64, 4); };
  ASSERT_TRUE(kitchen.AddSpec(spec).ok());

  Ingestor ingestor(&clock, &kitchen);
  Table t("t", OneColSchema());
  VectorSource source(OneColSchema(), MakeRows(5));
  ASSERT_TRUE(ingestor.IngestBatch(source, t, 5).ok());
  const Summary* cooked = cellar.Find("v_counts");
  ASSERT_NE(cooked, nullptr);
  EXPECT_EQ(cooked->observations(), 5u);
  EXPECT_EQ(kitchen.rows_cooked(), 5u);
}

TEST(IngestorTest, TypeErrorsPropagate) {
  VirtualClock clock;
  Ingestor ingestor(&clock, nullptr);
  Table t("t", OneColSchema());
  Schema wrong =
      Schema::Make({{"v", DataType::kString, false}}).value();
  VectorSource source(wrong, {{Value::String("x")}});
  EXPECT_FALSE(ingestor.IngestBatch(source, t, 1).ok());
}

}  // namespace
}  // namespace fungusdb
