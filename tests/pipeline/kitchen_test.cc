#include "pipeline/kitchen.h"

#include <gtest/gtest.h>

#include "summary/count_min_sketch.h"
#include "summary/histogram_sketch.h"

namespace fungusdb {
namespace {

Schema EventSchema() {
  return Schema::Make({{"key", DataType::kString, false},
                       {"amount", DataType::kFloat64, false}})
      .value();
}

CookSpec ColumnSpec(const std::string& table, const std::string& cellar,
                    const std::string& column,
                    CookTrigger trigger = CookTrigger::kOnRot) {
  CookSpec spec;
  spec.table_name = table;
  spec.trigger = trigger;
  spec.cellar_name = cellar;
  spec.column = column;
  spec.factory = [] { return std::make_unique<CountMinSketch>(64, 4); };
  return spec;
}

TEST(KitchenTest, AddSpecValidation) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  CookSpec empty;
  EXPECT_FALSE(kitchen.AddSpec(empty).ok());
  CookSpec no_factory = ColumnSpec("t", "c", "key");
  no_factory.factory = nullptr;
  EXPECT_FALSE(kitchen.AddSpec(no_factory).ok());
  EXPECT_TRUE(kitchen.AddSpec(ColumnSpec("t", "c", "key")).ok());
  EXPECT_EQ(kitchen.num_specs(), 1u);
}

TEST(KitchenTest, RejectsGroupedFactoryForUngroupedSpec) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  CookSpec spec = ColumnSpec("t", "c", "key");
  spec.factory = [] { return std::make_unique<GroupedAggregate>(); };
  EXPECT_FALSE(kitchen.AddSpec(spec).ok());
}

TEST(KitchenTest, CooksMatchingRows) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  ASSERT_TRUE(kitchen.AddSpec(ColumnSpec("events", "keys", "key")).ok());

  Table t("events", EventSchema());
  std::vector<RowId> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back(
        t.Append({Value::String("k" + std::to_string(i % 2)),
                  Value::Float64(i)},
                 0)
            .value());
  }
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnRot, t, rows, 10), 4u);
  auto* sketch = static_cast<const CountMinSketch*>(cellar.Find("keys"));
  ASSERT_NE(sketch, nullptr);
  EXPECT_GE(sketch->EstimateCount(Value::String("k0")), 2u);
}

TEST(KitchenTest, TriggerAndTableFiltering) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  ASSERT_TRUE(kitchen
                  .AddSpec(ColumnSpec("events", "rot", "key",
                                      CookTrigger::kOnRot))
                  .ok());
  ASSERT_TRUE(kitchen
                  .AddSpec(ColumnSpec("other", "other_rot", "key",
                                      CookTrigger::kOnRot))
                  .ok());

  Table t("events", EventSchema());
  std::vector<RowId> rows{
      t.Append({Value::String("k"), Value::Float64(1)}, 0).value()};
  // Wrong trigger: nothing cooked.
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnIngest, t, rows, 0), 0u);
  // Right trigger: only the matching table's spec fires.
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnRot, t, rows, 0), 1u);
  EXPECT_NE(cellar.Find("rot"), nullptr);
  EXPECT_EQ(cellar.Find("other_rot"), nullptr);
}

TEST(KitchenTest, CooksDeadRowsBeforeReclaim) {
  // The on-rot contract: tombstoned tuples still have readable values.
  Cellar cellar;
  Kitchen kitchen(&cellar);
  ASSERT_TRUE(kitchen.AddSpec(ColumnSpec("events", "keys", "key")).ok());
  Table t("events", EventSchema());
  const RowId row =
      t.Append({Value::String("gone"), Value::Float64(1)}, 0).value();
  ASSERT_TRUE(t.Kill(row).ok());
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnRot, t, {row}, 0), 1u);
  auto* sketch = static_cast<const CountMinSketch*>(cellar.Find("keys"));
  EXPECT_GE(sketch->EstimateCount(Value::String("gone")), 1u);
}

TEST(KitchenTest, GroupedSpecBuildsGroupedAggregate) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  CookSpec spec;
  spec.table_name = "events";
  spec.trigger = CookTrigger::kOnRot;
  spec.cellar_name = "per_key";
  spec.column = "amount";
  spec.group_by = "key";
  ASSERT_TRUE(kitchen.AddSpec(spec).ok());

  Table t("events", EventSchema());
  std::vector<RowId> rows;
  rows.push_back(
      t.Append({Value::String("a"), Value::Float64(1.0)}, 0).value());
  rows.push_back(
      t.Append({Value::String("a"), Value::Float64(3.0)}, 0).value());
  rows.push_back(
      t.Append({Value::String("b"), Value::Float64(10.0)}, 0).value());
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnRot, t, rows, 0), 3u);

  auto* agg = static_cast<const GroupedAggregate*>(cellar.Find("per_key"));
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->num_groups(), 2u);
  EXPECT_DOUBLE_EQ(agg->GroupState(Value::String("a")).value().Mean(), 2.0);
}

TEST(KitchenTest, SystemColumnsCookable) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  CookSpec spec;
  spec.table_name = "events";
  spec.cellar_name = "ts_hist";
  spec.column = "__ts";
  spec.factory = [] {
    return std::make_unique<HistogramSketch>(0.0, 1000.0, 10);
  };
  ASSERT_TRUE(kitchen.AddSpec(spec).ok());
  Table t("events", EventSchema());
  std::vector<RowId> rows{
      t.Append({Value::String("k"), Value::Float64(1)}, 500).value()};
  EXPECT_EQ(kitchen.Cook(CookTrigger::kOnRot, t, rows, 600), 1u);
  auto* hist = static_cast<const HistogramSketch*>(cellar.Find("ts_hist"));
  EXPECT_EQ(hist->bucket_count(5), 1u);
}

TEST(KitchenTest, RepeatedCooksMergeIntoOneEntry) {
  Cellar cellar;
  Kitchen kitchen(&cellar);
  ASSERT_TRUE(kitchen.AddSpec(ColumnSpec("events", "keys", "key")).ok());
  Table t("events", EventSchema());
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<RowId> rows{
        t.Append({Value::String("k"), Value::Float64(1)}, 0).value()};
    kitchen.Cook(CookTrigger::kOnRot, t, rows, batch);
  }
  EXPECT_EQ(cellar.size(), 1u);
  EXPECT_EQ(cellar.Find("keys")->observations(), 3u);
  EXPECT_EQ(kitchen.rows_cooked(), 3u);
}

}  // namespace
}  // namespace fungusdb
