#include "pipeline/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema MixedSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"score", DataType::kFloat64, true},
                       {"name", DataType::kString, false},
                       {"ok", DataType::kBool, false}})
      .value();
}

TEST(SplitCsvLineTest, PlainFields) {
  const auto fields = SplitCsvLine("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitCsvLineTest, EmptyFieldsPreserved) {
  const auto fields = SplitCsvLine("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitCsvLineTest, QuotedFieldsWithDelimiterAndEscapes) {
  const auto fields = SplitCsvLine("\"a,b\",\"say \"\"hi\"\"\"", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
}

TEST(SplitCsvLineTest, TrailingCarriageReturnDropped) {
  const auto fields = SplitCsvLine("a,b\r", ',');
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsvFieldTest, TypedParsing) {
  EXPECT_EQ(ParseCsvField("42", DataType::kInt64, true)->AsInt64(), 42);
  EXPECT_DOUBLE_EQ(
      ParseCsvField("2.5", DataType::kFloat64, true)->AsFloat64(), 2.5);
  EXPECT_TRUE(ParseCsvField("true", DataType::kBool, true)->AsBool());
  EXPECT_FALSE(ParseCsvField("0", DataType::kBool, true)->AsBool());
  EXPECT_EQ(
      ParseCsvField("99", DataType::kTimestamp, true)->AsTimestamp(), 99);
  EXPECT_EQ(ParseCsvField("x", DataType::kString, true)->AsString(), "x");
}

TEST(ParseCsvFieldTest, EmptyBecomesNull) {
  EXPECT_TRUE(ParseCsvField("", DataType::kInt64, true)->is_null());
  // Strings keep the empty string.
  EXPECT_EQ(ParseCsvField("", DataType::kString, true)->AsString(), "");
  // With empty_is_null off, empty numerics are parse errors.
  EXPECT_FALSE(ParseCsvField("", DataType::kInt64, false).ok());
}

TEST(ParseCsvFieldTest, MalformedFieldsFail) {
  EXPECT_FALSE(ParseCsvField("abc", DataType::kInt64, true).ok());
  EXPECT_FALSE(ParseCsvField("1.5x", DataType::kFloat64, true).ok());
  EXPECT_FALSE(ParseCsvField("maybe", DataType::kBool, true).ok());
}

TEST(CsvSourceTest, ReadsRecordsSkippingHeader) {
  std::istringstream input(
      "id,score,name,ok\n"
      "1,2.5,alice,true\n"
      "2,,bob,false\n");
  CsvSource source(&input, MixedSchema());
  auto r1 = source.Next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[0].AsInt64(), 1);
  EXPECT_EQ((*r1)[2].AsString(), "alice");
  auto r2 = source.Next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE((*r2)[1].is_null());
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_TRUE(source.status().ok());
  EXPECT_EQ(source.records_read(), 2u);
}

TEST(CsvSourceTest, NoHeaderMode) {
  std::istringstream input("5,1.0,x,true\n");
  CsvOptions options;
  options.has_header = false;
  CsvSource source(&input, MixedSchema(), options);
  ASSERT_TRUE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());
}

TEST(CsvSourceTest, BlankLinesSkipped) {
  std::istringstream input("1,1.0,a,true\n\n   \n2,2.0,b,false\n");
  CsvOptions options;
  options.has_header = false;
  CsvSource source(&input, MixedSchema(), options);
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_TRUE(source.status().ok());
}

TEST(CsvSourceTest, ArityMismatchStopsWithError) {
  std::istringstream input("1,2.0,a,true\n1,2.0\n");
  CsvOptions options;
  options.has_header = false;
  CsvSource source(&input, MixedSchema(), options);
  EXPECT_TRUE(source.Next().has_value());
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_EQ(source.status().code(), StatusCode::kParseError);
  EXPECT_NE(source.status().message().find("line 2"), std::string::npos);
}

TEST(CsvSourceTest, TypeErrorStopsWithError) {
  std::istringstream input("oops,2.0,a,true\n");
  CsvOptions options;
  options.has_header = false;
  CsvSource source(&input, MixedSchema(), options);
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_EQ(source.status().code(), StatusCode::kParseError);
}

TEST(WriteCsvTest, TableRoundTrip) {
  Table t("t", MixedSchema());
  t.Append({Value::Int64(1), Value::Float64(0.5), Value::String("a,b"),
            Value::Bool(true)},
           100)
      .value();
  t.Append({Value::Int64(2), Value::Null(), Value::String("plain"),
            Value::Bool(false)},
           200)
      .value();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());

  std::istringstream in(out.str());
  CsvSource source(&in, MixedSchema());
  auto r1 = source.Next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[2].AsString(), "a,b");
  auto r2 = source.Next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE((*r2)[1].is_null());
  EXPECT_FALSE((*r2)[3].AsBool());
  EXPECT_FALSE(source.Next().has_value());
  EXPECT_TRUE(source.status().ok());
}

TEST(WriteCsvTest, SystemColumnsOptIn) {
  Table t("t", MixedSchema());
  t.Append({Value::Int64(1), Value::Float64(0.5), Value::String("x"),
            Value::Bool(true)},
           1234)
      .value();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out, CsvOptions{},
                       /*include_system_columns=*/true)
                  .ok());
  EXPECT_NE(out.str().find("__ts"), std::string::npos);
  EXPECT_NE(out.str().find("1234"), std::string::npos);
}

TEST(WriteCsvTest, SkipsDeadRows) {
  Table t("t", MixedSchema());
  t.Append({Value::Int64(1), Value::Null(), Value::String("dead"),
            Value::Bool(true)},
           0)
      .value();
  ASSERT_TRUE(t.Kill(0).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(t, out).ok());
  EXPECT_EQ(out.str().find("dead"), std::string::npos);
}

TEST(WriteCsvTest, ResultSetExport) {
  ResultSet rs;
  rs.column_names = {"n", "label"};
  rs.rows.push_back({Value::Int64(3), Value::String("he said \"hi\"")});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(rs, out).ok());
  EXPECT_EQ(out.str(),
            "n,label\n3,\"he said \"\"hi\"\"\"\n");
}

TEST(FormatCsvFieldTest, QuotingRules) {
  EXPECT_EQ(FormatCsvField(Value::String("plain"), ','), "plain");
  EXPECT_EQ(FormatCsvField(Value::String("a,b"), ','), "\"a,b\"");
  EXPECT_EQ(FormatCsvField(Value::String("q\"q"), ','), "\"q\"\"q\"");
  EXPECT_EQ(FormatCsvField(Value::Null(), ','), "");
}

}  // namespace
}  // namespace fungusdb
