// Equivalence tests for the vectorized scan path: every predicate shape
// that qualifies for compilation must return exactly the same rows as a
// semantically identical predicate forced through the generic
// evaluator (by adding an arithmetic identity, which is outside the
// vectorizable subset and so declines compilation).

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/engine.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

class FastPathTest : public ::testing::Test {
 protected:
  FastPathTest()
      : table_("t", Schema::Make({{"i", DataType::kInt64, false},
                                  {"f", DataType::kFloat64, true},
                                  {"s", DataType::kString, false}})
                        .value()) {
    Rng rng(404);
    for (int n = 0; n < 500; ++n) {
      Value f = rng.NextBernoulli(0.1)
                    ? Value::Null()
                    : Value::Float64(rng.NextDouble(-50.0, 50.0));
      table_
          .Append({Value::Int64(rng.NextInt(-100, 100)), f,
                   Value::String("x")},
                  /*now=*/n * 10)
          .value();
      if (rng.NextBernoulli(0.2)) {
        FUNGUSDB_CHECK_OK(table_.SetFreshness(
            static_cast<RowId>(n), rng.NextDouble(0.05, 0.9)));
      }
    }
    // Some dead rows too.
    for (RowId r = 100; r < 120; ++r) FUNGUSDB_CHECK_OK(table_.Kill(r));
  }

  std::vector<int64_t> Rows(const std::string& where) {
    Query q = ParseQuery("SELECT i FROM t WHERE " + where).value();
    ResultSet rs = engine_.Execute(q, table_, 0).value();
    std::vector<int64_t> out;
    for (size_t r = 0; r < rs.num_rows(); ++r) {
      out.push_back(rs.at(r, 0).AsInt64());
    }
    return out;
  }

  void ExpectEquivalent(const std::string& fast_where,
                        const std::string& generic_where) {
    EXPECT_EQ(Rows(fast_where), Rows(generic_where))
        << fast_where << " vs " << generic_where;
  }

  Table table_;
  QueryEngine engine_;
};

TEST_F(FastPathTest, IntColumnComparisons) {
  // `(i + 0)` defeats compilation, forcing the generic path.
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    ExpectEquivalent(std::string("i ") + op + " 13",
                     std::string("(i + 0) ") + op + " 13");
  }
}

TEST_F(FastPathTest, FloatColumnWithNulls) {
  ExpectEquivalent("f > 10.5", "(f + 0.0) > 10.5");
  ExpectEquivalent("f <= 0.0", "(f + 0.0) <= 0.0");
  // Nulls are excluded on both paths.
  const auto rows = Rows("f >= -1000");
  EXPECT_LT(rows.size(), 480u);  // some nulls existed
}

TEST_F(FastPathTest, SystemColumns) {
  ExpectEquivalent("__ts >= 2500", "(__ts + 0) >= 2500");
  ExpectEquivalent("__freshness < 0.5", "(__freshness + 0.0) < 0.5");
}

TEST_F(FastPathTest, CrossTypeLiteral) {
  // int column vs float literal and vice versa.
  ExpectEquivalent("i < 12.5", "(i + 0) < 12.5");
  ExpectEquivalent("f > 10", "(f + 0.0) > 10");
}

TEST_F(FastPathTest, BooleanCombinationsVectorize) {
  // AND / OR / NOT trees stay on the vectorized path and must agree
  // with the walker row for row.
  ExpectEquivalent("i > 0 AND f > 0", "(i + 0) > 0 AND (f + 0.0) > 0");
  ExpectEquivalent("i > 50 OR f < -40", "(i + 0) > 50 OR (f + 0.0) < -40");
  ExpectEquivalent("NOT (i > 0)", "NOT ((i + 0) > 0)");
  ExpectEquivalent("NOT NOT (i = 13)", "NOT NOT ((i + 0) = 13)");
}

TEST_F(FastPathTest, NonCompilableShapesStillWork) {
  // These cannot compile (string column, column-vs-column comparison
  // with arithmetic) and must silently use the generic path.
  EXPECT_EQ(Rows("s = 'x'").size(), table_.live_rows());
  EXPECT_EQ(Rows("i < i + 1").size(), table_.live_rows());
  EXPECT_FALSE(Rows("i > 0 AND f > 0").empty());
}

TEST_F(FastPathTest, StatsCountScannedAndPrunedRows) {
  // `i` never leaves [-100, 100], so the zone map rules the whole
  // segment out: every live row is pruned, none scanned.
  Query q = ParseQuery("SELECT i FROM t WHERE i > 1000000").value();
  ResultSet rs = engine_.Execute(q, table_, 0).value();
  EXPECT_EQ(rs.num_rows(), 0u);
  EXPECT_EQ(rs.stats.rows_scanned + rs.stats.rows_pruned,
            table_.live_rows());
  EXPECT_EQ(rs.stats.rows_pruned, table_.live_rows());
  EXPECT_GT(rs.stats.segments_pruned, 0u);

  // An in-range predicate scans everything and prunes nothing (the
  // single segment's zone covers the probe value).
  Query q2 = ParseQuery("SELECT i FROM t WHERE i = 13").value();
  ResultSet rs2 = engine_.Execute(q2, table_, 0).value();
  EXPECT_EQ(rs2.stats.rows_scanned, table_.live_rows());
  EXPECT_EQ(rs2.stats.rows_pruned, 0u);
}

TEST_F(FastPathTest, PruningCanBeDisabled) {
  QueryEngineOptions opts;
  opts.enable_pruning = false;
  QueryEngine no_pruning(opts);
  Query q = ParseQuery("SELECT i FROM t WHERE i > 1000000").value();
  ResultSet rs = no_pruning.Execute(q, table_, 0).value();
  EXPECT_EQ(rs.num_rows(), 0u);
  EXPECT_EQ(rs.stats.rows_scanned, table_.live_rows());
  EXPECT_EQ(rs.stats.segments_pruned, 0u);
}

TEST_F(FastPathTest, ConsumingQueriesUseFastPathToo) {
  const uint64_t before = table_.live_rows();
  Query q = ParseQuery("CONSUME SELECT i FROM t WHERE i = 13").value();
  ResultSet rs = engine_.Execute(q, table_, 0).value();
  EXPECT_EQ(table_.live_rows() + rs.stats.rows_consumed, before);
  EXPECT_TRUE(Rows("i = 13").empty());
}

}  // namespace
}  // namespace fungusdb
