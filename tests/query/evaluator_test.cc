#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace fungusdb {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : table_("t", Schema::Make({{"id", DataType::kInt64, false},
                                  {"temp", DataType::kFloat64, true},
                                  {"name", DataType::kString, false},
                                  {"ok", DataType::kBool, false}})
                        .value()) {
    row_ = table_
               .Append({Value::Int64(10), Value::Float64(21.5),
                        Value::String("alpha"), Value::Bool(true)},
                       /*now=*/5000)
               .value();
    null_row_ = table_
                    .Append({Value::Int64(20), Value::Null(),
                             Value::String("beta"), Value::Bool(false)},
                            /*now=*/6000)
                    .value();
  }

  Value Eval(const std::string& text, RowId row) {
    ExprPtr expr = ParseExpression(text).value();
    BoundExpr bound = Bind(*expr, table_.schema()).value();
    return EvalScalar(bound, table_, row).value();
  }

  bool Pred(const std::string& text, RowId row) {
    ExprPtr expr = ParseExpression(text).value();
    BoundExpr bound = Bind(*expr, table_.schema()).value();
    return EvalPredicate(bound, table_, row).value();
  }

  Table table_;
  RowId row_;
  RowId null_row_;
};

TEST_F(EvaluatorTest, ColumnAccess) {
  EXPECT_EQ(Eval("id", row_).AsInt64(), 10);
  EXPECT_DOUBLE_EQ(Eval("temp", row_).AsFloat64(), 21.5);
  EXPECT_EQ(Eval("name", row_).AsString(), "alpha");
  EXPECT_TRUE(Eval("ok", row_).AsBool());
}

TEST_F(EvaluatorTest, SystemColumns) {
  EXPECT_EQ(Eval("__ts", row_).AsTimestamp(), 5000);
  EXPECT_DOUBLE_EQ(Eval("__freshness", row_).AsFloat64(), 1.0);
}

TEST_F(EvaluatorTest, Comparisons) {
  EXPECT_TRUE(Eval("id = 10", row_).AsBool());
  EXPECT_FALSE(Eval("id != 10", row_).AsBool());
  EXPECT_TRUE(Eval("temp > 21", row_).AsBool());
  EXPECT_TRUE(Eval("temp <= 21.5", row_).AsBool());
  EXPECT_TRUE(Eval("name = 'alpha'", row_).AsBool());
  EXPECT_TRUE(Eval("name < 'beta'", row_).AsBool());
}

TEST_F(EvaluatorTest, Arithmetic) {
  EXPECT_EQ(Eval("id + 5", row_).AsInt64(), 15);
  EXPECT_EQ(Eval("id - 15", row_).AsInt64(), -5);
  EXPECT_EQ(Eval("id * 3", row_).AsInt64(), 30);
  EXPECT_DOUBLE_EQ(Eval("id / 4", row_).AsFloat64(), 2.5);
  EXPECT_EQ(Eval("id % 3", row_).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(Eval("temp + 0.5", row_).AsFloat64(), 22.0);
  EXPECT_EQ(Eval("-id", row_).AsInt64(), -10);
}

TEST_F(EvaluatorTest, DivisionByZeroIsError) {
  ExprPtr expr = ParseExpression("id / 0").value();
  BoundExpr bound = Bind(*expr, table_.schema()).value();
  Result<Value> r = EvalScalar(bound, table_, row_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  ExprPtr mod = ParseExpression("id % 0").value();
  BoundExpr bmod = Bind(*mod, table_.schema()).value();
  EXPECT_FALSE(EvalScalar(bmod, table_, row_).ok());
}

TEST_F(EvaluatorTest, NullPropagationInComparisons) {
  EXPECT_TRUE(Eval("temp > 5", null_row_).is_null());
  EXPECT_TRUE(Eval("temp = NULL", null_row_).is_null());
  EXPECT_TRUE(Eval("temp + 1", null_row_).is_null());
}

TEST_F(EvaluatorTest, ThreeValuedLogic) {
  // null AND false = false; null AND true = null.
  EXPECT_FALSE(Eval("temp > 5 AND id = 999", null_row_).AsBool());
  EXPECT_TRUE(Eval("temp > 5 AND id = 20", null_row_).is_null());
  // null OR true = true; null OR false = null.
  EXPECT_TRUE(Eval("temp > 5 OR id = 20", null_row_).AsBool());
  EXPECT_TRUE(Eval("temp > 5 OR id = 999", null_row_).is_null());
  // NOT null = null.
  EXPECT_TRUE(Eval("NOT (temp > 5)", null_row_).is_null());
}

TEST_F(EvaluatorTest, IsNullOperators) {
  EXPECT_TRUE(Eval("temp IS NULL", null_row_).AsBool());
  EXPECT_FALSE(Eval("temp IS NULL", row_).AsBool());
  EXPECT_TRUE(Eval("temp IS NOT NULL", row_).AsBool());
}

TEST_F(EvaluatorTest, PredicateRejectsNullAsFalse) {
  // WHERE acceptance: null predicates exclude the row.
  EXPECT_FALSE(Pred("temp > 5", null_row_));
  EXPECT_TRUE(Pred("temp > 5", row_));
}

TEST_F(EvaluatorTest, ShortCircuitSkipsErrorArm) {
  // The right arm would divide by zero, but the left arm decides.
  EXPECT_FALSE(Pred("id = 999 AND id / 0 > 1", row_));
  EXPECT_TRUE(Pred("id = 10 OR id / 0 > 1", row_));
}

TEST_F(EvaluatorTest, BetweenWorksEndToEnd) {
  EXPECT_TRUE(Pred("temp BETWEEN 21 AND 22", row_));
  EXPECT_FALSE(Pred("temp BETWEEN 22 AND 30", row_));
  // BETWEEN is inclusive on both ends.
  EXPECT_TRUE(Pred("id BETWEEN 10 AND 10", row_));
}

TEST_F(EvaluatorTest, TimestampArithmetic) {
  EXPECT_EQ(Eval("__ts + 100", row_).AsInt64(), 5100);
  EXPECT_TRUE(Pred("__ts >= 5000", row_));
  EXPECT_FALSE(Pred("__ts >= 5001", row_));
}

TEST_F(EvaluatorTest, AggregateNodeIsScalarError) {
  BoundExpr bound =
      Bind(*Expr::Aggregate(AggFn::kCount, nullptr), table_.schema())
          .value();
  Result<Value> r = EvalScalar(bound, table_, row_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace fungusdb
