// Zone-map pruning in the query engine: segments whose zone maps cannot
// satisfy the WHERE conjuncts are skipped without touching a row, the
// skip is observable in ResultSet::Stats and the fungusdb.scan.*
// metrics, and — the soundness contract — the answer set is identical
// with pruning disabled.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

/// 10 segments of 32 rows. `v` tracks the row number, so both `__ts`
/// (= row * 5) and `v` partition cleanly across segment zones.
class PruningTest : public ::testing::Test {
 protected:
  static TableOptions Geometry() {
    TableOptions o;
    o.rows_per_segment = 32;
    return o;
  }

  PruningTest()
      : table_("t",
               Schema::Make({{"v", DataType::kInt64, false},
                             {"tag", DataType::kString, false}})
                   .value(),
               Geometry()) {
    for (int n = 0; n < 320; ++n) {
      table_
          .Append({Value::Int64(n), Value::String("r")}, /*now=*/n * 5)
          .value();
    }
    // Age the first three segments' freshness below 0.5, then recount
    // so the (eagerly widened, lazily tightened) freshness zones are
    // exact — the state a maintenance recount leaves behind.
    for (RowId r = 0; r < 96; ++r) {
      FUNGUSDB_CHECK_OK(table_.SetFreshness(r, 0.25));
    }
    table_.RecomputeZoneMaps();
  }

  ResultSet Run(QueryEngine& engine, const std::string& sql) {
    Query q = ParseQuery(sql).value();
    return engine.Execute(q, table_, /*now=*/0).value();
  }

  std::vector<int64_t> FirstColumn(const ResultSet& rs) {
    std::vector<int64_t> out;
    for (size_t r = 0; r < rs.num_rows(); ++r) {
      out.push_back(rs.at(r, 0).AsInt64());
    }
    return out;
  }

  /// Runs `sql` with pruning on and off; the rows must agree and the
  /// pruned run must skip at least `min_segments_pruned` segments.
  void ExpectPrunedButEquivalent(const std::string& sql,
                                 uint64_t min_segments_pruned) {
    QueryEngine pruned;
    QueryEngineOptions off;
    off.enable_pruning = false;
    QueryEngine unpruned(off);
    ResultSet with = Run(pruned, sql);
    ResultSet without = Run(unpruned, sql);
    EXPECT_EQ(FirstColumn(with), FirstColumn(without)) << sql;
    EXPECT_GE(with.stats.segments_pruned, min_segments_pruned) << sql;
    EXPECT_EQ(without.stats.segments_pruned, 0u) << sql;
    EXPECT_EQ(with.stats.rows_scanned + with.stats.rows_pruned,
              table_.live_rows())
        << sql;
  }

  Table table_;
};

TEST_F(PruningTest, TimeRangePredicatePrunesSegments) {
  // __ts in [500, 820): rows 100..163, segments 3..5 of 10 — at least
  // six segments out of ten cannot match.
  ExpectPrunedButEquivalent(
      "SELECT v FROM t WHERE __ts >= 500 AND __ts < 820", 6);
}

TEST_F(PruningTest, UserColumnRangePrunesSegments) {
  ExpectPrunedButEquivalent("SELECT v FROM t WHERE v >= 300", 9);
  ExpectPrunedButEquivalent("SELECT v FROM t WHERE v = 17", 9);
  // Strict bounds are widened to closed intervals for soundness, so
  // segment 1 (v in [32, 63]) survives `v < 32`: 8 pruned, not 9.
  ExpectPrunedButEquivalent("SELECT v FROM t WHERE v < 32 AND v > 5", 8);
}

TEST_F(PruningTest, FreshnessPredicatePrunesAgedSegments) {
  // Segments 0..2 hold only freshness-0.25 rows; 3..9 only 1.0.
  ExpectPrunedButEquivalent(
      "SELECT v FROM t WHERE __freshness > 0.5", 3);
  ExpectPrunedButEquivalent(
      "SELECT v FROM t WHERE __freshness < 0.5", 7);
  // Out-of-range threshold: nothing can match, everything is pruned.
  ExpectPrunedButEquivalent(
      "SELECT v FROM t WHERE __freshness < 0.0", 10);
}

TEST_F(PruningTest, NullComparisonIsAlwaysFalse) {
  // `v = null` can never be TRUE; the planner prunes every segment
  // without consulting a single zone bound.
  ExpectPrunedButEquivalent("SELECT v FROM t WHERE v = null", 10);
}

TEST_F(PruningTest, DisjunctionsDoNotPrune) {
  // Only the conjunctive spine contributes constraints; an OR at the
  // top makes per-segment ranges unusable and must scan everything
  // rather than prune unsoundly.
  QueryEngine engine;
  ResultSet rs = Run(engine, "SELECT v FROM t WHERE v < 10 OR v >= 310");
  EXPECT_EQ(rs.stats.segments_pruned, 0u);
  EXPECT_EQ(rs.num_rows(), 20u);
}

TEST_F(PruningTest, StringPredicatesDoNotPrune) {
  QueryEngine engine;
  ResultSet rs = Run(engine, "SELECT v FROM t WHERE tag = 'zzz'");
  EXPECT_EQ(rs.stats.segments_pruned, 0u);
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(PruningTest, PruningFeedsScanMetrics) {
  MetricsRegistry metrics;
  QueryEngineOptions opts;
  opts.metrics = &metrics;
  QueryEngine engine(opts);
  ResultSet rs = Run(engine, "SELECT v FROM t WHERE v >= 300");
  ASSERT_GT(rs.stats.segments_pruned, 0u);
  EXPECT_EQ(metrics.GetCounter("fungusdb.scan.segments_pruned"),
            static_cast<int64_t>(rs.stats.segments_pruned));
  EXPECT_EQ(metrics.GetCounter("fungusdb.scan.rows_pruned"),
            static_cast<int64_t>(rs.stats.rows_pruned));
}

TEST_F(PruningTest, MorselParallelScanPrunesIdentically) {
  ThreadPool pool(4);
  QueryEngineOptions par;
  par.pool = &pool;
  par.parallel_scan_min_segments = 2;
  QueryEngine parallel_engine(par);
  QueryEngine serial_engine;
  const std::string sql =
      "SELECT v FROM t WHERE __ts >= 500 AND __ts < 1200";
  ResultSet a = Run(parallel_engine, sql);
  ResultSet b = Run(serial_engine, sql);
  EXPECT_EQ(FirstColumn(a), FirstColumn(b));
  EXPECT_EQ(a.stats.segments_pruned, b.stats.segments_pruned);
  EXPECT_EQ(a.stats.rows_pruned, b.stats.rows_pruned);
}

TEST_F(PruningTest, DeadRowsAreNeitherScannedNorPruned) {
  for (RowId r = 96; r < 128; ++r) {
    FUNGUSDB_CHECK_OK(table_.Kill(r));  // segment 3 fully dead
  }
  QueryEngine engine;
  ResultSet rs = Run(engine, "SELECT v FROM t WHERE v >= 0");
  // LiveSegments drops the dead segment before pruning even looks.
  EXPECT_EQ(rs.stats.rows_scanned + rs.stats.rows_pruned,
            table_.live_rows());
}

}  // namespace
}  // namespace fungusdb
