#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "query/result_set.h"

namespace fungusdb {
namespace {

// Morsel-driven parallel scans must be invisible to the caller: the same
// query returns the same rows in the same order regardless of thread
// count, and consuming queries kill exactly the serial kill set.

Schema TwoColumnSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, false}})
      .value();
}

/// 512 rows over 32 segments — comfortably past the 8-segment parallel
/// cutoff — with a value pattern every predicate below can bite on.
std::unique_ptr<Database> MakeDatabase(size_t num_threads) {
  DatabaseOptions opts;
  opts.num_threads = num_threads;
  auto db = std::make_unique<Database>(opts);
  TableOptions t_opts;
  t_opts.rows_per_segment = 16;
  t_opts.num_shards = 4;
  EXPECT_TRUE(db->CreateTable("readings", TwoColumnSchema(), t_opts).ok());
  for (int64_t i = 0; i < 512; ++i) {
    EXPECT_TRUE(db->Insert("readings",
                           {Value::Int64(i),
                            Value::Float64(static_cast<double>(i % 97))})
                    .ok());
  }
  return db;
}

std::vector<std::vector<Value>> Rows(Database& db, const std::string& sql) {
  Result<ResultSet> rs = db.ExecuteSql(sql);
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  return rs.value().rows;
}

void ExpectSameRows(const std::vector<std::vector<Value>>& a,
                    const std::vector<std::vector<Value>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].size(), b[r].size());
    for (size_t c = 0; c < a[r].size(); ++c) {
      EXPECT_TRUE(a[r][c].Equals(b[r][c]))
          << "row " << r << " col " << c << ": " << a[r][c].ToString()
          << " vs " << b[r][c].ToString();
    }
  }
}

TEST(ParallelScanTest, SelectMatchesSerialResults) {
  std::unique_ptr<Database> serial = MakeDatabase(1);
  std::unique_ptr<Database> parallel = MakeDatabase(4);
  const std::string sql = "SELECT id FROM readings WHERE temp > 50";
  ExpectSameRows(Rows(*serial, sql), Rows(*parallel, sql));
  // The parallel engine actually fanned out.
  EXPECT_GT(parallel->metrics().GetCounter(
                "fungusdb.parallel.morsels_dispatched"),
            0);
  EXPECT_EQ(
      serial->metrics().GetCounter("fungusdb.parallel.morsels_dispatched"),
      0);
}

TEST(ParallelScanTest, FullScanPreservesInsertionOrder) {
  std::unique_ptr<Database> parallel = MakeDatabase(8);
  // `temp >= 0` matches every row and compiles to the fast predicate, so
  // this drives the morsel path over the whole table.
  std::vector<std::vector<Value>> rows =
      Rows(*parallel, "SELECT id FROM readings WHERE temp >= 0");
  ASSERT_EQ(rows.size(), 512u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(rows[i][0].Equals(Value::Int64(static_cast<int64_t>(i))));
  }
}

TEST(ParallelScanTest, ScanStatsMatchSerial) {
  std::unique_ptr<Database> serial = MakeDatabase(1);
  std::unique_ptr<Database> parallel = MakeDatabase(4);
  const std::string sql = "SELECT id FROM readings WHERE temp < 10";
  ResultSet rs_serial = serial->ExecuteSql(sql).value();
  ResultSet rs_parallel = parallel->ExecuteSql(sql).value();
  EXPECT_EQ(rs_parallel.stats.rows_scanned, rs_serial.stats.rows_scanned);
  EXPECT_EQ(rs_parallel.stats.rows_matched, rs_serial.stats.rows_matched);
}

TEST(ParallelScanTest, ConsumingQueryKillsSerialKillSet) {
  std::unique_ptr<Database> serial = MakeDatabase(1);
  std::unique_ptr<Database> parallel = MakeDatabase(4);
  const std::string sql =
      "CONSUME SELECT id FROM readings WHERE temp > 80";
  ExpectSameRows(Rows(*serial, sql), Rows(*parallel, sql));

  // Law 2 atomicity: R became A ∪ (R − σ_P(R)) identically in both.
  const Table* ts = &serial->GetTable("readings").value().table();
  const Table* tp = &parallel->GetTable("readings").value().table();
  ASSERT_EQ(tp->live_rows(), ts->live_rows());
  ts->ForEachLive([&](RowId row) { EXPECT_TRUE(tp->IsLive(row)); });

  // A second consuming pass over the survivors also agrees.
  const std::string again =
      "CONSUME SELECT id FROM readings WHERE temp > 60";
  ExpectSameRows(Rows(*serial, again), Rows(*parallel, again));
  EXPECT_EQ(tp->live_rows(), ts->live_rows());
}

TEST(ParallelScanTest, LimitAppliesAfterMerge) {
  std::unique_ptr<Database> serial = MakeDatabase(1);
  std::unique_ptr<Database> parallel = MakeDatabase(4);
  const std::string sql =
      "SELECT id FROM readings WHERE temp > 20 LIMIT 7";
  std::vector<std::vector<Value>> rs = Rows(*serial, sql);
  std::vector<std::vector<Value>> rp = Rows(*parallel, sql);
  ASSERT_EQ(rp.size(), 7u);
  ExpectSameRows(rs, rp);
}

TEST(ParallelScanTest, TinyTableStaysSerial) {
  DatabaseOptions opts;
  opts.num_threads = 4;
  Database db(opts);
  TableOptions t_opts;
  t_opts.rows_per_segment = 16;  // 2 segments < 8-segment cutoff
  EXPECT_TRUE(db.CreateTable("readings", TwoColumnSchema(), t_opts).ok());
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(db.Insert("readings",
                          {Value::Int64(i), Value::Float64(1.0)})
                    .ok());
  }
  std::vector<std::vector<Value>> rows =
      Rows(db, "SELECT id FROM readings");
  EXPECT_EQ(rows.size(), 32u);
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.parallel.morsels_dispatched"),
            0);
}

}  // namespace
}  // namespace fungusdb
