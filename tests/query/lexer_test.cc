#include "query/lexer.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(LexerTest, KeywordsNormalizedUpper) {
  auto tokens = Tokenize("select From WHERE").value();
  ASSERT_EQ(tokens.size(), 4u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersPreserveCase) {
  auto tokens = Tokenize("MyTable __ts _x1").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyTable");
  EXPECT_EQ(tokens[1].text, "__ts");
  EXPECT_EQ(tokens[2].text, "_x1");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Tokenize("42 3.14 1e3 2.5E-2 .5").value();
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[4].type, TokenType::kFloat);
}

TEST(LexerTest, StringLiteralsUnquoted) {
  auto tokens = Tokenize("'hello world'").value();
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(LexerTest, EscapedQuoteInString) {
  auto tokens = Tokenize("'it''s'").value();
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Tokenize("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto tokens = Tokenize("= != <> <= >= < > + - / % ( ) ,").value();
  EXPECT_TRUE(tokens[0].IsOperator("="));
  EXPECT_TRUE(tokens[1].IsOperator("!="));
  EXPECT_TRUE(tokens[2].IsOperator("!="));  // <> normalized
  EXPECT_TRUE(tokens[3].IsOperator("<="));
  EXPECT_TRUE(tokens[4].IsOperator(">="));
  EXPECT_TRUE(tokens[5].IsOperator("<"));
  EXPECT_TRUE(tokens[6].IsOperator(">"));
}

TEST(LexerTest, StarIsItsOwnToken) {
  auto tokens = Tokenize("count(*)").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_TRUE(tokens[1].IsOperator("("));
  EXPECT_EQ(tokens[2].type, TokenType::kStar);
  EXPECT_TRUE(tokens[3].IsOperator(")"));
}

TEST(LexerTest, UnexpectedCharacterFails) {
  Result<std::vector<Token>> r = Tokenize("a @ b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, MalformedExponentFails) {
  EXPECT_FALSE(Tokenize("1e+").ok());
}

TEST(LexerTest, OffsetsRecorded) {
  auto tokens = Tokenize("ab cd").value();
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("   ").value();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

}  // namespace
}  // namespace fungusdb
