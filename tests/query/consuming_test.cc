// Tests of the second natural law: "The extent of table R is replaced by
// each query Q into the union of the answer set of Q and the reduced
// extent of R."

#include <set>

#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

class ConsumingTest : public ::testing::Test {
 protected:
  ConsumingTest()
      : table_("events",
               Schema::Make({{"user", DataType::kInt64, false},
                             {"amount", DataType::kFloat64, false}})
                   .value()) {
    for (int i = 0; i < 20; ++i) {
      table_
          .Append({Value::Int64(i % 4), Value::Float64(i * 1.0)},
                  /*now=*/i)
          .value();
    }
  }

  ResultSet Run(const std::string& sql) {
    Query q = ParseQuery(sql).value();
    return engine_.Execute(q, table_, /*now=*/100).value();
  }

  Table table_;
  QueryEngine engine_;
};

TEST_F(ConsumingTest, ConsumedTuplesLeaveTheExtent) {
  const uint64_t before = table_.live_rows();
  ResultSet rs = Run("CONSUME SELECT * FROM events WHERE user = 0");
  EXPECT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.stats.rows_consumed, 5u);
  // Law 2 conservation: |R_before| = |R_after| + |A|.
  EXPECT_EQ(table_.live_rows() + rs.stats.rows_consumed, before);
}

TEST_F(ConsumingTest, RepeatedConsumingQueriesNeverReturnDuplicates) {
  std::multiset<double> seen;
  for (int round = 0; round < 5; ++round) {
    ResultSet rs = Run("CONSUME SELECT amount FROM events WHERE user = 1");
    for (size_t r = 0; r < rs.num_rows(); ++r) {
      const double amount = rs.at(r, 0).AsFloat64();
      EXPECT_EQ(seen.count(amount), 0u)
          << "tuple returned twice: " << amount;
      seen.insert(amount);
    }
  }
  EXPECT_EQ(seen.size(), 5u);  // exactly the user-1 tuples, once each
  // Further rounds return nothing: the predicate's extent is consumed.
  ResultSet rs = Run("CONSUME SELECT amount FROM events WHERE user = 1");
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST_F(ConsumingTest, ObservingQueriesDoNotConsume) {
  Run("SELECT * FROM events WHERE user = 2");
  ResultSet again = Run("SELECT * FROM events WHERE user = 2");
  EXPECT_EQ(again.num_rows(), 5u);
  EXPECT_EQ(table_.live_rows(), 20u);
}

TEST_F(ConsumingTest, LimitRestrictsAnswerButConsumesWholeSigma) {
  // Per the paper, ALL tuples satisfying P are discarded immediately;
  // LIMIT only truncates what is returned.
  ResultSet rs = Run("CONSUME SELECT * FROM events WHERE user = 3 LIMIT 2");
  EXPECT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.stats.rows_consumed, 5u);
  ResultSet after = Run("SELECT * FROM events WHERE user = 3");
  EXPECT_EQ(after.num_rows(), 0u);
}

TEST_F(ConsumingTest, ConsumingAggregateDistillsAndDiscards) {
  ResultSet rs = Run(
      "CONSUME SELECT count(*) AS n, sum(amount) AS total FROM events "
      "WHERE user = 0");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 5);
  // user 0 amounts: 0, 4, 8, 12, 16.
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsFloat64(), 40.0);
  EXPECT_EQ(table_.live_rows(), 15u);
}

TEST_F(ConsumingTest, ConsumeWithoutPredicateEmptiesTable) {
  ResultSet rs = Run("CONSUME SELECT * FROM events");
  EXPECT_EQ(rs.num_rows(), 20u);
  EXPECT_EQ(table_.live_rows(), 0u);
}

TEST_F(ConsumingTest, ConsumeObserverSeesConsumedRowsWithValues) {
  std::vector<double> observed;
  engine_.AddConsumeObserver(
      [&](Table& t, const std::vector<RowId>& rows, Timestamp now) {
        EXPECT_EQ(now, 100);
        for (RowId r : rows) {
          observed.push_back(t.GetValue(r, 1).value().AsFloat64());
        }
      });
  Run("CONSUME SELECT * FROM events WHERE user = 2");
  ASSERT_EQ(observed.size(), 5u);
  // user 2 amounts: 2, 6, 10, 14, 18.
  EXPECT_DOUBLE_EQ(observed[0], 2.0);
  EXPECT_DOUBLE_EQ(observed[4], 18.0);
}

TEST_F(ConsumingTest, EmptyMatchFiresNoObserver) {
  int calls = 0;
  engine_.AddConsumeObserver(
      [&](Table&, const std::vector<RowId>&, Timestamp) { ++calls; });
  Run("CONSUME SELECT * FROM events WHERE user = 99");
  EXPECT_EQ(calls, 0);
}

TEST_F(ConsumingTest, ConservationAcrossManyRounds) {
  uint64_t consumed_total = 0;
  const uint64_t appended = table_.total_appended();
  for (int user = 0; user < 4; ++user) {
    ResultSet rs = Run("CONSUME SELECT * FROM events WHERE user = " +
                       std::to_string(user));
    consumed_total += rs.stats.rows_consumed;
    EXPECT_EQ(table_.live_rows() + consumed_total, appended);
  }
  EXPECT_EQ(table_.live_rows(), 0u);
}

}  // namespace
}  // namespace fungusdb
