// Additional query-engine edge cases: aggregate/order interplay, limits
// on grouped output, consuming aggregates with grouping, and system
// columns inside aggregates.

#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

class EngineEdgeTest : public ::testing::Test {
 protected:
  EngineEdgeTest()
      : table_("sales",
               Schema::Make({{"region", DataType::kString, false},
                             {"amount", DataType::kFloat64, false}})
                   .value()) {
    const char* regions[] = {"east", "west", "north"};
    for (int i = 0; i < 12; ++i) {
      table_
          .Append({Value::String(regions[i % 3]),
                   Value::Float64((i + 1) * 10.0)},
                  /*now=*/i * kMinute)
          .value();
    }
  }

  ResultSet Run(const std::string& sql) {
    Query q = ParseQuery(sql).value();
    return engine_.Execute(q, table_, /*now=*/kDay).value();
  }

  Table table_;
  QueryEngine engine_;
};

TEST_F(EngineEdgeTest, OrderByAggregateOutputColumn) {
  ResultSet rs = Run(
      "SELECT region, sum(amount) AS total FROM sales "
      "GROUP BY region ORDER BY total DESC");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_GE(rs.at(0, 1).AsFloat64(), rs.at(1, 1).AsFloat64());
  EXPECT_GE(rs.at(1, 1).AsFloat64(), rs.at(2, 1).AsFloat64());
}

TEST_F(EngineEdgeTest, LimitAppliesAfterGroupingAndOrdering) {
  ResultSet rs = Run(
      "SELECT region, count(*) AS n FROM sales "
      "GROUP BY region ORDER BY region LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "east");
  EXPECT_EQ(rs.at(1, 0).AsString(), "north");
}

TEST_F(EngineEdgeTest, ConsumingGroupedAggregate) {
  ResultSet rs = Run(
      "CONSUME SELECT region, sum(amount) AS total FROM sales "
      "WHERE region = 'east' GROUP BY region");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.stats.rows_consumed, 4u);
  EXPECT_EQ(table_.live_rows(), 8u);
  // Re-running yields an empty grouped result, not a stale one.
  ResultSet again = Run(
      "SELECT region, sum(amount) AS total FROM sales "
      "WHERE region = 'east' GROUP BY region");
  EXPECT_EQ(again.num_rows(), 0u);
}

TEST_F(EngineEdgeTest, MinMaxOnStrings) {
  ResultSet rs =
      Run("SELECT min(region) AS lo, max(region) AS hi FROM sales");
  EXPECT_EQ(rs.at(0, 0).AsString(), "east");
  EXPECT_EQ(rs.at(0, 1).AsString(), "west");
}

TEST_F(EngineEdgeTest, AggregateOverSystemColumns) {
  ResultSet rs = Run(
      "SELECT min(__ts) AS first, max(__ts) AS last, "
      "avg(__freshness) AS f FROM sales");
  EXPECT_EQ(rs.at(0, 0).AsTimestamp(), 0);
  EXPECT_EQ(rs.at(0, 1).AsTimestamp(), 11 * kMinute);
  EXPECT_DOUBLE_EQ(rs.at(0, 2).AsFloat64(), 1.0);
}

TEST_F(EngineEdgeTest, GroupByMultipleColumns) {
  Table t("t", Schema::Make({{"a", DataType::kInt64, false},
                             {"b", DataType::kInt64, false}})
                   .value());
  for (int i = 0; i < 8; ++i) {
    t.Append({Value::Int64(i % 2), Value::Int64(i % 4 / 2)}, 0).value();
  }
  QueryEngine engine;
  Query q = ParseQuery("SELECT a, b, count(*) AS n FROM t "
                       "GROUP BY a, b ORDER BY a")
                .value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  EXPECT_EQ(rs.num_rows(), 4u);
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    EXPECT_EQ(rs.at(r, 2).AsInt64(), 2);
  }
}

TEST_F(EngineEdgeTest, GroupKeysWithNulls) {
  Table t("t", Schema::Make({{"k", DataType::kInt64, true},
                             {"v", DataType::kInt64, false}})
                   .value());
  t.Append({Value::Null(), Value::Int64(1)}, 0).value();
  t.Append({Value::Null(), Value::Int64(2)}, 0).value();
  t.Append({Value::Int64(5), Value::Int64(3)}, 0).value();
  QueryEngine engine;
  Query q =
      ParseQuery("SELECT k, count(*) AS n FROM t GROUP BY k").value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  ASSERT_EQ(rs.num_rows(), 2u);
  // Null keys group together.
  int null_rows = 0;
  for (size_t r = 0; r < rs.num_rows(); ++r) {
    if (rs.at(r, 0).is_null()) {
      ++null_rows;
      EXPECT_EQ(rs.at(r, 1).AsInt64(), 2);
    }
  }
  EXPECT_EQ(null_rows, 1);
}

TEST_F(EngineEdgeTest, LimitZeroYieldsNoRows) {
  ResultSet rs = Run("SELECT * FROM sales LIMIT 0");
  EXPECT_EQ(rs.num_rows(), 0u);
  EXPECT_EQ(rs.stats.rows_matched, 12u);
}

TEST_F(EngineEdgeTest, WhereOnConstantFalse) {
  ResultSet rs = Run("SELECT * FROM sales WHERE 1 = 2");
  EXPECT_EQ(rs.num_rows(), 0u);
  EXPECT_EQ(rs.stats.rows_scanned, 12u);
}

TEST_F(EngineEdgeTest, EmptyTableAggregates) {
  Table empty("e",
              Schema::Make({{"v", DataType::kFloat64, false}}).value());
  QueryEngine engine;
  Query q = ParseQuery(
                "SELECT count(*) AS n, sum(v) AS s, min(v) AS lo FROM e")
                .value();
  ResultSet rs = engine.Execute(q, empty, 0).value();
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 0);
  EXPECT_TRUE(rs.at(0, 1).is_null());
  EXPECT_TRUE(rs.at(0, 2).is_null());
}


TEST_F(EngineEdgeTest, DistinctCollapsesDuplicates) {
  ResultSet rs = Run("SELECT DISTINCT region FROM sales ORDER BY region");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "east");
  EXPECT_EQ(rs.at(2, 0).AsString(), "west");
}

TEST_F(EngineEdgeTest, DistinctKeepsFirstOccurrenceOrder) {
  ResultSet rs = Run("SELECT DISTINCT region FROM sales");
  ASSERT_EQ(rs.num_rows(), 3u);
  // Insertion order was east, west, north.
  EXPECT_EQ(rs.at(0, 0).AsString(), "east");
  EXPECT_EQ(rs.at(1, 0).AsString(), "west");
  EXPECT_EQ(rs.at(2, 0).AsString(), "north");
}

TEST_F(EngineEdgeTest, DistinctOnMultipleColumns) {
  ResultSet rs = Run(
      "SELECT DISTINCT region, amount > 60 AS big FROM sales");
  EXPECT_EQ(rs.num_rows(), 6u);  // 3 regions x {true,false}
}

TEST_F(EngineEdgeTest, DistinctWithLimitAppliesAfterDedup) {
  ResultSet rs =
      Run("SELECT DISTINCT region FROM sales ORDER BY region LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(1, 0).AsString(), "north");
}

TEST_F(EngineEdgeTest, DistinctTreatsNullsAsOneGroup) {
  Table t("t", Schema::Make({{"v", DataType::kInt64, true}}).value());
  t.Append({Value::Null()}, 0).value();
  t.Append({Value::Null()}, 0).value();
  t.Append({Value::Int64(1)}, 0).value();
  QueryEngine engine;
  Query q = ParseQuery("SELECT DISTINCT v FROM t").value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(EngineEdgeTest, DistinctRoundTripsThroughToString) {
  Query q = ParseQuery("SELECT DISTINCT region FROM sales").value();
  EXPECT_NE(q.ToString().find("DISTINCT"), std::string::npos);
  EXPECT_TRUE(ParseQuery(q.ToString()).ok());
}

}  // namespace
}  // namespace fungusdb
