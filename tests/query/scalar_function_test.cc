// Scalar builtins (abs/floor/ceil/round/length/lower/upper/time_bucket)
// and GROUP BY over aliased expressions — tumbling-window analytics.

#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/evaluator.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

class ScalarFunctionTest : public ::testing::Test {
 protected:
  ScalarFunctionTest()
      : table_("t", Schema::Make({{"i", DataType::kInt64, false},
                                  {"f", DataType::kFloat64, true},
                                  {"s", DataType::kString, false}})
                        .value()) {
    table_
        .Append({Value::Int64(-5), Value::Float64(2.7),
                 Value::String("MiXeD")},
                /*now=*/90 * kMinute)
        .value();
  }

  Value Eval(const std::string& expr_text) {
    ExprPtr expr = ParseExpression(expr_text).value();
    BoundExpr bound = Bind(*expr, table_.schema()).value();
    return EvalScalar(bound, table_, 0).value();
  }

  Table table_;
};

TEST_F(ScalarFunctionTest, Abs) {
  EXPECT_EQ(Eval("abs(i)").AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Eval("abs(0.0 - f)").AsFloat64(), 2.7);
  EXPECT_EQ(Eval("abs(-7)").AsInt64(), 7);
}

TEST_F(ScalarFunctionTest, FloorCeilRound) {
  EXPECT_DOUBLE_EQ(Eval("floor(f)").AsFloat64(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("ceil(f)").AsFloat64(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("round(f)").AsFloat64(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("round(2.4)").AsFloat64(), 2.0);
}

TEST_F(ScalarFunctionTest, StringFunctions) {
  EXPECT_EQ(Eval("length(s)").AsInt64(), 5);
  EXPECT_EQ(Eval("lower(s)").AsString(), "mixed");
  EXPECT_EQ(Eval("upper(s)").AsString(), "MIXED");
  EXPECT_EQ(Eval("length('')").AsInt64(), 0);
}

TEST_F(ScalarFunctionTest, TimeBucketTruncates) {
  // __ts is 90 minutes; hourly buckets start at 60 minutes.
  const std::string hour_us = std::to_string(kHour);
  EXPECT_EQ(Eval("time_bucket(__ts, " + hour_us + ")").AsTimestamp(),
            kHour);
  EXPECT_EQ(Eval("time_bucket(0, " + hour_us + ")").AsTimestamp(), 0);
}

TEST_F(ScalarFunctionTest, TimeBucketNegativeTimestampsFloor) {
  EXPECT_EQ(Eval("time_bucket(0 - 1, 100)").AsTimestamp(), -100);
  EXPECT_EQ(Eval("time_bucket(0 - 100, 100)").AsTimestamp(), -100);
  EXPECT_EQ(Eval("time_bucket(0 - 101, 100)").AsTimestamp(), -200);
}

TEST_F(ScalarFunctionTest, NullPropagates) {
  Table nulls("n",
              Schema::Make({{"f", DataType::kFloat64, true}}).value());
  nulls.Append({Value::Null()}, 0).value();
  ExprPtr expr = ParseExpression("floor(f)").value();
  BoundExpr bound = Bind(*expr, nulls.schema()).value();
  EXPECT_TRUE(EvalScalar(bound, nulls, 0).value().is_null());
}

TEST_F(ScalarFunctionTest, TypeErrorsCaughtAtBind) {
  auto bind = [&](const std::string& text) {
    return Bind(*ParseExpression(text).value(), table_.schema()).status();
  };
  EXPECT_EQ(bind("abs(s)").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(bind("length(i)").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(bind("lower(f)").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(bind("time_bucket(__ts, 1.5)").code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(bind("abs(i, f)").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bind("time_bucket(__ts)").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ScalarFunctionTest, ZeroWidthBucketIsRuntimeError) {
  ExprPtr expr = ParseExpression("time_bucket(__ts, 0)").value();
  BoundExpr bound = Bind(*expr, table_.schema()).value();
  EXPECT_FALSE(EvalScalar(bound, table_, 0).ok());
}

TEST_F(ScalarFunctionTest, UnknownFunctionStillFailsAtParse) {
  EXPECT_FALSE(ParseExpression("sqrt(f)").ok());
}

TEST(WindowedGroupByTest, TumblingWindowAggregation) {
  Table t("events",
          Schema::Make({{"v", DataType::kFloat64, false}}).value());
  // 3 events in hour 0, 2 in hour 1, 1 in hour 3.
  for (Timestamp ts : {5 * kMinute, 20 * kMinute, 59 * kMinute,
                       61 * kMinute, 100 * kMinute, 190 * kMinute}) {
    t.Append({Value::Float64(1.0)}, ts).value();
  }
  QueryEngine engine;
  Query q = ParseQuery("SELECT time_bucket(__ts, " +
                       std::to_string(kHour) +
                       ") AS w, count(*) AS n FROM events "
                       "GROUP BY w ORDER BY w")
                .value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.at(0, 0).AsTimestamp(), 0);
  EXPECT_EQ(rs.at(0, 1).AsInt64(), 3);
  EXPECT_EQ(rs.at(1, 0).AsTimestamp(), kHour);
  EXPECT_EQ(rs.at(1, 1).AsInt64(), 2);
  EXPECT_EQ(rs.at(2, 0).AsTimestamp(), 3 * kHour);
  EXPECT_EQ(rs.at(2, 1).AsInt64(), 1);
}

TEST(WindowedGroupByTest, AliasWinsOverColumnName) {
  // A select alias shadowing a real column: the alias expression is
  // what gets grouped on.
  Table t("t", Schema::Make({{"v", DataType::kInt64, false}}).value());
  for (int i = 0; i < 6; ++i) t.Append({Value::Int64(i)}, 0).value();
  QueryEngine engine;
  Query q = ParseQuery("SELECT v % 2 AS v, count(*) AS n FROM t "
                       "GROUP BY v ORDER BY v")
                .value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(0, 1).AsInt64(), 3);
  EXPECT_EQ(rs.at(1, 1).AsInt64(), 3);
}

TEST(WindowedGroupByTest, UngroupedExpressionStillRejected) {
  Table t("t", Schema::Make({{"v", DataType::kInt64, false}}).value());
  QueryEngine engine;
  Query q =
      ParseQuery("SELECT v % 2 AS m, count(*) FROM t GROUP BY v").value();
  EXPECT_EQ(engine.Execute(q, t, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WindowedGroupByTest, FunctionsInsideAggregates) {
  Table t("t", Schema::Make({{"v", DataType::kFloat64, false}}).value());
  t.Append({Value::Float64(-3.0)}, 0).value();
  t.Append({Value::Float64(4.0)}, 0).value();
  QueryEngine engine;
  Query q = ParseQuery("SELECT sum(abs(v)) AS s FROM t").value();
  ResultSet rs = engine.Execute(q, t, 0).value();
  EXPECT_DOUBLE_EQ(rs.at(0, 0).AsFloat64(), 7.0);
}

}  // namespace
}  // namespace fungusdb
