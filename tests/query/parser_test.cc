#include "query/parser.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(ParserTest, SelectStar) {
  Query q = ParseQuery("SELECT * FROM readings").value();
  EXPECT_FALSE(q.consuming);
  EXPECT_TRUE(q.items.empty());
  EXPECT_EQ(q.table_name, "readings");
  EXPECT_EQ(q.where, nullptr);
}

TEST(ParserTest, ConsumePrefixSetsFlag) {
  Query q = ParseQuery("CONSUME SELECT * FROM r WHERE x > 1").value();
  EXPECT_TRUE(q.consuming);
  ASSERT_NE(q.where, nullptr);
}

TEST(ParserTest, SelectListWithAliases) {
  Query q = ParseQuery("SELECT a, b + 1 AS b1 FROM t").value();
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_EQ(q.items[0].expr->column_name(), "a");
  EXPECT_TRUE(q.items[0].alias.empty());
  EXPECT_EQ(q.items[1].alias, "b1");
  EXPECT_EQ(q.items[1].expr->kind(), Expr::Kind::kBinary);
}

TEST(ParserTest, WherePrecedence) {
  // AND binds tighter than OR.
  Query q = ParseQuery("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
                .value();
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->binary_op(), BinaryOp::kOr);
  EXPECT_EQ(q.where->child(1)->binary_op(), BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  ExprPtr e = ParseExpression("1 + 2 * 3").value();
  EXPECT_EQ(e->binary_op(), BinaryOp::kAdd);
  EXPECT_EQ(e->child(1)->binary_op(), BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  ExprPtr e = ParseExpression("(1 + 2) * 3").value();
  EXPECT_EQ(e->binary_op(), BinaryOp::kMul);
  EXPECT_EQ(e->child(0)->binary_op(), BinaryOp::kAdd);
}

TEST(ParserTest, BetweenDesugarsToAnd) {
  ExprPtr e = ParseExpression("x BETWEEN 1 AND 5").value();
  EXPECT_EQ(e->binary_op(), BinaryOp::kAnd);
  EXPECT_EQ(e->child(0)->binary_op(), BinaryOp::kGe);
  EXPECT_EQ(e->child(1)->binary_op(), BinaryOp::kLe);
}

TEST(ParserTest, IsNullForms) {
  EXPECT_EQ(ParseExpression("x IS NULL").value()->unary_op(),
            UnaryOp::kIsNull);
  EXPECT_EQ(ParseExpression("x IS NOT NULL").value()->unary_op(),
            UnaryOp::kIsNotNull);
}

TEST(ParserTest, NotAndUnaryMinus) {
  ExprPtr e = ParseExpression("NOT a = 1").value();
  EXPECT_EQ(e->unary_op(), UnaryOp::kNot);
  ExprPtr neg = ParseExpression("-5").value();
  EXPECT_EQ(neg->unary_op(), UnaryOp::kNeg);
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(ParseExpression("42").value()->literal().AsInt64(), 42);
  EXPECT_DOUBLE_EQ(ParseExpression("2.5").value()->literal().AsFloat64(),
                   2.5);
  EXPECT_EQ(ParseExpression("'abc'").value()->literal().AsString(), "abc");
  EXPECT_TRUE(ParseExpression("TRUE").value()->literal().AsBool());
  EXPECT_FALSE(ParseExpression("false").value()->literal().AsBool());
  EXPECT_TRUE(ParseExpression("NULL").value()->literal().is_null());
}

TEST(ParserTest, AggregateCalls) {
  Query q = ParseQuery(
                "SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t")
                .value();
  ASSERT_EQ(q.items.size(), 5u);
  EXPECT_EQ(q.items[0].expr->agg_fn(), AggFn::kCount);
  EXPECT_TRUE(q.items[0].expr->agg_is_star());
  EXPECT_EQ(q.items[1].expr->agg_fn(), AggFn::kSum);
  EXPECT_FALSE(q.items[1].expr->agg_is_star());
  EXPECT_EQ(q.items[4].expr->agg_fn(), AggFn::kAvg);
}

TEST(ParserTest, StarOnlyValidForCount) {
  EXPECT_FALSE(ParseQuery("SELECT sum(*) FROM t").ok());
}

TEST(ParserTest, UnknownFunctionFails) {
  Result<Query> r = ParseQuery("SELECT median(x) FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, GroupBy) {
  Query q =
      ParseQuery("SELECT a, count(*) FROM t GROUP BY a").value();
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0], "a");
}

TEST(ParserTest, GroupByMultiple) {
  Query q = ParseQuery("SELECT a, b, count(*) FROM t GROUP BY a, b").value();
  ASSERT_EQ(q.group_by.size(), 2u);
}

TEST(ParserTest, OrderByDefaultsAscending) {
  Query q = ParseQuery("SELECT * FROM t ORDER BY x").value();
  ASSERT_TRUE(q.order_by.has_value());
  EXPECT_EQ(q.order_by->column, "x");
  EXPECT_FALSE(q.order_by->descending);
}

TEST(ParserTest, OrderByDesc) {
  Query q = ParseQuery("SELECT * FROM t ORDER BY x DESC").value();
  EXPECT_TRUE(q.order_by->descending);
}

TEST(ParserTest, Limit) {
  Query q = ParseQuery("SELECT * FROM t LIMIT 10").value();
  EXPECT_EQ(q.limit.value(), 10u);
}

TEST(ParserTest, FullClauseOrder) {
  Query q = ParseQuery(
                "CONSUME SELECT a, avg(v) AS m FROM t WHERE v > 0 "
                "GROUP BY a ORDER BY m DESC LIMIT 3")
                .value();
  EXPECT_TRUE(q.consuming);
  EXPECT_EQ(q.items.size(), 2u);
  EXPECT_NE(q.where, nullptr);
  EXPECT_EQ(q.group_by.size(), 1u);
  EXPECT_TRUE(q.order_by->descending);
  EXPECT_EQ(q.limit.value(), 3u);
}

TEST(ParserTest, SystemColumnsParseAsIdentifiers) {
  Query q =
      ParseQuery("SELECT __freshness FROM t WHERE __ts >= 100").value();
  EXPECT_EQ(q.items[0].expr->column_name(), "__freshness");
}

TEST(ParserTest, ErrorsCarryOffsets) {
  Result<Query> r = ParseQuery("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseQuery("SELECT * FROM t extra").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 3").ok());
}

TEST(ParserTest, MissingFromFails) {
  EXPECT_FALSE(ParseQuery("SELECT *").ok());
  EXPECT_FALSE(ParseQuery("SELECT a, b").ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* sql =
      "CONSUME SELECT a AS x FROM t WHERE (a > 1) GROUP BY a "
      "ORDER BY x ASC LIMIT 5";
  Query q1 = ParseQuery(sql).value();
  Query q2 = ParseQuery(q1.ToString()).value();
  EXPECT_EQ(q1.ToString(), q2.ToString());
}

TEST(SplitStatementsTest, SplitsOnSemicolons) {
  const auto statements =
      SplitStatements("SELECT a FROM t; SELECT b FROM u;SELECT c FROM v");
  ASSERT_EQ(statements.size(), 3u);
  EXPECT_EQ(statements[0], "SELECT a FROM t");
  EXPECT_EQ(statements[1], "SELECT b FROM u");
  EXPECT_EQ(statements[2], "SELECT c FROM v");
}

TEST(SplitStatementsTest, IgnoresSemicolonsInsideStringLiterals) {
  const auto statements =
      SplitStatements("SELECT a FROM t WHERE s = 'x;y'; SELECT 1");
  ASSERT_EQ(statements.size(), 2u);
  EXPECT_EQ(statements[0], "SELECT a FROM t WHERE s = 'x;y'");
}

TEST(SplitStatementsTest, DropsEmptyFragments) {
  EXPECT_TRUE(SplitStatements("").empty());
  EXPECT_TRUE(SplitStatements(" ;; ; ").empty());
  const auto statements = SplitStatements(";SELECT 1;");
  ASSERT_EQ(statements.size(), 1u);
  EXPECT_EQ(statements[0], "SELECT 1");
}

}  // namespace
}  // namespace fungusdb
