#include "query/classifier.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/parser.h"

namespace fungusdb {
namespace {

TEST(ClassifierTest, PlainSelectIsReadOnly) {
  EXPECT_EQ(ClassifyStatement("SELECT * FROM t"), StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement("  SELECT a, b FROM t WHERE a > 1  "),
            StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement(
                "SELECT sensor, count(*) AS n FROM t GROUP BY sensor "
                "ORDER BY sensor LIMIT 3"),
            StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement(
                "SELECT a FROM t WHERE __freshness < 0.5"),
            StatementKind::kReadOnly);
}

TEST(ClassifierTest, ConsumingFormsAreMutating) {
  // The second natural law: a consuming query removes every answered
  // tuple from R — that is a write however it is spelled.
  EXPECT_EQ(ClassifyStatement("CONSUME SELECT * FROM t"),
            StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement("  consume select a from t where a = 1"),
            StatementKind::kMutating);
}

TEST(ClassifierTest, NonSelectSqlTextIsMutating) {
  // None of these parse as a plain SELECT; whether the dialect supports
  // them or not, they belong to the writer (which owns error text).
  for (const char* text : {
           "INSERT INTO t VALUES (1)",
           "CREATE TABLE t (a int64)",
           "DROP TABLE t",
           "SELECT a FROM t INTO u",
           "DELETE FROM t",
           "UPDATE t SET a = 1",
       }) {
    EXPECT_EQ(ClassifyStatement(text), StatementKind::kMutating) << text;
  }
}

TEST(ClassifierTest, MalformedAndEmptyStatementsAreMutating) {
  EXPECT_EQ(ClassifyStatement(""), StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement("   "), StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement("SELEC * FORM t"), StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement("SELECT FROM"), StatementKind::kMutating);
}

TEST(ClassifierTest, ReadOnlyMetaCommands) {
  for (const char* meta : {"\\health", "\\now", "\\metrics", "\\tables",
                           "\\rot", "\\fsck", "\\trace"}) {
    EXPECT_TRUE(IsReadOnlyMetaCommand(meta)) << meta;
    EXPECT_EQ(ClassifyStatement(meta), StatementKind::kReadOnly) << meta;
  }
  // Arguments don't change the classification of the command token.
  EXPECT_EQ(ClassifyStatement("\\metrics prom"), StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement("\\rot t"), StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement("\\trace dump"), StatementKind::kReadOnly);
}

TEST(ClassifierTest, MutatingAndUnknownMetaCommands) {
  for (const char* meta :
       {"\\advance 1h", "\\create t (a int64)", "\\insert t 1",
        "\\attach retention t 1h 2d", "\\slowlog 100", "\\cellar",
        "\\nosuchcommand"}) {
    EXPECT_EQ(ClassifyStatement(meta), StatementKind::kMutating) << meta;
  }
  EXPECT_FALSE(IsReadOnlyMetaCommand("\\advance"));
  EXPECT_FALSE(IsReadOnlyMetaCommand("\\slowlog"));
}

TEST(ClassifierTest, TrackAccessTablesRouteToTheWriter) {
  ClassifyContext context;
  context.table_tracks_access = [](std::string_view table) {
    return table == "hot";
  };
  // Access-counter bumps feed ImportanceFungus; a SELECT over a
  // track_access table mutates those counters, so it is not read-only.
  EXPECT_EQ(ClassifyStatement("SELECT * FROM hot", context),
            StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement("SELECT * FROM cold", context),
            StatementKind::kReadOnly);
  // Without a context every SELECT is read-only.
  EXPECT_EQ(ClassifyStatement("SELECT * FROM hot"),
            StatementKind::kReadOnly);
}

TEST(ClassifierTest, ClassifyQueryMatchesStatementClassification) {
  const Query select = ParseQuery("SELECT a FROM t WHERE a < 3").value();
  EXPECT_EQ(ClassifyQuery(select), StatementKind::kReadOnly);
  const Query consume = ParseQuery("CONSUME SELECT a FROM t").value();
  EXPECT_EQ(ClassifyQuery(consume), StatementKind::kMutating);
}

TEST(ClassifierTest, BatchSplitsClassifyPerStatement) {
  // The server classifies each statement of a batch script; one
  // mutating statement sends the whole batch to the writer.
  const std::vector<std::string_view> statements = SplitStatements(
      "SELECT a FROM t; \\advance 1s; SELECT count(*) AS n FROM t");
  ASSERT_EQ(statements.size(), 3u);
  EXPECT_EQ(ClassifyStatement(statements[0]), StatementKind::kReadOnly);
  EXPECT_EQ(ClassifyStatement(statements[1]), StatementKind::kMutating);
  EXPECT_EQ(ClassifyStatement(statements[2]), StatementKind::kReadOnly);
}

}  // namespace
}  // namespace fungusdb
