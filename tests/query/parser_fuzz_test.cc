// Robustness fuzzing: the lexer/parser/binder must never crash or hang
// on arbitrary input — every malformed statement comes back as a
// Status. Inputs are generated from a seeded pool of plausible token
// fragments (the interesting failure surface) plus raw random bytes.

#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/binder.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

const char* kFragments[] = {
    "SELECT", "CONSUME", "FROM",   "WHERE",  "GROUP",  "BY",
    "ORDER",  "LIMIT",   "AND",    "OR",     "NOT",    "BETWEEN",
    "IS",     "NULL",    "AS",     "count",  "sum",    "avg",
    "fsum",   "time_bucket",       "(",      ")",      ",",
    "*",      "+",       "-",      "/",      "%",      "=",
    "!=",     "<",       "<=",     ">",      ">=",     "<>",
    "1",      "3.14",    "1e9",    "'str'",  "''",     "'it''s'",
    "t",      "__ts",    "__freshness",      "col",    "x1",
};

std::string RandomSoup(Rng& rng, uint64_t max_parts) {
  std::string out;
  const uint64_t parts = 1 + rng.NextBounded(max_parts);
  for (uint64_t i = 0; i < parts; ++i) {
    out += kFragments[rng.NextBounded(std::size(kFragments))];
    out += ' ';
  }
  return out;
}

std::string RandomStatement(Rng& rng) {
  // Half the inputs are pure soup; half are anchored in a SELECT
  // skeleton so a useful fraction parses and exercises the round-trip
  // and binder paths.
  if (rng.NextBernoulli(0.5)) return RandomSoup(rng, 20);
  std::string out;
  if (rng.NextBernoulli(0.3)) out += "CONSUME ";
  out += "SELECT " + RandomSoup(rng, 5) + " FROM t ";
  if (rng.NextBernoulli(0.5)) out += "WHERE " + RandomSoup(rng, 6);
  return out;
}

std::string RandomBytes(Rng& rng) {
  std::string out;
  const uint64_t len = rng.NextBounded(64);
  for (uint64_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, FragmentSoupNeverCrashes) {
  Rng rng(GetParam());
  Schema schema = Schema::Make({{"col", DataType::kInt64, false},
                                {"x1", DataType::kFloat64, true},
                                {"t", DataType::kString, false}})
                      .value();
  int parsed_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string sql = RandomStatement(rng);
    Result<Query> query = ParseQuery(sql);
    if (!query.ok()) continue;
    ++parsed_ok;
    // Whatever parses must also bind without crashing.
    if (query->where != nullptr) {
      (void)Bind(*query->where, schema);
    }
    for (const SelectItem& item : query->items) {
      (void)Bind(*item.expr, schema);
    }
    // And re-parse its own rendering (printer/parser agreement).
    Result<Query> reparsed = ParseQuery(query->ToString());
    EXPECT_TRUE(reparsed.ok()) << query->ToString();
  }
  // The soup forms some valid statements on every seed; if it never
  // did, the round-trip half of this test would be vacuous.
  EXPECT_GT(parsed_ok, 0);
}

TEST_P(ParserFuzzTest, RawBytesNeverCrash) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseQuery(RandomBytes(rng));
    (void)ParseExpression(RandomBytes(rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace fungusdb
