// Differential tests for the vectorized predicate kernel: for every
// compilable predicate shape — including randomized trees — the
// selection vector VectorPredicate::Match produces must equal the
// offsets the row-at-a-time tree walker (EvalPredicate) accepts,
// across NULL cells, NaN cells and literals, int64<->double coercion,
// dead rows and empty segments.

#include "query/vector_eval.h"

#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/binder.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

class VectorEvalTest : public ::testing::Test {
 protected:
  static TableOptions SmallSegments() {
    TableOptions o;
    o.rows_per_segment = 128;  // several segments, one partial
    return o;
  }

  VectorEvalTest()
      : table_("t",
               Schema::Make({{"a", DataType::kInt64, true},
                             {"b", DataType::kFloat64, true},
                             {"w", DataType::kTimestamp, false}})
                   .value(),
               SmallSegments()) {
    Rng rng(1234);
    for (int n = 0; n < 700; ++n) {
      Value a = rng.NextBernoulli(0.15)
                    ? Value::Null()
                    : Value::Int64(rng.NextInt(-20, 20));
      Value b;
      if (rng.NextBernoulli(0.15)) {
        b = Value::Null();
      } else if (rng.NextBernoulli(0.05)) {
        b = Value::Float64(std::nan(""));
      } else {
        b = Value::Float64(rng.NextDouble(-5.0, 5.0));
      }
      table_
          .Append({a, b, Value::TimestampVal(n * 7)}, /*now=*/n * 7)
          .value();
      if (rng.NextBernoulli(0.3)) {
        FUNGUSDB_CHECK_OK(table_.SetFreshness(
            static_cast<RowId>(n), rng.NextDouble(0.05, 0.95)));
      }
    }
    Rng killer(99);
    for (RowId r = 0; r < 700; ++r) {
      if (killer.NextBernoulli(0.2)) FUNGUSDB_CHECK_OK(table_.Kill(r));
    }
    // One fully dead segment: both paths must produce nothing for it.
    for (RowId r = 256; r < 384; ++r) {
      if (table_.IsLive(r)) FUNGUSDB_CHECK_OK(table_.Kill(r));
    }
  }

  BoundExpr BindExpr(const std::string& text) {
    ExprPtr expr = ParseExpression(text).value();
    return Bind(*expr, table_.schema()).value();
  }

  /// Compiles `bound` (must succeed) and checks, segment by segment,
  /// that Match agrees with the walker's accept set exactly.
  void ExpectAgree(const BoundExpr& bound, const std::string& what) {
    std::optional<VectorPredicate> pred = VectorPredicate::Compile(bound);
    ASSERT_TRUE(pred.has_value()) << "did not compile: " << what;
    VectorPredicate::Scratch scratch;
    for (const auto& [seg_no, seg] : table_.segment_index()) {
      std::vector<uint32_t> got;
      pred->Match(*seg, scratch, got);
      std::vector<uint32_t> want;
      for (size_t off = 0; off < seg->num_rows(); ++off) {
        if (!seg->IsLive(off)) continue;
        const RowId row = seg->first_row() + off;
        if (EvalPredicate(bound, table_, row).value()) {
          want.push_back(static_cast<uint32_t>(off));
        }
      }
      EXPECT_EQ(got, want) << what << " on segment " << seg_no;
    }
  }

  void ExpectAgree(const std::string& where) {
    ExpectAgree(BindExpr(where), where);
  }

  Table table_;
};

TEST_F(VectorEvalTest, ComparisonsAllOpsAllColumns) {
  for (const char* col : {"a", "b", "__ts", "__freshness"}) {
    for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
      const std::string lit =
          std::string(col) == "__ts" ? "2450" : "0.5";
      ExpectAgree(std::string(col) + " " + op + " " + lit);
    }
  }
}

TEST_F(VectorEvalTest, Int64DoubleCoercion) {
  // Int column against fractional literal and float column against an
  // integer literal: both compare in double space, like the walker.
  ExpectAgree("a < 12.5");
  ExpectAgree("a >= -0.5");
  ExpectAgree("b > 2");
  ExpectAgree("b = 0");
}

TEST_F(VectorEvalTest, IsNullAndIsNotNull) {
  ExpectAgree("a IS NULL");
  ExpectAgree("a IS NOT NULL");
  ExpectAgree("b IS NULL AND a > 0");
  ExpectAgree("b IS NOT NULL OR a IS NULL");
}

TEST_F(VectorEvalTest, NullLiteralComparisonsAreNeverTrue) {
  // A NULL comparand makes every comparison UNKNOWN; no row matches,
  // and NOT(UNKNOWN) stays UNKNOWN, so the negation matches none too.
  BoundExpr bound = BindExpr("a = 0");
  bound.children[1].literal = Value::Null();
  ExpectAgree(bound, "a = NULL");

  BoundExpr neg = BindExpr("NOT (a = 0)");
  neg.children[0].children[1].literal = Value::Null();
  ExpectAgree(neg, "NOT (a = NULL)");
}

TEST_F(VectorEvalTest, NaNLiteralMatchesValueCompareTrichotomy) {
  // Under Value::Compare a NaN is neither < nor >, so cmp == 0: NaN
  // "equals" everything. =, <=, >= accept every non-null cell; !=, <, >
  // accept none. The kernel must agree with the walker on all six.
  for (const char* op : {"=", "!=", "<", "<=", ">", ">="}) {
    BoundExpr bound = BindExpr(std::string("b ") + op + " 0.0");
    bound.children[1].literal = Value::Float64(std::nan(""));
    ExpectAgree(bound, std::string("b ") + op + " NaN");
    BoundExpr vs_int = BindExpr(std::string("a ") + op + " 0.0");
    vs_int.children[1].literal = Value::Float64(std::nan(""));
    ExpectAgree(vs_int, std::string("a ") + op + " NaN");
  }
}

TEST_F(VectorEvalTest, BooleanAndConstantShapes) {
  ExpectAgree("true");
  ExpectAgree("false");
  ExpectAgree("a > 0 AND true");
  ExpectAgree("a > 0 OR false");
  ExpectAgree("NOT (a > 0 AND b < 0)");
  ExpectAgree("NOT NOT (a = 13)");
  ExpectAgree("w >= 2100 AND w < 4200");
}

TEST_F(VectorEvalTest, RandomizedPredicateTrees) {
  Rng rng(20260807);
  const char* kCols[] = {"a", "b", "w", "__ts", "__freshness"};
  const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
  // Random comparison with a literal drawn near the column's range so
  // selectivities vary instead of collapsing to all/nothing.
  auto leaf = [&]() -> std::string {
    const std::string col = kCols[rng.NextBounded(5)];
    const std::string op = kOps[rng.NextBounded(6)];
    std::string lit;
    if (col == "w" || col == "__ts") {
      lit = std::to_string(rng.NextInt(0, 4900));
    } else if (col == "__freshness") {
      lit = std::to_string(rng.NextDouble(0.0, 1.0));
    } else if (rng.NextBernoulli(0.5)) {
      lit = std::to_string(rng.NextInt(-22, 22));
    } else {
      lit = std::to_string(rng.NextDouble(-6.0, 6.0));
    }
    if (rng.NextBernoulli(0.15)) return col + " IS NULL";
    if (rng.NextBernoulli(0.15)) return col + " IS NOT NULL";
    return col + " " + op + " " + lit;
  };
  std::function<std::string(int)> tree = [&](int depth) -> std::string {
    if (depth == 0 || rng.NextBernoulli(0.4)) return leaf();
    if (rng.NextBernoulli(0.2)) {
      return "NOT (" + tree(depth - 1) + ")";
    }
    const char* conn = rng.NextBernoulli(0.5) ? " AND " : " OR ";
    return "(" + tree(depth - 1) + conn + tree(depth - 1) + ")";
  };
  for (int i = 0; i < 200; ++i) {
    const std::string where = tree(3);
    SCOPED_TRACE(where);
    ExpectAgree(where);
  }
}

TEST_F(VectorEvalTest, EmptySegmentMatchesNothing) {
  Schema schema = Schema::Make({{"x", DataType::kInt64, false}}).value();
  Segment seg(schema, /*first_row=*/0, /*capacity=*/16,
              /*track_access=*/false);
  Table probe("p", schema);
  ExprPtr expr = ParseExpression("x > 0").value();
  BoundExpr bound = Bind(*expr, schema).value();
  std::optional<VectorPredicate> pred = VectorPredicate::Compile(bound);
  ASSERT_TRUE(pred.has_value());
  VectorPredicate::Scratch scratch;
  std::vector<uint32_t> out;
  pred->Match(seg, scratch, out);
  EXPECT_TRUE(out.empty());
}

TEST_F(VectorEvalTest, NonVectorizableShapesDeclineCompilation) {
  // Arithmetic, string comparisons and scalar functions stay on the
  // tree walker.
  EXPECT_FALSE(VectorPredicate::Compile(BindExpr("a + 1 > 2")).has_value());
  EXPECT_FALSE(VectorPredicate::Compile(BindExpr("a > b + 0.0")).has_value());
  EXPECT_FALSE(
      VectorPredicate::Compile(BindExpr("abs(a) > 2")).has_value());
  // Column-vs-column comparison IS vectorizable (both are operands).
  EXPECT_TRUE(VectorPredicate::Compile(BindExpr("a > b")).has_value());
  ExpectAgree("a > b");
}

}  // namespace
}  // namespace fungusdb
