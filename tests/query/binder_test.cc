#include "query/binder.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace fungusdb {
namespace {

Schema TestSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, true},
                       {"name", DataType::kString, false},
                       {"ok", DataType::kBool, false}})
      .value();
}

Result<BoundExpr> BindSql(const std::string& text) {
  auto expr = ParseExpression(text);
  if (!expr.ok()) return expr.status();
  return Bind(**expr, TestSchema());
}

TEST(BinderTest, ResolvesUserColumns) {
  BoundExpr b = BindSql("temp").value();
  EXPECT_EQ(b.col_source, ColumnSource::kUser);
  EXPECT_EQ(b.col_index, 1u);
  EXPECT_EQ(b.result_type, DataType::kFloat64);
}

TEST(BinderTest, ResolvesSystemColumns) {
  BoundExpr ts = BindSql("__ts").value();
  EXPECT_EQ(ts.col_source, ColumnSource::kTimestamp);
  EXPECT_EQ(ts.result_type, DataType::kTimestamp);
  BoundExpr f = BindSql("__freshness").value();
  EXPECT_EQ(f.col_source, ColumnSource::kFreshness);
  EXPECT_EQ(f.result_type, DataType::kFloat64);
}

TEST(BinderTest, UnknownColumnFails) {
  EXPECT_EQ(BindSql("nope").status().code(), StatusCode::kNotFound);
}

TEST(BinderTest, ComparisonTypesToBool) {
  BoundExpr b = BindSql("id >= 10").value();
  EXPECT_EQ(b.result_type, DataType::kBool);
}

TEST(BinderTest, NumericCrossComparisonAllowed) {
  EXPECT_TRUE(BindSql("temp > id").ok());
  EXPECT_TRUE(BindSql("__ts > 100").ok());
}

TEST(BinderTest, IncomparableTypesRejected) {
  EXPECT_EQ(BindSql("name > id").status().code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(BindSql("ok = 'x'").status().code(), StatusCode::kTypeMismatch);
}

TEST(BinderTest, NullComparableWithAnything) {
  EXPECT_TRUE(BindSql("name = NULL").ok());
  EXPECT_TRUE(BindSql("id = NULL").ok());
}

TEST(BinderTest, LogicalOpsRequireBool) {
  EXPECT_TRUE(BindSql("ok AND id > 1").ok());
  EXPECT_EQ(BindSql("id AND ok").status().code(),
            StatusCode::kTypeMismatch);
}

TEST(BinderTest, ArithmeticTyping) {
  EXPECT_EQ(BindSql("id + 1").value().result_type, DataType::kInt64);
  EXPECT_EQ(BindSql("id + 1.5").value().result_type, DataType::kFloat64);
  EXPECT_EQ(BindSql("temp * 2").value().result_type, DataType::kFloat64);
  // Division always yields float64.
  EXPECT_EQ(BindSql("id / 2").value().result_type, DataType::kFloat64);
  EXPECT_EQ(BindSql("id % 3").value().result_type, DataType::kInt64);
}

TEST(BinderTest, ArithmeticRejectsNonNumeric) {
  EXPECT_EQ(BindSql("name + 1").status().code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(BindSql("ok * 2").status().code(), StatusCode::kTypeMismatch);
}

TEST(BinderTest, ModRequiresIntegers) {
  EXPECT_EQ(BindSql("temp % 2").status().code(),
            StatusCode::kTypeMismatch);
}

TEST(BinderTest, NotRequiresBool) {
  EXPECT_TRUE(BindSql("NOT ok").ok());
  EXPECT_EQ(BindSql("NOT id").status().code(), StatusCode::kTypeMismatch);
}

TEST(BinderTest, NegRequiresNumeric) {
  EXPECT_EQ(BindSql("-id").value().result_type, DataType::kInt64);
  EXPECT_EQ(BindSql("-temp").value().result_type, DataType::kFloat64);
  EXPECT_FALSE(BindSql("-name").ok());
}

TEST(BinderTest, IsNullAlwaysBool) {
  EXPECT_EQ(BindSql("temp IS NULL").value().result_type, DataType::kBool);
  EXPECT_EQ(BindSql("name IS NOT NULL").value().result_type,
            DataType::kBool);
}

TEST(BinderTest, AggregateTyping) {
  Schema schema = TestSchema();
  EXPECT_EQ(Bind(*Expr::Aggregate(AggFn::kCount, nullptr), schema)
                .value()
                .result_type,
            DataType::kInt64);
  EXPECT_EQ(Bind(*Expr::Aggregate(AggFn::kSum, Col("id")), schema)
                .value()
                .result_type,
            DataType::kInt64);
  EXPECT_EQ(Bind(*Expr::Aggregate(AggFn::kSum, Col("temp")), schema)
                .value()
                .result_type,
            DataType::kFloat64);
  EXPECT_EQ(Bind(*Expr::Aggregate(AggFn::kAvg, Col("id")), schema)
                .value()
                .result_type,
            DataType::kFloat64);
  EXPECT_EQ(Bind(*Expr::Aggregate(AggFn::kMin, Col("name")), schema)
                .value()
                .result_type,
            DataType::kString);
}

TEST(BinderTest, SumRequiresNumeric) {
  EXPECT_FALSE(
      Bind(*Expr::Aggregate(AggFn::kSum, Col("name")), TestSchema()).ok());
}

TEST(BinderTest, NestedAggregatesRejected) {
  ExprPtr nested = Expr::Aggregate(
      AggFn::kSum, Expr::Aggregate(AggFn::kCount, nullptr));
  EXPECT_EQ(Bind(*nested, TestSchema()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BinderTest, UntypedNullLiteral) {
  BoundExpr b = BindSql("NULL").value();
  EXPECT_FALSE(b.result_type.has_value());
}

}  // namespace
}  // namespace fungusdb
