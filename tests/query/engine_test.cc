#include "query/engine.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace fungusdb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : table_("readings",
               Schema::Make({{"sensor", DataType::kInt64, false},
                             {"temp", DataType::kFloat64, true},
                             {"status", DataType::kString, false}})
                   .value()) {
    // 10 rows: sensors 0/1 alternating, temps 10..19, one null temp.
    for (int i = 0; i < 10; ++i) {
      Value temp = i == 7 ? Value::Null() : Value::Float64(10.0 + i);
      table_
          .Append({Value::Int64(i % 2), temp,
                   Value::String(i % 3 == 0 ? "FAULT" : "OK")},
                  /*now=*/i * 100)
          .value();
    }
  }

  ResultSet Run(const std::string& sql) {
    Query q = ParseQuery(sql).value();
    return engine_.Execute(q, table_, /*now=*/10000).value();
  }

  Table table_;
  QueryEngine engine_;
};

TEST_F(EngineTest, SelectStarReturnsAllColumnsAndRows) {
  ResultSet rs = Run("SELECT * FROM readings");
  EXPECT_EQ(rs.num_columns(), 3u);
  EXPECT_EQ(rs.num_rows(), 10u);
  EXPECT_EQ(rs.column_names[0], "sensor");
  EXPECT_EQ(rs.stats.rows_scanned, 10u);
  EXPECT_EQ(rs.stats.rows_matched, 10u);
  EXPECT_EQ(rs.stats.rows_consumed, 0u);
}

TEST_F(EngineTest, WhereFilters) {
  ResultSet rs = Run("SELECT * FROM readings WHERE sensor = 0");
  EXPECT_EQ(rs.num_rows(), 5u);
}

TEST_F(EngineTest, NullPredicateExcludesRow) {
  ResultSet rs = Run("SELECT * FROM readings WHERE temp > 0");
  EXPECT_EQ(rs.num_rows(), 9u);  // the null-temp row is excluded
}

TEST_F(EngineTest, ProjectionWithExpressionsAndAliases) {
  ResultSet rs =
      Run("SELECT sensor, temp * 2 AS t2 FROM readings WHERE temp = 10");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.column_names[1], "t2");
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsFloat64(), 20.0);
}

TEST_F(EngineTest, SystemColumnsInSelectList) {
  ResultSet rs =
      Run("SELECT __ts, __freshness FROM readings WHERE sensor = 1 "
          "ORDER BY __ts ASC LIMIT 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsTimestamp(), 100);
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsFloat64(), 1.0);
}

TEST_F(EngineTest, GlobalAggregates) {
  ResultSet rs = Run(
      "SELECT count(*) AS n, count(temp) AS nt, sum(temp) AS s, "
      "min(temp) AS lo, max(temp) AS hi, avg(sensor) AS a FROM readings");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 10);
  EXPECT_EQ(rs.at(0, 1).AsInt64(), 9);  // one null excluded
  // Sum of 10..19 except 17 = 145 - 17 = 128.
  EXPECT_DOUBLE_EQ(rs.at(0, 2).AsFloat64(), 128.0);
  EXPECT_DOUBLE_EQ(rs.at(0, 3).AsFloat64(), 10.0);
  EXPECT_DOUBLE_EQ(rs.at(0, 4).AsFloat64(), 19.0);
  EXPECT_DOUBLE_EQ(rs.at(0, 5).AsFloat64(), 0.5);
}

TEST_F(EngineTest, AggregateOverEmptyMatchYieldsOneRow) {
  ResultSet rs = Run("SELECT count(*) AS n FROM readings WHERE sensor = 99");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 0);
}

TEST_F(EngineTest, GroupBy) {
  ResultSet rs = Run(
      "SELECT status, count(*) AS n FROM readings GROUP BY status "
      "ORDER BY status ASC");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(0, 0).AsString(), "FAULT");
  EXPECT_EQ(rs.at(0, 1).AsInt64(), 4);  // rows 0,3,6,9
  EXPECT_EQ(rs.at(1, 0).AsString(), "OK");
  EXPECT_EQ(rs.at(1, 1).AsInt64(), 6);
}

TEST_F(EngineTest, GroupByRequiresGroupedSelectItems) {
  Query q = ParseQuery("SELECT temp, count(*) FROM readings GROUP BY sensor")
                .value();
  Result<ResultSet> r = engine_.Execute(q, table_, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, SelectStarWithAggregationRejected) {
  Query q = ParseQuery("SELECT * FROM readings GROUP BY sensor").value();
  EXPECT_FALSE(engine_.Execute(q, table_, 0).ok());
}

TEST_F(EngineTest, AggregateInWhereRejected) {
  Query q =
      ParseQuery("SELECT * FROM readings WHERE count(*) > 1").value();
  EXPECT_FALSE(engine_.Execute(q, table_, 0).ok());
}

TEST_F(EngineTest, NonBoolWhereRejected) {
  Query q = ParseQuery("SELECT * FROM readings WHERE sensor + 1").value();
  Result<ResultSet> r = engine_.Execute(q, table_, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST_F(EngineTest, OrderByAscendingAndDescending) {
  ResultSet asc = Run(
      "SELECT temp FROM readings WHERE temp IS NOT NULL ORDER BY temp");
  EXPECT_DOUBLE_EQ(asc.at(0, 0).AsFloat64(), 10.0);
  ResultSet desc = Run(
      "SELECT temp FROM readings WHERE temp IS NOT NULL "
      "ORDER BY temp DESC");
  EXPECT_DOUBLE_EQ(desc.at(0, 0).AsFloat64(), 19.0);
}

TEST_F(EngineTest, OrderByNullsLast) {
  ResultSet rs = Run("SELECT temp FROM readings ORDER BY temp ASC");
  ASSERT_EQ(rs.num_rows(), 10u);
  EXPECT_TRUE(rs.at(9, 0).is_null());
}

TEST_F(EngineTest, OrderByUnknownColumnFails) {
  Query q = ParseQuery("SELECT temp FROM readings ORDER BY nope").value();
  EXPECT_EQ(engine_.Execute(q, table_, 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineTest, LimitTruncates) {
  ResultSet rs = Run("SELECT * FROM readings LIMIT 3");
  EXPECT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.stats.rows_matched, 10u);
}

TEST_F(EngineTest, DeadRowsInvisible) {
  ASSERT_TRUE(table_.Kill(0).ok());
  ASSERT_TRUE(table_.Kill(1).ok());
  ResultSet rs = Run("SELECT * FROM readings");
  EXPECT_EQ(rs.num_rows(), 8u);
  EXPECT_EQ(rs.stats.rows_scanned, 8u);
}

TEST_F(EngineTest, FreshnessPredicate) {
  ASSERT_TRUE(table_.SetFreshness(0, 0.2).ok());
  ResultSet rs = Run("SELECT * FROM readings WHERE __freshness < 0.5");
  EXPECT_EQ(rs.num_rows(), 1u);
}

TEST_F(EngineTest, ResultSetToStringRenders) {
  ResultSet rs = Run("SELECT sensor, temp FROM readings LIMIT 2");
  const std::string s = rs.ToString();
  EXPECT_NE(s.find("sensor"), std::string::npos);
  EXPECT_NE(s.find("(2 rows)"), std::string::npos);
}

TEST_F(EngineTest, FindColumn) {
  ResultSet rs = Run("SELECT sensor, temp FROM readings LIMIT 1");
  EXPECT_EQ(rs.FindColumn("temp"), 1);
  EXPECT_EQ(rs.FindColumn("ghost"), -1);
}

}  // namespace
}  // namespace fungusdb
