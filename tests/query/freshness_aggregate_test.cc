// Tests for the freshness-weighted aggregates FCOUNT / FSUM / FAVG:
// answers fade as the tuples that produced them rot.

#include <gtest/gtest.h>

#include "query/engine.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

class FreshnessAggregateTest : public ::testing::Test {
 protected:
  FreshnessAggregateTest()
      : table_("r", Schema::Make({{"grp", DataType::kInt64, false},
                                  {"v", DataType::kFloat64, true}})
                        .value()) {
    // Four rows, freshness 1.0, 0.5, 0.25, and a null value at 1.0.
    table_.Append({Value::Int64(0), Value::Float64(10.0)}, 0).value();
    table_.Append({Value::Int64(0), Value::Float64(20.0)}, 0).value();
    table_.Append({Value::Int64(1), Value::Float64(40.0)}, 0).value();
    table_.Append({Value::Int64(1), Value::Null()}, 0).value();
    EXPECT_TRUE(table_.SetFreshness(1, 0.5).ok());
    EXPECT_TRUE(table_.SetFreshness(2, 0.25).ok());
  }

  ResultSet Run(const std::string& sql) {
    Query q = ParseQuery(sql).value();
    return engine_.Execute(q, table_, 0).value();
  }

  Table table_;
  QueryEngine engine_;
};

TEST_F(FreshnessAggregateTest, FCountStarSumsFreshness) {
  ResultSet rs = Run("SELECT fcount(*) AS fc FROM r");
  // 1.0 + 0.5 + 0.25 + 1.0 = 2.75.
  EXPECT_DOUBLE_EQ(rs.at(0, 0).AsFloat64(), 2.75);
}

TEST_F(FreshnessAggregateTest, FCountColumnSkipsNulls) {
  ResultSet rs = Run("SELECT fcount(v) AS fc FROM r");
  // The null-valued row contributes nothing: 1.0 + 0.5 + 0.25.
  EXPECT_DOUBLE_EQ(rs.at(0, 0).AsFloat64(), 1.75);
}

TEST_F(FreshnessAggregateTest, FSumWeightsByFreshness) {
  ResultSet rs = Run("SELECT fsum(v) AS fs FROM r");
  // 1.0*10 + 0.5*20 + 0.25*40 = 30.
  EXPECT_DOUBLE_EQ(rs.at(0, 0).AsFloat64(), 30.0);
}

TEST_F(FreshnessAggregateTest, FAvgIsWeightedMean) {
  ResultSet rs = Run("SELECT favg(v) AS fa FROM r");
  // 30 / 1.75.
  EXPECT_NEAR(rs.at(0, 0).AsFloat64(), 30.0 / 1.75, 1e-12);
}

TEST_F(FreshnessAggregateTest, FullyFreshMatchesUnweighted) {
  Table fresh("f",
              Schema::Make({{"v", DataType::kFloat64, false}}).value());
  fresh.Append({Value::Float64(3.0)}, 0).value();
  fresh.Append({Value::Float64(5.0)}, 0).value();
  QueryEngine engine;
  Query q = ParseQuery(
                "SELECT sum(v) AS s, fsum(v) AS fs, avg(v) AS a, "
                "favg(v) AS fa FROM f")
                .value();
  ResultSet rs = engine.Execute(q, fresh, 0).value();
  EXPECT_DOUBLE_EQ(rs.at(0, 0).AsFloat64(), rs.at(0, 1).AsFloat64());
  EXPECT_DOUBLE_EQ(rs.at(0, 2).AsFloat64(), rs.at(0, 3).AsFloat64());
}

TEST_F(FreshnessAggregateTest, GroupByInteraction) {
  ResultSet rs = Run(
      "SELECT grp, fcount(*) AS fc FROM r GROUP BY grp ORDER BY grp");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsFloat64(), 1.5);   // grp 0: 1.0 + 0.5
  EXPECT_DOUBLE_EQ(rs.at(1, 1).AsFloat64(), 1.25);  // grp 1: 0.25 + 1.0
}

TEST_F(FreshnessAggregateTest, EmptyInputYieldsNullFSum) {
  ResultSet rs = Run("SELECT fsum(v) AS fs, fcount(*) AS fc FROM r "
                     "WHERE grp = 99");
  EXPECT_TRUE(rs.at(0, 0).is_null());
  EXPECT_DOUBLE_EQ(rs.at(0, 1).AsFloat64(), 0.0);
}

TEST_F(FreshnessAggregateTest, ParserAcceptsAllThree) {
  EXPECT_TRUE(ParseQuery("SELECT fcount(*), fsum(v), favg(v) FROM r").ok());
  // FSUM(*) is meaningless.
  EXPECT_FALSE(ParseQuery("SELECT fsum(*) FROM r").ok());
}

TEST_F(FreshnessAggregateTest, FSumRequiresNumericArgument) {
  Table strings(
      "s", Schema::Make({{"name", DataType::kString, false}}).value());
  QueryEngine engine;
  Query q = ParseQuery("SELECT fsum(name) FROM s").value();
  EXPECT_EQ(engine.Execute(q, strings, 0).status().code(),
            StatusCode::kTypeMismatch);
}

}  // namespace
}  // namespace fungusdb
