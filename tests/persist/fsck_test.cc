#include "persist/fsck.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "persist/snapshot.h"
#include "verify/corruptor.h"

namespace fungusdb {
namespace {

Schema EventSchema() {
  return Schema::Make({{"k", DataType::kInt64, false},
                       {"v", DataType::kString, true}})
      .value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

class FsckTest : public ::testing::Test {
 protected:
  // Paths carry the test name: ctest runs each case as its own
  // process, so shared names would race under -j.
  void SetUp() override {
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    journal_path_ = TempPath(name + ".journal");
    snapshot_path_ = TempPath(name + ".fgdb");
  }

  void TearDown() override {
    std::remove(journal_path_.c_str());
    std::remove(snapshot_path_.c_str());
  }

  /// Runs a scenario through the journaled facade (no fungi, so replay
  /// is exactly equivalent) and snapshots the final state.
  void WriteScenario() {
    auto jdb = JournaledDatabase::Open({}, journal_path_).value();
    jdb->CreateTable("t", EventSchema()).value();
    for (int i = 0; i < 20; ++i) {
      jdb->Insert("t", {Value::Int64(i), Value::String("r")}).value();
      jdb->AdvanceTime(kMinute).value();
    }
    jdb->ExecuteSql("CONSUME SELECT * FROM t WHERE k < 5").value();
    ASSERT_TRUE(jdb->Sync().ok());
    ASSERT_TRUE(SaveDatabaseSnapshot(jdb->db(), snapshot_path_).ok());
  }

  std::string journal_path_;
  std::string snapshot_path_;
};

TEST_F(FsckTest, JournalAuditCountsEntriesByKind) {
  WriteScenario();
  const JournalAudit audit = AuditJournalFile(journal_path_).value();
  EXPECT_EQ(audit.creates, 1u);
  EXPECT_EQ(audit.inserts, 20u);
  EXPECT_EQ(audit.advances, 20u);
  EXPECT_EQ(audit.sql, 1u);
  EXPECT_EQ(audit.entries, 42u);
  EXPECT_FALSE(audit.truncated);
}

TEST_F(FsckTest, TruncatedJournalRecoversIntactPrefix) {
  WriteScenario();
  // Drop 5 bytes: the last record is torn; everything before survives.
  ASSERT_TRUE(SeedFileCorruption(journal_path_,
                                 FileCorruption::kTruncateTail, 5)
                  .ok());
  const JournalAudit audit = AuditJournalFile(journal_path_).value();
  EXPECT_TRUE(audit.truncated);
  EXPECT_EQ(audit.entries, 41u);

  // Replay still succeeds cleanly over the intact prefix — a torn tail
  // is expected after a crash, not an error.
  Database db;
  EXPECT_EQ(ReplayJournal(db, journal_path_).value(), 41u);
}

TEST_F(FsckTest, BadChecksumStopsReplayCleanly) {
  WriteScenario();
  // Flip the last byte — payload of the final record no longer matches
  // its checksum.
  ASSERT_TRUE(SeedFileCorruption(journal_path_, FileCorruption::kFlipByte,
                                 FileSize(journal_path_) - 1)
                  .ok());
  const JournalAudit audit = AuditJournalFile(journal_path_).value();
  EXPECT_TRUE(audit.truncated);
  EXPECT_EQ(audit.entries, 41u);
  Database db;
  EXPECT_EQ(ReplayJournal(db, journal_path_).value(), 41u);
}

TEST_F(FsckTest, GarbageTrailingBytesDetected) {
  WriteScenario();
  ASSERT_TRUE(SeedFileCorruption(journal_path_,
                                 FileCorruption::kAppendGarbage, 64)
                  .ok());
  const JournalAudit audit = AuditJournalFile(journal_path_).value();
  EXPECT_TRUE(audit.truncated);
  EXPECT_EQ(audit.entries, 42u);  // every real entry still intact
  Database db;
  EXPECT_EQ(ReplayJournal(db, journal_path_).value(), 42u);
}

TEST_F(FsckTest, SnapshotAuditRunsInvariantChecker) {
  WriteScenario();
  const SnapshotAudit audit = AuditSnapshotFile(snapshot_path_).value();
  EXPECT_EQ(audit.tables, 1u);
  EXPECT_EQ(audit.live_rows, 15u);  // 20 inserted, 5 consumed
  EXPECT_TRUE(audit.fsck.ok()) << audit.fsck.ToString();
}

TEST_F(FsckTest, CorruptSnapshotFailsWithCleanStatus) {
  WriteScenario();
  ASSERT_TRUE(SeedFileCorruption(snapshot_path_,
                                 FileCorruption::kFlipByte, 10)
                  .ok());
  // A flipped byte must surface as a Status error from load, never a
  // crash; any code is acceptable as long as the audit reports failure.
  EXPECT_FALSE(AuditSnapshotFile(snapshot_path_).ok());
}

TEST_F(FsckTest, TruncatedSnapshotFailsWithCleanStatus) {
  WriteScenario();
  ASSERT_TRUE(SeedFileCorruption(snapshot_path_,
                                 FileCorruption::kTruncateTail, 7)
                  .ok());
  EXPECT_FALSE(AuditSnapshotFile(snapshot_path_).ok());
}

TEST_F(FsckTest, ReplayEquivalenceHoldsForCleanPair) {
  WriteScenario();
  const verify::Report report =
      AuditReplayEquivalence(snapshot_path_, journal_path_).value();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.tables_checked, 1u);
  EXPECT_EQ(report.rows_checked, 15u);
}

TEST_F(FsckTest, ReplayDivergenceReportedWithOrdinal) {
  WriteScenario();
  // Journal one extra insert AFTER the snapshot was taken: replay now
  // tells a longer story than the snapshot.
  {
    auto writer = JournalWriter::Open(journal_path_).value();
    JournalEntry insert;
    insert.kind = JournalEntry::Kind::kInsert;
    insert.table_name = "t";
    insert.values = {Value::Int64(99), Value::String("extra")};
    ASSERT_TRUE(writer->Append(insert).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  const verify::Report report =
      AuditReplayEquivalence(snapshot_path_, journal_path_).value();
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const verify::Violation& v : report.violations) {
    if (v.invariant == "replay-divergence" && v.table == "t" &&
        v.row == 15) {
      found = true;  // first divergent ordinal = the 16th live tuple
    }
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(FsckTest, CompareDatabasesPinpointsChangedColumn) {
  Database a, b;
  a.CreateTable("t", EventSchema()).value();
  b.CreateTable("t", EventSchema()).value();
  a.Insert("t", {Value::Int64(1), Value::String("same")}).value();
  b.Insert("t", {Value::Int64(1), Value::String("different")}).value();

  const verify::Report report = CompareDatabases(a, b);
  ASSERT_EQ(report.violations.size(), 1u) << report.ToString();
  const verify::Violation& v = report.violations[0];
  EXPECT_EQ(v.invariant, "replay-divergence");
  EXPECT_EQ(v.table, "t");
  EXPECT_EQ(v.row, 0);
  EXPECT_EQ(v.column, 1);
}

TEST_F(FsckTest, JournalReaderFromBytesMatchesFileReader) {
  WriteScenario();
  std::string bytes;
  {
    std::ifstream in(journal_path_, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  auto reader = JournalReader::FromBytes(bytes);
  uint64_t entries = 0;
  while (reader->Next().has_value()) ++entries;
  EXPECT_EQ(entries, 42u);
  EXPECT_FALSE(reader->truncated());
}

}  // namespace
}  // namespace fungusdb
