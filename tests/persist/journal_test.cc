#include "persist/journal.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "fungus/retention_fungus.h"

namespace fungusdb {
namespace {

Schema EventSchema() {
  return Schema::Make({{"k", DataType::kInt64, false},
                       {"v", DataType::kFloat64, true}})
      .value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class JournalTest : public ::testing::Test {
 protected:
  // Path carries the test name: ctest runs each case as its own
  // process, so a shared name would race under -j.
  void SetUp() override {
    path_ = TempPath(
        std::string(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()) +
        ".journal_test.log");
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(JournalTest, EntriesRoundTrip) {
  {
    auto writer = JournalWriter::Open(path_).value();
    JournalEntry create;
    create.kind = JournalEntry::Kind::kCreateTable;
    create.table_name = "t";
    create.schema = EventSchema();
    create.table_options.rows_per_segment = 128;
    ASSERT_TRUE(writer->Append(create).ok());

    JournalEntry insert;
    insert.kind = JournalEntry::Kind::kInsert;
    insert.table_name = "t";
    insert.values = {Value::Int64(7), Value::Null()};
    ASSERT_TRUE(writer->Append(insert).ok());

    JournalEntry advance;
    advance.kind = JournalEntry::Kind::kAdvanceTime;
    advance.advance = 3 * kHour;
    ASSERT_TRUE(writer->Append(advance).ok());

    JournalEntry sql;
    sql.kind = JournalEntry::Kind::kSql;
    sql.sql = "CONSUME SELECT * FROM t";
    ASSERT_TRUE(writer->Append(sql).ok());
    ASSERT_TRUE(writer->Sync().ok());
    EXPECT_EQ(writer->entries_written(), 4u);
  }

  auto reader = JournalReader::Open(path_).value();
  auto e1 = reader->Next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, JournalEntry::Kind::kCreateTable);
  EXPECT_EQ(e1->table_name, "t");
  EXPECT_TRUE(e1->schema.Equals(EventSchema()));
  EXPECT_EQ(e1->table_options.rows_per_segment, 128u);

  auto e2 = reader->Next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, JournalEntry::Kind::kInsert);
  ASSERT_EQ(e2->values.size(), 2u);
  EXPECT_EQ(e2->values[0].AsInt64(), 7);
  EXPECT_TRUE(e2->values[1].is_null());

  auto e3 = reader->Next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->advance, 3 * kHour);

  auto e4 = reader->Next();
  ASSERT_TRUE(e4.has_value());
  EXPECT_EQ(e4->sql, "CONSUME SELECT * FROM t");

  EXPECT_FALSE(reader->Next().has_value());
  EXPECT_FALSE(reader->truncated());
}

TEST_F(JournalTest, TornTailDetected) {
  {
    auto writer = JournalWriter::Open(path_).value();
    JournalEntry insert;
    insert.kind = JournalEntry::Kind::kInsert;
    insert.table_name = "t";
    insert.values = {Value::Int64(1), Value::Float64(2.0)};
    ASSERT_TRUE(writer->Append(insert).ok());
    ASSERT_TRUE(writer->Append(insert).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Chop a few bytes off the tail: entry 1 must survive, entry 2 must
  // be rejected as torn.
  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() - 3));
  }
  auto reader = JournalReader::Open(path_).value();
  EXPECT_TRUE(reader->Next().has_value());
  EXPECT_FALSE(reader->Next().has_value());
  EXPECT_TRUE(reader->truncated());
}

TEST_F(JournalTest, CorruptPayloadDetectedByChecksum) {
  {
    auto writer = JournalWriter::Open(path_).value();
    JournalEntry sql;
    sql.kind = JournalEntry::Kind::kSql;
    sql.sql = "CONSUME SELECT * FROM somewhere";
    ASSERT_TRUE(writer->Append(sql).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Flip one payload byte.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(-2, std::ios::end);
  file.put('X');
  file.close();
  auto reader = JournalReader::Open(path_).value();
  EXPECT_FALSE(reader->Next().has_value());
  EXPECT_TRUE(reader->truncated());
}

TEST_F(JournalTest, JournaledDatabaseRecoversExactState) {
  // Run a full scenario through the journaled facade, with decay and a
  // consuming query; then replay into a fresh database with the same
  // fungus configuration and compare the final states.
  DatabaseOptions options;
  auto run_scenario = [&](JournaledDatabase& jdb) {
    jdb.CreateTable("t", EventSchema()).value();
    jdb.db()
        .AttachFungus("t", std::make_unique<RetentionFungus>(4 * kHour),
                      kHour)
        .value();
    for (int i = 0; i < 30; ++i) {
      jdb.Insert("t", {Value::Int64(i), Value::Float64(i * 0.5)}).value();
      jdb.AdvanceTime(20 * kMinute).value();
    }
    jdb.ExecuteSql("CONSUME SELECT * FROM t WHERE k % 3 = 0").value();
    // Observing reads are not journaled and must not perturb replay.
    jdb.ExecuteSql("SELECT count(*) AS n FROM t").value();
    ASSERT_TRUE(jdb.Sync().ok());
  };

  auto jdb = JournaledDatabase::Open(options, path_).value();
  run_scenario(*jdb);
  const Table* original = &jdb->db().GetTable("t").value().table();
  const std::vector<RowId> original_rows = original->LiveRows();
  const Timestamp original_now = jdb->db().Now();

  // Replay without the fungus attached: all journaled inputs are
  // applied, but no decay runs. The replayed table must therefore hold
  // a superset of the original's live rows, while the journaled
  // consuming query removes exactly the same tuples in both runs. (The
  // exact-state recipe — same fungi attached before replay — is the
  // next test.)
  Database recovered(options);
  const uint64_t applied = ReplayJournal(recovered, path_).value();
  EXPECT_GE(applied, 32u);  // 1 create + 30 inserts + advances + consume

  const Table* replayed = &recovered.GetTable("t").value().table();
  EXPECT_EQ(recovered.Now(), original_now);
  EXPECT_EQ(replayed->total_appended(), original->total_appended());
  // Decay ran in the original but not during replay (no fungus
  // attached): the replayed table must contain a superset of the
  // original's live rows, and the consuming query's effect is identical.
  for (RowId row : original_rows) {
    EXPECT_TRUE(replayed->IsLive(row)) << row;
  }
  // The consumed rows (k % 3 = 0) are dead in both.
  ResultSet consumed_check =
      recovered.ExecuteSql("SELECT count(*) AS n FROM t WHERE k % 3 = 0")
          .value();
  EXPECT_EQ(consumed_check.at(0, 0).AsInt64(), 0);
}

TEST_F(JournalTest, DeterministicReplayWithSameFungi) {
  // The stronger property: when the recovery recipe attaches the same
  // fungus before replay begins (table pre-created so attachment is
  // possible, journal written without the create entry), the replayed
  // state matches the original exactly.
  DatabaseOptions options;
  auto jdb = JournaledDatabase::Open(options, path_).value();
  jdb->db().CreateTable("t", EventSchema()).value();  // not journaled
  jdb->db()
      .AttachFungus("t", std::make_unique<RetentionFungus>(4 * kHour),
                    kHour)
      .value();
  for (int i = 0; i < 40; ++i) {
    jdb->Insert("t", {Value::Int64(i), Value::Float64(i * 1.0)}).value();
    jdb->AdvanceTime(15 * kMinute).value();
  }
  ASSERT_TRUE(jdb->Sync().ok());
  const Table* original = &jdb->db().GetTable("t").value().table();

  Database recovered(options);
  recovered.CreateTable("t", EventSchema()).value();
  recovered
      .AttachFungus("t", std::make_unique<RetentionFungus>(4 * kHour),
                    kHour)
      .value();
  ASSERT_TRUE(ReplayJournal(recovered, path_).ok());

  const Table* replayed = &recovered.GetTable("t").value().table();
  EXPECT_EQ(replayed->LiveRows(), original->LiveRows());
  EXPECT_EQ(replayed->live_rows(), original->live_rows());
  for (RowId row : original->LiveRows()) {
    EXPECT_DOUBLE_EQ(replayed->Freshness(row), original->Freshness(row));
  }
}

TEST_F(JournalTest, ReplayFailsFastOnBadEntry) {
  {
    auto writer = JournalWriter::Open(path_).value();
    JournalEntry insert;
    insert.kind = JournalEntry::Kind::kInsert;
    insert.table_name = "no_such_table";
    insert.values = {Value::Int64(1), Value::Float64(1.0)};
    ASSERT_TRUE(writer->Append(insert).ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  Database db;
  EXPECT_EQ(ReplayJournal(db, path_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(JournalTest, MissingJournalIsNotFound) {
  EXPECT_EQ(JournalReader::Open(TempPath("nope.log")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fungusdb
