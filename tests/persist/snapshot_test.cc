#include "persist/snapshot.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "fungus/retention_fungus.h"
#include "storage/value_serde.h"
#include "summary/count_min_sketch.h"
#include "summary/grouped_aggregate.h"
#include "summary/hyperloglog.h"
#include "summary/serialize.h"

namespace fungusdb {
namespace {

Schema MixedSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"score", DataType::kFloat64, true},
                       {"name", DataType::kString, false}})
      .value();
}

TEST(ValueSerdeTest, AllTypesRoundTrip) {
  BufferWriter out;
  const std::vector<Value> values = {
      Value::Null(),           Value::Int64(-42),
      Value::Float64(3.25),    Value::String("hello"),
      Value::Bool(true),       Value::TimestampVal(123456789),
      Value::String(""),       Value::Float64(-0.0),
  };
  for (const Value& v : values) WriteValue(out, v);
  BufferReader in(out.buffer());
  for (const Value& expected : values) {
    Result<Value> got = ReadValue(in);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->Equals(expected)) << expected.ToString();
  }
  EXPECT_TRUE(in.exhausted());
}

TEST(ValueSerdeTest, SchemaRoundTrip) {
  BufferWriter out;
  WriteSchema(out, MixedSchema());
  BufferReader in(out.buffer());
  Result<Schema> schema = ReadSchema(in);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Equals(MixedSchema()));
}

TEST(ValueSerdeTest, TruncationFailsCleanly) {
  BufferWriter out;
  WriteValue(out, Value::String("a long enough payload"));
  const std::string data = out.buffer().substr(0, out.size() - 5);
  BufferReader in(data);
  EXPECT_FALSE(ReadValue(in).ok());
}

TEST(SummarySerializeTest, EveryKindRoundTrips) {
  std::vector<std::unique_ptr<Summary>> originals;
  {
    auto cm = std::make_unique<CountMinSketch>(64, 4);
    for (int i = 0; i < 100; ++i) cm->Observe(Value::Int64(i % 7));
    originals.push_back(std::move(cm));
  }
  {
    auto hll = std::make_unique<HyperLogLog>(10);
    for (int i = 0; i < 500; ++i) hll->Observe(Value::Int64(i));
    originals.push_back(std::move(hll));
  }
  {
    auto agg = std::make_unique<GroupedAggregate>();
    agg->Observe(Value::String("a"), Value::Float64(1.5));
    agg->Observe(Value::String("b"), Value::Float64(-3.0));
    originals.push_back(std::move(agg));
  }
  for (const auto& original : originals) {
    BufferWriter out;
    SerializeSummary(*original, out);
    BufferReader in(out.buffer());
    Result<std::unique_ptr<Summary>> restored = DeserializeSummary(in);
    ASSERT_TRUE(restored.ok()) << original->kind();
    EXPECT_EQ((*restored)->kind(), original->kind());
    EXPECT_EQ((*restored)->observations(), original->observations());
    EXPECT_TRUE(in.exhausted());
  }
}

TEST(SummarySerializeTest, CountMinEstimatesSurvive) {
  CountMinSketch cm(128, 4);
  for (int i = 0; i < 50; ++i) cm.Observe(Value::String("key"));
  BufferWriter out;
  SerializeSummary(cm, out);
  BufferReader in(out.buffer());
  auto restored = DeserializeSummary(in).value();
  auto* cm2 = static_cast<CountMinSketch*>(restored.get());
  EXPECT_EQ(cm2->EstimateCount(Value::String("key")), 50u);
}

TEST(SummarySerializeTest, UnknownKindFails) {
  BufferWriter out;
  out.WriteString("flux_capacitor");
  BufferReader in(out.buffer());
  EXPECT_EQ(DeserializeSummary(in).status().code(),
            StatusCode::kParseError);
}

TEST(TableSnapshotTest, LiveRowsRoundTripWithFreshness) {
  TableOptions opts;
  opts.rows_per_segment = 4;
  Table t("events", MixedSchema(), opts);
  for (int i = 0; i < 10; ++i) {
    t.Append({Value::Int64(i), i % 3 == 0 ? Value::Null()
                                          : Value::Float64(i * 0.5),
              Value::String("row" + std::to_string(i))},
             i * 100)
        .value();
  }
  ASSERT_TRUE(t.SetFreshness(3, 0.4).ok());
  ASSERT_TRUE(t.Kill(5).ok());

  BufferWriter out;
  SerializeTable(t, out);
  BufferReader in(out.buffer());
  Result<Table> restored = DeserializeTable(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->name(), "events");
  EXPECT_EQ(restored->live_rows(), 9u);  // the killed row is gone
  EXPECT_TRUE(restored->schema().Equals(t.schema()));
  // Row ids compact: old row 6 (after the killed 5) becomes row 5.
  EXPECT_EQ(restored->GetValue(5, 2).value().AsString(), "row6");
  EXPECT_EQ(restored->InsertTime(5).value(), 600);
  // Freshness preserved.
  EXPECT_DOUBLE_EQ(restored->Freshness(3), 0.4);
  // Nulls preserved.
  EXPECT_TRUE(restored->GetValue(0, 1).value().is_null());
}

TEST(DatabaseSnapshotTest, FullRoundTripInMemory) {
  Database db;
  db.CreateTable("r", MixedSchema()).value();
  for (int i = 0; i < 20; ++i) {
    db.Insert("r", {Value::Int64(i), Value::Float64(i * 1.0),
                    Value::String("x")})
        .value();
    db.AdvanceTime(kMinute).value();
  }
  auto sketch = std::make_unique<CountMinSketch>(64, 4);
  sketch->Observe(Value::Int64(1));
  ASSERT_TRUE(db.cellar()
                  .Put("counts", std::move(sketch), kDay, db.Now())
                  .ok());

  BufferWriter out;
  SerializeDatabase(db, out);
  BufferReader in(out.buffer());
  Result<std::unique_ptr<Database>> restored = DeserializeDatabase(in);
  ASSERT_TRUE(restored.ok());
  Database& db2 = **restored;
  EXPECT_EQ(db2.Now(), db.Now());
  EXPECT_EQ(db2.GetTable("r").value().live_rows(), 20u);
  ASSERT_NE(db2.cellar().Find("counts"), nullptr);
  EXPECT_EQ(db2.cellar().Find("counts")->observations(), 1u);
  // Queries work on the restored database.
  ResultSet rs = db2.ExecuteSql("SELECT count(*) AS n FROM r").value();
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 20);
}

TEST(DatabaseSnapshotTest, FileRoundTripAndDecayContinues) {
  const std::string path = ::testing::TempDir() + "/fungus_snapshot.bin";
  {
    Database db;
    db.CreateTable("r", MixedSchema()).value();
    for (int i = 0; i < 10; ++i) {
      db.Insert("r", {Value::Int64(i), Value::Float64(1.0),
                      Value::String("y")})
          .value();
    }
    db.AdvanceTime(kHour).value();
    ASSERT_TRUE(SaveDatabaseSnapshot(db, path).ok());
  }
  Result<std::unique_ptr<Database>> restored = LoadDatabaseSnapshot(path);
  ASSERT_TRUE(restored.ok());
  Database& db = **restored;
  EXPECT_EQ(db.Now(), kHour);
  // Fungi are not persisted; re-attach and verify decay picks up from
  // the restored virtual time and the preserved insertion timestamps.
  ASSERT_TRUE(db.AttachFungus("r",
                              std::make_unique<RetentionFungus>(2 * kHour),
                              kHour)
                  .ok());
  ASSERT_TRUE(db.AdvanceTime(3 * kHour).ok());
  EXPECT_EQ(db.GetTable("r").value().live_rows(), 0u);
  std::remove(path.c_str());
}

TEST(DatabaseSnapshotTest, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/fungus_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a snapshot", f);
    std::fclose(f);
  }
  // Garbage either fails the magic check (ParseError) or trips the
  // bounds checks first (OutOfRange); both are clean rejections.
  EXPECT_FALSE(LoadDatabaseSnapshot(path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(LoadDatabaseSnapshot(path).status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseSnapshotTest, TruncatedSnapshotRejected) {
  Database db;
  db.CreateTable("r", MixedSchema()).value();
  db.Insert("r", {Value::Int64(1), Value::Float64(1.0),
                  Value::String("z")})
      .value();
  BufferWriter out;
  SerializeDatabase(db, out);
  const std::string truncated = out.buffer().substr(0, out.size() / 2);
  BufferReader in(truncated);
  EXPECT_FALSE(DeserializeDatabase(in).ok());
}

}  // namespace
}  // namespace fungusdb
