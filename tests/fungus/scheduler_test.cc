#include "fungus/scheduler.h"

#include <gtest/gtest.h>

#include "fungus/retention_fungus.h"
#include "fungus/sliding_window_fungus.h"

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

TEST(DecaySchedulerTest, AttachValidates) {
  DecayScheduler scheduler;
  Table t("t", OneColSchema());
  EXPECT_FALSE(scheduler
                   .Attach(nullptr, std::make_unique<RetentionFungus>(kDay),
                           kSecond, 0)
                   .ok());
  EXPECT_FALSE(scheduler.Attach(&t, nullptr, kSecond, 0).ok());
  EXPECT_FALSE(scheduler
                   .Attach(&t, std::make_unique<RetentionFungus>(kDay), 0, 0)
                   .ok());
  EXPECT_TRUE(scheduler
                  .Attach(&t, std::make_unique<RetentionFungus>(kDay),
                          kSecond, 0)
                  .ok());
  EXPECT_EQ(scheduler.num_attachments(), 1u);
}

TEST(DecaySchedulerTest, TicksAtPeriodBoundaries) {
  DecayScheduler scheduler;
  Table t("t", OneColSchema());
  auto id = scheduler
                .Attach(&t, std::make_unique<RetentionFungus>(kDay),
                        /*period=*/kSecond, /*start_time=*/0)
                .value();
  EXPECT_EQ(scheduler.AdvanceTo(kSecond - 1), 0u);
  EXPECT_EQ(scheduler.AdvanceTo(kSecond), 1u);
  EXPECT_EQ(scheduler.AdvanceTo(kSecond), 0u);  // no double firing
  EXPECT_EQ(scheduler.AdvanceTo(5 * kSecond), 4u);
  EXPECT_EQ(scheduler.StatsFor(id).ticks, 5u);
}

TEST(DecaySchedulerTest, MultipleAttachmentsInterleaveChronologically) {
  DecayScheduler scheduler;
  Table t1("t1", OneColSchema());
  Table t2("t2", OneColSchema());
  scheduler.Attach(&t1, std::make_unique<RetentionFungus>(kDay), 2 * kSecond,
                   0)
      .value();
  scheduler
      .Attach(&t2, std::make_unique<RetentionFungus>(kDay), 3 * kSecond, 0)
      .value();
  // Ticks due by t=6s: t1 at 2,4,6; t2 at 3,6 -> 5 ticks.
  EXPECT_EQ(scheduler.AdvanceTo(6 * kSecond), 5u);
}

TEST(DecaySchedulerTest, DecayActuallyKills) {
  DecayScheduler scheduler;
  Table t("t", OneColSchema());
  for (int i = 0; i < 10; ++i) {
    t.Append({Value::Int64(i)}, i * kSecond).value();
  }
  auto id =
      scheduler
          .Attach(&t, std::make_unique<RetentionFungus>(5 * kSecond),
                  kSecond, 0)
          .value();
  scheduler.AdvanceTo(20 * kSecond);
  EXPECT_EQ(t.live_rows(), 0u);
  EXPECT_EQ(scheduler.StatsFor(id).decay.tuples_killed, 10u);
}

TEST(DecaySchedulerTest, DeathObserverSeesDyingTuplesWithValues) {
  DecayScheduler scheduler;
  Table t("t", OneColSchema());
  for (int i = 0; i < 5; ++i) {
    t.Append({Value::Int64(100 + i)}, i).value();
  }
  std::vector<int64_t> observed;
  scheduler.AddDeathObserver(
      [&](Table& table, const std::vector<RowId>& rows, Timestamp now) {
        EXPECT_GT(now, 0);
        for (RowId r : rows) {
          // Values must still be readable at observation time.
          observed.push_back(table.GetValue(r, 0).value().AsInt64());
        }
      });
  scheduler
      .Attach(&t, std::make_unique<RetentionFungus>(kSecond), kSecond, 0)
      .value();
  scheduler.AdvanceTo(10 * kSecond);
  ASSERT_EQ(observed.size(), 5u);
  EXPECT_EQ(observed[0], 100);
  EXPECT_EQ(observed[4], 104);
}

TEST(DecaySchedulerTest, ReclaimsDeadSegmentsAfterTicks) {
  DecayScheduler scheduler;
  TableOptions opts;
  opts.rows_per_segment = 4;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < 16; ++i) t.Append({Value::Int64(i)}, i).value();
  scheduler
      .Attach(&t, std::make_unique<SlidingWindowFungus>(4), kSecond, 0)
      .value();
  scheduler.AdvanceTo(kSecond);
  EXPECT_EQ(t.live_rows(), 4u);
  // 12 dead tuples = 3 full dead segments, reclaimed by the scheduler.
  EXPECT_EQ(t.num_segments(), 1u);
}

TEST(DecaySchedulerTest, DetachStopsTicking) {
  DecayScheduler scheduler;
  Table t("t", OneColSchema());
  t.Append({Value::Int64(1)}, 0).value();
  auto id = scheduler
                .Attach(&t, std::make_unique<RetentionFungus>(kSecond),
                        kSecond, 0)
                .value();
  ASSERT_TRUE(scheduler.Detach(id).ok());
  EXPECT_EQ(scheduler.AdvanceTo(10 * kSecond), 0u);
  EXPECT_TRUE(t.IsLive(0));
  EXPECT_EQ(scheduler.num_attachments(), 0u);
  EXPECT_EQ(scheduler.Detach(id).code(), StatusCode::kNotFound);
}

TEST(DecaySchedulerTest, MetricsFlow) {
  DecayScheduler scheduler;
  MetricsRegistry metrics;
  scheduler.set_metrics(&metrics);
  Table t("t", OneColSchema());
  t.Append({Value::Int64(1)}, 0).value();
  scheduler
      .Attach(&t, std::make_unique<RetentionFungus>(kSecond), kSecond, 0)
      .value();
  scheduler.AdvanceTo(3 * kSecond);
  EXPECT_EQ(metrics.GetCounter("fungusdb.decay.ticks"), 3);
  EXPECT_EQ(metrics.GetCounter("fungusdb.decay.tuples_killed"), 1);
}

}  // namespace
}  // namespace fungusdb
