#include <gtest/gtest.h>

#include "fungus/composite_fungus.h"
#include "fungus/importance_fungus.h"
#include "fungus/random_blight_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/rot_analysis.h"
#include "fungus/sliding_window_fungus.h"

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

Table FilledTable(int rows, bool track_access = false) {
  TableOptions opts;
  opts.rows_per_segment = 64;
  opts.track_access = track_access;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < rows; ++i) {
    t.Append({Value::Int64(i)}, i).value();
  }
  return t;
}

// --- SlidingWindowFungus ---

TEST(SlidingWindowFungusTest, EnforcesMaxRows) {
  Table t = FilledTable(100);
  SlidingWindowFungus fungus(30);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 30u);
  // The survivors are the newest 30.
  EXPECT_EQ(t.OldestLive().value(), 70u);
}

TEST(SlidingWindowFungusTest, UnderfullWindowUntouched) {
  Table t = FilledTable(10);
  SlidingWindowFungus fungus(30);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 10u);
}

TEST(SlidingWindowFungusTest, FreshnessReflectsWindowPosition) {
  Table t = FilledTable(4);
  SlidingWindowFungus fungus(4);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  // Oldest gets 1/4, newest 4/4.
  EXPECT_NEAR(t.Freshness(0), 0.25, 1e-9);
  EXPECT_NEAR(t.Freshness(3), 1.0, 1e-9);
}

TEST(SlidingWindowFungusTest, Describe) {
  SlidingWindowFungus fungus(500);
  EXPECT_EQ(fungus.Describe(), "sliding_window(max_rows=500)");
}

// --- RandomBlightFungus ---

TEST(RandomBlightFungusTest, DecaysRequestedNumberPerTick) {
  Table t = FilledTable(1000);
  RandomBlightFungus::Params p;
  p.tuples_per_tick = 10;
  p.decay_step = 1.0;  // kill on first touch
  RandomBlightFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  // Each pick is distinct-with-high-probability; allow some overlap.
  EXPECT_GE(ctx.stats().tuples_killed, 8u);
  EXPECT_LE(ctx.stats().tuples_killed, 10u);
}

TEST(RandomBlightFungusTest, ProducesScatteredDeath) {
  Table t = FilledTable(4000);
  RandomBlightFungus::Params p;
  p.tuples_per_tick = 8;
  p.decay_step = 1.0;
  RandomBlightFungus fungus(p);
  for (int tick = 0; tick < 100; ++tick) {
    DecayContext ctx(&t, tick);
    fungus.Tick(ctx);
  }
  RotStructure rot = AnalyzeRot(t);
  ASSERT_GT(rot.dead_tuples + rot.reclaimed_tuples, 400u);
  // Scattered: mean spot length stays small (no epidemic clustering).
  EXPECT_LT(rot.mean_spot, 3.0);
}

TEST(RandomBlightFungusTest, DeterministicGivenSeed) {
  RandomBlightFungus::Params p;
  p.tuples_per_tick = 5;
  p.decay_step = 0.5;
  Table t1 = FilledTable(300);
  Table t2 = FilledTable(300);
  RandomBlightFungus f1(p), f2(p);
  for (int tick = 0; tick < 20; ++tick) {
    DecayContext c1(&t1, tick), c2(&t2, tick);
    f1.Tick(c1);
    f2.Tick(c2);
  }
  EXPECT_EQ(t1.LiveRows(), t2.LiveRows());
}

// --- ImportanceFungus ---

TEST(ImportanceFungusTest, UnaccessedTuplesDecayAtBaseRate) {
  Table t = FilledTable(10, /*track_access=*/true);
  ImportanceFungus::Params p;
  p.decay_step = 0.2;
  ImportanceFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(0), 0.8, 1e-9);
}

TEST(ImportanceFungusTest, AccessedTuplesDecaySlower) {
  Table t = FilledTable(10, /*track_access=*/true);
  for (int i = 0; i < 7; ++i) t.RecordAccess(3);
  ImportanceFungus::Params p;
  p.decay_step = 0.2;
  p.access_weight = 1.0;
  ImportanceFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  // 7 accesses: protection = 1 + log2(8) = 4 -> decay 0.05.
  EXPECT_NEAR(t.Freshness(3), 0.95, 1e-9);
  EXPECT_NEAR(t.Freshness(0), 0.8, 1e-9);
}

TEST(ImportanceFungusTest, ZeroWeightIgnoresAccesses) {
  Table t = FilledTable(4, /*track_access=*/true);
  t.RecordAccess(1);
  ImportanceFungus::Params p;
  p.decay_step = 0.1;
  p.access_weight = 0.0;
  ImportanceFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(0), t.Freshness(1), 1e-12);
}

// --- CompositeFungus ---

TEST(CompositeFungusTest, AppliesChildrenInOrder) {
  Table t = FilledTable(100);
  std::vector<std::unique_ptr<Fungus>> children;
  children.push_back(std::make_unique<SlidingWindowFungus>(50));
  children.push_back(std::make_unique<RetentionFungus>(10));  // 10us
  CompositeFungus fungus(std::move(children));
  DecayContext ctx(&t, /*now=*/200);
  fungus.Tick(ctx);
  // The window keeps 50, then retention (10us, everything is older)
  // wipes the rest.
  EXPECT_EQ(t.live_rows(), 0u);
}

TEST(CompositeFungusTest, DescribeListsChildren) {
  std::vector<std::unique_ptr<Fungus>> children;
  children.push_back(std::make_unique<SlidingWindowFungus>(5));
  children.push_back(std::make_unique<RetentionFungus>(kDay));
  CompositeFungus fungus(std::move(children));
  const std::string d = fungus.Describe();
  EXPECT_NE(d.find("sliding_window"), std::string::npos);
  EXPECT_NE(d.find("retention"), std::string::npos);
  EXPECT_EQ(fungus.num_children(), 2u);
}

// --- DecayContext ---

TEST(DecayContextTest, TracksKilledRows) {
  Table t = FilledTable(5);
  DecayContext ctx(&t, 0);
  ctx.Decay(0, 1.0);
  ctx.Kill(2);
  ctx.SetFreshness(4, 0.0);
  EXPECT_EQ(ctx.killed().size(), 3u);
  EXPECT_EQ(ctx.stats().tuples_killed, 3u);
  EXPECT_EQ(ctx.stats().tuples_touched, 3u);
}

TEST(DecayContextTest, IgnoresDeadRows) {
  Table t = FilledTable(2);
  ASSERT_TRUE(t.Kill(0).ok());
  DecayContext ctx(&t, 0);
  ctx.Decay(0, 0.5);
  ctx.Kill(0);
  ctx.SetFreshness(0, 0.5);
  EXPECT_EQ(ctx.stats().tuples_touched, 0u);
  EXPECT_TRUE(ctx.killed().empty());
}

TEST(DecayContextTest, PartialDecayDoesNotKill) {
  Table t = FilledTable(1);
  DecayContext ctx(&t, 0);
  ctx.Decay(0, 0.3);
  EXPECT_EQ(ctx.stats().tuples_touched, 1u);
  EXPECT_EQ(ctx.stats().tuples_killed, 0u);
  EXPECT_TRUE(t.IsLive(0));
}

}  // namespace
}  // namespace fungusdb
