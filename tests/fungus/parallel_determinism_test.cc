#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/retention_fungus.h"

namespace fungusdb {
namespace {

// The determinism contract of the sharded kernel: a table's decay
// outcome may depend on its shard count (a storage property) but never
// on the database's thread count (an execution property). These tests
// run the same workload at 1, 2, and 8 threads and require bit-identical
// live-row sets and freshness values.

constexpr size_t kThreadCounts[] = {1, 2, 8};

Schema OneColumnSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

using Fingerprint = std::map<RowId, double>;  // live row -> freshness

Fingerprint FingerprintTable(const Table& t) {
  Fingerprint fp;
  t.ForEachLive([&](RowId row) { fp[row] = t.Freshness(row); });
  return fp;
}

enum class Kind { kEgi, kExponential, kRetention };

std::unique_ptr<Fungus> MakeFungus(Kind kind) {
  switch (kind) {
    case Kind::kEgi: {
      EgiFungus::Params p;
      p.seeds_per_tick = 3.0;
      p.decay_step = 0.2;
      p.spread_probability = 0.8;
      p.rng_seed = 0xBADF00D;
      return std::make_unique<EgiFungus>(p);
    }
    case Kind::kExponential:
      return std::make_unique<ExponentialFungus>(
          ExponentialFungus::FromHalfLife(20 * kSecond));
    case Kind::kRetention:
      return std::make_unique<RetentionFungus>(60 * kSecond);
  }
  return nullptr;
}

/// Builds a database with `num_threads`, runs `ticks` one-second decay
/// ticks of `kind` over an 8-shard table, and fingerprints the result.
Fingerprint RunWorkload(Kind kind, size_t num_threads, uint64_t ticks) {
  DatabaseOptions db_opts;
  db_opts.num_threads = num_threads;
  Database db(db_opts);
  TableOptions t_opts;
  t_opts.rows_per_segment = 16;
  t_opts.num_shards = 8;
  db.CreateTable("t", OneColumnSchema(), t_opts).value();
  const Table* table = &db.GetTable("t").value().table();
  // Spread insertions along the time axis (8 batches, 5 s apart) so
  // age-sensitive fungi see a real age spectrum, not one cohort.
  for (int64_t i = 0; i < 512; ++i) {
    if (i > 0 && i % 64 == 0) {
      EXPECT_TRUE(db.AdvanceTime(5 * kSecond).ok());
    }
    EXPECT_TRUE(db.Insert("t", {Value::Int64(i)}).ok());
  }
  EXPECT_TRUE(
      db.AttachFungus("t", MakeFungus(kind), /*period=*/kSecond).ok());
  EXPECT_TRUE(db.AdvanceTime(static_cast<Duration>(ticks) * kSecond).ok());
  return FingerprintTable(*table);
}

void ExpectIdenticalAcrossThreadCounts(Kind kind, uint64_t ticks) {
  const Fingerprint baseline = RunWorkload(kind, /*num_threads=*/1, ticks);
  EXPECT_FALSE(baseline.empty());
  for (size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    const Fingerprint fp = RunWorkload(kind, threads, ticks);
    ASSERT_EQ(fp.size(), baseline.size())
        << "live-row count diverged at " << threads << " threads";
    auto it = baseline.begin();
    for (const auto& [row, freshness] : fp) {
      EXPECT_EQ(row, it->first)
          << "live-row set diverged at " << threads << " threads";
      EXPECT_EQ(freshness, it->second)
          << "freshness of row " << row << " diverged at " << threads
          << " threads";
      ++it;
    }
  }
}

TEST(ParallelDeterminismTest, EgiIdenticalAt1_2_8Threads) {
  // EGI exercises the hardest case: RNG-driven seeding plus
  // neighbour-spread that crosses shard boundaries through the outbox.
  ExpectIdenticalAcrossThreadCounts(Kind::kEgi, /*ticks=*/25);
}

TEST(ParallelDeterminismTest, ExponentialIdenticalAt1_2_8Threads) {
  ExpectIdenticalAcrossThreadCounts(Kind::kExponential, /*ticks=*/40);
}

TEST(ParallelDeterminismTest, RetentionIdenticalAt1_2_8Threads) {
  // 35 s of insertion spread + 40 ticks: the oldest batches cross the
  // 60 s retention horizon, the youngest survive with partial freshness.
  ExpectIdenticalAcrossThreadCounts(Kind::kRetention, /*ticks=*/40);
}

TEST(ParallelDeterminismTest, EgiDecayActuallyHappened) {
  // Guard against vacuous determinism (nothing decayed anywhere).
  const Fingerprint fp = RunWorkload(Kind::kEgi, /*num_threads=*/2, 25);
  EXPECT_LT(fp.size(), 512u);  // some rows rotted away...
  EXPECT_FALSE(fp.empty());    // ...but not all of them
  bool any_decayed = false;
  for (const auto& [row, freshness] : fp) {
    if (freshness < 1.0) any_decayed = true;
  }
  EXPECT_TRUE(any_decayed);
}

TEST(ParallelDeterminismTest, EgiSpreadCrossesShardBoundaries) {
  // With rows_per_segment=1 and 8 shards, every row's direct time-axis
  // neighbours live in *other* shards, so any spread at all proves the
  // outbox routes infection across shard boundaries.
  DatabaseOptions db_opts;
  db_opts.num_threads = 2;
  Database db(db_opts);
  TableOptions t_opts;
  t_opts.rows_per_segment = 1;
  t_opts.num_shards = 8;
  db.CreateTable("t", OneColumnSchema(), t_opts).value();
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int64(i)}).ok());
  }
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.05;
  p.spread_probability = 1.0;  // deterministic bidirectional growth
  auto fungus = std::make_unique<EgiFungus>(p);
  EgiFungus* egi = fungus.get();
  ASSERT_TRUE(db.AttachFungus("t", std::move(fungus), kSecond).ok());
  ASSERT_TRUE(db.AdvanceTime(6 * kSecond).ok());

  const std::set<RowId> infected = egi->AllInfected();
  ASSERT_GT(infected.size(), 1u);
  std::set<uint32_t> shards_touched;
  const Table* table = &db.GetTable("t").value().table();
  for (RowId row : infected) {
    shards_touched.insert(table->ShardIdOf(row));
  }
  EXPECT_GT(shards_touched.size(), 1u)
      << "infection never left its seed shard";
}

TEST(ParallelDeterminismTest, ShardedParallelCountersAdvance) {
  DatabaseOptions db_opts;
  db_opts.num_threads = 4;
  Database db(db_opts);
  TableOptions t_opts;
  t_opts.rows_per_segment = 8;
  t_opts.num_shards = 4;
  db.CreateTable("t", OneColumnSchema(), t_opts).value();
  for (int64_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(db.AttachFungus("t", MakeFungus(Kind::kExponential), kSecond)
                  .ok());
  ASSERT_TRUE(db.AdvanceTime(10 * kSecond).ok());
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.parallel.shard_ticks"),
            10 * 4);
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.decay.ticks"), 10);
}

}  // namespace
}  // namespace fungusdb
