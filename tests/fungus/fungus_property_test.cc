// Property-style tests: invariants every fungus must satisfy, run as a
// parameterized sweep over all fungus kinds and several decay regimes.
//
//  P1. Freshness is monotone non-increasing between ticks (no fungus may
//      refresh a tuple beyond its previous value, except the documented
//      window-position semantics of sliding_window — checked separately).
//  P2. A tuple is live iff its freshness is > 0.
//  P3. live_rows + rows_killed == total_appended at every step.
//  P4. Fungi never alter attribute values.
//  P5. Decay is deterministic given (fungus seed, tick schedule).

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/importance_fungus.h"
#include "fungus/quota_fungus.h"
#include "fungus/random_blight_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/semantic_fungus.h"
#include "fungus/sliding_window_fungus.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

struct FungusCase {
  std::string label;
  std::function<std::unique_ptr<Fungus>()> make;
  // Sliding-window freshness encodes window position, which may go up
  // when older tuples leave; exempt from strict monotonicity (P1).
  bool monotone_freshness = true;
};

std::vector<FungusCase> AllFungi() {
  std::vector<FungusCase> cases;
  cases.push_back({"retention",
                   [] { return std::make_unique<RetentionFungus>(40); },
                   true});
  cases.push_back({"exponential",
                   [] {
                     ExponentialFungus::Params p;
                     p.lambda_per_second = 2000.0;  // fast on micro scale
                     p.kill_threshold = 0.02;
                     return std::make_unique<ExponentialFungus>(p);
                   },
                   true});
  cases.push_back({"egi",
                   [] {
                     EgiFungus::Params p;
                     p.seeds_per_tick = 2.0;
                     p.decay_step = 0.3;
                     p.spread_probability = 0.8;
                     return std::make_unique<EgiFungus>(p);
                   },
                   true});
  cases.push_back({"random_blight",
                   [] {
                     RandomBlightFungus::Params p;
                     p.tuples_per_tick = 4;
                     p.decay_step = 0.4;
                     return std::make_unique<RandomBlightFungus>(p);
                   },
                   true});
  cases.push_back({"importance",
                   [] {
                     ImportanceFungus::Params p;
                     p.decay_step = 0.15;
                     return std::make_unique<ImportanceFungus>(p);
                   },
                   true});
  cases.push_back({"sliding_window",
                   [] { return std::make_unique<SlidingWindowFungus>(40); },
                   false});
  cases.push_back({"semantic",
                   [] {
                     SemanticFungus::Params p;
                     p.matched_step = 0.4;
                     p.unmatched_step = 0.05;
                     return std::make_unique<SemanticFungus>(
                         ParseExpression("v % 2 = 0").value(), p);
                   },
                   true});
  cases.push_back({"quota",
                   // ~25 rows of int64 payload fit in 4 KiB with the
                   // per-segment overhead at 16 rows/segment.
                   [] { return std::make_unique<QuotaFungus>(4096); },
                   true});
  return cases;
}

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

class FungusPropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  const FungusCase& Case() const {
    static const std::vector<FungusCase>* cases =
        new std::vector<FungusCase>(AllFungi());
    return (*cases)[GetParam()];
  }
};

TEST_P(FungusPropertyTest, CoreInvariantsHoldOverManyTicks) {
  const FungusCase& c = Case();
  SCOPED_TRACE(c.label);

  TableOptions opts;
  opts.rows_per_segment = 16;
  opts.track_access = true;
  Table t("t", OneColSchema(), opts);
  std::unique_ptr<Fungus> fungus = c.make();

  Rng rng(0xF00D);
  std::map<RowId, double> last_freshness;
  std::map<RowId, int64_t> original_value;

  Timestamp now = 0;
  int64_t next_value = 0;
  for (int step = 0; step < 80; ++step) {
    // Interleave ingestion with decay, as a live system would.
    const int inserts = static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < inserts; ++i) {
      const RowId row = t.Append({Value::Int64(next_value)}, now).value();
      original_value[row] = next_value;
      last_freshness[row] = 1.0;
      ++next_value;
    }
    now += 1 + static_cast<Timestamp>(rng.NextBounded(10));
    DecayContext ctx(&t, now);
    fungus->Tick(ctx);

    // P2 + P1 + P4 over every tuple ever appended.
    for (auto& [row, prev] : last_freshness) {
      const double f = t.Freshness(row);
      if (t.IsLive(row)) {
        EXPECT_GT(f, 0.0) << "live tuple with zero freshness, row " << row;
        Result<Value> v = t.GetValue(row, 0);
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(v->AsInt64(), original_value[row])
            << "fungus mutated attribute of row " << row;
      } else {
        EXPECT_DOUBLE_EQ(f, 0.0)
            << "dead/reclaimed tuple with freshness, row " << row;
      }
      if (c.monotone_freshness) {
        EXPECT_LE(f, prev + 1e-9)
            << c.label << " increased freshness of row " << row;
      }
      prev = f;
    }

    // P3: conservation.
    EXPECT_EQ(t.live_rows() + t.rows_killed(), t.total_appended());

    t.ReclaimDeadSegments();
    EXPECT_EQ(t.live_rows() + t.rows_killed(), t.total_appended());
  }
}

TEST_P(FungusPropertyTest, DeterministicReplay) {
  const FungusCase& c = Case();
  SCOPED_TRACE(c.label);

  auto run = [&]() -> std::vector<RowId> {
    TableOptions opts;
    opts.rows_per_segment = 16;
    opts.track_access = true;
    Table t("t", OneColSchema(), opts);
    std::unique_ptr<Fungus> fungus = c.make();
    Timestamp now = 0;
    for (int step = 0; step < 50; ++step) {
      for (int i = 0; i < 3; ++i) {
        t.Append({Value::Int64(step * 3 + i)}, now).value();
      }
      now += 7;
      DecayContext ctx(&t, now);
      fungus->Tick(ctx);
    }
    return t.LiveRows();
  };
  EXPECT_EQ(run(), run());
}

TEST_P(FungusPropertyTest, SustainedDecayBoundsOrEmptiesTheTable) {
  // The first natural law: with no further insertions, the extent keeps
  // shrinking "until it has completely disappeared" (or, for purely
  // rate-limited fungi, at least halves within the horizon).
  const FungusCase& c = Case();
  SCOPED_TRACE(c.label);

  TableOptions opts;
  opts.rows_per_segment = 16;
  opts.track_access = true;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < 200; ++i) {
    t.Append({Value::Int64(i)}, i).value();
  }
  std::unique_ptr<Fungus> fungus = c.make();
  Timestamp now = 200;
  for (int tick = 0; tick < 400; ++tick) {
    now += 10;
    DecayContext ctx(&t, now);
    fungus->Tick(ctx);
  }
  EXPECT_LE(t.live_rows(), 100u) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllFungi, FungusPropertyTest,
    ::testing::Range<size_t>(0, 8), [](const auto& info) {
      return AllFungi()[info.param].label;
    });

}  // namespace
}  // namespace fungusdb
