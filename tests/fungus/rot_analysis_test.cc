#include "fungus/rot_analysis.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

Table FilledTable(int rows, size_t rows_per_segment = 8) {
  TableOptions opts;
  opts.rows_per_segment = rows_per_segment;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < rows; ++i) t.Append({Value::Int64(i)}, i).value();
  return t;
}

TEST(AnalyzeRotTest, AllLive) {
  Table t = FilledTable(10);
  RotStructure rot = AnalyzeRot(t);
  EXPECT_EQ(rot.live_tuples, 10u);
  EXPECT_EQ(rot.dead_tuples, 0u);
  EXPECT_EQ(rot.num_spots, 0u);
}

TEST(AnalyzeRotTest, SingleSpot) {
  Table t = FilledTable(10);
  for (RowId r : {3, 4, 5}) ASSERT_TRUE(t.Kill(r).ok());
  RotStructure rot = AnalyzeRot(t);
  EXPECT_EQ(rot.dead_tuples, 3u);
  EXPECT_EQ(rot.num_spots, 1u);
  EXPECT_EQ(rot.max_spot, 3u);
  EXPECT_DOUBLE_EQ(rot.mean_spot, 3.0);
}

TEST(AnalyzeRotTest, MultipleSpotsAndEdges) {
  Table t = FilledTable(10);
  // Dead: 0, 1 | live 2..6 | dead 7 | live 8 | dead 9.
  for (RowId r : {0, 1, 7, 9}) ASSERT_TRUE(t.Kill(r).ok());
  RotStructure rot = AnalyzeRot(t);
  EXPECT_EQ(rot.num_spots, 3u);
  EXPECT_EQ(rot.max_spot, 2u);
  ASSERT_EQ(rot.spot_lengths.size(), 3u);
  EXPECT_EQ(rot.spot_lengths.front(), 1u);  // sorted ascending
  EXPECT_EQ(rot.spot_lengths.back(), 2u);
}

TEST(AnalyzeRotTest, ReclaimedCountsAsDeadRun) {
  Table t = FilledTable(24, /*rows_per_segment=*/8);
  for (RowId r = 8; r < 16; ++r) ASSERT_TRUE(t.Kill(r).ok());
  t.ReclaimDeadSegments();
  RotStructure rot = AnalyzeRot(t);
  EXPECT_EQ(rot.reclaimed_tuples, 8u);
  EXPECT_EQ(rot.num_spots, 1u);
  EXPECT_EQ(rot.max_spot, 8u);
}

TEST(AnalyzeRotTest, EmptyTable) {
  Table t = FilledTable(0);
  RotStructure rot = AnalyzeRot(t);
  EXPECT_EQ(rot.live_tuples, 0u);
  EXPECT_EQ(rot.num_spots, 0u);
}

TEST(FreshnessHistogramTest, BucketsFreshness) {
  Table t = FilledTable(4);
  ASSERT_TRUE(t.SetFreshness(0, 0.05).ok());
  ASSERT_TRUE(t.SetFreshness(1, 0.55).ok());
  ASSERT_TRUE(t.SetFreshness(2, 0.95).ok());
  // Row 3 stays at 1.0 -> last bucket.
  std::vector<uint64_t> hist = FreshnessHistogram(t, 10);
  ASSERT_EQ(hist.size(), 10u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[5], 1u);
  EXPECT_EQ(hist[9], 2u);  // 0.95 and 1.0
}

TEST(FreshnessHistogramTest, ExcludesDeadTuples) {
  Table t = FilledTable(3);
  ASSERT_TRUE(t.Kill(1).ok());
  std::vector<uint64_t> hist = FreshnessHistogram(t, 4);
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  EXPECT_EQ(total, 2u);
}

TEST(RenderTimeAxisTest, FullyLiveIsHashes) {
  Table t = FilledTable(100);
  EXPECT_EQ(RenderTimeAxis(t, 10), "##########");
}

TEST(RenderTimeAxisTest, DeadRangeShowsDots) {
  Table t = FilledTable(100);
  for (RowId r = 0; r < 50; ++r) ASSERT_TRUE(t.Kill(r).ok());
  const std::string strip = RenderTimeAxis(t, 10);
  EXPECT_EQ(strip.substr(0, 5), ".....");
  EXPECT_EQ(strip.substr(5, 5), "#####");
}

TEST(RenderTimeAxisTest, EmptyTable) {
  Table t = FilledTable(0);
  EXPECT_EQ(RenderTimeAxis(t, 4).size(), 4u);
}

}  // namespace
}  // namespace fungusdb
