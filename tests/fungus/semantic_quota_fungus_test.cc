#include <gtest/gtest.h>

#include "fungus/quota_fungus.h"
#include "fungus/semantic_fungus.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

Schema EventSchema() {
  return Schema::Make({{"level", DataType::kString, false},
                       {"size", DataType::kInt64, false}})
      .value();
}

Table FilledTable(int rows, size_t rows_per_segment = 16) {
  TableOptions opts;
  opts.rows_per_segment = rows_per_segment;
  Table t("t", EventSchema(), opts);
  for (int i = 0; i < rows; ++i) {
    t.Append({Value::String(i % 5 == 0 ? "DEBUG" : "ERROR"),
              Value::Int64(i)},
             i)
        .value();
  }
  return t;
}

// --- SemanticFungus ---

TEST(SemanticFungusTest, MatchedTuplesDecayFaster) {
  Table t = FilledTable(20);
  SemanticFungus::Params p;
  p.matched_step = 0.5;
  p.unmatched_step = 0.1;
  SemanticFungus fungus(ParseExpression("level = 'DEBUG'").value(), p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_TRUE(fungus.bind_status().ok());
  EXPECT_NEAR(t.Freshness(0), 0.5, 1e-9);  // DEBUG row
  EXPECT_NEAR(t.Freshness(1), 0.9, 1e-9);  // ERROR row
}

TEST(SemanticFungusTest, ZeroStepPreservesMatchedTuples) {
  Table t = FilledTable(20);
  SemanticFungus::Params p;
  p.matched_step = 0.0;   // preservation order for ERROR rows
  p.unmatched_step = 1.0;
  SemanticFungus fungus(ParseExpression("level = 'ERROR'").value(), p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  // Only DEBUG rows (every 5th) died.
  EXPECT_EQ(t.live_rows(), 16u);
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_TRUE(t.IsLive(1));
}

TEST(SemanticFungusTest, PredicateMaySeeSystemColumns) {
  Table t = FilledTable(10);
  SemanticFungus::Params p;
  p.matched_step = 1.0;
  p.unmatched_step = 0.0;
  SemanticFungus fungus(ParseExpression("__ts < 5").value(), p);
  DecayContext ctx(&t, 100);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 5u);
  EXPECT_FALSE(t.IsLive(4));
  EXPECT_TRUE(t.IsLive(5));
}

TEST(SemanticFungusTest, BadPredicateDisablesFungusGracefully) {
  Table t = FilledTable(5);
  SemanticFungus fungus(ParseExpression("no_such_column > 1").value(),
                        SemanticFungus::Params{});
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_FALSE(fungus.bind_status().ok());
  EXPECT_EQ(t.live_rows(), 5u);  // nothing decayed
  // Subsequent ticks stay inert rather than spamming errors.
  DecayContext ctx2(&t, 1);
  fungus.Tick(ctx2);
  EXPECT_EQ(t.live_rows(), 5u);
}

TEST(SemanticFungusTest, NonBooleanPredicateRejected) {
  Table t = FilledTable(5);
  SemanticFungus fungus(ParseExpression("size + 1").value(),
                        SemanticFungus::Params{});
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(fungus.bind_status().code(), StatusCode::kTypeMismatch);
}

TEST(SemanticFungusTest, ResetRebinds) {
  Table t = FilledTable(5);
  SemanticFungus fungus(ParseExpression("size >= 0").value(),
                        SemanticFungus::Params{});
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  fungus.Reset();
  EXPECT_TRUE(fungus.bind_status().ok());
  DecayContext ctx2(&t, 1);
  fungus.Tick(ctx2);  // must not crash after reset
}

TEST(SemanticFungusTest, DescribeShowsPredicate) {
  SemanticFungus fungus(ParseExpression("size > 3").value(),
                        SemanticFungus::Params{});
  EXPECT_NE(fungus.Describe().find("size > 3"), std::string::npos);
}

// --- QuotaFungus ---

TEST(QuotaFungusTest, EvictsOldestUntilUnderQuota) {
  Table t = FilledTable(1000, /*rows_per_segment=*/64);
  const size_t full = t.MemoryUsage();
  QuotaFungus fungus(full / 2);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_LE(t.MemoryUsage(), full / 2);
  EXPECT_LT(t.live_rows(), 1000u);
  EXPECT_GT(t.live_rows(), 0u);
  // Survivors are the newest tuples.
  EXPECT_EQ(t.NewestLive().value(), 999u);
  EXPECT_GT(t.OldestLive().value(), 0u);
}

TEST(QuotaFungusTest, UnderQuotaIsNoop) {
  Table t = FilledTable(100);
  QuotaFungus fungus(t.MemoryUsage() * 2);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 100u);
}

TEST(QuotaFungusTest, TinyQuotaEmptiesTable) {
  Table t = FilledTable(200, /*rows_per_segment=*/16);
  QuotaFungus fungus(1);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 0u);
}

TEST(QuotaFungusTest, Describe) {
  QuotaFungus fungus(10 * 1024 * 1024);
  EXPECT_EQ(fungus.Describe(), "quota(10.0 MiB)");
}

}  // namespace
}  // namespace fungusdb
