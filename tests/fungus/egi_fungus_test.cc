#include "fungus/egi_fungus.h"

#include <gtest/gtest.h>

#include "fungus/rot_analysis.h"

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

Table FilledTable(int rows, size_t rows_per_segment = 64) {
  TableOptions opts;
  opts.rows_per_segment = rows_per_segment;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < rows; ++i) {
    t.Append({Value::Int64(i)}, i).value();
  }
  return t;
}

TEST(EgiFungusTest, SeedsInfections) {
  Table t = FilledTable(100);
  EgiFungus::Params p;
  p.seeds_per_tick = 3.0;
  p.decay_step = 0.1;
  EgiFungus fungus(p);
  DecayContext ctx(&t, 1000);
  fungus.Tick(ctx);
  EXPECT_GE(ctx.stats().seeds_planted, 1u);
  EXPECT_FALSE(fungus.infected().empty());
}

TEST(EgiFungusTest, InfectedTuplesLoseFreshnessEachTick) {
  Table t = FilledTable(10);
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.25;
  p.spread_probability = 0.0;  // isolate a single infection
  EgiFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  ASSERT_EQ(fungus.infected().size(), 1u);
  const RowId victim = *fungus.infected().begin();
  EXPECT_NEAR(t.Freshness(victim), 0.75, 1e-9);
  // Later ticks may seed other tuples, but the victim keeps losing
  // decay_step per tick until it dies.
  for (int i = 0; i < 2; ++i) {
    DecayContext c(&t, i);
    fungus.Tick(c);
  }
  EXPECT_NEAR(t.Freshness(victim), 0.25, 1e-9);
}

TEST(EgiFungusTest, TupleDiesAfterEnoughTicks) {
  Table t = FilledTable(10);
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.5;
  p.spread_probability = 0.0;
  EgiFungus fungus(p);
  DecayContext c1(&t, 0);
  fungus.Tick(c1);
  const RowId victim = *fungus.infected().begin();
  // Seeding continues, but the tracked victim dies after two 0.5 steps.
  DecayContext c2(&t, 1);
  fungus.Tick(c2);
  EXPECT_FALSE(t.IsLive(victim));
  // Dead tuples leave the infection set.
  EXPECT_EQ(fungus.infected().count(victim), 0u);
}

TEST(EgiFungusTest, SpreadInfectsNeighbours) {
  Table t = FilledTable(101);
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.05;  // slow death so the spot can grow
  p.spread_probability = 1.0;
  EgiFungus fungus(p);
  // Spreading happens within the seeding tick (paper step 2): after one
  // tick the spot already includes a direct neighbour of the seed.
  DecayContext c1(&t, 0);
  fungus.Tick(c1);
  ASSERT_GE(fungus.infected().size(), 2u);
  bool has_adjacent_pair = false;
  RowId prev_row = 0;
  bool first = true;
  for (RowId r : fungus.infected()) {
    if (!first && r == prev_row + 1) has_adjacent_pair = true;
    prev_row = r;
    first = false;
  }
  EXPECT_TRUE(has_adjacent_pair);
  // Further ticks grow the spot bidirectionally.
  const size_t before = fungus.infected().size();
  DecayContext c2(&t, 1);
  fungus.Tick(c2);
  EXPECT_GT(fungus.infected().size(), before);
}

TEST(EgiFungusTest, CreatesContiguousRottingSpots) {
  // The Blue-Cheese claim: after many ticks, dead tuples form runs.
  Table t = FilledTable(2000, /*rows_per_segment=*/256);
  EgiFungus::Params p;
  p.seeds_per_tick = 0.5;
  p.decay_step = 0.2;
  p.spread_probability = 1.0;
  EgiFungus fungus(p);
  for (int tick = 0; tick < 120; ++tick) {
    DecayContext ctx(&t, tick);
    fungus.Tick(ctx);
  }
  RotStructure rot = AnalyzeRot(t);
  ASSERT_GT(rot.dead_tuples + rot.reclaimed_tuples, 50u);
  // Far fewer spots than dead tuples => grouped eviction, not pinpricks.
  EXPECT_LT(rot.num_spots * 4, rot.dead_tuples + rot.reclaimed_tuples);
  EXPECT_GT(rot.max_spot, 8u);
}

TEST(EgiFungusTest, DeterministicGivenSeed) {
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 0.3;
  p.rng_seed = 777;
  Table t1 = FilledTable(500);
  Table t2 = FilledTable(500);
  EgiFungus f1(p);
  EgiFungus f2(p);
  for (int tick = 0; tick < 30; ++tick) {
    DecayContext c1(&t1, tick);
    DecayContext c2(&t2, tick);
    f1.Tick(c1);
    f2.Tick(c2);
  }
  EXPECT_EQ(t1.live_rows(), t2.live_rows());
  EXPECT_EQ(t1.LiveRows(), t2.LiveRows());
}

TEST(EgiFungusTest, AgeBiasPrefersOldTuples) {
  Table t = FilledTable(10000, /*rows_per_segment=*/1024);
  EgiFungus::Params p;
  p.seeds_per_tick = 1.0;
  p.decay_step = 1.0;  // immediate death: each seed kills one tuple
  p.spread_probability = 0.0;
  p.age_bias = 4.0;
  EgiFungus fungus(p);
  uint64_t old_kills = 0, kills = 0;
  for (int tick = 0; tick < 400; ++tick) {
    DecayContext ctx(&t, tick);
    fungus.Tick(ctx);
    for (RowId r : ctx.killed()) {
      ++kills;
      if (r < 5000) ++old_kills;
    }
  }
  ASSERT_GT(kills, 100u);
  // With bias 4 the older half should absorb well over half the kills.
  EXPECT_GT(static_cast<double>(old_kills) / kills, 0.7);
}

TEST(EgiFungusTest, ResetClearsInfections) {
  Table t = FilledTable(50);
  EgiFungus::Params p;
  EgiFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_FALSE(fungus.infected().empty());
  fungus.Reset();
  EXPECT_TRUE(fungus.infected().empty());
}

TEST(EgiFungusTest, EmptyTableTickIsHarmless) {
  Table t("t", OneColSchema());
  EgiFungus fungus(EgiFungus::Params{});
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_EQ(ctx.stats().tuples_killed, 0u);
}

}  // namespace
}  // namespace fungusdb
