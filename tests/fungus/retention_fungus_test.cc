#include "fungus/retention_fungus.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

TEST(RetentionFungusTest, KillsTuplesPastRetention) {
  Table t("t", OneColSchema());
  // Rows inserted at t=0, 1h, 2h.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, i * kHour).ok());
  }
  RetentionFungus fungus(/*retention=*/90 * kMinute);
  DecayContext ctx(&t, /*now=*/2 * kHour);
  fungus.Tick(ctx);
  // Row 0 is 2h old (>= 90m): dead. Row 1 is 1h old: alive. Row 2: fresh.
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_TRUE(t.IsLive(1));
  EXPECT_TRUE(t.IsLive(2));
  EXPECT_EQ(ctx.stats().tuples_killed, 1u);
}

TEST(RetentionFungusTest, FreshnessIsRemainingLifeFraction) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  RetentionFungus fungus(10 * kSecond);
  DecayContext ctx(&t, /*now=*/4 * kSecond);
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(0), 0.6, 1e-9);
}

TEST(RetentionFungusTest, BrandNewTupleStaysFullyFresh) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 100).ok());
  RetentionFungus fungus(kMinute);
  DecayContext ctx(&t, /*now=*/100);
  fungus.Tick(ctx);
  EXPECT_DOUBLE_EQ(t.Freshness(0), 1.0);
}

TEST(RetentionFungusTest, EventuallyEmptiesTheTable) {
  // The paper: decay proceeds "until it has been completely disappeared".
  Table t("t", OneColSchema());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, i * kSecond).ok());
  }
  RetentionFungus fungus(10 * kSecond);
  DecayContext ctx(&t, /*now=*/1000 * kSecond);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 0u);
}

TEST(RetentionFungusTest, Describe) {
  RetentionFungus fungus(7 * kDay);
  EXPECT_EQ(fungus.Describe(), "retention(7d)");
  EXPECT_EQ(fungus.name(), "retention");
}

TEST(RetentionFungusTest, TickOnEmptyTableIsHarmless) {
  Table t("t", OneColSchema());
  RetentionFungus fungus(kDay);
  DecayContext ctx(&t, kDay);
  fungus.Tick(ctx);
  EXPECT_EQ(ctx.stats().tuples_killed, 0u);
}

TEST(RetentionFungusTest, SkipsFullyDeadSegmentsViaZoneMap) {
  TableOptions opts;
  opts.rows_per_segment = 4;
  Table t("t", OneColSchema(), opts);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, /*now=*/0).ok());
  }
  for (RowId r = 0; r < 4; ++r) {
    ASSERT_TRUE(t.Kill(r).ok());  // segment 0 fully dead
  }
  RetentionFungus fungus(/*retention=*/kHour);
  DecayContext ctx(&t, /*now=*/kMinute);
  fungus.Tick(ctx);
  EXPECT_EQ(ctx.stats().segments_skipped, 1u);
  // The survivors still decayed normally.
  EXPECT_EQ(ctx.stats().tuples_touched, 8u);
  EXPECT_NEAR(t.Freshness(5), 1.0 - 1.0 / 60.0, 1e-9);
}

TEST(RetentionFungusTest, SkipsFrozenFreshSegmentsViaZoneMap) {
  TableOptions opts;
  opts.rows_per_segment = 4;
  Table t("t", OneColSchema(), opts);
  // Segment 0: old rows (will decay). Segment 1: rows inserted at the
  // tick instant with untouched freshness 1.0 — every write this tick
  // would be a no-op, so the zone map lets the fungus skip it whole.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, /*now=*/0).ok());
  }
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, /*now=*/10 * kMinute).ok());
  }
  RetentionFungus fungus(/*retention=*/kHour);
  DecayContext ctx(&t, /*now=*/10 * kMinute);
  fungus.Tick(ctx);
  EXPECT_EQ(ctx.stats().segments_skipped, 1u);
  EXPECT_EQ(ctx.stats().tuples_touched, 4u);
  for (RowId r = 4; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(t.Freshness(r), 1.0);
  }
  // Once a skipped segment's rows age past `now`, the next tick must
  // stop skipping it (min_ts < now) and decay normally.
  DecayContext later(&t, /*now=*/20 * kMinute);
  fungus.Tick(later);
  EXPECT_EQ(later.stats().segments_skipped, 0u);
  EXPECT_NEAR(t.Freshness(4), 1.0 - 10.0 / 60.0, 1e-9);
}

TEST(RetentionFungusTest, SerialAndShardedTicksSkipIdentically) {
  // The determinism contract: the per-shard planner must take the same
  // zone-map skip decisions (and produce the same stats) as the serial
  // tick over an identical table.
  auto build = [] {
    TableOptions opts;
    opts.rows_per_segment = 4;
    opts.num_shards = 3;
    Table t("t", OneColSchema(), opts);
    for (int i = 0; i < 24; ++i) {
      FUNGUSDB_CHECK_OK(
          t.Append({Value::Int64(i)}, (i / 4) * kMinute).status());
    }
    for (RowId r = 8; r < 12; ++r) {
      FUNGUSDB_CHECK_OK(t.Kill(r));  // one fully dead segment
    }
    return t;
  };
  const Timestamp now = 5 * kMinute;

  Table serial_table = build();
  RetentionFungus serial_fungus(kHour);
  DecayContext serial_ctx(&serial_table, now);
  serial_fungus.Tick(serial_ctx);

  Table sharded_table = build();
  RetentionFungus sharded_fungus(kHour);
  ASSERT_TRUE(sharded_fungus.SupportsShardedTick());
  sharded_fungus.BeginShardedTick(sharded_table, now);
  uint64_t planned_skips = 0;
  uint64_t planned_actions = 0;
  for (uint32_t s = 0; s < sharded_table.num_shards(); ++s) {
    ShardPlanContext plan_ctx(&sharded_table, s, now, /*tick_index=*/0);
    sharded_fungus.PlanShard(plan_ctx);
    ShardPlan plan = plan_ctx.TakePlan();
    planned_skips += plan.segments_skipped;
    planned_actions += plan.actions.size();
  }
  EXPECT_EQ(planned_skips, serial_ctx.stats().segments_skipped);
  EXPECT_EQ(planned_actions, serial_ctx.stats().tuples_touched);
  EXPECT_GT(planned_skips, 0u);
}

}  // namespace
}  // namespace fungusdb
