#include "fungus/retention_fungus.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

TEST(RetentionFungusTest, KillsTuplesPastRetention) {
  Table t("t", OneColSchema());
  // Rows inserted at t=0, 1h, 2h.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, i * kHour).ok());
  }
  RetentionFungus fungus(/*retention=*/90 * kMinute);
  DecayContext ctx(&t, /*now=*/2 * kHour);
  fungus.Tick(ctx);
  // Row 0 is 2h old (>= 90m): dead. Row 1 is 1h old: alive. Row 2: fresh.
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_TRUE(t.IsLive(1));
  EXPECT_TRUE(t.IsLive(2));
  EXPECT_EQ(ctx.stats().tuples_killed, 1u);
}

TEST(RetentionFungusTest, FreshnessIsRemainingLifeFraction) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  RetentionFungus fungus(10 * kSecond);
  DecayContext ctx(&t, /*now=*/4 * kSecond);
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(0), 0.6, 1e-9);
}

TEST(RetentionFungusTest, BrandNewTupleStaysFullyFresh) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 100).ok());
  RetentionFungus fungus(kMinute);
  DecayContext ctx(&t, /*now=*/100);
  fungus.Tick(ctx);
  EXPECT_DOUBLE_EQ(t.Freshness(0), 1.0);
}

TEST(RetentionFungusTest, EventuallyEmptiesTheTable) {
  // The paper: decay proceeds "until it has been completely disappeared".
  Table t("t", OneColSchema());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.Append({Value::Int64(i)}, i * kSecond).ok());
  }
  RetentionFungus fungus(10 * kSecond);
  DecayContext ctx(&t, /*now=*/1000 * kSecond);
  fungus.Tick(ctx);
  EXPECT_EQ(t.live_rows(), 0u);
}

TEST(RetentionFungusTest, Describe) {
  RetentionFungus fungus(7 * kDay);
  EXPECT_EQ(fungus.Describe(), "retention(7d)");
  EXPECT_EQ(fungus.name(), "retention");
}

TEST(RetentionFungusTest, TickOnEmptyTableIsHarmless) {
  Table t("t", OneColSchema());
  RetentionFungus fungus(kDay);
  DecayContext ctx(&t, kDay);
  fungus.Tick(ctx);
  EXPECT_EQ(ctx.stats().tuples_killed, 0u);
}

}  // namespace
}  // namespace fungusdb
