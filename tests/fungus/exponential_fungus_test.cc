#include "fungus/exponential_fungus.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema OneColSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

TEST(ExponentialFungusTest, DecaysByElapsedTime) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus::Params p;
  p.lambda_per_second = std::log(2.0);  // halves every second
  p.kill_threshold = 0.0001;
  ExponentialFungus fungus(p);

  DecayContext ctx1(&t, kSecond);
  fungus.Tick(ctx1);
  EXPECT_NEAR(t.Freshness(0), 0.5, 1e-9);

  DecayContext ctx2(&t, 2 * kSecond);
  fungus.Tick(ctx2);
  EXPECT_NEAR(t.Freshness(0), 0.25, 1e-9);
}

TEST(ExponentialFungusTest, FromHalfLifeHalvesPerHalfLife) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus fungus(ExponentialFungus::FromHalfLife(kHour));
  DecayContext ctx(&t, kHour);
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(0), 0.5, 1e-9);
}

TEST(ExponentialFungusTest, KillsBelowThreshold) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus::Params p;
  p.lambda_per_second = 1.0;
  p.kill_threshold = 0.05;
  ExponentialFungus fungus(p);
  // After 4 seconds freshness would be e^-4 ~= 0.018 < 0.05.
  DecayContext ctx(&t, 4 * kSecond);
  fungus.Tick(ctx);
  EXPECT_FALSE(t.IsLive(0));
}

TEST(ExponentialFungusTest, ZeroElapsedIsNoop) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus::Params p;
  p.lambda_per_second = 10.0;
  ExponentialFungus fungus(p);
  DecayContext ctx(&t, 0);
  fungus.Tick(ctx);
  EXPECT_DOUBLE_EQ(t.Freshness(0), 1.0);
}

TEST(ExponentialFungusTest, ResetRestartsTheClock) {
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus::Params p;
  p.lambda_per_second = std::log(2.0);
  ExponentialFungus fungus(p);
  DecayContext ctx(&t, kSecond);
  fungus.Tick(ctx);
  fungus.Reset();
  // After reset, the next tick decays from start_time again: 2 more
  // halvings on top of the existing 0.5.
  DecayContext ctx2(&t, 2 * kSecond);
  fungus.Tick(ctx2);
  EXPECT_NEAR(t.Freshness(0), 0.125, 1e-9);
}

TEST(ExponentialFungusTest, NewerTuplesNotSpared) {
  // Uniform decay hits every live tuple equally, regardless of age —
  // that is what distinguishes it from retention.
  Table t("t", OneColSchema());
  ASSERT_TRUE(t.Append({Value::Int64(0)}, 0).ok());
  ExponentialFungus::Params p;
  p.lambda_per_second = std::log(2.0);
  ExponentialFungus fungus(p);
  DecayContext ctx(&t, kSecond);
  // Append a new tuple just before the tick: it is decayed too.
  ASSERT_TRUE(t.Append({Value::Int64(1)}, kSecond).ok());
  fungus.Tick(ctx);
  EXPECT_NEAR(t.Freshness(1), 0.5, 1e-9);
}

TEST(ExponentialFungusTest, DescribeMentionsParameters) {
  ExponentialFungus::Params p;
  p.lambda_per_second = 0.5;
  ExponentialFungus fungus(p);
  EXPECT_NE(fungus.Describe().find("exponential"), std::string::npos);
  EXPECT_EQ(fungus.name(), "exponential");
}

}  // namespace
}  // namespace fungusdb
