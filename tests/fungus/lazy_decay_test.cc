// Differential test for the lazy-decay protocol: a database ticking
// with lazy_decay on must be observably bit-identical to one ticking
// eagerly — same effective freshness, same death sets, same query
// answers, same snapshot bytes — across a randomized mix of inserts,
// time advances (decay ticks), queries, and snapshot round-trips.
// The only permitted divergence is the fold bookkeeping itself
// (segments_folded / rows_materialized / fold_ratio).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_io.h"
#include "common/random.h"
#include "core/database.h"
#include "core/session.h"
#include "fungus/retention_fungus.h"
#include "fungus/rot_analysis.h"
#include "persist/snapshot.h"

namespace fungusdb {
namespace {

Schema EventSchema() {
  return Schema::Make({{"k", DataType::kInt64, false},
                       {"v", DataType::kFloat64, false}})
      .value();
}

std::unique_ptr<Database> MakeDb(bool lazy) {
  auto db = std::make_unique<Database>();
  TableOptions opts;
  opts.rows_per_segment = 8;
  opts.num_shards = 3;
  opts.lazy_decay = lazy;
  FUNGUSDB_CHECK_OK(db->CreateTable("r", EventSchema(), opts).status());
  FUNGUSDB_CHECK_OK(
      db->AttachFungus("r", std::make_unique<RetentionFungus>(8 * kHour),
                       /*interval=*/kHour)
          .status());
  return db;
}

const Table& TableOf(Database& db) {
  return db.GetTable("r").value().table();
}

/// Effective freshness and death sets must match bit for bit — no
/// tolerance. This is the heart of the lazy-decay contract.
void ExpectTablesBitIdentical(const Table& lazy, const Table& eager) {
  ASSERT_EQ(lazy.total_appended(), eager.total_appended());
  for (RowId row = 0; row < lazy.total_appended(); ++row) {
    ASSERT_EQ(lazy.Contains(row), eager.Contains(row)) << "row " << row;
    if (!lazy.Contains(row)) continue;
    ASSERT_EQ(lazy.IsLive(row), eager.IsLive(row)) << "row " << row;
    ASSERT_EQ(lazy.Freshness(row), eager.Freshness(row)) << "row " << row;
  }
}

/// Query answers must match value for value. Pruning *statistics* are
/// deliberately not compared: eager ticks widen freshness zones
/// loosely while lazy folds keep them exact, so the two modes may
/// prune different segment counts — but both bounds are conservative,
/// so the answer sets are identical.
void ExpectSameAnswers(Database& lazy, Database& eager) {
  static const char* const kQueries[] = {
      "SELECT k, v FROM r",
      "SELECT k FROM r WHERE __freshness > 0.6",
      "SELECT k FROM r WHERE __freshness < 0.4",
      "SELECT count(*) AS n FROM r WHERE v >= 0.5",
  };
  for (const char* sql : kQueries) {
    ResultSet a = lazy.ExecuteSql(sql).value();
    ResultSet b = eager.ExecuteSql(sql).value();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << sql;
    ASSERT_EQ(a.column_names, b.column_names) << sql;
    for (size_t i = 0; i < a.num_rows(); ++i) {
      for (size_t j = 0; j < a.num_columns(); ++j) {
        ASSERT_TRUE(a.at(i, j).Equals(b.at(i, j)))
            << sql << " row " << i << " col " << j;
      }
    }
  }
}

/// Live rows as (k, v, freshness) triples in row order. The snapshot
/// format compacts reclaimed segments and renumbers rows on load, so
/// round-trip comparisons go through this renumbering-proof view.
std::vector<std::tuple<int64_t, double, double>> LiveRows(
    const Table& table) {
  std::vector<std::tuple<int64_t, double, double>> out;
  table.ForEachLive([&](RowId row) {
    out.emplace_back(table.GetValue(row, 0).value().AsInt64(),
                     table.GetValue(row, 1).value().AsFloat64(),
                     table.Freshness(row));
  });
  return out;
}

/// Serializes both databases (which materializes any pending decay)
/// and requires byte-identical snapshots; then loads one back and
/// requires the reloaded live rows to match the source bit for bit.
void ExpectSnapshotsBitIdentical(Database& lazy, Database& eager) {
  BufferWriter lazy_bytes;
  BufferWriter eager_bytes;
  SerializeDatabase(lazy, lazy_bytes);
  SerializeDatabase(eager, eager_bytes);
  ASSERT_EQ(lazy_bytes.buffer(), eager_bytes.buffer());

  BufferReader reader(lazy_bytes.buffer());
  std::unique_ptr<Database> reloaded = DeserializeDatabase(reader).value();
  EXPECT_EQ(LiveRows(TableOf(*reloaded)), LiveRows(TableOf(eager)));
}

TEST(LazyDecayDifferentialTest, RandomizedMixedWorkloadIsBitIdentical) {
  for (const uint64_t seed : {1ull, 42ull, 20260808ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    std::unique_ptr<Database> lazy = MakeDb(true);
    std::unique_ptr<Database> eager = MakeDb(false);

    for (int step = 0; step < 60; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      const uint64_t op = rng.NextBounded(100);
      if (op < 45) {
        const int batch = static_cast<int>(rng.NextBounded(8)) + 1;
        for (int i = 0; i < batch; ++i) {
          const int64_t k = rng.NextInt(0, 9);
          const double v = rng.NextDouble();
          FUNGUSDB_CHECK_OK(
              lazy->Insert("r", {Value::Int64(k), Value::Float64(v)})
                  .status());
          FUNGUSDB_CHECK_OK(
              eager->Insert("r", {Value::Int64(k), Value::Float64(v)})
                  .status());
        }
      } else if (op < 80) {
        // Anything from a sub-interval nudge to a multi-tick jump.
        const Duration d =
            static_cast<Duration>(rng.NextBounded(5) + 1) * 30 * kMinute;
        FUNGUSDB_CHECK_OK(lazy->AdvanceTime(d).status());
        FUNGUSDB_CHECK_OK(eager->AdvanceTime(d).status());
      } else if (op < 92) {
        ExpectSameAnswers(*lazy, *eager);
      } else {
        ExpectSnapshotsBitIdentical(*lazy, *eager);
      }
      ExpectTablesBitIdentical(TableOf(*lazy), TableOf(*eager));
    }

    // Both sides stay fsck-clean (zone maps conservative, no deferred
    // deaths, decay epochs ordered).
    EXPECT_TRUE(lazy->Fsck().ok());
    EXPECT_TRUE(eager->Fsck().ok());

    // RotReports agree on everything except the fold bookkeeping.
    const RotReport lr = BuildRotReport(TableOf(*lazy), &lazy->scheduler());
    const RotReport er =
        BuildRotReport(TableOf(*eager), &eager->scheduler());
    EXPECT_EQ(lr.structure.live_tuples, er.structure.live_tuples);
    EXPECT_EQ(lr.structure.dead_tuples, er.structure.dead_tuples);
    EXPECT_EQ(lr.structure.reclaimed_tuples, er.structure.reclaimed_tuples);
    EXPECT_EQ(lr.structure.spot_lengths, er.structure.spot_lengths);
    EXPECT_EQ(lr.freshness_histogram, er.freshness_histogram);
    EXPECT_EQ(lr.oldest_live_ts, er.oldest_live_ts);
    EXPECT_EQ(lr.estimated_ticks_to_death, er.estimated_ticks_to_death);
    EXPECT_EQ(lr.decay_ticks, er.decay_ticks);
    EXPECT_EQ(lr.heatmap, er.heatmap);
    // The modes must actually have diverged in mechanism: the lazy side
    // folded at least one segment, the eager side never folds.
    EXPECT_GT(lr.segments_folded, 0u);
    EXPECT_EQ(er.segments_folded, 0u);
  }
}

// TSan target: epoch-pinned readers reconstruct effective freshness
// (stored - pending) while the writer's ticks keep folding new pending
// decrements into the same segments. Any unsynchronized access between
// the fold (apply phase) and a reader's replay of pending_decay() is a
// race this test exists to surface.
TEST(LazyDecayConcurrencyTest, ReadersRaceFoldingTicks) {
  constexpr int kRows = 2048;
  constexpr int kTicks = 50;
  constexpr int kReaders = 4;

  Database db;
  TableOptions opts;
  opts.rows_per_segment = 64;  // ~32 segments over 4 shards
  opts.num_shards = 4;
  opts.lazy_decay = true;
  FUNGUSDB_CHECK_OK(db.CreateTable("r", EventSchema(), opts).status());
  for (int i = 0; i < kRows; ++i) {
    FUNGUSDB_CHECK_OK(
        db.Insert("r", {Value::Int64(i), Value::Float64(i * 0.001)})
            .status());
  }
  // Retention far beyond the test horizon: every tick after the first
  // is a uniform decrement the zone map proves fold-safe, and the
  // freshness floor stays far above the query threshold.
  FUNGUSDB_CHECK_OK(
      db.AttachFungus("r", std::make_unique<RetentionFungus>(1000 * kHour),
                      /*interval=*/kMinute)
          .status());
  FUNGUSDB_CHECK_OK(db.AdvanceTime(kMinute).status());  // formula pass

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Session session(&db);
      while (!writer_done.load(std::memory_order_acquire)) {
        const Result<ResultSet> rs = session.ExecuteRead(
            "SELECT count(*) AS n FROM r WHERE __freshness > 0.1",
            /*epoch=*/nullptr);
        // Nothing ever dies and effective freshness stays near 1.0, so
        // every pinned snapshot must see the full table.
        if (!rs.ok() || rs.value().at(0, 0).AsInt64() != kRows) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  for (int k = 0; k < kTicks; ++k) {
    FUNGUSDB_CHECK_OK(db.AdvanceTime(kMinute).status());
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The race must actually have exercised the fold path.
  const auto info = db.scheduler().StatsForTable(&TableOf(db));
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->decay.segments_folded, 0u);
}

}  // namespace
}  // namespace fungusdb
