#include "core/database.h"

#include <gtest/gtest.h>

#include "fungus/retention_fungus.h"
#include "summary/count_min_sketch.h"
#include "core/internal_access.h"

namespace fungusdb {
namespace {

Schema ReadingSchema() {
  return Schema::Make({{"sensor", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, false}})
      .value();
}

TEST(DatabaseTest, CreateGetDropTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  EXPECT_TRUE(db.GetTable("r").ok());
  EXPECT_EQ(db.CreateTable("r", ReadingSchema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateTable("", ReadingSchema()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.TableNames().size(), 1u);
  ASSERT_TRUE(db.DropTable("r").ok());
  EXPECT_EQ(db.GetTable("r").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.DropTable("r").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, InsertStampsVirtualTime) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  ASSERT_TRUE(db.AdvanceTime(5 * kSecond).ok());
  const RowId row =
      db.Insert("r", {Value::Int64(1), Value::Float64(20.0)}).value();
  const Table& t = db.GetTable("r").value().table();
  EXPECT_EQ(t.InsertTime(row).value(), 5 * kSecond);
}

TEST(DatabaseTest, AdvanceTimeRunsAttachedFungi) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  ASSERT_TRUE(db.Insert("r", {Value::Int64(1), Value::Float64(1.0)}).ok());
  ASSERT_TRUE(db.AttachFungus("r",
                              std::make_unique<RetentionFungus>(kMinute),
                              /*period=*/kSecond)
                  .ok());
  const uint64_t ticks = db.AdvanceTime(2 * kMinute).value();
  EXPECT_EQ(ticks, 120u);
  EXPECT_EQ(db.GetTable("r").value().live_rows(), 0u);
}

TEST(DatabaseTest, AttachFungusToUnknownTableFails) {
  Database db;
  EXPECT_EQ(db.AttachFungus("ghost",
                            std::make_unique<RetentionFungus>(kDay), kHour)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, NegativeTimeAdvanceRejected) {
  Database db;
  EXPECT_EQ(db.AdvanceTime(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, ExecuteSqlEndToEnd) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db.Insert("r", {Value::Int64(i % 2), Value::Float64(i * 1.0)})
            .ok());
  }
  ResultSet rs =
      db.ExecuteSql("SELECT sensor, count(*) AS n FROM r GROUP BY sensor "
                    "ORDER BY sensor")
          .value();
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(0, 1).AsInt64(), 5);
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.query.executed"), 1);
}

TEST(DatabaseTest, SqlErrorsSurface) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  EXPECT_EQ(db.ExecuteSql("SELEC * FROM r").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(db.ExecuteSql("SELECT * FROM ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.ExecuteSql("SELECT ghost_col FROM r").status().code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, IngestFromSource) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  VectorSource source(ReadingSchema(),
                      {{Value::Int64(1), Value::Float64(1.0)},
                       {Value::Int64(2), Value::Float64(2.0)}});
  EXPECT_EQ(db.Ingest("r", source, 10).value(), 2u);
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.ingest.rows"), 2);
}

TEST(DatabaseTest, IngestPacedRunsDueDecay) {
  DatabaseOptions opts;
  Database db(opts);
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  ASSERT_TRUE(db.AttachFungus("r",
                              std::make_unique<RetentionFungus>(kSecond),
                              /*period=*/kSecond)
                  .ok());
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back({Value::Int64(i), Value::Float64(1.0)});
  }
  VectorSource source(ReadingSchema(), rows);
  ASSERT_TRUE(db.IngestPaced("r", source, 5, kSecond).ok());
  // Rows arrive 1s apart with 1s retention: only the newest survives
  // each tick; the table stays bounded rather than growing to 5.
  EXPECT_LE(db.GetTable("r").value().live_rows(), 2u);
}

TEST(DatabaseTest, ConsumingQueryCooksIntoCellar) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        db.Insert("r", {Value::Int64(i % 3), Value::Float64(i)}).ok());
  }
  CookSpec spec;
  spec.table_name = "r";
  spec.trigger = CookTrigger::kOnRot;
  spec.cellar_name = "sensors_seen";
  spec.column = "sensor";
  spec.factory = [] { return std::make_unique<CountMinSketch>(64, 4); };
  ASSERT_TRUE(db.AddCookSpec(spec).ok());

  ResultSet rs =
      db.ExecuteSql("CONSUME SELECT * FROM r WHERE sensor = 0").value();
  EXPECT_EQ(rs.stats.rows_consumed, 2u);
  const Summary* cooked = db.cellar().Find("sensors_seen");
  ASSERT_NE(cooked, nullptr);
  EXPECT_EQ(cooked->observations(), 2u);
  EXPECT_EQ(db.metrics().GetCounter("fungusdb.query.rows_consumed"), 2);
}

TEST(DatabaseTest, AddCookSpecRequiresTable) {
  Database db;
  CookSpec spec;
  spec.table_name = "ghost";
  spec.cellar_name = "x";
  spec.column = "c";
  spec.factory = [] { return std::make_unique<CountMinSketch>(8, 2); };
  EXPECT_EQ(db.AddCookSpec(spec).code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, HealthReport) {
  Database db;
  ASSERT_TRUE(db.CreateTable("r", ReadingSchema()).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db.Insert("r", {Value::Int64(i), Value::Float64(i)}).ok());
  }
  ASSERT_TRUE(internal::DatabaseInternal::MutableTable(db, "r")
                  .value()
                  ->SetFreshness(0, 0.5)
                  .ok());
  HealthReport health = db.Health();
  ASSERT_EQ(health.tables.size(), 1u);
  EXPECT_EQ(health.tables[0].live_rows, 4u);
  EXPECT_NEAR(health.tables[0].mean_freshness, 0.875, 1e-9);
  EXPECT_NE(health.ToString().find("table r"), std::string::npos);
}

TEST(DatabaseTest, StartTimeOption) {
  DatabaseOptions opts;
  opts.start_time = 42 * kDay;
  Database db(opts);
  EXPECT_EQ(db.Now(), 42 * kDay);
}

}  // namespace
}  // namespace fungusdb
