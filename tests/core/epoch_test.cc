#include "core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace fungusdb {
namespace {

TEST(EpochTest, EveryWriteSectionPublishesANewEpoch) {
  EpochManager epochs;
  EXPECT_EQ(epochs.epoch(), 0u);
  { EpochManager::WriteGuard guard = epochs.BeginWrite(); }
  EXPECT_EQ(epochs.epoch(), 1u);
  { EpochManager::WriteGuard guard = epochs.BeginWrite(); }
  EXPECT_EQ(epochs.epoch(), 2u);
}

TEST(EpochTest, PublishBumpsMidSection) {
  EpochManager epochs;
  {
    EpochManager::WriteGuard guard = epochs.BeginWrite();
    // One epoch per decay tick, even when one write section replays
    // many ticks.
    EXPECT_EQ(epochs.Publish(), 1u);
    EXPECT_EQ(epochs.Publish(), 2u);
  }
  EXPECT_EQ(epochs.epoch(), 3u);  // the section release adds its own
}

TEST(EpochTest, ReadPinReportsThePinnedEpoch) {
  EpochManager epochs;
  { EpochManager::WriteGuard guard = epochs.BeginWrite(); }
  EpochManager::ReadPin pin = epochs.PinRead();
  EXPECT_TRUE(pin.pinned());
  EXPECT_EQ(pin.epoch(), 1u);
  pin.Release();
  EXPECT_FALSE(pin.pinned());
}

TEST(EpochTest, ScopedConstructorsPinAndGuard) {
  EpochManager epochs;
  {
    // The constructor form the thread safety analysis tracks —
    // equivalent to BeginWrite()/PinRead() in every observable way.
    EpochManager::WriteGuard guard(epochs);
  }
  EXPECT_EQ(epochs.epoch(), 1u);
  {
    EpochManager::ReadPin pin(epochs);
    EXPECT_TRUE(pin.pinned());
    EXPECT_EQ(pin.epoch(), 1u);
    // A nested constructor-form pin is reentrant like PinRead().
    EpochManager::ReadPin nested(epochs);
    EXPECT_TRUE(nested.pinned());
  }
  // Every pin released: a writer can enter immediately.
  EpochManager::WriteGuard guard(epochs);
}

TEST(EpochTest, ReadPinIsMovable) {
  EpochManager epochs;
  EpochManager::ReadPin pin = epochs.PinRead();
  EpochManager::ReadPin moved = std::move(pin);
  EXPECT_TRUE(moved.pinned());
  EXPECT_FALSE(pin.pinned());  // NOLINT(bugprone-use-after-move)
  moved.Release();
  // With every pin released, a writer can enter immediately.
  EpochManager::WriteGuard guard = epochs.BeginWrite();
}

TEST(EpochTest, ActiveWriterThreadGetsANoOpPin) {
  EpochManager epochs;
  EpochManager::WriteGuard guard = epochs.BeginWrite();
  // Writer-side code may call read-pinned helpers (Health inside a
  // write section, say) without deadlocking against itself.
  EpochManager::ReadPin pin = epochs.PinRead();
  EXPECT_TRUE(pin.pinned());
  pin.Release();
  guard.Release();
  EXPECT_EQ(epochs.epoch(), 1u);  // only the write section published
}

TEST(EpochTest, ReentrantPinBypassesAWaitingWriter) {
  EpochManager epochs;
  EpochManager::ReadPin outer = epochs.PinRead();

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    EpochManager::WriteGuard guard = epochs.BeginWrite();
    writer_done.store(true);
  });
  // Give the writer time to queue behind the outer pin.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load());

  // A thread already holding a pin must be able to re-pin even with a
  // writer waiting — the composition pattern used by read-path meta
  // handlers (outer pin + facade accessors that pin again).
  EpochManager::ReadPin inner = epochs.PinRead();
  EXPECT_TRUE(inner.pinned());
  inner.Release();
  outer.Release();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(EpochTest, WriterExcludesReadersAndReadersSeeFullSections) {
  EpochManager epochs;
  // Two variables with no synchronization of their own: only the epoch
  // manager keeps them consistent. Under a pin they must always agree;
  // a reader observing x != y means it saw a half-applied section.
  int64_t x = 0;
  int64_t y = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::ReadPin pin = epochs.PinRead();
        if (x != y) mismatches.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    EpochManager::WriteGuard guard = epochs.BeginWrite();
    ++x;
    std::this_thread::yield();
    ++y;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(x, 200);
  EXPECT_EQ(y, 200);
  EXPECT_EQ(epochs.epoch(), 200u);
}

TEST(EpochTest, ExportsTheEpochGauge) {
  MetricsRegistry metrics;
  EpochManager epochs;
  epochs.set_metrics(&metrics);
  { EpochManager::WriteGuard guard = epochs.BeginWrite(); }
  EXPECT_EQ(metrics.GetGauge("fungusdb.exec.epoch"), 1.0);
  {
    EpochManager::WriteGuard guard = epochs.BeginWrite();
    epochs.Publish();
    EXPECT_EQ(metrics.GetGauge("fungusdb.exec.epoch"), 2.0);
  }
  EXPECT_EQ(metrics.GetGauge("fungusdb.exec.epoch"), 3.0);
}

}  // namespace
}  // namespace fungusdb
