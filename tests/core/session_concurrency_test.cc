// Readers race decay ticks: N Sessions run SELECT count(*) in a loop
// while the writer replays AdvanceTime ticks that kill row cohorts.
// Every observation is an (epoch, count) pair; the test replays the
// same scripted writer serially and demands that each concurrent
// observation matches the serial replay's count at that epoch exactly.
// A half-applied tick (a count that exists at no epoch boundary) or a
// torn read fails the map lookup. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/session.h"
#include "fungus/retention_fungus.h"

namespace fungusdb {
namespace {

constexpr int kCohorts = 20;
constexpr int kRowsPerCohort = 5;
constexpr int kConcurrentTicks = 30;
constexpr Duration kRetention = 10 * kSecond;

Schema OneColumnSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

/// The scripted prefix both phases share: a table with a retention
/// fungus and kCohorts insert batches spread along the time axis, so
/// the concurrent ticks kill one cohort at a time.
std::unique_ptr<Database> BuildDatabase() {
  auto db = std::make_unique<Database>();
  FUNGUSDB_CHECK_OK(db->CreateTable("t", OneColumnSchema()).status());
  FUNGUSDB_CHECK_OK(db->AttachFungus(
                          "t", std::make_unique<RetentionFungus>(kRetention),
                          /*period=*/kSecond)
                        .status());
  for (int cohort = 0; cohort < kCohorts; ++cohort) {
    for (int i = 0; i < kRowsPerCohort; ++i) {
      FUNGUSDB_CHECK_OK(
          db->Insert("t", {Value::Int64(cohort * 100 + i)}).status());
    }
    FUNGUSDB_CHECK_OK(db->AdvanceTime(kSecond).status());
  }
  return db;
}

TEST(SessionConcurrencyTest, ReadersRacingDecayMatchSerialReplay) {
  // Phase A — serial replay: record the count at every epoch boundary
  // the writer script can produce. Counting goes through the handle
  // (a pinned read), not ExecuteSql, so it does not perturb the epoch
  // sequence.
  std::map<uint64_t, uint64_t> count_at_epoch;
  {
    std::unique_ptr<Database> db = BuildDatabase();
    count_at_epoch[db->epoch()] = db->GetTable("t").value().live_rows();
    for (int k = 0; k < kConcurrentTicks; ++k) {
      FUNGUSDB_CHECK_OK(db->AdvanceTime(kSecond).status());
      count_at_epoch[db->epoch()] = db->GetTable("t").value().live_rows();
    }
    // The script must actually decay something, in steps.
    EXPECT_EQ(db->GetTable("t").value().live_rows(), 0u);
    ASSERT_GT(count_at_epoch.size(), 2u);
  }

  // Phase B — the race: same prefix, same ticks, but readers pin and
  // count concurrently with the writer.
  std::unique_ptr<Database> db = BuildDatabase();
  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};

  constexpr int kReaders = 4;
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> observed(
      kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Session session(db.get());
      while (!writer_done.load(std::memory_order_acquire)) {
        uint64_t epoch = 0;
        const Result<ResultSet> rs =
            session.ExecuteRead("SELECT count(*) AS n FROM t", &epoch);
        if (!rs.ok()) {
          failures.fetch_add(1);
          return;
        }
        observed[r].emplace_back(
            epoch, static_cast<uint64_t>(rs.value().at(0, 0).AsInt64()));
      }
    });
  }

  for (int k = 0; k < kConcurrentTicks; ++k) {
    FUNGUSDB_CHECK_OK(db->AdvanceTime(kSecond).status());
    // A breath between ticks so readers actually interleave epochs.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(failures.load(), 0);

  size_t total_observations = 0;
  std::map<uint64_t, int> distinct_epochs;
  for (int r = 0; r < kReaders; ++r) {
    uint64_t last_epoch = 0;
    for (const auto& [epoch, count] : observed[r]) {
      ++total_observations;
      ++distinct_epochs[epoch];
      // Epochs are monotone per reader: pins happen in program order.
      EXPECT_GE(epoch, last_epoch);
      last_epoch = epoch;
      // The heart of the test: the pinned view equals the serial
      // replay at that epoch — never a half-applied tick.
      const auto it = count_at_epoch.find(epoch);
      ASSERT_NE(it, count_at_epoch.end())
          << "reader pinned epoch " << epoch
          << " which no writer boundary produced";
      EXPECT_EQ(count, it->second)
          << "epoch " << epoch << ": concurrent count " << count
          << " != serial replay count " << it->second;
    }
  }
  ASSERT_GT(total_observations, 0u);
  // The race was real: readers saw the world move underneath them.
  EXPECT_GE(distinct_epochs.size(), 2u);
}

}  // namespace
}  // namespace fungusdb
