#include "core/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/database.h"
#include "fungus/retention_fungus.h"

namespace fungusdb {
namespace {

Schema ReadingSchema() {
  return Schema::Make({{"sensor", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, false}})
      .value();
}

std::unique_ptr<Database> SeededDatabase() {
  auto db = std::make_unique<Database>();
  FUNGUSDB_CHECK_OK(db->CreateTable("r", ReadingSchema()).status());
  for (int i = 0; i < 20; ++i) {
    FUNGUSDB_CHECK_OK(
        db->Insert("r", {Value::Int64(i % 4), Value::Float64(i * 1.5)})
            .status());
  }
  return db;
}

TEST(SessionTest, ReadResultsMatchTheWriterPath) {
  std::unique_ptr<Database> db = SeededDatabase();
  Session session(db.get());
  for (const char* sql : {
           "SELECT count(*) AS n FROM r",
           "SELECT sensor, count(*) AS n FROM r GROUP BY sensor "
           "ORDER BY sensor",
           "SELECT temp FROM r WHERE sensor = 2 ORDER BY temp",
           "SELECT avg(temp) AS m FROM r WHERE __freshness > 0.0",
       }) {
    const ResultSet via_session = session.ExecuteRead(sql).value();
    const ResultSet via_writer = db->ExecuteSql(sql).value();
    ASSERT_EQ(via_session.num_rows(), via_writer.num_rows()) << sql;
    for (size_t row = 0; row < via_session.num_rows(); ++row) {
      for (size_t col = 0; col < via_session.column_names.size(); ++col) {
        EXPECT_TRUE(
            via_session.at(row, col).Equals(via_writer.at(row, col)))
            << sql << " row " << row << " col " << col;
      }
    }
  }
}

TEST(SessionTest, RefusesConsumingQueries) {
  std::unique_ptr<Database> db = SeededDatabase();
  Session session(db.get());
  const Status refused =
      session.ExecuteRead("CONSUME SELECT * FROM r").status();
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  // Nothing was consumed by the refused statement.
  EXPECT_EQ(db->GetTable("r").value().live_rows(), 20u);
}

TEST(SessionTest, RefusesTrackAccessTables) {
  auto db = std::make_unique<Database>();
  TableOptions topts;
  topts.track_access = true;
  FUNGUSDB_CHECK_OK(
      db->CreateTable("hot", ReadingSchema(), topts).status());
  FUNGUSDB_CHECK_OK(
      db->Insert("hot", {Value::Int64(1), Value::Float64(1.0)}).status());
  Session session(db.get());
  // The classifier routes these to the writer; executing one here would
  // silently skip the access-counter bumps that feed ImportanceFungus.
  const Status refused =
      session.ExecuteRead("SELECT * FROM hot").status();
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, SurfacesEngineErrors) {
  std::unique_ptr<Database> db = SeededDatabase();
  Session session(db.get());
  EXPECT_EQ(session.ExecuteRead("SELEC * FROM r").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(session.ExecuteRead("SELECT * FROM ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(SessionTest, PinnedEpochAdvancesWithDecayTicks) {
  std::unique_ptr<Database> db = SeededDatabase();
  FUNGUSDB_CHECK_OK(db->AttachFungus(
                          "r", std::make_unique<RetentionFungus>(kMinute),
                          /*period=*/kSecond)
                        .status());
  Session session(db.get());

  uint64_t before = 0;
  FUNGUSDB_CHECK_OK(
      session.ExecuteRead("SELECT count(*) AS n FROM r", &before)
          .status());
  EXPECT_EQ(before, db->epoch());

  // 5 ticks publish 5 per-tick epochs plus the section's own.
  FUNGUSDB_CHECK_OK(db->AdvanceTime(5 * kSecond).status());
  uint64_t after = 0;
  FUNGUSDB_CHECK_OK(
      session.ExecuteRead("SELECT count(*) AS n FROM r", &after).status());
  EXPECT_EQ(after, db->epoch());
  EXPECT_GE(after, before + 6);
}

TEST(SessionTest, CountsReadStatementsInMetrics) {
  std::unique_ptr<Database> db = SeededDatabase();
  Session session(db.get());
  const int64_t executed_before =
      db->metrics().GetCounter("fungusdb.query.executed");
  FUNGUSDB_CHECK_OK(
      session.ExecuteRead("SELECT count(*) AS n FROM r").status());
  EXPECT_EQ(db->metrics().GetCounter("fungusdb.query.executed"),
            executed_before + 1);
  EXPECT_GE(db->metrics().GetCounter("fungusdb.exec.read_statements"), 1);
}

}  // namespace
}  // namespace fungusdb
