// End-to-end scenarios crossing every module: ingest -> decay -> cook ->
// query, on virtual time.

#include <gtest/gtest.h>

#include "core/database.h"
#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/retention_fungus.h"
#include "summary/grouped_aggregate.h"
#include "summary/histogram_sketch.h"
#include "summary/hyperloglog.h"
#include "workload/clickstream_workload.h"
#include "workload/iot_workload.h"

namespace fungusdb {
namespace {

TEST(IntegrationTest, IotPipelineWithRetentionStaysBounded) {
  Database db;
  TableOptions topts;
  topts.rows_per_segment = 512;
  ASSERT_TRUE(db.CreateTable("readings",
                             IotWorkload(IotWorkload::Params{}).schema(),
                             topts)
                  .ok());
  ASSERT_TRUE(db.AttachFungus(
                    "readings",
                    std::make_unique<RetentionFungus>(2 * kDay),
                    /*period=*/kHour)
                  .ok());
  IotWorkload workload(IotWorkload::Params{});

  uint64_t max_live = 0;
  for (int day = 0; day < 10; ++day) {
    ASSERT_TRUE(db.Ingest("readings", workload, 1000).ok());
    ASSERT_TRUE(db.AdvanceTime(kDay).ok());
    max_live =
        std::max(max_live, db.GetTable("readings").value().live_rows());
  }
  const TableHandle t = db.GetTable("readings").value();
  // Steady state: at most ~2 days of data (2 batches of 1000), never the
  // full 10k appended.
  EXPECT_LE(t.live_rows(), 2000u);
  EXPECT_EQ(t.total_appended(), 10000u);
  EXPECT_LE(max_live, 3000u);
}

TEST(IntegrationTest, CookOnRotPreservesHistoricalAnswers) {
  Database db;
  Schema schema = Schema::Make({{"sensor", DataType::kInt64, false},
                                {"temp", DataType::kFloat64, false}})
                      .value();
  ASSERT_TRUE(db.CreateTable("r", schema).ok());

  // Cook dying tuples into a per-sensor aggregate and a temp histogram.
  CookSpec grouped;
  grouped.table_name = "r";
  grouped.trigger = CookTrigger::kOnRot;
  grouped.cellar_name = "per_sensor";
  grouped.column = "temp";
  grouped.group_by = "sensor";
  ASSERT_TRUE(db.AddCookSpec(grouped).ok());

  CookSpec hist;
  hist.table_name = "r";
  hist.trigger = CookTrigger::kOnRot;
  hist.cellar_name = "temp_hist";
  hist.column = "temp";
  hist.factory = [] {
    return std::make_unique<HistogramSketch>(0.0, 100.0, 20);
  };
  ASSERT_TRUE(db.AddCookSpec(hist).ok());

  ASSERT_TRUE(db.AttachFungus("r",
                              std::make_unique<RetentionFungus>(kHour),
                              /*period=*/kHour)
                  .ok());

  // Two sensors, known temps.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("r", {Value::Int64(i % 2),
                                Value::Float64(i % 2 == 0 ? 20.0 : 60.0)})
                    .ok());
  }
  ASSERT_TRUE(db.AdvanceTime(3 * kHour).ok());

  // Raw data fully rotted...
  EXPECT_EQ(db.GetTable("r").value().live_rows(), 0u);
  // ...but the cooked knowledge answers historical questions.
  auto* per_sensor =
      static_cast<const GroupedAggregate*>(db.cellar().Find("per_sensor"));
  ASSERT_NE(per_sensor, nullptr);
  EXPECT_EQ(per_sensor->GroupState(Value::Int64(0)).value().count, 50u);
  EXPECT_DOUBLE_EQ(per_sensor->GroupState(Value::Int64(1)).value().Mean(),
                   60.0);
  auto* temp_hist =
      static_cast<const HistogramSketch*>(db.cellar().Find("temp_hist"));
  ASSERT_NE(temp_hist, nullptr);
  EXPECT_NEAR(temp_hist->EstimateRangeCount(0.0, 40.0), 50.0, 1e-6);
}

TEST(IntegrationTest, ClickstreamSessionizationViaConsumingQueries) {
  Database db;
  ClickstreamWorkload workload(ClickstreamWorkload::Params{});
  ASSERT_TRUE(db.CreateTable("clicks", workload.schema()).ok());
  ASSERT_TRUE(db.Ingest("clicks", workload, 2000).ok());

  const TableHandle t = db.GetTable("clicks").value();
  const uint64_t total = t.live_rows();

  // Repeatedly consume per-user slices; conservation must hold and the
  // union of the answers must be exactly the original extent.
  uint64_t consumed = 0;
  for (int user = 0; user < 1000; user += 1) {
    ResultSet rs = db.ExecuteSql("CONSUME SELECT user_id FROM clicks "
                                 "WHERE user_id = " +
                                 std::to_string(user))
                       .value();
    consumed += rs.stats.rows_consumed;
    if (t.live_rows() == 0) break;
  }
  EXPECT_EQ(consumed, total);
  EXPECT_EQ(t.live_rows(), 0u);
}

TEST(IntegrationTest, EgiKeepsAnswersApproximatelyCorrectWhileRotting) {
  Database db;
  Schema schema = Schema::Make({{"v", DataType::kInt64, false}}).value();
  TableOptions topts;
  topts.rows_per_segment = 128;
  ASSERT_TRUE(db.CreateTable("r", schema, topts).ok());
  EgiFungus::Params p;
  p.seeds_per_tick = 2.0;
  p.decay_step = 0.25;
  ASSERT_TRUE(
      db.AttachFungus("r", std::make_unique<EgiFungus>(p), kSecond).ok());

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.Insert("r", {Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(db.AdvanceTime(60 * kSecond).ok());
  const TableHandle t = db.GetTable("r").value();
  const uint64_t live = t.live_rows();
  EXPECT_LT(live, 2000u);  // some rot happened
  EXPECT_GT(live, 0u);     // but the cheese is still edible
  // COUNT(*) agrees with live_rows: queries see exactly the live extent.
  ResultSet rs = db.ExecuteSql("SELECT count(*) AS n FROM r").value();
  EXPECT_EQ(static_cast<uint64_t>(rs.at(0, 0).AsInt64()), live);
}

TEST(IntegrationTest, CellarKnowledgeAlsoRots) {
  Database db;
  Schema schema = Schema::Make({{"v", DataType::kInt64, false}}).value();
  ASSERT_TRUE(db.CreateTable("r", schema).ok());
  CookSpec spec;
  spec.table_name = "r";
  spec.trigger = CookTrigger::kOnRot;
  spec.cellar_name = "distinct_v";
  spec.column = "v";
  spec.half_life = kDay;  // cooked knowledge decays too
  spec.factory = [] { return std::make_unique<HyperLogLog>(10); };
  ASSERT_TRUE(db.AddCookSpec(spec).ok());
  ASSERT_TRUE(db.AttachFungus("r",
                              std::make_unique<RetentionFungus>(kHour),
                              kHour)
                  .ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("r", {Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(db.AdvanceTime(2 * kHour).ok());
  ASSERT_NE(db.cellar().Find("distinct_v"), nullptr);
  // A week later the unrefreshed cellar entry has rotted away as well.
  ASSERT_TRUE(db.AdvanceTime(7 * kDay).ok());
  EXPECT_EQ(db.cellar().Find("distinct_v"), nullptr);
}

TEST(IntegrationTest, FullLifecycleHealthNarrative) {
  // The paper's closing image: the database stays "in optimal health"
  // when rot and cooking are balanced.
  Database db;
  IotWorkload workload(IotWorkload::Params{});
  ASSERT_TRUE(db.CreateTable("readings", workload.schema()).ok());
  ASSERT_TRUE(db.AttachFungus(
                    "readings",
                    std::make_unique<ExponentialFungus>(
                        ExponentialFungus::FromHalfLife(12 * kHour)),
                    kHour)
                  .ok());
  CookSpec spec;
  spec.table_name = "readings";
  spec.trigger = CookTrigger::kOnRot;
  spec.cellar_name = "temp_hist";
  spec.column = "temp";
  spec.factory = [] {
    return std::make_unique<HistogramSketch>(-50.0, 150.0, 40);
  };
  ASSERT_TRUE(db.AddCookSpec(spec).ok());

  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(db.Ingest("readings", workload, 500).ok());
    ASSERT_TRUE(db.AdvanceTime(kDay).ok());
  }
  HealthReport health = db.Health();
  ASSERT_EQ(health.tables.size(), 1u);
  // Decay keeps mean freshness strictly below 1 but above 0.
  EXPECT_GT(health.tables[0].mean_freshness, 0.0);
  EXPECT_LT(health.tables[0].mean_freshness, 1.0);
  EXPECT_GT(health.rows_cooked, 0u);
  EXPECT_EQ(health.cellar_entries, 1u);
  EXPECT_GT(db.metrics().GetCounter("fungusdb.decay.ticks"), 0);
}

}  // namespace
}  // namespace fungusdb
