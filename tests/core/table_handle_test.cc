#include "core/table_handle.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "core/database.h"
#include "fungus/retention_fungus.h"

namespace fungusdb {
namespace {

Schema TwoColumnSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"note", DataType::kString, true}})
      .value();
}

TEST(TableHandleTest, DefaultHandleIsInvalid) {
  TableHandle handle;
  EXPECT_FALSE(handle.valid());
}

TEST(TableHandleTest, CreateTableReturnsLiveHandle) {
  Database db;
  const TableHandle handle =
      db.CreateTable("readings", TwoColumnSchema()).value();
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.name(), "readings");
  EXPECT_EQ(handle.schema().num_fields(), 2u);
  EXPECT_EQ(handle.live_rows(), 0u);
}

TEST(TableHandleTest, GetTableReturnsSameUnderlyingTable) {
  Database db;
  FUNGUSDB_CHECK_OK(db.CreateTable("readings", TwoColumnSchema()).status());
  const TableHandle handle = db.GetTable("readings").value();
  ASSERT_TRUE(handle.valid());

  FUNGUSDB_CHECK_OK(
      db.Insert("readings", {Value::Int64(1), Value::String("spore")})
          .status());
  // The handle observes mutations made through the facade.
  EXPECT_EQ(handle.live_rows(), 1u);
  EXPECT_EQ(handle.total_appended(), 1u);
}

TEST(TableHandleTest, GetTableForMissingTableIsTypedError) {
  Database db;
  const Result<TableHandle> missing = db.GetTable("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().error_code(), ErrorCode::kTableNotFound);
}

TEST(TableHandleTest, StatisticsTrackDecay) {
  Database db;
  const TableHandle handle =
      db.CreateTable("readings", TwoColumnSchema()).value();
  FUNGUSDB_CHECK_OK(db.AttachFungus("readings",
                                    std::make_unique<RetentionFungus>(kDay),
                                    /*period=*/kHour)
                        .status());
  for (int64_t i = 0; i < 4; ++i) {
    FUNGUSDB_CHECK_OK(
        db.Insert("readings", {Value::Int64(i), Value::Null()}).status());
  }
  EXPECT_EQ(handle.live_rows(), 4u);
  FUNGUSDB_CHECK_OK(db.AdvanceTime(3 * kDay).status());
  EXPECT_EQ(handle.live_rows(), 0u);
  EXPECT_EQ(handle.rows_killed(), 4u);
  EXPECT_EQ(handle.total_appended(), 4u);
}

TEST(ExecuteBatchTest, OneResultPerStatementInOrder) {
  Database db;
  FUNGUSDB_CHECK_OK(db.CreateTable("t", TwoColumnSchema()).status());
  FUNGUSDB_CHECK_OK(
      db.Insert("t", {Value::Int64(7), Value::String("mycelium")}).status());

  const std::vector<std::string> statements = {
      "SELECT id FROM t",
      "SELECT note FROM t WHERE id = 7",
  };
  const auto results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_EQ(results[0]->rows.size(), 1u);
  EXPECT_EQ(results[0]->rows[0][0].AsInt64(), 7);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1]->rows[0][0].AsString(), "mycelium");
}

TEST(ExecuteBatchTest, FailedStatementDoesNotStopTheBatch) {
  Database db;
  FUNGUSDB_CHECK_OK(db.CreateTable("t", TwoColumnSchema()).status());
  FUNGUSDB_CHECK_OK(
      db.Insert("t", {Value::Int64(1), Value::Null()}).status());

  const std::vector<std::string> statements = {
      "SELECT * FROM missing_table",   // kTableNotFound
      "SELECT nonsense FROM",          // kParseError
      "SELECT count(*) FROM t",        // still runs
  };
  const auto results = db.ExecuteBatch(statements);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status().error_code(), ErrorCode::kTableNotFound);
  EXPECT_EQ(results[1].status().error_code(), ErrorCode::kParseError);
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(results[2]->rows[0][0].AsInt64(), 1);
}

TEST(ExecuteBatchTest, EmptyBatchYieldsNoResults) {
  Database db;
  const std::vector<std::string> statements;
  EXPECT_TRUE(db.ExecuteBatch(statements).empty());
}

}  // namespace
}  // namespace fungusdb
