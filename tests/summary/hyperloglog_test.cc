#include "summary/hyperloglog.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  HyperLogLog hll(12);
  EXPECT_NEAR(hll.EstimateDistinct(), 0.0, 1e-6);
}

TEST(HyperLogLogTest, SmallCardinalitiesExactish) {
  HyperLogLog hll(12);
  for (int i = 0; i < 50; ++i) hll.Observe(Value::Int64(i));
  EXPECT_NEAR(hll.EstimateDistinct(), 50.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 20; ++i) hll.Observe(Value::Int64(i));
  }
  EXPECT_NEAR(hll.EstimateDistinct(), 20.0, 3.0);
  EXPECT_EQ(hll.observations(), 2000u);
}

class HyperLogLogPrecisionTest : public ::testing::TestWithParam<int> {};

TEST_P(HyperLogLogPrecisionTest, ErrorWithinFourSigma) {
  const int precision = GetParam();
  HyperLogLog hll(precision);
  const int n = 100000;
  for (int i = 0; i < n; ++i) hll.Observe(Value::Int64(i));
  const double est = hll.EstimateDistinct();
  const double rel_err = std::abs(est - n) / n;
  EXPECT_LT(rel_err, 4.0 * hll.StandardError())
      << "precision=" << precision << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(Precisions, HyperLogLogPrecisionTest,
                         ::testing::Values(8, 10, 12, 14));

TEST(HyperLogLogTest, HigherPrecisionLowersTheoreticalError) {
  HyperLogLog low(6), high(14);
  EXPECT_GT(low.StandardError(), high.StandardError());
}

TEST(HyperLogLogTest, StringsCountedDistinctly) {
  HyperLogLog hll(12);
  hll.Observe(Value::String("a"));
  hll.Observe(Value::String("b"));
  hll.Observe(Value::String("a"));
  EXPECT_NEAR(hll.EstimateDistinct(), 2.0, 0.5);
}

TEST(HyperLogLogTest, NullsIgnored) {
  HyperLogLog hll(8);
  hll.Observe(Value::Null());
  EXPECT_EQ(hll.observations(), 0u);
  EXPECT_NEAR(hll.EstimateDistinct(), 0.0, 1e-6);
}

TEST(HyperLogLogTest, MergeIsUnion) {
  HyperLogLog a(12), b(12);
  for (int i = 0; i < 1000; ++i) a.Observe(Value::Int64(i));
  for (int i = 500; i < 1500; ++i) b.Observe(Value::Int64(i));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_NEAR(a.EstimateDistinct(), 1500.0, 150.0);
}

TEST(HyperLogLogTest, MergeIdempotentForSameData) {
  HyperLogLog a(12), b(12);
  for (int i = 0; i < 1000; ++i) {
    a.Observe(Value::Int64(i));
    b.Observe(Value::Int64(i));
  }
  const double before = a.EstimateDistinct();
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateDistinct(), before);
}

TEST(HyperLogLogTest, MergeRejectsDifferentPrecision) {
  HyperLogLog a(10), b(12);
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fungusdb
