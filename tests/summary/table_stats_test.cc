#include "summary/table_stats.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Table MakeTable() {
  Table t("m", Schema::Make({{"k", DataType::kInt64, false},
                             {"v", DataType::kFloat64, true},
                             {"s", DataType::kString, false}})
                   .value());
  // k: 0..9, v: 2*k with two nulls, s: "even"/"odd".
  for (int i = 0; i < 10; ++i) {
    Value v = (i == 3 || i == 7) ? Value::Null()
                                 : Value::Float64(2.0 * i);
    t.Append({Value::Int64(i), v,
              Value::String(i % 2 == 0 ? "even" : "odd")},
             /*now=*/i * 100)
        .value();
  }
  return t;
}

TEST(ComputeColumnStatsTest, NumericColumn) {
  Table t = MakeTable();
  ColumnStats stats = ComputeColumnStats(t, 0).value();
  EXPECT_EQ(stats.name, "k");
  EXPECT_EQ(stats.live_values, 10u);
  EXPECT_EQ(stats.nulls, 0u);
  EXPECT_EQ(stats.min->AsInt64(), 0);
  EXPECT_EQ(stats.max->AsInt64(), 9);
  EXPECT_DOUBLE_EQ(*stats.mean, 4.5);
  EXPECT_NEAR(stats.approx_distinct, 10.0, 1.0);
}

TEST(ComputeColumnStatsTest, NullsCounted) {
  Table t = MakeTable();
  ColumnStats stats = ComputeColumnStats(t, 1).value();
  EXPECT_EQ(stats.live_values, 8u);
  EXPECT_EQ(stats.nulls, 2u);
  EXPECT_DOUBLE_EQ(stats.min->AsFloat64(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max->AsFloat64(), 18.0);
}

TEST(ComputeColumnStatsTest, StringColumnHasNoMean) {
  Table t = MakeTable();
  ColumnStats stats = ComputeColumnStats(t, 2).value();
  EXPECT_FALSE(stats.mean.has_value());
  EXPECT_EQ(stats.min->AsString(), "even");
  EXPECT_EQ(stats.max->AsString(), "odd");
  EXPECT_NEAR(stats.approx_distinct, 2.0, 0.5);
}

TEST(ComputeColumnStatsTest, OutOfRangeColumn) {
  Table t = MakeTable();
  EXPECT_EQ(ComputeColumnStats(t, 9).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ComputeColumnStatsTest, DeadRowsExcluded) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Kill(9).ok());  // removes k=9
  ColumnStats stats = ComputeColumnStats(t, 0).value();
  EXPECT_EQ(stats.live_values, 9u);
  EXPECT_EQ(stats.max->AsInt64(), 8);
}

TEST(AnalyzeTableTest, CoversUserAndSystemColumns) {
  Table t = MakeTable();
  ASSERT_TRUE(t.SetFreshness(0, 0.5).ok());
  TableStats stats = AnalyzeTable(t);
  EXPECT_EQ(stats.table_name, "m");
  EXPECT_EQ(stats.live_rows, 10u);
  ASSERT_EQ(stats.columns.size(), 5u);  // 3 user + __ts + __freshness
  EXPECT_EQ(stats.columns[3].name, "__ts");
  EXPECT_EQ(stats.columns[3].min->AsTimestamp(), 0);
  EXPECT_EQ(stats.columns[3].max->AsTimestamp(), 900);
  EXPECT_EQ(stats.columns[4].name, "__freshness");
  EXPECT_DOUBLE_EQ(stats.columns[4].min->AsFloat64(), 0.5);
  EXPECT_DOUBLE_EQ(stats.columns[4].max->AsFloat64(), 1.0);
}

TEST(AnalyzeTableTest, EmptyTable) {
  Table t("e", Schema::Make({{"x", DataType::kInt64, false}}).value());
  TableStats stats = AnalyzeTable(t);
  EXPECT_EQ(stats.live_rows, 0u);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_FALSE(stats.columns[0].min.has_value());
  EXPECT_DOUBLE_EQ(stats.columns[0].approx_distinct, 0.0);
}

TEST(AnalyzeTableTest, ToStringMentionsEveryColumn) {
  Table t = MakeTable();
  const std::string text = AnalyzeTable(t).ToString();
  for (const char* needle : {"k (int64)", "v (float64)", "s (string)",
                             "__ts", "__freshness", "~distinct"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace fungusdb
