#include "summary/histogram_sketch.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace fungusdb {
namespace {

TEST(HistogramSketchTest, BucketBoundaries) {
  HistogramSketch h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(9), 9.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(9), 10.0);
}

TEST(HistogramSketchTest, ObservationsLandInRightBuckets) {
  HistogramSketch h(0.0, 10.0, 10);
  h.Observe(Value::Float64(0.5));
  h.Observe(Value::Float64(5.5));
  h.Observe(Value::Int64(9));
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.observations(), 3u);
}

TEST(HistogramSketchTest, OutOfDomainClampsToEdges) {
  HistogramSketch h(0.0, 10.0, 10);
  h.Observe(Value::Float64(-5.0));
  h.Observe(Value::Float64(100.0));
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(HistogramSketchTest, NullsAndNonNumericSkipped) {
  HistogramSketch h(0.0, 1.0, 2);
  h.Observe(Value::Null());
  h.Observe(Value::String("x"));
  EXPECT_EQ(h.observations(), 0u);
}

TEST(HistogramSketchTest, RangeCountExactOnBucketBoundaries) {
  HistogramSketch h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Observe(Value::Float64(static_cast<double>(i % 10) + 0.5));
  }
  EXPECT_NEAR(h.EstimateRangeCount(0.0, 10.0), 100.0, 1e-9);
  EXPECT_NEAR(h.EstimateRangeCount(0.0, 5.0), 50.0, 1e-9);
  EXPECT_NEAR(h.EstimateRangeCount(3.0, 4.0), 10.0, 1e-9);
}

TEST(HistogramSketchTest, PartialBucketInterpolation) {
  HistogramSketch h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Observe(Value::Float64(4.5));
  // Half of bucket [4,5) overlaps [4, 4.5).
  EXPECT_NEAR(h.EstimateRangeCount(4.0, 4.5), 5.0, 1e-9);
}

TEST(HistogramSketchTest, EmptyRangeCountIsZero) {
  HistogramSketch h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(5.0, 2.0), 0.0);
}

TEST(HistogramSketchTest, QuantileOnUniformData) {
  HistogramSketch h(0.0, 100.0, 100);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    h.Observe(Value::Float64(rng.NextDouble() * 100.0));
  }
  EXPECT_NEAR(h.EstimateQuantile(0.5).value(), 50.0, 3.0);
  EXPECT_NEAR(h.EstimateQuantile(0.9).value(), 90.0, 3.0);
}

TEST(HistogramSketchTest, QuantileFailsOnEmpty) {
  HistogramSketch h(0.0, 1.0, 4);
  EXPECT_FALSE(h.EstimateQuantile(0.5).ok());
  EXPECT_FALSE(h.EstimateMean().ok());
}

TEST(HistogramSketchTest, MeanUsesMidpoints) {
  HistogramSketch h(0.0, 10.0, 10);
  h.Observe(Value::Float64(2.2));  // bucket [2,3) midpoint 2.5
  h.Observe(Value::Float64(7.9));  // bucket [7,8) midpoint 7.5
  EXPECT_NEAR(h.EstimateMean().value(), 5.0, 1e-9);
}

TEST(HistogramSketchTest, MergeAddsCounts) {
  HistogramSketch a(0.0, 10.0, 10), b(0.0, 10.0, 10);
  a.Observe(Value::Float64(1.0));
  b.Observe(Value::Float64(1.0));
  b.Observe(Value::Float64(8.0));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.observations(), 3u);
  EXPECT_EQ(a.bucket_count(1), 2u);
}

TEST(HistogramSketchTest, MergeRejectsDomainMismatch) {
  HistogramSketch a(0.0, 10.0, 10), b(0.0, 20.0, 10);
  EXPECT_FALSE(a.Merge(b).ok());
  HistogramSketch c(0.0, 10.0, 20);
  EXPECT_FALSE(a.Merge(c).ok());
}

}  // namespace
}  // namespace fungusdb
