#include "summary/bloom_filter.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(4096, 4);
  for (int i = 0; i < 200; ++i) bloom.Observe(Value::Int64(i));
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(bloom.MayContain(Value::Int64(i))) << i;
  }
}

TEST(BloomFilterTest, MostUnseenKeysRejected) {
  BloomFilter bloom = BloomFilter::FromExpectedItems(1000, 0.01);
  for (int i = 0; i < 1000; ++i) bloom.Observe(Value::Int64(i));
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(Value::Int64(1000000 + i))) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.03);
}

TEST(BloomFilterTest, EmptyRejectsEverything) {
  BloomFilter bloom(1024, 3);
  EXPECT_FALSE(bloom.MayContain(Value::Int64(1)));
  EXPECT_FALSE(bloom.MayContain(Value::String("x")));
}

TEST(BloomFilterTest, NullNeverContained) {
  BloomFilter bloom(64, 2);
  bloom.Observe(Value::Null());
  EXPECT_FALSE(bloom.MayContain(Value::Null()));
  EXPECT_EQ(bloom.observations(), 0u);
}

TEST(BloomFilterTest, MergeIsUnion) {
  BloomFilter a(2048, 4), b(2048, 4);
  a.Observe(Value::Int64(1));
  b.Observe(Value::Int64(2));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.MayContain(Value::Int64(1)));
  EXPECT_TRUE(a.MayContain(Value::Int64(2)));
  EXPECT_EQ(a.observations(), 2u);
}

TEST(BloomFilterTest, MergeRejectsShapeMismatch) {
  BloomFilter a(2048, 4), b(1024, 4);
  EXPECT_FALSE(a.Merge(b).ok());
  BloomFilter c(2048, 3);
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(BloomFilterTest, EstimatedFprGrowsWithLoad) {
  BloomFilter bloom(1024, 4);
  const double empty_fpr = bloom.EstimatedFalsePositiveRate();
  for (int i = 0; i < 500; ++i) bloom.Observe(Value::Int64(i));
  EXPECT_GT(bloom.EstimatedFalsePositiveRate(), empty_fpr);
}

TEST(BloomFilterTest, FromExpectedItemsRespectsTarget) {
  BloomFilter bloom = BloomFilter::FromExpectedItems(10000, 0.001);
  // ~14.4 bits/key at 0.1% -> at least 100k bits.
  EXPECT_GT(bloom.num_bits(), 100000u);
  EXPECT_GE(bloom.num_hashes(), 7u);
}

}  // namespace
}  // namespace fungusdb
