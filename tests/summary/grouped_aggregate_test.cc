#include "summary/grouped_aggregate.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(AggregateStateTest, TracksAllStats) {
  AggregateState s;
  s.Observe(3.0);
  s.Observe(1.0);
  s.Observe(5.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 9.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
}

TEST(AggregateStateTest, MergeCombines) {
  AggregateState a, b;
  a.Observe(1.0);
  b.Observe(10.0);
  b.Observe(-2.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min, -2.0);
  EXPECT_DOUBLE_EQ(a.max, 10.0);
}

TEST(AggregateStateTest, MergeWithEmptySides) {
  AggregateState a, empty;
  a.Observe(4.0);
  a.Merge(empty);
  EXPECT_EQ(a.count, 1u);
  AggregateState c;
  c.Merge(a);
  EXPECT_EQ(c.count, 1u);
  EXPECT_DOUBLE_EQ(c.min, 4.0);
}

TEST(GroupedAggregateTest, GroupsByKey) {
  GroupedAggregate agg;
  agg.Observe(Value::String("a"), Value::Float64(1.0));
  agg.Observe(Value::String("a"), Value::Float64(3.0));
  agg.Observe(Value::String("b"), Value::Float64(10.0));
  EXPECT_EQ(agg.num_groups(), 2u);
  const AggregateState a = agg.GroupState(Value::String("a")).value();
  EXPECT_EQ(a.count, 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  const AggregateState b = agg.GroupState(Value::String("b")).value();
  EXPECT_DOUBLE_EQ(b.sum, 10.0);
}

TEST(GroupedAggregateTest, IntKeysWork) {
  GroupedAggregate agg;
  agg.Observe(Value::Int64(7), Value::Int64(100));
  EXPECT_EQ(agg.GroupState(Value::Int64(7)).value().count, 1u);
}

TEST(GroupedAggregateTest, UnknownKeyFails) {
  GroupedAggregate agg;
  EXPECT_EQ(agg.GroupState(Value::String("nope")).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(agg.GroupState(Value::Null()).ok());
}

TEST(GroupedAggregateTest, NullsSkipped) {
  GroupedAggregate agg;
  agg.Observe(Value::Null(), Value::Float64(1.0));
  agg.Observe(Value::String("k"), Value::Null());
  EXPECT_EQ(agg.observations(), 0u);
  EXPECT_EQ(agg.num_groups(), 0u);
}

TEST(GroupedAggregateTest, NonNumericValuesSkipped) {
  GroupedAggregate agg;
  agg.Observe(Value::String("k"), Value::String("v"));
  EXPECT_EQ(agg.observations(), 0u);
}

TEST(GroupedAggregateTest, EntriesAreKeySorted) {
  GroupedAggregate agg;
  agg.Observe(Value::String("z"), Value::Int64(1));
  agg.Observe(Value::String("a"), Value::Int64(2));
  const auto entries = agg.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_LT(entries[0].first, entries[1].first);
}

TEST(GroupedAggregateTest, MergeUnionsGroups) {
  GroupedAggregate a, b;
  a.Observe(Value::String("x"), Value::Float64(1.0));
  b.Observe(Value::String("x"), Value::Float64(3.0));
  b.Observe(Value::String("y"), Value::Float64(5.0));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(a.GroupState(Value::String("x")).value().Mean(), 2.0);
  EXPECT_EQ(a.observations(), 3u);
}

}  // namespace
}  // namespace fungusdb
