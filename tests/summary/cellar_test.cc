#include "summary/cellar.h"

#include <gtest/gtest.h>

#include "summary/count_min_sketch.h"
#include "summary/hyperloglog.h"

namespace fungusdb {
namespace {

std::unique_ptr<CountMinSketch> SmallSketch() {
  return std::make_unique<CountMinSketch>(64, 4);
}

TEST(CellarTest, PutAndFind) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), /*half_life=*/0, 0).ok());
  EXPECT_NE(cellar.Find("s"), nullptr);
  EXPECT_EQ(cellar.Find("absent"), nullptr);
  EXPECT_EQ(cellar.size(), 1u);
}

TEST(CellarTest, PutRejectsDuplicatesAndNull) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), 0, 0).ok());
  EXPECT_EQ(cellar.Put("s", SmallSketch(), 0, 0).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cellar.Put("t", nullptr, 0, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(CellarTest, MergeIntoCreatesOrMerges) {
  Cellar cellar;
  auto shard1 = SmallSketch();
  shard1->Observe(Value::Int64(1));
  ASSERT_TRUE(cellar.MergeInto("s", std::move(shard1), 0, 0).ok());
  auto shard2 = SmallSketch();
  shard2->Observe(Value::Int64(1));
  ASSERT_TRUE(cellar.MergeInto("s", std::move(shard2), 0, 10).ok());
  auto* merged = static_cast<const CountMinSketch*>(cellar.Find("s"));
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->observations(), 2u);
}

TEST(CellarTest, MergeIntoRejectsKindMismatch) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), 0, 0).ok());
  Status s = cellar.MergeInto("s", std::make_unique<HyperLogLog>(8), 0, 0);
  EXPECT_EQ(s.code(), StatusCode::kTypeMismatch);
}

TEST(CellarTest, ImmortalEntriesNeverDecay) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), /*half_life=*/0, 0).ok());
  EXPECT_EQ(cellar.AdvanceTo(100 * kDay), 0u);
  EXPECT_DOUBLE_EQ(cellar.FreshnessOf("s").value(), 1.0);
}

TEST(CellarTest, EntriesDecayWithHalfLife) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), /*half_life=*/kHour, 0).ok());
  cellar.AdvanceTo(kHour);
  EXPECT_NEAR(cellar.FreshnessOf("s").value(), 0.5, 1e-9);
  cellar.AdvanceTo(2 * kHour);
  EXPECT_NEAR(cellar.FreshnessOf("s").value(), 0.25, 1e-9);
}

TEST(CellarTest, EvictionAtThreshold) {
  Cellar cellar(/*eviction_threshold=*/0.1);
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), kHour, 0).ok());
  // After 4 half-lives freshness is 0.0625 <= 0.1 -> evicted.
  EXPECT_EQ(cellar.AdvanceTo(4 * kHour), 1u);
  EXPECT_EQ(cellar.Find("s"), nullptr);
  EXPECT_EQ(cellar.FreshnessOf("s").status().code(), StatusCode::kNotFound);
}

TEST(CellarTest, MergeRefreshesFreshness) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), kHour, 0).ok());
  cellar.AdvanceTo(kHour);
  EXPECT_NEAR(cellar.FreshnessOf("s").value(), 0.5, 1e-9);
  // New knowledge arrives: the entry is fresh again.
  ASSERT_TRUE(cellar.MergeInto("s", SmallSketch(), kHour, kHour).ok());
  EXPECT_DOUBLE_EQ(cellar.FreshnessOf("s").value(), 1.0);
}

TEST(CellarTest, EvictByName) {
  Cellar cellar;
  ASSERT_TRUE(cellar.Put("s", SmallSketch(), 0, 0).ok());
  ASSERT_TRUE(cellar.Evict("s").ok());
  EXPECT_EQ(cellar.Evict("s").code(), StatusCode::kNotFound);
}

TEST(CellarTest, ListReportsEntries) {
  Cellar cellar;
  auto sketch = SmallSketch();
  sketch->Observe(Value::Int64(1));
  ASSERT_TRUE(cellar.Put("a", std::move(sketch), 0, 0).ok());
  ASSERT_TRUE(cellar.Put("b", std::make_unique<HyperLogLog>(8), 0, 0).ok());
  const auto list = cellar.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "a");
  EXPECT_EQ(list[0].kind, "count_min");
  EXPECT_EQ(list[0].observations, 1u);
  EXPECT_EQ(list[1].kind, "hyperloglog");
  EXPECT_GT(cellar.MemoryUsage(), 0u);
}

}  // namespace
}  // namespace fungusdb
