#include "summary/reservoir_sample.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(ReservoirSampleTest, KeepsEverythingBelowCapacity) {
  ReservoirSample res(10);
  for (int i = 0; i < 5; ++i) res.Observe(Value::Int64(i));
  EXPECT_EQ(res.sample().size(), 5u);
  EXPECT_EQ(res.observations(), 5u);
}

TEST(ReservoirSampleTest, CapsAtCapacity) {
  ReservoirSample res(16);
  for (int i = 0; i < 1000; ++i) res.Observe(Value::Int64(i));
  EXPECT_EQ(res.sample().size(), 16u);
  EXPECT_EQ(res.observations(), 1000u);
}

TEST(ReservoirSampleTest, SampleIsApproximatelyUniform) {
  // Observe 0..999; the mean of a uniform sample should be near 499.5.
  ReservoirSample res(200, /*seed=*/5);
  for (int i = 0; i < 1000; ++i) res.Observe(Value::Int64(i));
  EXPECT_NEAR(res.EstimateMean().value(), 499.5, 60.0);
}

TEST(ReservoirSampleTest, QuantileEstimates) {
  ReservoirSample res(500, /*seed=*/7);
  for (int i = 0; i < 10000; ++i) res.Observe(Value::Int64(i));
  EXPECT_NEAR(res.EstimateQuantile(0.5).value(), 5000.0, 800.0);
  EXPECT_NEAR(res.EstimateQuantile(0.9).value(), 9000.0, 800.0);
  EXPECT_LE(res.EstimateQuantile(0.0).value(),
            res.EstimateQuantile(1.0).value());
}

TEST(ReservoirSampleTest, EmptyEstimatesFail) {
  ReservoirSample res(4);
  EXPECT_FALSE(res.EstimateMean().ok());
  EXPECT_FALSE(res.EstimateQuantile(0.5).ok());
}

TEST(ReservoirSampleTest, NullsIgnored) {
  ReservoirSample res(4);
  res.Observe(Value::Null());
  EXPECT_EQ(res.observations(), 0u);
}

TEST(ReservoirSampleTest, NonNumericMeanFails) {
  ReservoirSample res(4);
  res.Observe(Value::String("a"));
  EXPECT_FALSE(res.EstimateMean().ok());
}

TEST(ReservoirSampleTest, MergeCombinesStreams) {
  ReservoirSample a(100, 1), b(100, 2);
  for (int i = 0; i < 500; ++i) a.Observe(Value::Int64(0));
  for (int i = 0; i < 500; ++i) b.Observe(Value::Int64(1000));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.observations(), 1000u);
  // Roughly half the merged sample should come from each stream.
  const double mean = a.EstimateMean().value();
  EXPECT_GT(mean, 200.0);
  EXPECT_LT(mean, 800.0);
}

TEST(ReservoirSampleTest, MergeEmptyIsNoop) {
  ReservoirSample a(10), b(10);
  a.Observe(Value::Int64(5));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.observations(), 1u);
  EXPECT_EQ(a.sample().size(), 1u);
}

TEST(ReservoirSampleTest, DeterministicGivenSeed) {
  auto run = [] {
    ReservoirSample res(8, 42);
    for (int i = 0; i < 100; ++i) res.Observe(Value::Int64(i));
    std::vector<int64_t> out;
    for (const Value& v : res.sample()) out.push_back(v.AsInt64());
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fungusdb
