#include "summary/p2_quantile.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fungusdb {
namespace {

TEST(P2QuantileTest, FailsBeforeObservations) {
  P2Quantile q(0.5);
  EXPECT_FALSE(q.Estimate().ok());
}

TEST(P2QuantileTest, SmallSampleIsExact) {
  P2Quantile q(0.5);
  q.Observe(Value::Float64(3.0));
  q.Observe(Value::Float64(1.0));
  q.Observe(Value::Float64(2.0));
  EXPECT_NEAR(q.Estimate().value(), 2.0, 1e-9);
}

class P2TargetTest : public ::testing::TestWithParam<double> {};

TEST_P(P2TargetTest, TracksUniformQuantile) {
  const double target = GetParam();
  P2Quantile q(target);
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    q.Observe(Value::Float64(rng.NextDouble() * 100.0));
  }
  EXPECT_NEAR(q.Estimate().value(), target * 100.0, 2.5) << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, P2TargetTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

TEST(P2QuantileTest, TracksGaussianMedian) {
  P2Quantile q(0.5);
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    q.Observe(Value::Float64(rng.NextGaussian() * 10.0 + 42.0));
  }
  EXPECT_NEAR(q.Estimate().value(), 42.0, 1.0);
}

TEST(P2QuantileTest, NullsAndStringsSkipped) {
  P2Quantile q(0.5);
  q.Observe(Value::Null());
  q.Observe(Value::String("x"));
  EXPECT_EQ(q.observations(), 0u);
}

TEST(P2QuantileTest, MergeBlendsSimilarStreams) {
  P2Quantile a(0.5), b(0.5);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    a.Observe(Value::Float64(rng.NextDouble() * 100.0));
    b.Observe(Value::Float64(rng.NextDouble() * 100.0));
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.observations(), 40000u);
  EXPECT_NEAR(a.Estimate().value(), 50.0, 5.0);
}

TEST(P2QuantileTest, MergeIntoEmptyCopiesState) {
  P2Quantile a(0.5), b(0.5);
  for (int i = 1; i <= 100; ++i) b.Observe(Value::Int64(i));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.observations(), 100u);
  EXPECT_NEAR(a.Estimate().value(), 50.0, 10.0);
}

TEST(P2QuantileTest, MergeRejectsDifferentTargets) {
  P2Quantile a(0.5), b(0.9);
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kInvalidArgument);
}

TEST(P2QuantileTest, ConstantStreamConverges) {
  P2Quantile q(0.75);
  for (int i = 0; i < 1000; ++i) q.Observe(Value::Float64(7.0));
  EXPECT_NEAR(q.Estimate().value(), 7.0, 1e-9);
}

}  // namespace
}  // namespace fungusdb
