#include "summary/count_min_sketch.h"

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fungusdb {
namespace {

TEST(CountMinSketchTest, NeverUnderestimates) {
  CountMinSketch sketch(256, 4);
  Rng rng(1);
  std::map<int64_t, uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBounded(200));
    sketch.Observe(Value::Int64(key));
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.EstimateCount(Value::Int64(key)), count);
  }
}

TEST(CountMinSketchTest, ErrorWithinBound) {
  CountMinSketch sketch = CountMinSketch::FromErrorBound(0.01, 0.01);
  Rng rng(2);
  std::map<int64_t, uint64_t> truth;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBounded(500));
    sketch.Observe(Value::Int64(key));
    ++truth[key];
  }
  // All estimates within eps*N of truth (the e^-d failure probability at
  // depth >= 5 makes a violation across 500 keys vanishingly unlikely).
  const double bound = sketch.Epsilon() * n;
  int violations = 0;
  for (const auto& [key, count] : truth) {
    const uint64_t est = sketch.EstimateCount(Value::Int64(key));
    if (static_cast<double>(est - count) > bound) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(CountMinSketchTest, UnseenKeysUsuallyZeroOnSparseSketch) {
  CountMinSketch sketch(1024, 4);
  for (int i = 0; i < 10; ++i) sketch.Observe(Value::Int64(i));
  EXPECT_LE(sketch.EstimateCount(Value::Int64(999999)), 1u);
}

TEST(CountMinSketchTest, NullsIgnored) {
  CountMinSketch sketch(64, 2);
  sketch.Observe(Value::Null());
  EXPECT_EQ(sketch.observations(), 0u);
}

TEST(CountMinSketchTest, StringKeys) {
  CountMinSketch sketch(128, 4);
  for (int i = 0; i < 7; ++i) sketch.Observe(Value::String("alpha"));
  sketch.Observe(Value::String("beta"));
  EXPECT_GE(sketch.EstimateCount(Value::String("alpha")), 7u);
  EXPECT_LE(sketch.EstimateCount(Value::String("beta")), 8u);
}

TEST(CountMinSketchTest, MergeAddsCounts) {
  CountMinSketch a(128, 4, /*seed=*/9);
  CountMinSketch b(128, 4, /*seed=*/9);
  for (int i = 0; i < 5; ++i) a.Observe(Value::Int64(1));
  for (int i = 0; i < 3; ++i) b.Observe(Value::Int64(1));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_GE(a.EstimateCount(Value::Int64(1)), 8u);
  EXPECT_EQ(a.observations(), 8u);
}

TEST(CountMinSketchTest, MergeRejectsShapeMismatch) {
  CountMinSketch a(128, 4);
  CountMinSketch b(64, 4);
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kInvalidArgument);
  CountMinSketch c(128, 4, /*seed=*/1);
  CountMinSketch d(128, 4, /*seed=*/2);
  EXPECT_FALSE(c.Merge(d).ok());
}

TEST(CountMinSketchTest, MergeRejectsOtherKinds) {
  CountMinSketch a(128, 4);
  CountMinSketch b(128, 4);
  EXPECT_TRUE(a.Merge(b).ok());
  // Kind mismatch is exercised in cellar tests with other summary types.
}

TEST(CountMinSketchTest, FromErrorBoundShapesSensibly) {
  CountMinSketch s = CountMinSketch::FromErrorBound(0.001, 0.01);
  EXPECT_GE(s.width(), 2718u);
  EXPECT_GE(s.depth(), 5u);
  EXPECT_LE(s.Epsilon(), 0.001);
}

TEST(CountMinSketchTest, MemoryScalesWithShape) {
  CountMinSketch small(64, 2);
  CountMinSketch big(4096, 8);
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage() * 10);
}

}  // namespace
}  // namespace fungusdb
