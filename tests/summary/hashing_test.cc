#include "summary/hashing.h"

#include <set>

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(HashingTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashingTest, Hash64SeedMatters) {
  EXPECT_NE(Hash64(42, 1), Hash64(42, 2));
  EXPECT_EQ(Hash64(42, 1), Hash64(42, 1));
}

TEST(HashingTest, HashBytesMatchesContent) {
  const std::string a = "fungus";
  const std::string b = "fungus";
  const std::string c = "fungos";
  EXPECT_EQ(HashBytes(a.data(), a.size(), 7),
            HashBytes(b.data(), b.size(), 7));
  EXPECT_NE(HashBytes(a.data(), a.size(), 7),
            HashBytes(c.data(), c.size(), 7));
}

TEST(HashingTest, HashValueTypes) {
  EXPECT_EQ(HashValue(Value::Int64(5), 1), HashValue(Value::Int64(5), 1));
  EXPECT_NE(HashValue(Value::Int64(5), 1), HashValue(Value::Int64(6), 1));
  EXPECT_EQ(HashValue(Value::String("x"), 1),
            HashValue(Value::String("x"), 1));
  // Int64 and Timestamp with the same payload hash identically (doc'd).
  EXPECT_EQ(HashValue(Value::Int64(5), 1),
            HashValue(Value::TimestampVal(5), 1));
}

TEST(HashingTest, NegativeZeroNormalized) {
  EXPECT_EQ(HashValue(Value::Float64(0.0), 3),
            HashValue(Value::Float64(-0.0), 3));
}

TEST(HashingTest, BoolsHashDistinctly) {
  EXPECT_NE(HashValue(Value::Bool(true), 1),
            HashValue(Value::Bool(false), 1));
}

}  // namespace
}  // namespace fungusdb
