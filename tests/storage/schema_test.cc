#include "storage/schema.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(SchemaTest, MakeValid) {
  Result<Schema> schema = Schema::Make({{"a", DataType::kInt64, false},
                                        {"b", DataType::kString, true}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 2u);
  EXPECT_EQ(schema->field(0).name, "a");
  EXPECT_TRUE(schema->field(1).nullable);
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Make({{"", DataType::kInt64, false}}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Result<Schema> schema = Schema::Make(
      {{"a", DataType::kInt64, false}, {"a", DataType::kString, false}});
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsReservedPrefix) {
  EXPECT_FALSE(Schema::Make({{"__ts", DataType::kInt64, false}}).ok());
  EXPECT_FALSE(Schema::Make({{"__anything", DataType::kInt64, false}}).ok());
  // A single underscore is fine.
  EXPECT_TRUE(Schema::Make({{"_private", DataType::kInt64, false}}).ok());
}

TEST(SchemaTest, FindField) {
  Schema schema = Schema::Make({{"x", DataType::kInt64, false},
                                {"y", DataType::kFloat64, false}})
                      .value();
  EXPECT_EQ(schema.FindField("x"), 0u);
  EXPECT_EQ(schema.FindField("y"), 1u);
  EXPECT_FALSE(schema.FindField("z").has_value());
}

TEST(SchemaTest, EqualsComparesFields) {
  Schema a = Schema::Make({{"x", DataType::kInt64, false}}).value();
  Schema b = Schema::Make({{"x", DataType::kInt64, false}}).value();
  Schema c = Schema::Make({{"x", DataType::kFloat64, false}}).value();
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(SchemaTest, ToStringRendering) {
  Schema schema = Schema::Make({{"a", DataType::kInt64, false},
                                {"b", DataType::kString, true}})
                      .value();
  EXPECT_EQ(schema.ToString(), "(a int64, b string null)");
}

TEST(SchemaTest, EmptySchemaAllowed) {
  Result<Schema> schema = Schema::Make({});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 0u);
}

TEST(SchemaTest, ParseTextualForm) {
  const Schema schema =
      Schema::Parse("(a int64, b float64 null, c string)").value();
  ASSERT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.fields()[0].name, "a");
  EXPECT_EQ(schema.fields()[0].type, DataType::kInt64);
  EXPECT_FALSE(schema.fields()[0].nullable);
  EXPECT_EQ(schema.fields()[1].type, DataType::kFloat64);
  EXPECT_TRUE(schema.fields()[1].nullable);
  EXPECT_EQ(schema.fields()[2].type, DataType::kString);
}

TEST(SchemaTest, ParseRoundTripsToString) {
  const Schema original =
      Schema::Make({{"x", DataType::kInt64, false},
                    {"y", DataType::kTimestamp, true},
                    {"z", DataType::kBool, false}})
          .value();
  const Schema reparsed = Schema::Parse(original.ToString()).value();
  EXPECT_TRUE(original.Equals(reparsed));
}

TEST(SchemaTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(Schema::Parse("").ok());
  EXPECT_FALSE(Schema::Parse("a int64").ok());            // no parens
  EXPECT_FALSE(Schema::Parse("(a)").ok());                // missing type
  EXPECT_FALSE(Schema::Parse("(a int32)").ok());          // unknown type
  EXPECT_FALSE(Schema::Parse("(a int64 maybe)").ok());    // not 'null'
  EXPECT_FALSE(Schema::Parse("(a int64, a string)").ok());  // duplicate
}

}  // namespace
}  // namespace fungusdb
