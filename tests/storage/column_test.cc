#include "storage/column.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(ColumnTest, FactoryProducesMatchingType) {
  for (DataType t : {DataType::kInt64, DataType::kFloat64, DataType::kString,
                     DataType::kBool, DataType::kTimestamp}) {
    std::unique_ptr<Column> col = MakeColumn(t);
    ASSERT_NE(col, nullptr);
    EXPECT_EQ(col->type(), t);
    EXPECT_EQ(col->size(), 0u);
  }
}

TEST(ColumnTest, Int64AppendAndGet) {
  Int64Column col;
  col.Append(Value::Int64(5));
  col.AppendTyped(7);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col.GetValue(0).AsInt64(), 5);
  EXPECT_EQ(col.at(1), 7);
  EXPECT_FALSE(col.IsNull(0));
}

TEST(ColumnTest, NullsTracked) {
  Float64Column col;
  col.Append(Value::Null());
  col.Append(Value::Float64(2.5));
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.GetValue(0).is_null());
  EXPECT_FALSE(col.IsNull(1));
  EXPECT_DOUBLE_EQ(col.GetValue(1).AsFloat64(), 2.5);
}

TEST(ColumnTest, StringColumnStoresPayload) {
  StringColumn col;
  col.Append(Value::String("hello"));
  col.AppendTyped("world");
  EXPECT_EQ(col.GetValue(0).AsString(), "hello");
  EXPECT_EQ(col.at(1), "world");
}

TEST(ColumnTest, BoolColumn) {
  BoolColumn col;
  col.Append(Value::Bool(true));
  col.Append(Value::Bool(false));
  EXPECT_TRUE(col.GetValue(0).AsBool());
  EXPECT_FALSE(col.GetValue(1).AsBool());
}

TEST(ColumnTest, TimestampColumnRoundTrips) {
  TimestampColumn col;
  col.Append(Value::TimestampVal(123456));
  col.AppendTyped(789);
  EXPECT_EQ(col.GetValue(0).AsTimestamp(), 123456);
  EXPECT_EQ(col.GetValue(0).type(), DataType::kTimestamp);
  EXPECT_EQ(col.at(1), 789);
}

TEST(ColumnTest, TimestampColumnNulls) {
  TimestampColumn col;
  col.Append(Value::Null());
  EXPECT_TRUE(col.IsNull(0));
  EXPECT_TRUE(col.GetValue(0).is_null());
}

TEST(ColumnTest, MemoryUsageGrowsWithData) {
  Int64Column col;
  const size_t empty = col.MemoryUsage();
  for (int i = 0; i < 10000; ++i) col.AppendTyped(i);
  EXPECT_GT(col.MemoryUsage(), empty + 10000 * sizeof(int64_t) / 2);
}

TEST(ColumnTest, StringMemoryIncludesPayloads) {
  StringColumn col;
  col.AppendTyped(std::string(4096, 'x'));
  EXPECT_GE(col.MemoryUsage(), 4096u);
}

}  // namespace
}  // namespace fungusdb
