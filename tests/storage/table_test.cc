#include "storage/table.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema ReadingSchema() {
  return Schema::Make({{"sensor", DataType::kInt64, false},
                       {"temp", DataType::kFloat64, true}})
      .value();
}

Table MakeSmallTable(size_t rows_per_segment = 4) {
  TableOptions opts;
  opts.rows_per_segment = rows_per_segment;
  return Table("t", ReadingSchema(), opts);
}

std::vector<Value> Row(int64_t sensor, double temp) {
  return {Value::Int64(sensor), Value::Float64(temp)};
}

TEST(TableTest, AppendAssignsSequentialRowIds) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.Append(Row(1, 1.0), 10).value(), 0u);
  EXPECT_EQ(t.Append(Row(2, 2.0), 20).value(), 1u);
  EXPECT_EQ(t.total_appended(), 2u);
  EXPECT_EQ(t.live_rows(), 2u);
}

TEST(TableTest, AppendValidatesArity) {
  Table t = MakeSmallTable();
  Result<RowId> r = t.Append({Value::Int64(1)}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendValidatesTypes) {
  Table t = MakeSmallTable();
  Result<RowId> r = t.Append({Value::String("no"), Value::Float64(1.0)}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(TableTest, AppendValidatesNullability) {
  Table t = MakeSmallTable();
  // temp is nullable, sensor is not.
  EXPECT_TRUE(t.Append({Value::Int64(1), Value::Null()}, 0).ok());
  Result<RowId> r = t.Append({Value::Null(), Value::Float64(1.0)}, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, FreshnessLifecycle) {
  Table t = MakeSmallTable();
  const RowId row = t.Append(Row(1, 1.0), 0).value();
  EXPECT_DOUBLE_EQ(t.Freshness(row), 1.0);
  ASSERT_TRUE(t.SetFreshness(row, 0.4).ok());
  EXPECT_DOUBLE_EQ(t.Freshness(row), 0.4);
  ASSERT_TRUE(t.DecayFreshness(row, 0.3).ok());
  EXPECT_NEAR(t.Freshness(row), 0.1, 1e-12);
  ASSERT_TRUE(t.DecayFreshness(row, 0.5).ok());
  EXPECT_FALSE(t.IsLive(row));
  EXPECT_DOUBLE_EQ(t.Freshness(row), 0.0);
  EXPECT_EQ(t.live_rows(), 0u);
  EXPECT_EQ(t.rows_killed(), 1u);
}

TEST(TableTest, MutationsOnDeadRowsFail) {
  Table t = MakeSmallTable();
  const RowId row = t.Append(Row(1, 1.0), 0).value();
  ASSERT_TRUE(t.Kill(row).ok());
  EXPECT_EQ(t.SetFreshness(row, 0.5).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(t.DecayFreshness(row, 0.1).code(),
            StatusCode::kFailedPrecondition);
  // Kill on dead is OK (idempotent) but does not double count.
  EXPECT_TRUE(t.Kill(row).ok());
  EXPECT_EQ(t.rows_killed(), 1u);
}

TEST(TableTest, NegativeDecayRejected) {
  Table t = MakeSmallTable();
  const RowId row = t.Append(Row(1, 1.0), 0).value();
  EXPECT_EQ(t.DecayFreshness(row, -0.1).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, UnknownRowsFail) {
  Table t = MakeSmallTable();
  EXPECT_FALSE(t.IsLive(99));
  EXPECT_EQ(t.SetFreshness(99, 0.5).code(), StatusCode::kNotFound);
  EXPECT_FALSE(t.InsertTime(99).ok());
  EXPECT_FALSE(t.GetValue(99, 0).ok());
}

TEST(TableTest, GetValueAndByName) {
  Table t = MakeSmallTable();
  const RowId row = t.Append(Row(7, 21.5), 1234).value();
  EXPECT_EQ(t.GetValue(row, 0).value().AsInt64(), 7);
  EXPECT_DOUBLE_EQ(t.GetValue(row, 1).value().AsFloat64(), 21.5);
  EXPECT_EQ(t.GetValueByName(row, "sensor").value().AsInt64(), 7);
  EXPECT_EQ(t.GetValueByName(row, "__ts").value().AsTimestamp(), 1234);
  EXPECT_DOUBLE_EQ(t.GetValueByName(row, "__freshness").value().AsFloat64(),
                   1.0);
  EXPECT_FALSE(t.GetValueByName(row, "nope").ok());
  EXPECT_FALSE(t.GetValue(row, 5).ok());
}

TEST(TableTest, SpansMultipleSegments) {
  Table t = MakeSmallTable(/*rows_per_segment=*/4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append(Row(i, i * 1.0), i).ok());
  }
  EXPECT_EQ(t.num_segments(), 3u);
  EXPECT_EQ(t.live_rows(), 10u);
  EXPECT_EQ(t.GetValue(9, 0).value().AsInt64(), 9);
}

TEST(TableTest, OldestAndNewestLive) {
  Table t = MakeSmallTable();
  EXPECT_FALSE(t.OldestLive().has_value());
  for (int i = 0; i < 6; ++i) t.Append(Row(i, 0.0), i).value();
  EXPECT_EQ(t.OldestLive().value(), 0u);
  EXPECT_EQ(t.NewestLive().value(), 5u);
  ASSERT_TRUE(t.Kill(0).ok());
  ASSERT_TRUE(t.Kill(5).ok());
  EXPECT_EQ(t.OldestLive().value(), 1u);
  EXPECT_EQ(t.NewestLive().value(), 4u);
}

TEST(TableTest, PrevNextLiveSkipDead) {
  Table t = MakeSmallTable(/*rows_per_segment=*/3);
  for (int i = 0; i < 9; ++i) t.Append(Row(i, 0.0), i).value();
  // Kill rows 3, 4, 5 (a whole middle segment).
  for (RowId r : {3, 4, 5}) ASSERT_TRUE(t.Kill(r).ok());
  EXPECT_EQ(t.NextLive(2).value(), 6u);
  EXPECT_EQ(t.PrevLive(6).value(), 2u);
  EXPECT_EQ(t.NextLive(8), std::nullopt);
  EXPECT_EQ(t.PrevLive(0), std::nullopt);
}

TEST(TableTest, PrevNextLiveAfterReclaim) {
  Table t = MakeSmallTable(/*rows_per_segment=*/3);
  for (int i = 0; i < 9; ++i) t.Append(Row(i, 0.0), i).value();
  for (RowId r : {3, 4, 5}) ASSERT_TRUE(t.Kill(r).ok());
  EXPECT_EQ(t.ReclaimDeadSegments(), 1u);
  EXPECT_EQ(t.num_segments(), 2u);
  EXPECT_FALSE(t.Contains(4));
  EXPECT_EQ(t.NextLive(2).value(), 6u);
  EXPECT_EQ(t.PrevLive(6).value(), 2u);
}

TEST(TableTest, ForEachLiveVisitsInInsertionOrder) {
  Table t = MakeSmallTable(/*rows_per_segment=*/4);
  for (int i = 0; i < 10; ++i) t.Append(Row(i, 0.0), i).value();
  ASSERT_TRUE(t.Kill(2).ok());
  ASSERT_TRUE(t.Kill(7).ok());
  std::vector<RowId> seen;
  t.ForEachLive([&](RowId row) { seen.push_back(row); });
  const std::vector<RowId> expected{0, 1, 3, 4, 5, 6, 8, 9};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(t.LiveRows(), expected);
}

TEST(TableTest, ReclaimOnlyFullDeadSegments) {
  Table t = MakeSmallTable(/*rows_per_segment=*/4);
  for (int i = 0; i < 6; ++i) t.Append(Row(i, 0.0), i).value();
  // Segment 0 holds rows 0-3 (full), segment 1 holds rows 4-5 (open).
  for (RowId r : {4, 5}) ASSERT_TRUE(t.Kill(r).ok());
  // Open tail segment is never reclaimed even when fully dead.
  EXPECT_EQ(t.ReclaimDeadSegments(), 0u);
  for (RowId r : {0, 1, 2, 3}) ASSERT_TRUE(t.Kill(r).ok());
  EXPECT_EQ(t.ReclaimDeadSegments(), 1u);
  EXPECT_EQ(t.num_segments(), 1u);
}

TEST(TableTest, MemoryShrinksAfterReclaim) {
  Table t = MakeSmallTable(/*rows_per_segment=*/256);
  for (int i = 0; i < 2048; ++i) t.Append(Row(i, 1.0), i).value();
  const size_t before = t.MemoryUsage();
  for (RowId r = 0; r < 1024; ++r) ASSERT_TRUE(t.Kill(r).ok());
  t.ReclaimDeadSegments();
  EXPECT_LT(t.MemoryUsage(), before);
}

TEST(TableTest, AccessTracking) {
  TableOptions opts;
  opts.rows_per_segment = 4;
  opts.track_access = true;
  Table t("t", ReadingSchema(), opts);
  const RowId row = t.Append(Row(1, 1.0), 0).value();
  t.RecordAccess(row);
  t.RecordAccess(row);
  EXPECT_EQ(t.AccessCount(row), 2u);
}

TEST(TableTest, KillConservation) {
  // live_rows + rows_killed == total_appended, always.
  Table t = MakeSmallTable(/*rows_per_segment=*/8);
  for (int i = 0; i < 64; ++i) t.Append(Row(i, 0.0), i).value();
  for (RowId r = 0; r < 64; r += 3) ASSERT_TRUE(t.Kill(r).ok());
  EXPECT_EQ(t.live_rows() + t.rows_killed(), t.total_appended());
  t.ReclaimDeadSegments();
  EXPECT_EQ(t.live_rows() + t.rows_killed(), t.total_appended());
}

}  // namespace
}  // namespace fungusdb
