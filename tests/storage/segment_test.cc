#include "storage/segment.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema TwoColSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"name", DataType::kString, true}})
      .value();
}

TEST(SegmentTest, AppendFillsToCapacity) {
  Segment seg(TwoColSchema(), /*first_row=*/0, /*capacity=*/3,
              /*track_access=*/false);
  EXPECT_FALSE(seg.full());
  for (int i = 0; i < 3; ++i) {
    seg.Append({Value::Int64(i), Value::String("r")}, /*now=*/i * 10);
  }
  EXPECT_TRUE(seg.full());
  EXPECT_EQ(seg.num_rows(), 3u);
  EXPECT_EQ(seg.live_count(), 3u);
}

TEST(SegmentTest, NewTuplesHaveFullFreshness) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 5);
  EXPECT_TRUE(seg.IsLive(0));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 1.0);
  EXPECT_EQ(seg.InsertTime(0), 5);
}

TEST(SegmentTest, SetFreshnessClampsAndKills) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_FALSE(seg.SetFreshness(0, 0.5));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.5);
  EXPECT_FALSE(seg.SetFreshness(0, 1.7));  // clamped to 1.0
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 1.0);
  EXPECT_TRUE(seg.SetFreshness(0, -0.2));  // clamped to 0 -> dead
  EXPECT_FALSE(seg.IsLive(0));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.0);
  EXPECT_EQ(seg.live_count(), 0u);
}

TEST(SegmentTest, SetFreshnessOnDeadIsNoop) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  seg.Kill(0);
  EXPECT_FALSE(seg.SetFreshness(0, 0.8));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.0);
}

TEST(SegmentTest, KillIsIdempotent) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_TRUE(seg.Kill(0));
  EXPECT_FALSE(seg.Kill(0));
  EXPECT_EQ(seg.live_count(), 0u);
}

TEST(SegmentTest, DeadTupleValuesRemainReadable) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(9), Value::String("keep")}, 0);
  seg.Kill(0);
  EXPECT_EQ(seg.GetValue(0, 0).AsInt64(), 9);
  EXPECT_EQ(seg.GetValue(0, 1).AsString(), "keep");
}

TEST(SegmentTest, AccessCountingWhenEnabled) {
  Segment seg(TwoColSchema(), 0, 4, /*track_access=*/true);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_EQ(seg.AccessCount(0), 0u);
  seg.RecordAccess(0);
  seg.RecordAccess(0);
  EXPECT_EQ(seg.AccessCount(0), 2u);
}

TEST(SegmentTest, AccessCountingDisabledByDefault) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  seg.RecordAccess(0);
  EXPECT_EQ(seg.AccessCount(0), 0u);
}

TEST(SegmentTest, FirstRowOffset) {
  Segment seg(TwoColSchema(), 4096, 4096, false);
  EXPECT_EQ(seg.first_row(), 4096u);
}

// --- lazy decay: pending uniform decrements -------------------------------

void FillSegment(Segment& seg, double freshness = 1.0) {
  for (int i = 0; i < 4; ++i) {
    seg.Append({Value::Int64(i), Value::Null()}, /*now=*/i * 10);
  }
  if (freshness < 1.0) {
    for (size_t off = 0; off < 4; ++off) seg.SetFreshness(off, freshness);
    seg.RecomputeZoneMap();
  }
}

TEST(SegmentTest, FoldedDecayIsVisibleWithoutRewritingRows) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg);
  ASSERT_TRUE(seg.CanFoldUniformDecay(0.25));
  seg.FoldUniformDecay(0.25, /*epoch=*/1);
  EXPECT_TRUE(seg.has_pending_decay());
  EXPECT_EQ(seg.decay_epoch(), 1u);
  for (size_t off = 0; off < 4; ++off) {
    EXPECT_DOUBLE_EQ(seg.stored_freshness(off), 1.0);  // rows untouched
    EXPECT_DOUBLE_EQ(seg.Freshness(off), 0.75);        // readers see decay
  }
  EXPECT_DOUBLE_EQ(seg.EffectiveMinFreshness(), 0.75);
  EXPECT_DOUBLE_EQ(seg.EffectiveMaxFreshness(), 0.75);
}

TEST(SegmentTest, MaterializeReplaysDecrementsInOrderAndClears) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg);
  seg.FoldUniformDecay(0.1, 1);
  seg.FoldUniformDecay(0.2, 2);
  const double expected = (1.0 - 0.1) - 0.2;  // sequential, not summed
  EXPECT_DOUBLE_EQ(seg.Freshness(0), expected);
  EXPECT_EQ(seg.MaterializePendingDecay(/*epoch=*/2), 4u);
  EXPECT_FALSE(seg.has_pending_decay());
  for (size_t off = 0; off < 4; ++off) {
    EXPECT_DOUBLE_EQ(seg.stored_freshness(off), expected);
    EXPECT_DOUBLE_EQ(seg.Freshness(off), expected);
  }
  // Idempotent once drained.
  EXPECT_EQ(seg.MaterializePendingDecay(2), 0u);
}

TEST(SegmentTest, CannotFoldDecayThatWouldKill) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg, /*freshness=*/0.3);
  // 0.3 - 0.3 == 0 would be a death; folds must never defer deaths.
  EXPECT_FALSE(seg.CanFoldUniformDecay(0.3));
  EXPECT_FALSE(seg.CanFoldUniformDecay(0.5));
  EXPECT_TRUE(seg.CanFoldUniformDecay(0.29));
}

TEST(SegmentTest, CannotFoldOnDeadOrNegative) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg);
  EXPECT_FALSE(seg.CanFoldUniformDecay(-0.1));
  for (size_t off = 0; off < 4; ++off) seg.Kill(off);
  seg.RecomputeZoneMap();
  EXPECT_FALSE(seg.CanFoldUniformDecay(0.1));
}

TEST(SegmentTest, MaterializeSkipsDeadRowsAndShiftsZoneBounds) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg);
  seg.Kill(2);
  seg.RecomputeZoneMap();
  seg.FoldUniformDecay(0.5, 1);
  EXPECT_EQ(seg.MaterializePendingDecay(1), 3u);  // 3 live rows rewritten
  EXPECT_DOUBLE_EQ(seg.stored_freshness(2), 0.0);  // dead row untouched
  EXPECT_DOUBLE_EQ(seg.zone_map().min_f, 0.5);
  EXPECT_DOUBLE_EQ(seg.zone_map().max_f, 0.5);
}

TEST(SegmentTest, RecomputeZoneMapMaterializesFirst) {
  Segment seg(TwoColSchema(), 0, 4, false);
  FillSegment(seg);
  seg.FoldUniformDecay(0.25, 1);
  seg.RecomputeZoneMap();
  EXPECT_FALSE(seg.has_pending_decay());
  EXPECT_DOUBLE_EQ(seg.zone_map().min_f, 0.75);
  EXPECT_DOUBLE_EQ(seg.stored_freshness(0), 0.75);
  EXPECT_EQ(seg.decay_epoch(), 1u);  // epoch survives the recount
}

}  // namespace
}  // namespace fungusdb
