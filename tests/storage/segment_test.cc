#include "storage/segment.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

Schema TwoColSchema() {
  return Schema::Make({{"id", DataType::kInt64, false},
                       {"name", DataType::kString, true}})
      .value();
}

TEST(SegmentTest, AppendFillsToCapacity) {
  Segment seg(TwoColSchema(), /*first_row=*/0, /*capacity=*/3,
              /*track_access=*/false);
  EXPECT_FALSE(seg.full());
  for (int i = 0; i < 3; ++i) {
    seg.Append({Value::Int64(i), Value::String("r")}, /*now=*/i * 10);
  }
  EXPECT_TRUE(seg.full());
  EXPECT_EQ(seg.num_rows(), 3u);
  EXPECT_EQ(seg.live_count(), 3u);
}

TEST(SegmentTest, NewTuplesHaveFullFreshness) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 5);
  EXPECT_TRUE(seg.IsLive(0));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 1.0);
  EXPECT_EQ(seg.InsertTime(0), 5);
}

TEST(SegmentTest, SetFreshnessClampsAndKills) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_FALSE(seg.SetFreshness(0, 0.5));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.5);
  EXPECT_FALSE(seg.SetFreshness(0, 1.7));  // clamped to 1.0
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 1.0);
  EXPECT_TRUE(seg.SetFreshness(0, -0.2));  // clamped to 0 -> dead
  EXPECT_FALSE(seg.IsLive(0));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.0);
  EXPECT_EQ(seg.live_count(), 0u);
}

TEST(SegmentTest, SetFreshnessOnDeadIsNoop) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  seg.Kill(0);
  EXPECT_FALSE(seg.SetFreshness(0, 0.8));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.0);
}

TEST(SegmentTest, KillIsIdempotent) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_TRUE(seg.Kill(0));
  EXPECT_FALSE(seg.Kill(0));
  EXPECT_EQ(seg.live_count(), 0u);
}

TEST(SegmentTest, DeadTupleValuesRemainReadable) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(9), Value::String("keep")}, 0);
  seg.Kill(0);
  EXPECT_EQ(seg.GetValue(0, 0).AsInt64(), 9);
  EXPECT_EQ(seg.GetValue(0, 1).AsString(), "keep");
}

TEST(SegmentTest, AccessCountingWhenEnabled) {
  Segment seg(TwoColSchema(), 0, 4, /*track_access=*/true);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  EXPECT_EQ(seg.AccessCount(0), 0u);
  seg.RecordAccess(0);
  seg.RecordAccess(0);
  EXPECT_EQ(seg.AccessCount(0), 2u);
}

TEST(SegmentTest, AccessCountingDisabledByDefault) {
  Segment seg(TwoColSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Null()}, 0);
  seg.RecordAccess(0);
  EXPECT_EQ(seg.AccessCount(0), 0u);
}

TEST(SegmentTest, FirstRowOffset) {
  Segment seg(TwoColSchema(), 4096, 4096, false);
  EXPECT_EQ(seg.first_row(), 4096u);
}

}  // namespace
}  // namespace fungusdb
