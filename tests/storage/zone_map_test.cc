// Zone-map maintenance: the incremental bounds kept on Append /
// SetFreshness / Kill must always cover the stored rows (the pruning
// soundness contract), and RecomputeZoneMap must tighten them to exact.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "storage/segment.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

Schema MixedSchema() {
  return Schema::Make({{"i", DataType::kInt64, true},
                       {"d", DataType::kFloat64, true},
                       {"s", DataType::kString, false}})
      .value();
}

TEST(ZoneMapTest, FreshSegmentHasEmptyZones) {
  Segment seg(MixedSchema(), 0, 8, /*track_access=*/false);
  const ZoneMap& z = seg.zone_map();
  EXPECT_FALSE(z.has_rows());
  EXPECT_FALSE(z.has_live_freshness());
  ASSERT_EQ(z.columns.size(), 3u);
  EXPECT_TRUE(z.columns[0].tracked);
  EXPECT_TRUE(z.columns[1].tracked);
  EXPECT_FALSE(z.columns[2].tracked);  // string column: never consulted
  EXPECT_FALSE(z.columns[0].has_value());
}

TEST(ZoneMapTest, AppendWidensTimeAndColumnBounds) {
  Segment seg(MixedSchema(), 0, 8, false);
  seg.Append({Value::Int64(5), Value::Float64(-1.5), Value::String("x")},
             /*now=*/100);
  seg.Append({Value::Int64(-3), Value::Float64(2.5), Value::String("y")},
             /*now=*/250);
  const ZoneMap& z = seg.zone_map();
  EXPECT_EQ(z.min_ts, 100);
  EXPECT_EQ(z.max_ts, 250);
  EXPECT_DOUBLE_EQ(z.min_f, 1.0);
  EXPECT_DOUBLE_EQ(z.max_f, 1.0);
  EXPECT_DOUBLE_EQ(z.columns[0].min, -3.0);
  EXPECT_DOUBLE_EQ(z.columns[0].max, 5.0);
  EXPECT_DOUBLE_EQ(z.columns[1].min, -1.5);
  EXPECT_DOUBLE_EQ(z.columns[1].max, 2.5);
}

TEST(ZoneMapTest, NullCellsDoNotContribute) {
  Segment seg(MixedSchema(), 0, 8, false);
  seg.Append({Value::Null(), Value::Null(), Value::String("x")}, 10);
  const ZoneMap& z = seg.zone_map();
  EXPECT_TRUE(z.has_rows());
  EXPECT_FALSE(z.columns[0].has_value());
  EXPECT_FALSE(z.columns[1].has_value());
  seg.Append({Value::Int64(7), Value::Null(), Value::String("y")}, 20);
  EXPECT_DOUBLE_EQ(seg.zone_map().columns[0].min, 7.0);
  EXPECT_DOUBLE_EQ(seg.zone_map().columns[0].max, 7.0);
}

TEST(ZoneMapTest, NaNCellSetsFlagNotBounds) {
  Segment seg(MixedSchema(), 0, 8, false);
  seg.Append({Value::Int64(1), Value::Float64(std::nan("")),
              Value::String("x")},
             10);
  const ColumnZone& dz = seg.zone_map().columns[1];
  EXPECT_TRUE(dz.has_nan);
  EXPECT_FALSE(dz.has_value());  // NaN never enters min/max
  seg.Append({Value::Int64(2), Value::Float64(4.0), Value::String("y")},
             20);
  EXPECT_TRUE(seg.zone_map().columns[1].has_nan);
  EXPECT_DOUBLE_EQ(seg.zone_map().columns[1].min, 4.0);
}

TEST(ZoneMapTest, FreshnessWritesWidenEagerly) {
  Segment seg(MixedSchema(), 0, 8, false);
  seg.Append({Value::Int64(1), Value::Float64(0.0), Value::String("x")},
             10);
  seg.Append({Value::Int64(2), Value::Float64(0.0), Value::String("y")},
             10);
  EXPECT_FALSE(seg.SetFreshness(0, 0.25));
  const ZoneMap& z = seg.zone_map();
  EXPECT_DOUBLE_EQ(z.min_f, 0.25);
  EXPECT_DOUBLE_EQ(z.max_f, 1.0);
  // Raising row 0 again widens nothing new but must stay covering.
  EXPECT_FALSE(seg.SetFreshness(0, 0.75));
  EXPECT_DOUBLE_EQ(seg.zone_map().min_f, 0.25);  // conservative, loose
  // Recompute tightens to the exact live range {0.75, 1.0}.
  seg.RecomputeZoneMap();
  EXPECT_DOUBLE_EQ(seg.zone_map().min_f, 0.75);
  EXPECT_DOUBLE_EQ(seg.zone_map().max_f, 1.0);
}

TEST(ZoneMapTest, FreshnessZoneResetsWhenSegmentEmpties) {
  Segment seg(MixedSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Float64(0.0), Value::String("x")},
             10);
  seg.Append({Value::Int64(2), Value::Float64(0.0), Value::String("y")},
             20);
  EXPECT_TRUE(seg.Kill(0));
  EXPECT_TRUE(seg.zone_map().has_live_freshness());
  EXPECT_TRUE(seg.SetFreshness(1, 0.0));  // kills the last live row
  EXPECT_EQ(seg.live_count(), 0u);
  // With no live rows the freshness zone is trivially empty, so decay
  // planners can skip the segment outright.
  EXPECT_FALSE(seg.zone_map().has_live_freshness());
  // Time and column bounds still cover the (dead) rows.
  EXPECT_EQ(seg.zone_map().min_ts, 10);
  EXPECT_EQ(seg.zone_map().max_ts, 20);
  EXPECT_DOUBLE_EQ(seg.zone_map().columns[0].max, 2.0);
}

TEST(ZoneMapTest, SetFreshnessEarlyOutsOnNoOpWrites) {
  Segment seg(MixedSchema(), 0, 4, false);
  seg.Append({Value::Int64(1), Value::Float64(0.0), Value::String("x")},
             10);
  EXPECT_FALSE(seg.SetFreshness(0, 0.5));
  // Writing the identical value again must not widen, kill, or flip
  // liveness — the decay-tick hot path repeats values when the clock
  // does not advance.
  EXPECT_FALSE(seg.SetFreshness(0, 0.5));
  EXPECT_TRUE(seg.IsLive(0));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.5);
  // Dead rows reject writes entirely.
  EXPECT_TRUE(seg.Kill(0));
  EXPECT_FALSE(seg.SetFreshness(0, 0.9));
  EXPECT_DOUBLE_EQ(seg.Freshness(0), 0.0);
}

TEST(ZoneMapTest, RecomputeMatchesIncrementalOnTableWorkload) {
  TableOptions opts;
  opts.rows_per_segment = 16;
  Table table("t", MixedSchema(), opts);
  for (int n = 0; n < 100; ++n) {
    table
        .Append({Value::Int64(n % 13 - 6), Value::Float64(n * 0.5 - 20),
                 Value::String("r")},
                /*now=*/n * 3)
        .value();
  }
  for (RowId r = 0; r < 100; r += 7) {
    FUNGUSDB_CHECK_OK(table.SetFreshness(r, 0.4));
  }
  for (RowId r = 0; r < 100; r += 11) {
    FUNGUSDB_CHECK_OK(table.Kill(r));
  }
  // Every incremental bound must cover what an exact recount computes.
  for (const auto& [seg_no, seg] : table.segment_index()) {
    const ZoneMap before = seg->zone_map();
    seg->RecomputeZoneMap();
    const ZoneMap& exact = seg->zone_map();
    EXPECT_EQ(before.min_ts, exact.min_ts) << "segment " << seg_no;
    EXPECT_EQ(before.max_ts, exact.max_ts) << "segment " << seg_no;
    if (exact.has_live_freshness()) {
      EXPECT_LE(before.min_f, exact.min_f) << "segment " << seg_no;
      EXPECT_GE(before.max_f, exact.max_f) << "segment " << seg_no;
    }
    for (size_t c = 0; c < exact.columns.size(); ++c) {
      if (!exact.columns[c].tracked || !exact.columns[c].has_value()) {
        continue;
      }
      EXPECT_LE(before.columns[c].min, exact.columns[c].min);
      EXPECT_GE(before.columns[c].max, exact.columns[c].max);
    }
  }
}

}  // namespace
}  // namespace fungusdb
