// Tiered compressed segments (DESIGN.md §15): freezing a cold segment
// into the encoded tier and thawing it on a mutating touch must be
// invisible to every observer — same cell values, same freshness, same
// query answers, same snapshot bytes after normalization. These suites
// pin that contract four ways: direct freeze/thaw round-trips, a
// randomized freeze-on/off differential, snapshot format coverage
// (v2 compat, v3 frozen blocks, incremental splicing), and fsck
// detection of corrupted encoded blocks. The *TieredStorage* suite
// names are load-bearing: CI's TSan job selects them by regex.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_io.h"
#include "common/random.h"
#include "core/database.h"
#include "core/session.h"
#include "fungus/retention_fungus.h"
#include "fungus/rot_analysis.h"
#include "persist/fsck.h"
#include "persist/snapshot.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"
#include "storage/value_serde.h"
#include "verify/corruptor.h"
#include "verify/invariant_checker.h"

namespace fungusdb {
namespace {

using verify::InvariantChecker;
using verify::Report;
using verify::Violation;

Schema MixedSchema() {
  return Schema::Make({{"k", DataType::kInt64, false},
                       {"s", DataType::kString, true},
                       {"v", DataType::kFloat64, false}})
      .value();
}

/// 16 rows over 4 full segments (4 rows each, 2 shards), every column
/// kind the encoder special-cases: int64 (FOR), string (dict + RLE,
/// with nulls), float64 (raw).
Table MakeFreezableTable() {
  TableOptions options;
  options.rows_per_segment = 4;
  options.num_shards = 2;
  Table table("t", MixedSchema(), options);
  for (int i = 0; i < 16; ++i) {
    std::vector<Value> row = {
        Value::Int64(i * 1000),
        i % 5 == 0 ? Value::Null()
                   : Value::String("unit-" + std::to_string(i % 3)),
        Value::Float64(i * 0.25)};
    table.Append(row, /*now=*/static_cast<Timestamp>(i)).value();
  }
  return table;
}

/// Full per-row observable state, tier-independent: one rendered line
/// per live row. Comparing these proves bit-identity without caring
/// which representation a segment currently uses.
std::vector<std::string> ObservableRows(const Table& table) {
  std::vector<std::string> out;
  table.ForEachLive([&](RowId row) {
    std::string line = std::to_string(row) + "|" +
                       std::to_string(table.InsertTime(row).value()) +
                       "|" + std::to_string(table.Freshness(row));
    for (size_t c = 0; c < table.schema().num_fields(); ++c) {
      line += "|" + table.GetValue(row, c).value().ToString();
    }
    out.push_back(std::move(line));
  });
  return out;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------
// Direct freeze/thaw round-trips on a bare table.

TEST(TieredStorageTest, FreezeThawRoundTripIsBitIdentical) {
  Table table = MakeFreezableTable();
  ASSERT_TRUE(table.Kill(5).ok());
  ASSERT_TRUE(table.SetFreshness(9, 0.375).ok());
  const std::vector<std::string> before = ObservableRows(table);

  EXPECT_EQ(table.FreezeColdSegments(0), 4u);
  const StorageStats frozen = table.GetStorageStats();
  EXPECT_EQ(frozen.frozen_segments, 4u);
  EXPECT_GT(frozen.encoded_bytes, 0u);
  // No compression claim at 4-row toy segments — the encoding's fixed
  // structs dominate there. bench_t9/bench_t1 pin the ratio at real
  // segment sizes; this suite pins correctness.
  EXPECT_GT(frozen.plain_bytes_before, 0u);
  EXPECT_EQ(ObservableRows(table), before);
  EXPECT_TRUE(InvariantChecker().CheckTable(table).ok());

  // Any mutating touch thaws transparently; the plain tier that comes
  // back must be the one that went in.
  ASSERT_TRUE(table.SetFreshness(1, 0.5).ok());
  ASSERT_TRUE(table.Kill(14).ok());
  const StorageStats thawed = table.GetStorageStats();
  EXPECT_EQ(thawed.frozen_segments, 2u);
  EXPECT_EQ(thawed.thaw_count, 2u);
  EXPECT_DOUBLE_EQ(table.Freshness(1), 0.5);
  EXPECT_FALSE(table.IsLive(14));
  EXPECT_TRUE(InvariantChecker().CheckTable(table).ok());
}

TEST(TieredStorageTest, QueriesScanFrozenSegmentsWithoutThawing) {
  Table table = MakeFreezableTable();
  ASSERT_EQ(table.FreezeColdSegments(0), 4u);

  QueryEngine engine{QueryEngineOptions{}};
  struct Case {
    const char* sql;
    int64_t want;
  };
  const Case cases[] = {
      // Full decode over every frozen segment.
      {"SELECT count(*) AS n FROM t WHERE k >= 0", 16},
      // FOR zone maps prune all but the last segment without decoding.
      {"SELECT count(*) AS n FROM t WHERE k >= 12000", 4},
      // Dictionary path: string equality over RLE codes. i%3==1 gives
      // rows {1,4,7,10,13}; row 10 is null (i%5==0), leaving 4.
      {"SELECT count(*) AS n FROM t WHERE s = 'unit-1'", 4},
  };
  for (const Case& c : cases) {
    Query q = ParseQuery(c.sql).value();
    ResultSet rs = engine.Execute(q, table, 0).value();
    EXPECT_EQ(rs.at(0, 0).AsInt64(), c.want) << c.sql;
  }

  // Reads are not touches: everything is still frozen, nothing thawed.
  const StorageStats st = table.GetStorageStats();
  EXPECT_EQ(st.frozen_segments, 4u);
  EXPECT_EQ(st.thaw_count, 0u);
}

// ---------------------------------------------------------------------
// Randomized differential: a database with the freeze policy on must be
// observably bit-identical to one with it off, across inserts, decay
// ticks (which kill and therefore thaw), queries, and snapshots.

std::unique_ptr<Database> MakeDb(bool freeze) {
  auto db = std::make_unique<Database>();
  TableOptions opts;
  opts.rows_per_segment = 8;
  opts.num_shards = 3;
  opts.freeze_after_idle_ticks = freeze ? 1 : 0;
  FUNGUSDB_CHECK_OK(db->CreateTable("r", MixedSchema(), opts).status());
  FUNGUSDB_CHECK_OK(
      db->AttachFungus("r", std::make_unique<RetentionFungus>(8 * kHour),
                       /*interval=*/kHour)
          .status());
  return db;
}

const Table& TableOf(Database& db) {
  return db.GetTable("r").value().table();
}

void ExpectSameAnswers(Database& frozen, Database& plain) {
  static const char* const kQueries[] = {
      "SELECT k, s, v FROM r",
      "SELECT k FROM r WHERE __freshness > 0.6",
      "SELECT count(*) AS n FROM r WHERE v >= 0.5",
      "SELECT count(*) AS n FROM r WHERE s = 'unit-1'",
  };
  for (const char* sql : kQueries) {
    ResultSet a = frozen.ExecuteSql(sql).value();
    ResultSet b = plain.ExecuteSql(sql).value();
    ASSERT_EQ(a.num_rows(), b.num_rows()) << sql;
    for (size_t i = 0; i < a.num_rows(); ++i) {
      for (size_t j = 0; j < a.num_columns(); ++j) {
        ASSERT_TRUE(a.at(i, j).Equals(b.at(i, j)))
            << sql << " row " << i << " col " << j;
      }
    }
  }
}

/// Snapshots of the two sides are NOT byte-identical — one writes
/// frozen blocks, the other flat rows. Loading normalizes (everything
/// loads plain), so serialize(load(x)) is the canonical form.
void ExpectNormalizedSnapshotsIdentical(Database& frozen, Database& plain) {
  BufferWriter raw_frozen, raw_plain;
  SerializeDatabase(frozen, raw_frozen);
  SerializeDatabase(plain, raw_plain);

  BufferReader read_frozen(raw_frozen.buffer());
  BufferReader read_plain(raw_plain.buffer());
  std::unique_ptr<Database> a = DeserializeDatabase(read_frozen).value();
  std::unique_ptr<Database> b = DeserializeDatabase(read_plain).value();
  BufferWriter norm_a, norm_b;
  SerializeDatabase(*a, norm_a);
  SerializeDatabase(*b, norm_b);
  ASSERT_EQ(norm_a.buffer(), norm_b.buffer());
}

TEST(TieredStorageDifferentialTest, FreezeOnVsOffIsBitIdentical) {
  for (const uint64_t seed : {7ull, 99ull, 20260808ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    std::unique_ptr<Database> frozen = MakeDb(true);
    std::unique_ptr<Database> plain = MakeDb(false);

    for (int step = 0; step < 60; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      const uint64_t op = rng.NextBounded(100);
      if (op < 40) {
        const int batch = static_cast<int>(rng.NextBounded(8)) + 1;
        for (int i = 0; i < batch; ++i) {
          const int64_t k = rng.NextInt(0, 9);
          std::vector<Value> row = {
              Value::Int64(k),
              k == 0 ? Value::Null()
                     : Value::String("unit-" + std::to_string(k % 3)),
              Value::Float64(rng.NextDouble())};
          FUNGUSDB_CHECK_OK(frozen->Insert("r", row).status());
          FUNGUSDB_CHECK_OK(plain->Insert("r", row).status());
        }
      } else if (op < 80) {
        // Multi-tick jumps age segments past the idle threshold (so the
        // frozen side really freezes) and past the retention horizon
        // (so decay kills force thaws).
        const Duration d =
            static_cast<Duration>(rng.NextBounded(6) + 1) * kHour;
        FUNGUSDB_CHECK_OK(frozen->AdvanceTime(d).status());
        FUNGUSDB_CHECK_OK(plain->AdvanceTime(d).status());
      } else if (op < 92) {
        ExpectSameAnswers(*frozen, *plain);
      } else {
        ExpectNormalizedSnapshotsIdentical(*frozen, *plain);
      }
      ASSERT_EQ(ObservableRows(TableOf(*frozen)),
                ObservableRows(TableOf(*plain)));
    }

    EXPECT_TRUE(frozen->Fsck().ok());
    EXPECT_TRUE(plain->Fsck().ok());

    // Logical rot analysis is tier-blind; only the physical tier
    // annotation may differ between the two sides.
    const RotReport fr =
        BuildRotReport(TableOf(*frozen), &frozen->scheduler());
    const RotReport pr =
        BuildRotReport(TableOf(*plain), &plain->scheduler());
    EXPECT_EQ(fr.structure.live_tuples, pr.structure.live_tuples);
    EXPECT_EQ(fr.structure.dead_tuples, pr.structure.dead_tuples);
    EXPECT_EQ(fr.freshness_histogram, pr.freshness_histogram);
    EXPECT_EQ(fr.oldest_live_ts, pr.oldest_live_ts);
    EXPECT_EQ(fr.heatmap, pr.heatmap);

    // The mechanisms must actually have diverged: the freeze side froze
    // (and, via retention kills, thawed) segments; the off side never
    // touched the encoded tier.
    const StorageStats fs = TableOf(*frozen).GetStorageStats();
    const StorageStats ps = TableOf(*plain).GetStorageStats();
    EXPECT_GT(fs.segments_frozen_total, 0u);
    EXPECT_GT(fs.thaw_count, 0u);
    EXPECT_EQ(ps.segments_frozen_total, 0u);
    EXPECT_EQ(ps.frozen_segments, 0u);
  }
}

// ---------------------------------------------------------------------
// Snapshot format coverage.

class TieredStorageSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_path_ = TempPath(name + ".base.fgdb");
    next_path_ = TempPath(name + ".next.fgdb");
  }
  void TearDown() override {
    std::remove(base_path_.c_str());
    std::remove(next_path_.c_str());
  }

  /// A database whose freeze policy has demonstrably fired: 32 rows,
  /// 4-row segments, one idle tick to freeze the cold prefix.
  std::unique_ptr<Database> MakeFrozenDb() {
    auto db = std::make_unique<Database>();
    TableOptions opts;
    opts.rows_per_segment = 4;
    opts.num_shards = 2;
    opts.freeze_after_idle_ticks = 1;
    FUNGUSDB_CHECK_OK(db->CreateTable("r", MixedSchema(), opts).status());
    for (int i = 0; i < 32; ++i) {
      FUNGUSDB_CHECK_OK(
          db->Insert("r", {Value::Int64(i),
                           i % 7 == 0
                               ? Value::Null()
                               : Value::String("unit-" +
                                               std::to_string(i % 3)),
                           Value::Float64(i * 0.5)})
              .status());
    }
    // A horizon far past the test keeps every row alive; the ticks
    // exist to advance the decay epoch and run the freeze pass.
    FUNGUSDB_CHECK_OK(
        db->AttachFungus("r",
                         std::make_unique<RetentionFungus>(1000 * kHour),
                         /*interval=*/kHour)
            .status());
    FUNGUSDB_CHECK_OK(db->AdvanceTime(2 * kHour).status());
    EXPECT_GT(TableOf(*db).GetStorageStats().frozen_segments, 0u);
    return db;
  }

  std::string base_path_;
  std::string next_path_;
};

TEST_F(TieredStorageSnapshotTest, V3RoundTripPreservesFrozenData) {
  std::unique_ptr<Database> db = MakeFrozenDb();
  const std::vector<std::string> want = ObservableRows(TableOf(*db));
  ASSERT_TRUE(SaveDatabaseSnapshot(*db, base_path_).ok());

  // funguscheck's snapshot audit must accept a v3 file with frozen
  // blocks and find the restored database fsck-clean.
  const SnapshotAudit audit = AuditSnapshotFile(base_path_).value();
  EXPECT_EQ(audit.tables, 1u);
  EXPECT_TRUE(audit.fsck.ok()) << audit.fsck.ToString();

  std::unique_ptr<Database> loaded =
      LoadDatabaseSnapshot(base_path_).value();
  EXPECT_EQ(ObservableRows(TableOf(*loaded)), want);
  // Everything loads into the plain tier; the policy refreezes later.
  EXPECT_EQ(TableOf(*loaded).GetStorageStats().frozen_segments, 0u);
  EXPECT_TRUE(loaded->Fsck().ok());
}

TEST_F(TieredStorageSnapshotTest, V2FlatSnapshotStillLoads) {
  // Hand-build a version-2 file: flat live-row list, no chunks. This is
  // the format PRs 1..8 wrote; upgrades must keep reading it.
  BufferWriter out;
  out.WriteString(std::string_view("FGDB", 4));
  out.WriteU32(2);
  out.WriteI64(0);        // virtual clock
  out.WriteDouble(0.05);  // cellar eviction threshold
  out.WriteBool(false);   // record_access
  out.WriteU64(1);        // one table
  out.WriteString("r");
  WriteSchema(out, MixedSchema());
  out.WriteU64(8);       // rows_per_segment
  out.WriteBool(false);  // track_access
  out.WriteU64(2);       // num_shards
  out.WriteU64(3);       // flat live-row count
  for (int i = 0; i < 3; ++i) {
    out.WriteI64(i);          // insert time
    out.WriteDouble(1.0);     // freshness
    WriteValue(out, Value::Int64(i));
    WriteValue(out, i == 1 ? Value::Null() : Value::String("unit-0"));
    WriteValue(out, Value::Float64(i * 2.0));
  }
  Database empty;  // a fresh cellar serializes the trailing section
  empty.cellar().Serialize(out);

  BufferReader in(out.buffer());
  std::unique_ptr<Database> db = DeserializeDatabase(in).value();
  const Table& t = TableOf(*db);
  EXPECT_EQ(t.live_rows(), 3u);
  EXPECT_TRUE(t.GetValue(1, 1).value().is_null());
  EXPECT_TRUE(
      t.GetValue(2, 1).value().Equals(Value::String("unit-0")));
  EXPECT_TRUE(db->Fsck().ok());
}

TEST_F(TieredStorageSnapshotTest, IncrementalSnapshotSplicesFrozenBlocks) {
  std::unique_ptr<Database> db = MakeFrozenDb();
  ASSERT_TRUE(SaveDatabaseSnapshot(*db, base_path_).ok());
  const uint64_t frozen_before =
      TableOf(*db).GetStorageStats().frozen_segments;

  // New appends land in new plain segments; the frozen prefix is
  // untouched, so the incremental save must splice every frozen block
  // from the base file instead of re-encoding it.
  for (int i = 0; i < 8; ++i) {
    FUNGUSDB_CHECK_OK(
        db->Insert("r", {Value::Int64(100 + i), Value::String("unit-9"),
                         Value::Float64(9.0)})
            .status());
  }
  const IncrementalSnapshotStats stats =
      SaveIncrementalSnapshot(*db, next_path_, base_path_).value();
  EXPECT_EQ(stats.frozen_blocks_reused, frozen_before);
  EXPECT_EQ(stats.frozen_blocks_rewritten, 0u);
  EXPECT_GT(stats.plain_chunks, 0u);

  // The spliced output is byte-identical to a from-scratch full save.
  const std::string incremental = SlurpFile(next_path_);
  ASSERT_TRUE(SaveDatabaseSnapshot(*db, base_path_).ok());
  EXPECT_EQ(incremental, SlurpFile(base_path_));

  std::unique_ptr<Database> loaded =
      LoadDatabaseSnapshot(next_path_).value();
  EXPECT_EQ(ObservableRows(TableOf(*loaded)), ObservableRows(TableOf(*db)));
}

// ---------------------------------------------------------------------
// fsck: corrupted encoded blocks must be named, not crashed on.

std::optional<Violation> FindViolation(const Report& report,
                                       const std::string& invariant) {
  for (const Violation& v : report.violations) {
    if (v.invariant == invariant) return v;
  }
  return std::nullopt;
}

TEST(TieredStorageFsckTest, DetectsCorruptedFrozenChecksum) {
  Table table = MakeFreezableTable();
  ASSERT_EQ(table.FreezeColdSegments(0), 4u);
  ASSERT_TRUE(TestCorruptor::CorruptFrozenChecksum(table, 1).ok());

  const Report report = InvariantChecker().CheckTable(table);
  ASSERT_FALSE(report.ok());
  const auto v = FindViolation(report, "encoded-segment");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->segment, 1);
}

TEST(TieredStorageFsckTest, DetectsEscapedDictionaryCode) {
  Table table = MakeFreezableTable();
  ASSERT_EQ(table.FreezeColdSegments(0), 4u);
  ASSERT_TRUE(
      TestCorruptor::CorruptFrozenDictionaryCode(table, 2, 1).ok());

  const Report report = InvariantChecker().CheckTable(table);
  ASSERT_FALSE(report.ok());
  const auto v = FindViolation(report, "encoded-segment");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->segment, 2);
  EXPECT_NE(v->detail.find("dictionary"), std::string::npos)
      << v->detail;
}

TEST(TieredStorageFsckTest, SeedersRefusePlainSegments) {
  Table table = MakeFreezableTable();
  EXPECT_FALSE(TestCorruptor::CorruptFrozenChecksum(table, 0).ok());
  EXPECT_FALSE(
      TestCorruptor::CorruptFrozenDictionaryCode(table, 0, 1).ok());
}

// ---------------------------------------------------------------------
// TSan target: epoch-pinned readers scan while ticks freeze idle
// segments ("stable") and retention kills thaw frozen ones ("churn").
// Any representation swap a pinned reader can observe mid-scan is a
// race this test exists to surface.

TEST(TieredStorageConcurrencyTest, ReadersRaceFreezeThawTicks) {
  constexpr int kRows = 2048;
  constexpr int kCohort = 64;
  constexpr int kTicks = 50;
  constexpr int kReaders = 4;

  Database db;
  TableOptions opts;
  opts.rows_per_segment = 64;
  opts.num_shards = 4;
  opts.freeze_after_idle_ticks = 1;
  FUNGUSDB_CHECK_OK(db.CreateTable("stable", MixedSchema(), opts).status());
  FUNGUSDB_CHECK_OK(db.CreateTable("churn", MixedSchema(), opts).status());

  // Stagger churn inserts across virtual minutes so the retention
  // horizon kills one cohort per tick later — each kill thaws the
  // frozen segment holding it, each following tick refreezes idle ones.
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row = {Value::Int64(i),
                              Value::String("unit-" + std::to_string(i % 3)),
                              Value::Float64(i * 0.001)};
    FUNGUSDB_CHECK_OK(db.Insert("stable", row).status());
    FUNGUSDB_CHECK_OK(db.Insert("churn", row).status());
    if (i % kCohort == kCohort - 1) {
      FUNGUSDB_CHECK_OK(db.AdvanceTime(kMinute).status());
    }
  }
  FUNGUSDB_CHECK_OK(
      db.AttachFungus("stable",
                      std::make_unique<RetentionFungus>(1000 * kHour),
                      /*interval=*/kMinute)
          .status());
  FUNGUSDB_CHECK_OK(
      db.AttachFungus("churn",
                      std::make_unique<RetentionFungus>(40 * kMinute),
                      /*interval=*/kMinute)
          .status());
  FUNGUSDB_CHECK_OK(db.AdvanceTime(kMinute).status());

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Session session(&db);
      while (!writer_done.load(std::memory_order_acquire)) {
        // Nothing in `stable` ever dies: every pinned snapshot must see
        // the full table no matter how many segments froze since.
        const Result<ResultSet> stable = session.ExecuteRead(
            "SELECT count(*) AS n FROM stable WHERE k >= 0",
            /*epoch=*/nullptr);
        if (!stable.ok() ||
            stable.value().at(0, 0).AsInt64() != kRows) {
          failures.fetch_add(1);
          return;
        }
        // `churn` shrinks tick by tick; a pinned read sees some
        // published epoch's prefix-free suffix, never a torn mix.
        const Result<ResultSet> churn = session.ExecuteRead(
            "SELECT count(*) AS n FROM churn WHERE s = 'unit-1'",
            /*epoch=*/nullptr);
        if (!churn.ok() ||
            churn.value().at(0, 0).AsInt64() > kRows / 3 + 1) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  for (int k = 0; k < kTicks; ++k) {
    FUNGUSDB_CHECK_OK(db.AdvanceTime(kMinute).status());
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The race must actually have exercised both tier transitions.
  const StorageStats stable_stats =
      db.GetTable("stable").value().table().GetStorageStats();
  const StorageStats churn_stats =
      db.GetTable("churn").value().table().GetStorageStats();
  EXPECT_GT(stable_stats.segments_frozen_total, 0u);
  EXPECT_EQ(stable_stats.thaw_count, 0u);
  EXPECT_GT(churn_stats.segments_frozen_total, 0u);
  EXPECT_GT(churn_stats.thaw_count, 0u);
  EXPECT_TRUE(db.Fsck().ok());
}

}  // namespace
}  // namespace fungusdb
