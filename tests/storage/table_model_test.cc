// Model-based randomized test: a Table is driven with a random stream
// of operations while a trivially-correct reference model (std::map) is
// kept in lockstep. After every step the two must agree on liveness,
// freshness, values, counters, neighbour navigation and iteration
// order. Parameterized over seeds; each seed runs a few thousand ops.

#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/table.h"

namespace fungusdb {
namespace {

struct ModelRow {
  int64_t value = 0;
  Timestamp ts = 0;
  double freshness = 1.0;
  bool alive = true;
  bool reclaimed = false;
};

class TableModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableModelTest, RandomOpsAgreeWithReferenceModel) {
  Rng rng(GetParam());
  TableOptions opts;
  opts.rows_per_segment = 1 + rng.NextBounded(12);  // stress segmenting
  Table table("t",
              Schema::Make({{"v", DataType::kInt64, false}}).value(),
              opts);
  std::map<RowId, ModelRow> model;
  Timestamp now = 0;
  int64_t next_value = 0;

  const int kSteps = 3000;
  for (int step = 0; step < kSteps; ++step) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 40) {
      // Append.
      now += 1 + static_cast<Timestamp>(rng.NextBounded(5));
      const RowId row =
          table.Append({Value::Int64(next_value)}, now).value();
      ModelRow m;
      m.value = next_value;
      m.ts = now;
      model[row] = m;
      ++next_value;
    } else if (op < 60 && !model.empty()) {
      // Kill a random known row.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      const Status status = table.Kill(it->first);
      if (it->second.reclaimed) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else {
        EXPECT_TRUE(status.ok());
        it->second.alive = false;
        it->second.freshness = 0.0;
      }
    } else if (op < 80 && !model.empty()) {
      // Decay a random known row.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      const double delta = rng.NextDouble(0.0, 0.6);
      const Status status = table.DecayFreshness(it->first, delta);
      if (it->second.reclaimed) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else if (!it->second.alive) {
        EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
      } else {
        EXPECT_TRUE(status.ok());
        it->second.freshness -= delta;
        if (it->second.freshness <= 0.0) {
          it->second.freshness = 0.0;
          it->second.alive = false;
        }
      }
    } else if (op < 90 && !model.empty()) {
      // SetFreshness on a random known row.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      const double f = rng.NextDouble(-0.2, 1.2);
      const Status status = table.SetFreshness(it->first, f);
      if (it->second.reclaimed) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      } else if (!it->second.alive) {
        EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
      } else {
        EXPECT_TRUE(status.ok());
        const double clamped = std::clamp(f, 0.0, 1.0);
        it->second.freshness = clamped;
        if (clamped <= 0.0) it->second.alive = false;
      }
    } else {
      // Reclaim: mark fully-dead full segments as reclaimed in the
      // model using the same rule the table applies.
      table.ReclaimDeadSegments();
      const size_t per_seg = opts.rows_per_segment;
      for (auto& [row, m] : model) {
        if (m.reclaimed) continue;
        const uint64_t seg_start = row / per_seg * per_seg;
        bool full_and_dead = true;
        for (uint64_t r = seg_start; r < seg_start + per_seg; ++r) {
          auto other = model.find(r);
          if (other == model.end() ||
              (other->second.alive && !other->second.reclaimed)) {
            full_and_dead = false;
            break;
          }
        }
        if (full_and_dead) m.reclaimed = true;
      }
    }

    // --- Full agreement check every few steps; spot checks otherwise.
    const bool full_check = step % 50 == 0 || step == kSteps - 1;
    uint64_t model_live = 0;
    std::vector<RowId> model_live_rows;
    for (const auto& [row, m] : model) {
      if (m.alive && !m.reclaimed) {
        ++model_live;
        model_live_rows.push_back(row);
      }
      if (!full_check && rng.NextBounded(10) != 0) continue;
      EXPECT_EQ(table.IsLive(row), m.alive && !m.reclaimed) << row;
      if (m.reclaimed) {
        EXPECT_FALSE(table.Contains(row)) << row;
      } else {
        EXPECT_NEAR(table.Freshness(row), m.freshness, 1e-9) << row;
        EXPECT_EQ(table.GetValue(row, 0).value().AsInt64(), m.value)
            << row;
        EXPECT_EQ(table.InsertTime(row).value(), m.ts) << row;
      }
    }
    EXPECT_EQ(table.live_rows(), model_live);
    EXPECT_EQ(table.live_rows() + table.rows_killed(),
              table.total_appended());
    if (full_check) {
      EXPECT_EQ(table.LiveRows(), model_live_rows);
      if (!model_live_rows.empty()) {
        EXPECT_EQ(table.OldestLive().value(), model_live_rows.front());
        EXPECT_EQ(table.NewestLive().value(), model_live_rows.back());
        // Neighbour navigation agrees at a random pivot.
        const RowId pivot = model_live_rows[rng.NextBounded(
            model_live_rows.size())];
        auto it = std::find(model_live_rows.begin(),
                            model_live_rows.end(), pivot);
        std::optional<RowId> expected_prev =
            it == model_live_rows.begin()
                ? std::nullopt
                : std::optional<RowId>(*(it - 1));
        std::optional<RowId> expected_next =
            it + 1 == model_live_rows.end()
                ? std::nullopt
                : std::optional<RowId>(*(it + 1));
        EXPECT_EQ(table.PrevLive(pivot), expected_prev);
        EXPECT_EQ(table.NextLive(pivot), expected_next);
      } else {
        EXPECT_FALSE(table.OldestLive().has_value());
        EXPECT_FALSE(table.NewestLive().has_value());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableModelTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace fungusdb
