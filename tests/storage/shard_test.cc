#include "storage/shard.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace fungusdb {
namespace {

Schema OneColumnSchema() {
  return Schema::Make({{"v", DataType::kInt64, false}}).value();
}

Table MakeShardedTable(size_t num_shards, size_t rows_per_segment = 4) {
  TableOptions opts;
  opts.rows_per_segment = rows_per_segment;
  opts.num_shards = num_shards;
  return Table("t", OneColumnSchema(), opts);
}

void Fill(Table& t, size_t rows) {
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(
        t.Append({Value::Int64(static_cast<int64_t>(i))},
                 static_cast<Timestamp>(i))
            .ok());
  }
}

TEST(ShardTest, SegmentsAreDealtRoundRobin) {
  Table t = MakeShardedTable(/*num_shards=*/3, /*rows_per_segment=*/4);
  Fill(t, 4 * 7);  // segments 0..6
  ASSERT_EQ(t.num_shards(), 3u);
  // seg_no % 3: shard 0 gets segments {0,3,6}, shard 1 {1,4}, shard 2
  // {2,5}.
  EXPECT_EQ(t.shard(0).num_segments(), 3u);
  EXPECT_EQ(t.shard(1).num_segments(), 2u);
  EXPECT_EQ(t.shard(2).num_segments(), 2u);
  for (uint64_t row = 0; row < 28; ++row) {
    EXPECT_EQ(t.ShardIdOf(row), (row / 4) % 3);
  }
}

TEST(ShardTest, PerShardLiveCountsSumToTable) {
  Table t = MakeShardedTable(4);
  Fill(t, 64);
  EXPECT_EQ(t.live_rows(), 64u);
  uint64_t sum = 0;
  for (size_t s = 0; s < t.num_shards(); ++s) {
    sum += t.shard(s).live_rows();
  }
  EXPECT_EQ(sum, 64u);

  // Kill a few rows; the owning shard's counter moves, the others don't.
  const uint32_t owner = t.ShardIdOf(5);
  const uint64_t before = t.shard(owner).live_rows();
  ASSERT_TRUE(t.Kill(5).ok());
  EXPECT_EQ(t.shard(owner).live_rows(), before - 1);
  EXPECT_EQ(t.shard(owner).rows_killed(), 1u);
  EXPECT_EQ(t.live_rows(), 63u);
  EXPECT_EQ(t.rows_killed(), 1u);
}

TEST(ShardTest, ShardMutatorsMatchTableMutators) {
  Table t = MakeShardedTable(2);
  Fill(t, 8);
  Shard& shard = t.shard(t.ShardIdOf(2));
  ASSERT_TRUE(shard.SetFreshness(2, 0.5).ok());
  EXPECT_DOUBLE_EQ(t.Freshness(2), 0.5);
  ASSERT_TRUE(shard.DecayFreshness(2, 0.25).ok());
  EXPECT_DOUBLE_EQ(t.Freshness(2), 0.25);
  ASSERT_TRUE(shard.Kill(2).ok());
  EXPECT_FALSE(t.IsLive(2));
  // Foreign rows are invisible to a shard.
  Shard& other = t.shard(1 - t.ShardIdOf(3));
  EXPECT_FALSE(other.IsLive(3));
  EXPECT_FALSE(other.SetFreshness(3, 0.1).ok());
}

TEST(ShardTest, ShardLocalNavigationSkipsForeignRows) {
  // rows_per_segment=2, 2 shards: shard 0 owns rows {0,1,4,5,...},
  // shard 1 owns {2,3,6,7,...}.
  Table t = MakeShardedTable(2, /*rows_per_segment=*/2);
  Fill(t, 8);
  const Shard& s0 = t.shard(0);
  EXPECT_EQ(s0.OldestLive().value(), 0u);
  EXPECT_EQ(s0.NewestLive().value(), 5u);
  // Next live row of shard 0 at/after 2 is 4 (rows 2,3 belong to shard 1).
  EXPECT_EQ(s0.NextLiveInShard(2).value(), 4u);
  EXPECT_EQ(s0.PrevLiveInShard(3).value(), 1u);
  // Global navigation still sees every row.
  EXPECT_EQ(t.NextLive(1).value(), 2u);
  EXPECT_EQ(t.PrevLive(4).value(), 3u);
}

TEST(ShardTest, ReclaimRemovesSegmentFromShardAndIndex) {
  Table t = MakeShardedTable(2, /*rows_per_segment=*/2);
  Fill(t, 8);
  // Kill all of segment 1 (rows 2,3) — owned by shard 1.
  ASSERT_TRUE(t.Kill(2).ok());
  ASSERT_TRUE(t.Kill(3).ok());
  const size_t segs_before = t.num_segments();
  EXPECT_EQ(t.ReclaimDeadSegments(), 1u);
  EXPECT_EQ(t.num_segments(), segs_before - 1);
  EXPECT_FALSE(t.Contains(2));
  EXPECT_EQ(t.shard(1).num_segments(), 1u);
  // Counters survive reclamation.
  EXPECT_EQ(t.rows_killed(), 2u);
  EXPECT_EQ(t.live_rows(), 6u);
}

TEST(ShardTest, SingleShardTableBehavesClassically) {
  Table t = MakeShardedTable(1);
  Fill(t, 10);
  EXPECT_EQ(t.num_shards(), 1u);
  for (uint64_t row = 0; row < 10; ++row) {
    EXPECT_EQ(t.ShardIdOf(row), 0u);
  }
  EXPECT_EQ(t.shard(0).live_rows(), 10u);
}

TEST(ShardTest, LiveSegmentsListsInsertionOrder) {
  Table t = MakeShardedTable(3, /*rows_per_segment=*/2);
  Fill(t, 12);
  ASSERT_TRUE(t.Kill(4).ok());
  ASSERT_TRUE(t.Kill(5).ok());  // segment 2 fully dead (not reclaimed yet)
  std::vector<const Segment*> segs = t.LiveSegments();
  ASSERT_EQ(segs.size(), 5u);
  uint64_t prev_first = 0;
  for (size_t i = 0; i < segs.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(segs[i]->first_row(), prev_first);
    }
    prev_first = segs[i]->first_row();
    EXPECT_GT(segs[i]->live_count(), 0u);
  }
}

}  // namespace
}  // namespace fungusdb
