#include "storage/value.h"

#include <gtest/gtest.h>

namespace fungusdb {
namespace {

TEST(ValueTest, NullValue) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int64(42).type(), DataType::kInt64);
  EXPECT_EQ(Value::Float64(1.5).type(), DataType::kFloat64);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::TimestampVal(10).type(), DataType::kTimestamp);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int64(-7).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(Value::Float64(2.25).AsFloat64(), 2.25);
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::TimestampVal(99).AsTimestamp(), 99);
}

TEST(ValueTest, TimestampIsDistinctFromInt64) {
  EXPECT_NE(Value::TimestampVal(5).type(), Value::Int64(5).type());
  EXPECT_FALSE(Value::TimestampVal(5).Equals(Value::Int64(5)));
}

TEST(ValueTest, EqualsDeep) {
  EXPECT_TRUE(Value::Int64(1).Equals(Value::Int64(1)));
  EXPECT_FALSE(Value::Int64(1).Equals(Value::Int64(2)));
  EXPECT_TRUE(Value::String("a").Equals(Value::String("a")));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int64(0)));
}

TEST(ValueTest, ToDoubleNumericTypes) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).ToDouble().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).ToDouble().value(), 2.5);
  EXPECT_DOUBLE_EQ(Value::TimestampVal(7).ToDouble().value(), 7.0);
}

TEST(ValueTest, ToDoubleRejectsNonNumeric) {
  EXPECT_FALSE(Value::String("x").ToDouble().ok());
  EXPECT_FALSE(Value::Bool(true).ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, CompareSameType) {
  EXPECT_EQ(Value::Int64(1).Compare(Value::Int64(2)).value(), -1);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Int64(2)).value(), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Int64(2)).value(), 1);
  EXPECT_EQ(Value::String("a").Compare(Value::String("b")).value(), -1);
  EXPECT_EQ(Value::Bool(false).Compare(Value::Bool(true)).value(), -1);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Float64(2.0)).value(), 0);
  EXPECT_EQ(Value::Int64(2).Compare(Value::Float64(2.5)).value(), -1);
  EXPECT_EQ(Value::TimestampVal(10).Compare(Value::Int64(5)).value(), 1);
}

TEST(ValueTest, CompareRejectsNullAndMixed) {
  EXPECT_FALSE(Value::Null().Compare(Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Int64(1).Compare(Value::Null()).ok());
  EXPECT_FALSE(Value::String("a").Compare(Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Bool(true).Compare(Value::String("t")).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::TimestampVal(3).ToString(), "ts:3");
}

TEST(ValueTest, ToStringEscapesEmbeddedQuotes) {
  // Found by the parser fuzzer: the rendering must be re-parseable.
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::String("''").ToString(), "''''''");
}

TEST(ValueTest, MemoryUsageCountsStringPayload) {
  const Value small = Value::Int64(1);
  const Value big = Value::String(std::string(1000, 'x'));
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage() + 900);
}

TEST(DataTypeTest, Names) {
  EXPECT_EQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_EQ(DataTypeName(DataType::kFloat64), "float64");
  EXPECT_EQ(DataTypeName(DataType::kString), "string");
  EXPECT_EQ(DataTypeName(DataType::kBool), "bool");
  EXPECT_EQ(DataTypeName(DataType::kTimestamp), "timestamp");
}

TEST(DataTypeTest, NumericPredicate) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kFloat64));
  EXPECT_TRUE(IsNumeric(DataType::kTimestamp));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_FALSE(IsNumeric(DataType::kBool));
}

}  // namespace
}  // namespace fungusdb
