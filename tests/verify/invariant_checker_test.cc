#include "verify/invariant_checker.h"

#include <cstdlib>
#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "core/database.h"
#include "fungus/retention_fungus.h"
#include "verify/corruptor.h"

namespace fungusdb {
namespace {

using verify::InvariantChecker;
using verify::Report;
using verify::Violation;

Schema TwoColSchema() {
  return Schema::Make({{"k", DataType::kInt64, false},
                       {"v", DataType::kString, true}})
      .value();
}

/// A small sharded table with known geometry: 4 rows per segment,
/// 2 shards, 16 rows → segments 0..3, dealt 0,2 → shard 0 and
/// 1,3 → shard 1.
Table MakeTable() {
  TableOptions options;
  options.rows_per_segment = 4;
  options.num_shards = 2;
  Table table("t", TwoColSchema(), options);
  for (int i = 0; i < 16; ++i) {
    table
        .Append({Value::Int64(i), Value::String("r" + std::to_string(i))},
                /*now=*/static_cast<Timestamp>(i))
        .value();
  }
  return table;
}

/// First violation matching `invariant`, if any.
std::optional<Violation> FindViolation(const Report& report,
                                       const std::string& invariant) {
  for (const Violation& v : report.violations) {
    if (v.invariant == invariant) return v;
  }
  return std::nullopt;
}

TEST(InvariantCheckerTest, CleanTablePasses) {
  Table table = MakeTable();
  // Exercise the mutation paths the checker audits: decay, kills, and
  // a reclaimed segment.
  for (RowId row = 0; row < 4; ++row) {
    ASSERT_TRUE(table.Kill(row).ok());
  }
  ASSERT_TRUE(table.SetFreshness(7, 0.5).ok());
  ASSERT_TRUE(table.DecayFreshness(9, 0.25).ok());
  EXPECT_EQ(table.ReclaimDeadSegments(), 1u);

  const Report report = InvariantChecker().CheckTable(table);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.tables_checked, 1u);
  EXPECT_EQ(report.segments_checked, 3u);
  EXPECT_TRUE(report.ToStatus().ok());
}

TEST(InvariantCheckerTest, DetectsCorruptFreshnessWithCoordinates) {
  Table table = MakeTable();
  // Row 9 lives in segment 2 (9 / 4), which round-robins to shard 0.
  ASSERT_TRUE(TestCorruptor::CorruptFreshness(table, 9, 1.5).ok());

  const Report report = InvariantChecker().CheckTable(table);
  ASSERT_FALSE(report.ok());
  const auto v = FindViolation(report, "freshness-range");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 0);
  EXPECT_EQ(v->segment, 2);
  EXPECT_EQ(v->row, 9);
  EXPECT_FALSE(report.ToStatus().ok());
}

TEST(InvariantCheckerTest, DetectsResurrectedRowWithCoordinates) {
  Table table = MakeTable();
  // Kill row 6 (segment 1 → shard 1), then flip its alive flag back.
  ASSERT_TRUE(table.Kill(6).ok());
  ASSERT_TRUE(TestCorruptor::ResurrectRow(table, 6).ok());

  const Report report = InvariantChecker().CheckTable(table);
  const auto v = FindViolation(report, "resurrected-row");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 1);
  EXPECT_EQ(v->segment, 1);
  EXPECT_EQ(v->row, 6);
}

TEST(InvariantCheckerTest, DetectsMisassignedSegment) {
  Table table = MakeTable();
  // Segment 3 belongs to shard 1 (3 % 2); move it to shard 0.
  ASSERT_TRUE(TestCorruptor::MisassignSegment(table, 3).ok());

  const Report report = InvariantChecker().CheckTable(table);
  const auto v = FindViolation(report, "shard-round-robin");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 0);  // the shard it was found in
  EXPECT_EQ(v->segment, 3);
}

TEST(InvariantCheckerTest, DetectsColumnLengthMismatch) {
  Table table = MakeTable();
  // Overfill user column 1 of segment 2 (shard 0) with a phantom cell.
  ASSERT_TRUE(TestCorruptor::OverfillColumn(table, 2, 1).ok());

  const Report report = InvariantChecker().CheckTable(table);
  const auto v = FindViolation(report, "column-length");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 0);
  EXPECT_EQ(v->segment, 2);
  EXPECT_EQ(v->column, 1);
}

TEST(InvariantCheckerTest, DetectsStaleZoneMapWithCoordinates) {
  Table table = MakeTable();
  // Narrow segment 2's insertion-time bounds past its stored rows — the
  // staleness a missed widening would leave, which would make the
  // pruning planner skip rows that should match.
  ASSERT_TRUE(TestCorruptor::StaleZoneMap(table, 2).ok());

  const Report report = InvariantChecker().CheckTable(table);
  const auto v = FindViolation(report, "zone-map-bounds");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 0);
  EXPECT_EQ(v->segment, 2);
}

TEST(InvariantCheckerTest, RecomputeRepairsStaleZoneMap) {
  Table table = MakeTable();
  ASSERT_TRUE(TestCorruptor::StaleZoneMap(table, 2).ok());
  ASSERT_FALSE(InvariantChecker().CheckTable(table).ok());
  table.RecomputeZoneMaps();
  const Report report = InvariantChecker().CheckTable(table);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(InvariantCheckerTest, ZoneMapRuleToleratesConservativeBounds) {
  // Widened-but-not-tight bounds are legal (the maintenance contract is
  // "cover", not "exact"): decayed freshness leaves max_f at 1.0 until
  // a recount, and the checker must not flag that.
  Table table = MakeTable();
  for (RowId row = 4; row < 8; ++row) {
    ASSERT_TRUE(table.SetFreshness(row, 0.3).ok());
  }
  const Report report = InvariantChecker().CheckTable(table);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(InvariantCheckerTest, CorruptionBreaksMultipleAccountingRules) {
  Table table = MakeTable();
  // A resurrected row also desynchronizes the cached live counts and
  // the live-iteration count — the checker reports those too, so a
  // single root cause shows up at every level it violates.
  ASSERT_TRUE(table.Kill(6).ok());
  ASSERT_TRUE(TestCorruptor::ResurrectRow(table, 6).ok());

  const Report report = InvariantChecker().CheckTable(table);
  EXPECT_TRUE(FindViolation(report, "segment-live-count").has_value())
      << report.ToString();
}

TEST(InvariantCheckerTest, ViolationListIsCapped) {
  Table table = MakeTable();
  for (RowId row = 0; row < 16; ++row) {
    ASSERT_TRUE(TestCorruptor::CorruptFreshness(table, row, 2.0).ok());
  }
  InvariantChecker::Options options;
  options.max_violations = 3;
  const Report report = InvariantChecker(options).CheckTable(table);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_TRUE(report.truncated);
}

TEST(InvariantCheckerTest, ViolationToStringCarriesCoordinates) {
  Table table = MakeTable();
  ASSERT_TRUE(TestCorruptor::CorruptFreshness(table, 9, -0.5).ok());
  const Report report = InvariantChecker().CheckTable(table);
  const auto v = FindViolation(report, "freshness-range");
  ASSERT_TRUE(v.has_value());
  const std::string text = v->ToString();
  EXPECT_NE(text.find("'t'"), std::string::npos) << text;
  EXPECT_NE(text.find("segment 2"), std::string::npos) << text;
  EXPECT_NE(text.find("row 9"), std::string::npos) << text;
  EXPECT_NE(text.find("freshness-range"), std::string::npos) << text;
}

TEST(InvariantCheckerTest, DatabaseFsckCoversAllTablesAndCellar) {
  Database db;
  db.CreateTable("a", TwoColSchema()).value();
  db.CreateTable("b", TwoColSchema()).value();
  db.Insert("a", {Value::Int64(1), Value::Null()}).value();

  const Report report = db.Fsck();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.tables_checked, 2u);
  EXPECT_EQ(report.rows_checked, 1u);
}

TEST(InvariantCheckerTest, CheckAfterTickStaysCleanThroughDecay) {
  // With the post-tick hook armed, every decay tick re-verifies the
  // table; any violation aborts the process, so reaching the end of
  // this test proves the full decay/reclaim path preserves invariants.
  DatabaseOptions options;
  Database db(options);
  db.EnableCheckAfterTick();
  TableOptions topts;
  topts.rows_per_segment = 8;
  topts.num_shards = 4;
  db.CreateTable("events", TwoColSchema(), topts).value();
  db.AttachFungus("events", std::make_unique<RetentionFungus>(4 * kHour),
                  kHour)
      .value();
  for (int i = 0; i < 64; ++i) {
    db.Insert("events",
              {Value::Int64(i), Value::String(std::to_string(i))})
        .value();
    db.AdvanceTime(30 * kMinute).value();
  }
  EXPECT_LT(db.GetTable("events").value().live_rows(), 64u);
  EXPECT_TRUE(db.Fsck().ok());
}

TEST(InvariantCheckerTest, DetectsCorruptPendingDecayWithCoordinates) {
  Table table = MakeTable();
  // Segment 1 (rows 4..7) round-robins to shard 1.
  ASSERT_TRUE(TestCorruptor::CorruptPendingDecay(table, 1).ok());

  const Report report = InvariantChecker().CheckTable(table);
  ASSERT_FALSE(report.ok());
  const auto v = FindViolation(report, "decay-epoch");
  ASSERT_TRUE(v.has_value()) << report.ToString();
  EXPECT_EQ(v->table, "t");
  EXPECT_EQ(v->shard, 1);
  EXPECT_EQ(v->segment, 1);
  // The seeded corruption trips both arms: the segment's epoch runs
  // ahead of its shard's counter, and the oversized decrement defers a
  // death past the fold barrier.
  size_t decay_epoch_violations = 0;
  for (const Violation& violation : report.violations) {
    if (violation.invariant == "decay-epoch") ++decay_epoch_violations;
  }
  EXPECT_EQ(decay_epoch_violations, 2u) << report.ToString();
}

TEST(InvariantCheckerTest, LegitimateFoldPassesDecayEpochRule) {
  Table table = MakeTable();
  // A real fold through the apply-phase API: epoch advanced first, a
  // decrement the zone map proves safe, rows untouched.
  table.AdvanceDecayEpochs();
  ASSERT_TRUE(table.TryFoldUniformDecay(/*seg_no=*/1, /*delta=*/0.25));

  const Report report = InvariantChecker().CheckTable(table);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(InvariantCheckerTest, SchedulerReportsInstalledHook) {
  Database db;
  // FUNGUSDB_CHECK_AFTER_TICK=1 (the sanitizer-job configuration) arms
  // the hook from the constructor; without it, arming is explicit.
  const char* env = std::getenv("FUNGUSDB_CHECK_AFTER_TICK");
  const bool armed_by_env =
      env != nullptr && *env != '\0' && std::string(env) != "0";
  EXPECT_EQ(db.scheduler().has_post_tick_check(), armed_by_env);
  db.EnableCheckAfterTick();
  EXPECT_TRUE(db.scheduler().has_post_tick_check());
}

}  // namespace
}  // namespace fungusdb
