#!/bin/sh
# End-to-end drain test for fungusd: boot on an ephemeral port, push
# rows over the wire, SIGTERM the daemon, and verify that it (a) exits
# zero, (b) wrote a snapshot, and (c) the snapshot holds every row that
# was acknowledged before the signal.
#
#   tests/server/fungusd_sigterm_test.sh <build-dir>
set -eu

build_dir=${1:?usage: fungusd_sigterm_test.sh <build-dir>}
fungusd=$build_dir/tools/fungusd
fungusql=$build_dir/tools/fungusql
funguscheck=$build_dir/tools/funguscheck

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$fungusd" --port 0 --port-file "$workdir/port" \
  --snapshot "$workdir/fungus.snap" &
daemon=$!

tries=0
while [ ! -s "$workdir/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: fungusd never wrote its port file" >&2
    kill "$daemon" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$workdir/port")

printf '%s\n' \
  '\create t (a int64, b string)' \
  '\insert t 1,spore' \
  '\insert t 2,hypha' \
  '\insert t 3,mycelium' \
  '\advance 1h' \
  'SELECT count(*) AS n FROM t' \
  '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" | tee "$workdir/session.log"

grep -q '| 3 |' "$workdir/session.log" || {
  echo "FAIL: expected 3 rows acknowledged before SIGTERM" >&2
  exit 1
}

kill -TERM "$daemon"
wait "$daemon" || {
  echo "FAIL: fungusd exited non-zero after SIGTERM" >&2
  exit 1
}

[ -s "$workdir/fungus.snap" ] || {
  echo "FAIL: no snapshot written on shutdown" >&2
  exit 1
}

# The snapshot must pass the invariant checker and hold the three rows.
"$funguscheck" snapshot "$workdir/fungus.snap"

# A restarted daemon serves the restored data.
rm -f "$workdir/port"
"$fungusd" --port 0 --port-file "$workdir/port" \
  --snapshot "$workdir/fungus.snap" &
daemon=$!
tries=0
while [ ! -s "$workdir/port" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "FAIL: restart stuck" >&2; exit 1; }
  sleep 0.1
done
port=$(cat "$workdir/port")
printf '%s\n' 'SELECT count(*) AS n FROM t' '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" | tee "$workdir/restart.log"
kill -TERM "$daemon"
wait "$daemon"

grep -q '| 3 |' "$workdir/restart.log" || {
  echo "FAIL: restarted daemon lost rows" >&2
  exit 1
}

echo "PASS: fungusd drained, snapshotted, and restored 3 rows"
