#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fungus/retention_fungus.h"
#include "persist/snapshot.h"
#include "server/client.h"

namespace fungusdb::server {
namespace {

Schema SharedSchema() {
  return Schema::Make({{"a", DataType::kInt64, false}}).value();
}

std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
  auto server =
      std::make_unique<Server>(std::make_unique<Database>(), options);
  FUNGUSDB_CHECK_OK(server->Start());
  return server;
}

Client ConnectTo(const Server& server) {
  return Client::Connect("127.0.0.1", server.port()).value();
}

TEST(ServerTest, ServesSqlOverTheWire) {
  std::unique_ptr<Server> server = StartServer();
  FUNGUSDB_CHECK_OK(
      server->database().CreateTable("t", SharedSchema()).status());
  FUNGUSDB_CHECK_OK(
      server->database().Insert("t", {Value::Int64(41)}).status());

  Client client = ConnectTo(*server);
  const ResultSet rs =
      client.ExecuteOne("SELECT count(*) AS n FROM t").value();
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 1);
}

TEST(ServerTest, ErrorsCarryStableCodesAcrossTheWire) {
  std::unique_ptr<Server> server = StartServer();
  Client client = ConnectTo(*server);

  const Status missing =
      client.ExecuteOne("SELECT * FROM nope").status();
  EXPECT_EQ(missing.error_code(), ErrorCode::kTableNotFound);
  EXPECT_EQ(missing.ErrorLabel(), "E:1203 TableNotFound");

  const Status parse = client.ExecuteOne("SELEC oops").status();
  EXPECT_EQ(parse.code(), StatusCode::kParseError);
}

TEST(ServerTest, MetaCommandsRunRemotely) {
  std::unique_ptr<Server> server = StartServer();
  Client client = ConnectTo(*server);

  EXPECT_TRUE(client.ExecuteOne("\\create t (a int64, b string null)").ok());
  const ResultSet inserted =
      client.ExecuteOne("\\insert t 7,spore").value();
  EXPECT_EQ(inserted.at(0, 0).AsInt64(), 0);  // first row id

  const ResultSet tables = client.ExecuteOne("\\tables").value();
  ASSERT_EQ(tables.num_rows(), 1u);
  EXPECT_EQ(tables.at(0, 0).AsString(), "t");
  EXPECT_EQ(tables.at(0, 2).AsInt64(), 1);

  const ResultSet health = client.ExecuteOne("\\health").value();
  EXPECT_NE(health.at(0, 0).AsString().find("table t"), std::string::npos);

  EXPECT_TRUE(client.ExecuteOne("\\advance 2h").ok());
  const ResultSet now = client.ExecuteOne("\\now").value();
  EXPECT_EQ(now.at(0, 0).AsString(), "2h");

  EXPECT_TRUE(client.ExecuteOne("\\fsck").ok());
  const Status unknown = client.ExecuteOne("\\cellar").status();
  EXPECT_EQ(unknown.error_code(), ErrorCode::kInvalidArgument);
}

TEST(ServerTest, BatchKeepsPerStatementResultsAligned) {
  std::unique_ptr<Server> server = StartServer();
  Client client = ConnectTo(*server);

  const std::vector<Result<ResultSet>> results =
      client
          .Execute({"\\create t (a int64)", "SELECT * FROM nope",
                    "\\insert t 5", "SELECT count(*) AS n FROM t"})
          .value();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().error_code(), ErrorCode::kTableNotFound);
  EXPECT_TRUE(results[2].ok());  // the batch continued past the failure
  EXPECT_EQ(results[3].value().at(0, 0).AsInt64(), 1);
}

TEST(ServerTest, FullQueueAnswersTypedOverload) {
  ServerOptions options;
  options.queue_capacity = 0;  // every request finds the queue full
  std::unique_ptr<Server> server = StartServer(options);
  Client client = ConnectTo(*server);

  const std::vector<Result<ResultSet>> results =
      client.Execute({"SELECT 1", "\\now"}).value();
  ASSERT_EQ(results.size(), 2u);  // one typed refusal per statement
  for (const Result<ResultSet>& result : results) {
    EXPECT_EQ(result.status().error_code(), ErrorCode::kOverloaded);
  }
  EXPECT_GE(server->database().metrics().GetCounter(
                "fungusdb.server.requests_overloaded"),
            1);
}

TEST(ServerTest, ExpiredDeadlineAnswersTypedTimeout) {
  std::unique_ptr<Server> server = StartServer();
  FUNGUSDB_CHECK_OK(
      server->database().CreateTable("t", SharedSchema()).status());
  Client client = ConnectTo(*server);

  // A 1-microsecond budget cannot cover 64 statements; the deadline is
  // re-checked before each one, so the tail must come back kTimeout.
  const std::vector<std::string> statements(64, "SELECT count(*) FROM t");
  const std::vector<Result<ResultSet>> results =
      client.Execute(statements, /*deadline_micros=*/1).value();
  ASSERT_EQ(results.size(), statements.size());
  EXPECT_EQ(results.back().status().error_code(), ErrorCode::kTimeout);
  EXPECT_GE(server->database().metrics().GetCounter(
                "fungusdb.server.requests_timeout"),
            1);
}

TEST(ServerTest, MalformedPayloadGetsWireFormatAnswer) {
  std::unique_ptr<Server> server = StartServer();
  UniqueFd fd = ConnectTcp("127.0.0.1", server->port()).value();
  // A correctly framed request whose payload is garbage.
  FUNGUSDB_CHECK_OK(
      WriteFrame(fd.get(), FrameType::kStatementRequest, "not a request"));
  const Frame frame = ReadFrame(fd.get()).value();
  const StatementResponse response =
      DecodeStatementResponse(frame.payload).value();
  EXPECT_EQ(response.request_id, 0u);
  ASSERT_EQ(response.results.size(), 1u);
  EXPECT_FALSE(response.results[0].ok());
  // The server then drops the connection: the stream is untrusted.
  EXPECT_FALSE(ReadFrame(fd.get()).ok());
}

TEST(ServerTest, GarbageBytesDropTheConnection) {
  std::unique_ptr<Server> server = StartServer();
  UniqueFd fd = ConnectTcp("127.0.0.1", server->port()).value();
  FUNGUSDB_CHECK_OK(WriteAll(fd.get(), std::string(64, 'Z')));
  EXPECT_FALSE(ReadFrame(fd.get()).ok());

  // And the server is still healthy for well-behaved clients.
  Client client = ConnectTo(*server);
  EXPECT_TRUE(client.ExecuteOne("\\now").ok());
}

TEST(ServerTest, StopDrainsThenSnapshots) {
  const std::string path = ::testing::TempDir() + "/fungusd_stop.snap";
  ServerOptions options;
  options.snapshot_path = path;
  std::unique_ptr<Server> server = StartServer(options);
  Client client = ConnectTo(*server);
  FUNGUSDB_CHECK_OK(client.ExecuteOne("\\create t (a int64)").status());
  FUNGUSDB_CHECK_OK(client.ExecuteOne("\\insert t 11").status());
  FUNGUSDB_CHECK_OK(client.ExecuteOne("\\insert t 12").status());
  server->Stop();

  // Everything acknowledged before Stop() is in the snapshot.
  std::unique_ptr<Database> restored =
      LoadDatabaseSnapshot(path).value();
  EXPECT_EQ(restored->GetTable("t").value().live_rows(), 2u);

  // The dead server answers nothing.
  EXPECT_FALSE(client.ExecuteOne("\\now").ok());
}

// The acceptance smoke: 64 clients x 100 statements against one
// shared table, with decay ticks interleaved and a read worker pool
// serving the SELECTs concurrently with the writer. Every response
// must arrive on the right connection (the client checks request ids),
// no insert may be lost or duplicated (row ids are checked for global
// uniqueness), and the database must pass Fsck() afterwards. Run
// under TSan with FUNGUSDB_CHECK_AFTER_TICK=1 in CI's server job.
TEST(ServerSmokeTest, SixtyFourClientsHundredStatements) {
  constexpr int kClients = 64;
  constexpr int kStatements = 100;

  ServerOptions options;
  options.queue_capacity = 2 * kClients;  // never overload: one
                                          // outstanding request per client
  options.read_workers = 4;  // SELECTs race the writer's decay ticks
  std::unique_ptr<Server> server = StartServer(options);
  Database& db = server->database();
  FUNGUSDB_CHECK_OK(db.CreateTable("shared", SharedSchema()).status());
  // A fungus that never kills anything, so every tick exercises the
  // decay machinery (and CHECK AFTER TICK, when armed) without
  // invalidating the row-count ledger.
  FUNGUSDB_CHECK_OK(db.AttachFungus(
                          "shared",
                          std::make_unique<RetentionFungus>(365 * kDay),
                          /*period=*/kSecond)
                        .status());

  std::mutex mu;
  std::set<int64_t> row_ids;
  std::vector<std::string> failures;
  uint64_t inserts_acked = 0;

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Result<Client> client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        failures.push_back(client.status().ToString());
        return;
      }
      for (int i = 0; i < kStatements; ++i) {
        const bool tick = i % 10 == 9;
        const bool select = i % 10 == 4;  // read path, racing the ticks
        const std::string statement =
            tick ? "\\advance 1s"
            : select
                ? "SELECT count(*) AS n FROM shared"
                : "\\insert shared " + std::to_string(c * 1000 + i);
        Result<ResultSet> result = client.value().ExecuteOne(statement);
        std::lock_guard<std::mutex> lock(mu);
        if (!result.ok()) {
          failures.push_back(statement + ": " + result.status().ToString());
          return;
        }
        if (select) {
          // Nothing ever dies (retention is a year), so a pinned count
          // can never exceed the inserts acknowledged so far.
          const auto n =
              static_cast<uint64_t>(result.value().at(0, 0).AsInt64());
          if (n > inserts_acked + kClients) {
            failures.push_back("count " + std::to_string(n) +
                               " exceeds acked inserts " +
                               std::to_string(inserts_acked));
            return;
          }
        } else if (!tick) {
          ++inserts_acked;
          const int64_t row_id = result.value().at(0, 0).AsInt64();
          if (!row_ids.insert(row_id).second) {
            failures.push_back("duplicate row id " +
                               std::to_string(row_id));
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(failures.empty())
      << failures.size() << " failures, first: " << failures[0];
  EXPECT_EQ(inserts_acked, static_cast<uint64_t>(kClients) * 80);
  EXPECT_EQ(row_ids.size(), inserts_acked);  // none lost, none duplicated

  // One more client confirms the server-side ledger agrees.
  Client auditor = ConnectTo(*server);
  const ResultSet count =
      auditor.ExecuteOne("SELECT count(*) AS n FROM shared").value();
  EXPECT_EQ(static_cast<uint64_t>(count.at(0, 0).AsInt64()), inserts_acked);
  EXPECT_TRUE(auditor.ExecuteOne("\\fsck").ok());

  server->Stop();
  EXPECT_TRUE(db.Fsck().violations.empty());
  EXPECT_EQ(db.GetTable("shared").value().live_rows(), inserts_acked);
  // The SELECTs really took the read path.
  EXPECT_GE(db.metrics().GetCounter("fungusdb.server.requests_read_path"),
            1);
  EXPECT_GE(db.metrics().GetCounter("fungusdb.server.statements_total",
                                    "worker=writer"),
            1);
}

TEST(ServerReadWorkerTest, ZeroWorkersFallsBackToTheWriter) {
  ServerOptions options;
  options.read_workers = 0;  // the pre-split single-executor model
  std::unique_ptr<Server> server = StartServer(options);
  EXPECT_EQ(server->num_read_workers(), 0u);
  FUNGUSDB_CHECK_OK(
      server->database().CreateTable("t", SharedSchema()).status());
  FUNGUSDB_CHECK_OK(
      server->database().Insert("t", {Value::Int64(1)}).status());

  Client client = ConnectTo(*server);
  const ResultSet rs =
      client.ExecuteOne("SELECT count(*) AS n FROM t").value();
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 1);
  EXPECT_EQ(server->database().metrics().GetCounter(
                "fungusdb.server.requests_read_path"),
            0);
}

TEST(ServerReadWorkerTest, ReadOnlyBatchesRouteToTheReadPool) {
  ServerOptions options;
  options.read_workers = 2;
  std::unique_ptr<Server> server = StartServer(options);
  FUNGUSDB_CHECK_OK(
      server->database().CreateTable("t", SharedSchema()).status());
  FUNGUSDB_CHECK_OK(
      server->database().Insert("t", {Value::Int64(7)}).status());

  Client client = ConnectTo(*server);
  // All read-only: SQL and the read-only meta subset.
  const std::vector<Result<ResultSet>> reads =
      client
          .Execute({"SELECT count(*) AS n FROM t", "\\now", "\\health",
                    "\\tables"})
          .value();
  for (const Result<ResultSet>& r : reads) EXPECT_TRUE(r.ok());
  // One mutating statement sends the whole batch to the writer.
  const std::vector<Result<ResultSet>> mixed =
      client
          .Execute({"SELECT count(*) AS n FROM t", "\\insert t 8"})
          .value();
  for (const Result<ResultSet>& r : mixed) EXPECT_TRUE(r.ok());

  MetricsRegistry& metrics = server->database().metrics();
  EXPECT_EQ(metrics.GetCounter("fungusdb.server.requests_read_path"), 1);
  const int64_t read_statements =
      metrics.GetCounter("fungusdb.server.statements_total",
                         "worker=read-0") +
      metrics.GetCounter("fungusdb.server.statements_total",
                         "worker=read-1");
  EXPECT_EQ(read_statements, 4);
  EXPECT_EQ(metrics.GetCounter("fungusdb.server.statements_total",
                               "worker=writer"),
            2);
  EXPECT_GE(metrics.GetGauge("fungusdb.exec.epoch"), 1.0);
}

TEST(ServerReadWorkerTest, ConcurrentReadersSeeMonotoneCounts) {
  ServerOptions options;
  options.read_workers = 4;
  options.queue_capacity = 64;
  std::unique_ptr<Server> server = StartServer(options);
  FUNGUSDB_CHECK_OK(
      server->database().CreateTable("t", SharedSchema()).status());

  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 50;
  constexpr int kWrites = 100;
  std::atomic<bool> bad_count{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Client client = ConnectTo(*server);
      // Counts only ever grow (nothing decays here), and a reader's
      // statements are lockstep, so its counts must be nondecreasing —
      // a regression would mean a torn or time-traveling snapshot.
      int64_t last = -1;
      for (int i = 0; i < kReadsPerReader; ++i) {
        const Result<ResultSet> rs =
            client.ExecuteOne("SELECT count(*) AS n FROM t");
        if (!rs.ok()) continue;  // overload is legal under pressure
        const int64_t n = rs.value().at(0, 0).AsInt64();
        if (n < last) bad_count.store(true);
        last = n;
      }
    });
  }
  Client writer = ConnectTo(*server);
  for (int i = 0; i < kWrites; ++i) {
    FUNGUSDB_CHECK_OK(
        writer.ExecuteOne("\\insert t " + std::to_string(i)).status());
  }
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(bad_count.load());

  const ResultSet final_count =
      writer.ExecuteOne("SELECT count(*) AS n FROM t").value();
  EXPECT_EQ(final_count.at(0, 0).AsInt64(), kWrites);
}

}  // namespace
}  // namespace fungusdb::server
