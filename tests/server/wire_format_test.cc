#include "server/wire_format.h"

#include <gtest/gtest.h>

#include "query/result_set_serde.h"

namespace fungusdb::server {
namespace {

ResultSet SampleResultSet() {
  ResultSet rs;
  rs.column_names = {"a", "b", "c"};
  std::vector<Value> row1;
  row1.push_back(Value::Int64(7));
  row1.push_back(Value::String("mycelium"));
  row1.push_back(Value::Float64(0.25));
  rs.rows.push_back(std::move(row1));
  std::vector<Value> row2;
  row2.push_back(Value::Null());
  row2.push_back(Value::Bool(true));
  row2.push_back(Value::TimestampVal(42 * kSecond));
  rs.rows.push_back(std::move(row2));
  rs.stats.rows_scanned = 10;
  rs.stats.rows_matched = 2;
  rs.stats.rows_consumed = 1;
  return rs;
}

TEST(WireFormatTest, FrameHeaderRoundTrip) {
  const std::string frame = EncodeFrame(FrameType::kStatementRequest, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  const FrameHeader header =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes))
          .value();
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, FrameType::kStatementRequest);
  EXPECT_EQ(header.payload_size, 3u);
}

TEST(WireFormatTest, FrameHeaderLayoutIsDocumented) {
  // The on-wire layout is a public contract: magic, version, type,
  // length — all little-endian at fixed offsets.
  const std::string frame = EncodeFrame(FrameType::kStatementResponse, "x");
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0x46);  // 'F'
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 0x47);  // 'G'
  EXPECT_EQ(static_cast<unsigned char>(frame[2]), 0x57);  // 'W'
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 0x50);  // 'P'
  EXPECT_EQ(static_cast<unsigned char>(frame[4]), kWireVersion);
  EXPECT_EQ(static_cast<unsigned char>(frame[5]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[6]), 2);  // response type
  EXPECT_EQ(static_cast<unsigned char>(frame[7]), 0);
  EXPECT_EQ(static_cast<unsigned char>(frame[8]), 1);  // payload length
}

TEST(WireFormatTest, HeaderRejectsBadMagic) {
  std::string frame = EncodeFrame(FrameType::kStatementRequest, "");
  frame[0] = 'X';
  const Status status =
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes))
          .status();
  EXPECT_EQ(status.error_code(), ErrorCode::kWireFormat);
}

TEST(WireFormatTest, HeaderRejectsBadVersion) {
  std::string frame = EncodeFrame(FrameType::kStatementRequest, "");
  frame[4] = 99;
  EXPECT_FALSE(
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes))
          .ok());
}

TEST(WireFormatTest, HeaderRejectsUnknownFrameType) {
  std::string frame = EncodeFrame(FrameType::kStatementRequest, "");
  frame[6] = 9;
  EXPECT_FALSE(
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes))
          .ok());
}

TEST(WireFormatTest, HeaderRejectsOversizedPayload) {
  std::string frame = EncodeFrame(FrameType::kStatementRequest, "");
  frame[11] = 0x7f;  // payload_size high byte -> ~2 GiB
  EXPECT_FALSE(
      DecodeFrameHeader(std::string_view(frame).substr(0, kFrameHeaderBytes))
          .ok());
}

TEST(WireFormatTest, HeaderRejectsWrongSize) {
  EXPECT_FALSE(DecodeFrameHeader("short").ok());
  EXPECT_FALSE(DecodeFrameHeader(std::string(20, 'x')).ok());
}

TEST(WireFormatTest, StatementRequestRoundTrip) {
  StatementRequest request;
  request.request_id = 0xdeadbeef12345678ull;
  request.deadline_micros = 250000;
  request.statements = {"SELECT * FROM t", "\\health", ""};
  const StatementRequest decoded =
      DecodeStatementRequest(EncodeStatementRequest(request)).value();
  EXPECT_EQ(decoded.request_id, request.request_id);
  EXPECT_EQ(decoded.deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded.statements, request.statements);
}

TEST(WireFormatTest, StatementRequestRejectsTrailingBytes) {
  StatementRequest request;
  request.statements = {"SELECT 1"};
  std::string payload = EncodeStatementRequest(request);
  payload.push_back('\0');
  EXPECT_EQ(DecodeStatementRequest(payload).status().error_code(),
            ErrorCode::kWireFormat);
}

TEST(WireFormatTest, StatementRequestRejectsEveryTruncation) {
  StatementRequest request;
  request.request_id = 3;
  request.statements = {"SELECT count(*) FROM t", "\\now"};
  const std::string payload = EncodeStatementRequest(request);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeStatementRequest(std::string_view(payload).substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireFormatTest, StatementResponseRoundTripMixedResults) {
  StatementResponse response;
  response.request_id = 99;
  response.results.push_back(SampleResultSet());
  response.results.push_back(
      Status::TableNotFound("no table named 'gone'"));
  response.results.push_back(Status::Timeout("budget blown"));

  const StatementResponse decoded =
      DecodeStatementResponse(EncodeStatementResponse(response)).value();
  ASSERT_EQ(decoded.results.size(), 3u);
  EXPECT_EQ(decoded.request_id, 99u);

  const ResultSet& rs = decoded.results[0].value();
  EXPECT_EQ(rs.column_names, SampleResultSet().column_names);
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.at(0, 0).AsInt64(), 7);
  EXPECT_EQ(rs.at(0, 1).AsString(), "mycelium");
  EXPECT_TRUE(rs.at(1, 0).is_null());
  EXPECT_EQ(rs.at(1, 2).AsTimestamp(), 42 * kSecond);
  EXPECT_EQ(rs.stats.rows_consumed, 1u);

  // The stable numeric code survives the wire; the message rides along.
  EXPECT_EQ(decoded.results[1].status().error_code(),
            ErrorCode::kTableNotFound);
  EXPECT_EQ(decoded.results[1].status().message(),
            "no table named 'gone'");
  EXPECT_EQ(decoded.results[1].status().ErrorLabel(),
            "E:1203 TableNotFound");
  EXPECT_EQ(decoded.results[2].status().error_code(), ErrorCode::kTimeout);
}

TEST(WireFormatTest, StatementResponseUnknownErrorCodeMapsToInternal) {
  // A peer speaking a NEWER revision may send codes we do not know;
  // they must degrade to kInternal, never crash or masquerade as OK.
  StatementResponse response;
  response.results.push_back(Status::TableNotFound("x"));
  std::string payload = EncodeStatementResponse(response);
  // Patch the u32 error code (offset: u64 id + u32 count + u8 tag).
  payload[13] = 0x39;
  payload[14] = 0x30;  // 0x3039 = 12345, not a known code
  const StatementResponse decoded =
      DecodeStatementResponse(payload).value();
  EXPECT_EQ(decoded.results[0].status().error_code(), ErrorCode::kInternal);
}

TEST(WireFormatTest, ResultSetSerdeRejectsRowCountLargerThanPayload) {
  BufferWriter out;
  out.WriteU32(1);
  out.WriteString("a");
  out.WriteU64(1u << 30);  // a billion rows in a tiny payload
  BufferReader in(out.buffer());
  EXPECT_EQ(DeserializeResultSet(in).status().error_code(),
            ErrorCode::kWireFormat);
}

TEST(WireFormatTest, EmptyResultSetRoundTrips) {
  ResultSet empty;
  BufferWriter out;
  SerializeResultSet(empty, out);
  BufferReader in(out.buffer());
  const ResultSet decoded = DeserializeResultSet(in).value();
  EXPECT_EQ(decoded.num_columns(), 0u);
  EXPECT_EQ(decoded.num_rows(), 0u);
}

}  // namespace
}  // namespace fungusdb::server
