#include "server/http_debug.h"

#include <sys/socket.h>

#include <gtest/gtest.h>

#include <string>

#include "common/trace.h"
#include "core/database.h"
#include "server/socket.h"

namespace fungusdb::server {
namespace {

Schema SharedSchema() {
  return Schema::Make({{"a", DataType::kInt64, false}}).value();
}

struct HttpResponse {
  int status = 0;
  std::string headers;
  std::string body;
};

/// One-shot HTTP GET: sends the request, reads to EOF (the plane always
/// answers Connection: close), splits status/headers/body.
HttpResponse Get(uint16_t port, const std::string& target) {
  UniqueFd fd = ConnectTcp("127.0.0.1", port).value();
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n";
  FUNGUSDB_CHECK_OK(WriteAll(fd.get(), request));

  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse response;
  // "HTTP/1.1 200 OK\r\n..."
  const size_t space = raw.find(' ');
  if (space != std::string::npos) {
    response.status = std::stoi(raw.substr(space + 1));
  }
  const size_t split = raw.find("\r\n\r\n");
  if (split != std::string::npos) {
    response.headers = raw.substr(0, split);
    response.body = raw.substr(split + 4);
  }
  return response;
}

TEST(HttpDebugTest, HealthzAlwaysOkReadyzTracksReadiness) {
  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());

  EXPECT_EQ(Get(http.port(), "/healthz").status, 200);
  // Boots in kStarting: not ready yet.
  EXPECT_EQ(Get(http.port(), "/readyz").status, 503);

  http.SetReadiness(HttpDebugServer::Readiness::kReady);
  EXPECT_EQ(Get(http.port(), "/readyz").status, 200);

  http.SetReadiness(HttpDebugServer::Readiness::kDraining);
  const HttpResponse draining = Get(http.port(), "/readyz");
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("draining"), std::string::npos);
  // Health stays green during the drain window so orchestrators don't
  // kill the process mid-drain; only rotation (readiness) flips.
  EXPECT_EQ(Get(http.port(), "/healthz").status, 200);
}

TEST(HttpDebugTest, DatabaseEndpointsAnswer503UntilAttached) {
  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());

  for (const char* path : {"/metrics", "/varz", "/rotz", "/storagez"}) {
    const HttpResponse response = Get(http.port(), path);
    EXPECT_EQ(response.status, 503) << path;
  }

  Database db;
  http.SetDatabase(&db);
  for (const char* path : {"/metrics", "/varz", "/rotz", "/storagez"}) {
    EXPECT_EQ(Get(http.port(), path).status, 200) << path;
  }

  // The uptime anchor binds at static init, so even the very first
  // process-gauge reader sees real process age, never ~0 or negative.
  const std::string varz = Get(http.port(), "/varz").body;
  EXPECT_NE(varz.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_EQ(varz.find("\"uptime_seconds\":-"), std::string::npos);
  EXPECT_EQ(varz.find("\"uptime_seconds\":0,"), std::string::npos);
}

TEST(HttpDebugTest, MetricsExportsCumulativeBucketSeries) {
  Database db;
  FUNGUSDB_CHECK_OK(db.CreateTable("t", SharedSchema()).status());
  FUNGUSDB_CHECK_OK(db.Insert("t", {Value::Int64(1)}).status());
  FUNGUSDB_CHECK_OK(db.ExecuteSql("SELECT count(*) AS n FROM t").status());
  // The embedded read path records no histograms (pin-wait attribution
  // lives in the server Session); seed one so the scrape has buckets.
  db.metrics().RecordHistogram("fungusdb.query.pin_wait_us", 100);

  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());
  http.SetDatabase(&db);

  const HttpResponse response = Get(http.port(), "/metrics");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  // Real histogram buckets, not quantile summaries.
  EXPECT_NE(response.body.find("_bucket{"), std::string::npos);
  EXPECT_NE(response.body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(response.body.find("quantile="), std::string::npos);
  // The process gauges are refreshed on every scrape.
  EXPECT_NE(response.body.find("fungusdb_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(response.body.find("fungusdb_process_rss_bytes"),
            std::string::npos);
  // Scrapes count themselves.
  const HttpResponse again = Get(http.port(), "/metrics");
  EXPECT_NE(
      again.body.find("fungusdb_http_requests{path=\"/metrics\"}"),
      std::string::npos);
}

TEST(HttpDebugTest, RotzAndStoragezReturnPerTableJson) {
  Database db;
  FUNGUSDB_CHECK_OK(db.CreateTable("t", SharedSchema()).status());
  for (int i = 0; i < 10; ++i) {
    FUNGUSDB_CHECK_OK(db.Insert("t", {Value::Int64(i)}).status());
  }
  FUNGUSDB_CHECK_OK(db.AdvanceTime(kHour).status());

  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());
  http.SetDatabase(&db);

  const HttpResponse rotz = Get(http.port(), "/rotz");
  ASSERT_EQ(rotz.status, 200);
  EXPECT_NE(rotz.headers.find("application/json"), std::string::npos);
  EXPECT_NE(rotz.body.find("\"table\":\"t\""), std::string::npos);
  EXPECT_NE(rotz.body.find("\"live_tuples\":10"), std::string::npos);
  EXPECT_NE(rotz.body.find("\"fold_ratio\""), std::string::npos);
  EXPECT_NE(rotz.body.find("\"tier_map\""), std::string::npos);

  const HttpResponse storagez = Get(http.port(), "/storagez");
  ASSERT_EQ(storagez.status, 200);
  EXPECT_NE(storagez.body.find("\"table\":\"t\""), std::string::npos);
  EXPECT_NE(storagez.body.find("\"total_segments\""), std::string::npos);
  EXPECT_NE(storagez.body.find("\"frozen_segments\""), std::string::npos);

  // The ?table= filter narrows, and misses are a 404 not an empty list.
  EXPECT_EQ(Get(http.port(), "/rotz?table=t").status, 200);
  EXPECT_EQ(Get(http.port(), "/rotz?table=nope").status, 404);
  EXPECT_EQ(Get(http.port(), "/storagez?table=nope").status, 404);
}

TEST(HttpDebugTest, TracezCapturesAWindowAndRestoresTracerState) {
  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());

  ASSERT_FALSE(Tracer::Global().enabled());
  const HttpResponse trace = Get(http.port(), "/tracez?ms=50");
  ASSERT_EQ(trace.status, 200);
  EXPECT_NE(trace.headers.find("application/json"), std::string::npos);
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);
  // The capture window is transient: the tracer is off again after.
  EXPECT_FALSE(Tracer::Global().enabled());
}

TEST(HttpDebugTest, RejectsUnknownPathsAndMethods) {
  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());

  EXPECT_EQ(Get(http.port(), "/nope").status, 404);

  UniqueFd fd = ConnectTcp("127.0.0.1", http.port()).value();
  FUNGUSDB_CHECK_OK(
      WriteAll(fd.get(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n"));
  char chunk[512];
  std::string raw;
  while (true) {
    const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_NE(raw.find("405"), std::string::npos);
}

TEST(HttpDebugTest, StartStopIsIdempotentAndRestartIsRejected) {
  HttpDebugServer http;
  FUNGUSDB_CHECK_OK(http.Start());
  const uint16_t port = http.port();
  EXPECT_GT(port, 0);
  EXPECT_FALSE(http.Start().ok());  // already started
  http.Stop();
  http.Stop();  // idempotent
}

}  // namespace
}  // namespace fungusdb::server
