#!/bin/sh
# Observability smoke for a live fungusd: boot on an ephemeral port,
# drive a session with a decay tick, a fully-pruned scan, and remote
# statements, then verify that
#   (a) `\trace dump <file>` lands valid Chrome trace JSON on the
#       CLIENT side holding decay.tick / server.statement /
#       server.read_worker / scan spans,
#   (b) `\metrics prom` scrapes as Prometheus text exposition with
#       labeled fungusdb_* series, and
#   (c) `\rot <table>` renders the freshness report.
#
#   tests/server/fungusd_obs_smoke.sh <build-dir>
set -eu

build_dir=${1:?usage: fungusd_obs_smoke.sh <build-dir>}
fungusd=$build_dir/tools/fungusd
fungusql=$build_dir/tools/fungusql

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; kill "$daemon" 2>/dev/null || true' EXIT

"$fungusd" --port 0 --port-file "$workdir/port" --read-workers 2 &
daemon=$!

tries=0
while [ ! -s "$workdir/port" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: fungusd never wrote its port file" >&2
    exit 1
  fi
  sleep 0.1
done
port=$(cat "$workdir/port")

# One session: tracer on, a table with a retention fungus, three decay
# ticks (the 3h advance), and a scan whose predicate no zone can match
# (v > 10^9 prunes every segment).
printf '%s\n' \
  '\trace on' \
  '\create t (v int64)' \
  '\insert t 1' \
  '\insert t 2' \
  '\insert t 3' \
  '\insert t 4' \
  '\attach retention t 1h 2h' \
  '\advance 3h' \
  'SELECT count(*) AS n FROM t WHERE v > 1000000000' \
  'SELECT count(*) AS n FROM t' \
  '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" | tee "$workdir/session.log"

printf '%s\n' '\rot t' '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" | tee "$workdir/rot.log"
grep -q 'rot report for t' "$workdir/rot.log" || {
  echo "FAIL: \\rot t produced no report" >&2
  exit 1
}

printf '\\trace dump %s\n\\quit\n' "$workdir/trace.json" |
  "$fungusql" --connect "127.0.0.1:$port"
[ -s "$workdir/trace.json" ] || {
  echo "FAIL: \\trace dump wrote no file" >&2
  exit 1
}

printf '%s\n' '\metrics prom' '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" > "$workdir/prom.txt"

kill -TERM "$daemon"
wait "$daemon" || {
  echo "FAIL: fungusd exited non-zero after SIGTERM" >&2
  exit 1
}

if command -v python3 > /dev/null 2>&1; then
  python3 - "$workdir/trace.json" "$workdir/prom.txt" <<'EOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty trace"
for e in events:
    for key in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert key in e, e
    assert e["ph"] == "X", e
names = {e["name"] for e in events}
for required in ("decay.tick", "server.statement", "server.read_worker",
                 "query.execute"):
    assert required in names, (required, sorted(names))
assert "scan.serial" in names or "scan.morsel" in names, sorted(names)

series = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.eE+-]*$')
body = open(sys.argv[2]).read()
lines = [l for l in body.splitlines() if l]
assert lines, "empty prom scrape"
for line in lines:
    if line.startswith("# TYPE ") or line.startswith("# HELP "):
        continue
    assert series.match(line), line
assert any(l.startswith("fungusdb_server_requests_total ") for l in lines), \
    lines[:10]
assert any(re.match(r'fungusdb_decay_ticks\{table="t"\} ', l)
           for l in lines), "no labeled decay series"
assert any('quantile="0.5"' in l for l in lines), "no quantile series"
assert any(l.startswith("fungusdb_exec_epoch ") for l in lines), \
    "no epoch gauge"
assert any(re.match(r'fungusdb_server_statements_total\{worker="read-', l)
           for l in lines), "no per-read-worker statement series"
print("trace.json and prom.txt shapes OK")
EOF
else
  # Degraded check without python3: key spans and series present.
  grep -q '"name":"decay.tick"' "$workdir/trace.json"
  grep -q '"name":"server.statement"' "$workdir/trace.json"
  grep -q '"name":"server.read_worker"' "$workdir/trace.json"
  grep -q '^fungusdb_server_requests_total ' "$workdir/prom.txt"
  grep -q 'fungusdb_decay_ticks{table="t"}' "$workdir/prom.txt"
  grep -q '^fungusdb_exec_epoch ' "$workdir/prom.txt"
fi

echo "PASS: fungusd traced a tick, scraped prom metrics, rendered rot"
