#!/bin/sh
# Observability smoke for a live fungusd: boot with both the wire port
# and the HTTP observability plane on ephemeral ports, drive a session
# with decay ticks, frozen segments, and remote statements, then verify
#   (a) `\trace dump <file>` lands valid Chrome trace JSON on the
#       CLIENT side holding decay.tick / server.statement /
#       server.read_worker / scan spans,
#   (b) `\metrics prom` scrapes as Prometheus text exposition with
#       labeled fungusdb_* series and real histogram _bucket output,
#   (c) `\rot <table>` renders the freshness report,
#   (d) GET /metrics validates under tools/lint/prom_validator.py with
#       at least one finite histogram bucket,
#   (e) GET /rotz and /storagez return per-table JSON showing the
#       frozen tier (after `\freeze t 1` + a decay tick),
#   (f) GET /tracez?ms=N captures a live window holding decay.tick and
#       server.statement spans,
#   (g) GET /readyz answers 503 during the SIGTERM drain window while
#       /healthz stays 200, and the daemon still exits 0.
#
#   tests/server/fungusd_obs_smoke.sh <build-dir>
set -eu

build_dir=${1:?usage: fungusd_obs_smoke.sh <build-dir>}
fungusd=$build_dir/tools/fungusd
fungusql=$build_dir/tools/fungusql
script_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
repo_root=$script_dir/../..
prom_validator=$repo_root/tools/lint/prom_validator.py

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"; kill "$daemon" 2>/dev/null || true' EXIT

"$fungusd" --port 0 --port-file "$workdir/port" --read-workers 2 \
  --http-port 0 --http-port-file "$workdir/http_port" \
  --drain-grace-ms 1500 &
daemon=$!

wait_for_file() {
  tries=0
  while [ ! -s "$1" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "FAIL: fungusd never wrote $1" >&2
      exit 1
    fi
    sleep 0.1
  done
}
wait_for_file "$workdir/http_port"
wait_for_file "$workdir/port"
port=$(cat "$workdir/port")
http_port=$(cat "$workdir/http_port")

have_python=0
if command -v python3 > /dev/null 2>&1; then have_python=1; fi

# http_get <path> <outfile>: prints the status code; 000 when the
# connection itself fails.
http_get() {
  python3 -c '
import sys, urllib.error, urllib.request
try:
    with urllib.request.urlopen(sys.argv[1], timeout=15) as r:
        body, code = r.read(), r.status
except urllib.error.HTTPError as e:
    body, code = e.read(), e.code
except OSError:
    body, code = b"", 0
with open(sys.argv[2], "wb") as f:
    f.write(body)
print("%03d" % code)
' "http://127.0.0.1:$http_port$1" "$2"
}

# One session: tracer on, a table with a retention fungus, a full
# segment (freezing requires full()), and a scan whose predicate no
# zone can match (v > 10^9 prunes every segment). `\freeze t 1` then
# two decay ticks pushes the idle full segment into the frozen tier —
# while its rows are still live (1h ticks, 8h lifetime: the rows
# outlive every tick here) — so the HTTP introspection endpoints have
# a real frozen strip to report and the count(*) scan decodes the
# frozen image.
{
  printf '%s\n' \
    '\trace on' \
    '\create t (v int64)' \
    '\attach retention t 1h 8h'
  seq 1 4096 | sed 's/^/\\insert t /'
  printf '%s\n' \
    '\freeze t 1' \
    '\advance 1h' \
    '\advance 1h' \
    'SELECT count(*) AS n FROM t WHERE v > 1000000000' \
    'SELECT count(*) AS n FROM t' \
    '\quit'
} | "$fungusql" --connect "127.0.0.1:$port" > "$workdir/session.log"
tail -n 8 "$workdir/session.log"

printf '%s\n' '\rot t' '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" | tee "$workdir/rot.log"
grep -q 'rot report for t' "$workdir/rot.log" || {
  echo "FAIL: \\rot t produced no report" >&2
  exit 1
}

printf '\\trace dump %s\n\\quit\n' "$workdir/trace.json" |
  "$fungusql" --connect "127.0.0.1:$port"
[ -s "$workdir/trace.json" ] || {
  echo "FAIL: \\trace dump wrote no file" >&2
  exit 1
}

printf '%s\n' '\metrics prom' '\quit' |
  "$fungusql" --connect "127.0.0.1:$port" > "$workdir/prom.txt"

if [ "$have_python" -eq 1 ]; then
  # -- HTTP plane, live --------------------------------------------------
  [ "$(http_get /healthz "$workdir/healthz")" = 200 ] || {
    echo "FAIL: /healthz not 200 while serving" >&2
    exit 1
  }
  [ "$(http_get /readyz "$workdir/readyz")" = 200 ] || {
    echo "FAIL: /readyz not 200 while serving" >&2
    exit 1
  }

  # Live capture: open the /tracez window in the background, then drive
  # a tick and statements through it so server-side spans land inside.
  http_get "/tracez?ms=1500" "$workdir/tracez.json" \
    > "$workdir/tracez.status" &
  tracez_pid=$!
  sleep 0.3
  printf '%s\n' '\advance 1h' 'SELECT count(*) AS n FROM t' '\quit' |
    "$fungusql" --connect "127.0.0.1:$port" > /dev/null
  wait "$tracez_pid"
  [ "$(cat "$workdir/tracez.status")" = 200 ] || {
    echo "FAIL: /tracez not 200" >&2
    exit 1
  }

  [ "$(http_get /metrics "$workdir/http_metrics.txt")" = 200 ] || {
    echo "FAIL: /metrics not 200" >&2
    exit 1
  }
  python3 "$prom_validator" "$workdir/http_metrics.txt" \
    --require-bucket \
    --require fungusdb_http_requests \
    --require fungusdb_process_uptime_seconds \
    --require fungusdb_exec_epoch || {
    echo "FAIL: GET /metrics failed the scrape validator" >&2
    exit 1
  }

  [ "$(http_get /varz "$workdir/varz.json")" = 200 ] || {
    echo "FAIL: /varz not 200" >&2
    exit 1
  }
  [ "$(http_get /rotz "$workdir/rotz.json")" = 200 ] || {
    echo "FAIL: /rotz not 200" >&2
    exit 1
  }
  [ "$(http_get /storagez "$workdir/storagez.json")" = 200 ] || {
    echo "FAIL: /storagez not 200" >&2
    exit 1
  }
  [ "$(http_get /rotz?table=nope "$workdir/rotz404.json")" = 404 ] || {
    echo "FAIL: /rotz?table=nope not 404" >&2
    exit 1
  }

  python3 - "$workdir" <<'EOF'
import json
import sys

workdir = sys.argv[1]

varz = json.load(open(workdir + "/varz.json"))
assert varz["readiness"] == "ready", varz
assert varz["tables"] >= 1, varz
assert varz["read_workers"] >= 1, varz
assert varz["uptime_seconds"] > 0, varz

rotz = json.load(open(workdir + "/rotz.json"))
tables = {entry["table"]: entry for entry in rotz["tables"]}
assert "t" in tables, rotz
rot_t = tables["t"]
assert rot_t["frozen_segments"] >= 1, rot_t
assert rot_t["decay_ticks"] >= 3, rot_t
assert "fold_ratio" in rot_t and "tier_map" in rot_t, rot_t

storagez = json.load(open(workdir + "/storagez.json"))
stor_t = {e["table"]: e for e in storagez["tables"]}["t"]
assert stor_t["frozen_segments"] >= 1, stor_t
assert stor_t["total_segments"] >= stor_t["frozen_segments"], stor_t

trace = json.load(open(workdir + "/tracez.json"))
events = trace["traceEvents"]
assert events, "empty /tracez capture"
names = {e["name"] for e in events}
for required in ("decay.tick", "server.statement"):
    assert required in names, (required, sorted(names))
print("varz/rotz/storagez/tracez shapes OK (frozen tier visible)")
EOF
else
  echo "SKIP: python3 unavailable; HTTP plane checks skipped" >&2
fi

kill -TERM "$daemon"

if [ "$have_python" -eq 1 ]; then
  # The drain grace window (1500ms) must answer /readyz with 503 —
  # that is the signal a balancer uses to rotate the node out — while
  # /healthz stays 200 so supervisors don't hard-kill mid-drain.
  saw_draining=0
  tries=0
  while [ "$tries" -lt 25 ]; do
    code=$(http_get /readyz "$workdir/drain_readyz")
    if [ "$code" = 503 ]; then
      saw_draining=1
      break
    fi
    if [ "$code" = 000 ]; then
      break  # already shut down: too late to observe the window
    fi
    tries=$((tries + 1))
  done
  [ "$saw_draining" -eq 1 ] || {
    echo "FAIL: /readyz never answered 503 during the drain window" >&2
    exit 1
  }
  grep -q draining "$workdir/drain_readyz" || {
    echo "FAIL: draining /readyz body lacks the reason" >&2
    exit 1
  }
  [ "$(http_get /healthz "$workdir/drain_healthz")" = 200 ] || {
    echo "FAIL: /healthz flipped during drain" >&2
    exit 1
  }
fi

wait "$daemon" || {
  echo "FAIL: fungusd exited non-zero after SIGTERM" >&2
  exit 1
}

if [ "$have_python" -eq 1 ]; then
  python3 - "$workdir/trace.json" "$workdir/prom.txt" <<'EOF'
import json
import re
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty trace"
for e in events:
    for key in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert key in e, e
    assert e["ph"] == "X", e
names = {e["name"] for e in events}
for required in ("decay.tick", "server.statement", "server.read_worker",
                 "query.execute"):
    assert required in names, (required, sorted(names))
assert "scan.serial" in names or "scan.morsel" in names, sorted(names)

series = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.eE+-]*$')
body = open(sys.argv[2]).read()
lines = [l for l in body.splitlines() if l]
assert lines, "empty prom scrape"
for line in lines:
    if line.startswith("# TYPE ") or line.startswith("# HELP "):
        continue
    assert series.match(line), line
assert any(l.startswith("fungusdb_server_requests_total ") for l in lines), \
    lines[:10]
assert any(re.match(r'fungusdb_decay_ticks\{table="t"\} ', l)
           for l in lines), "no labeled decay series"
assert any('_bucket{' in l and 'le="+Inf"' in l for l in lines), \
    "no histogram +Inf bucket"
assert any(re.search(r'_bucket\{.*le="[0-9]+"\}', l) for l in lines), \
    "no finite histogram bucket"
assert not any('quantile=' in l for l in lines), \
    "quantile summaries should be gone"
assert any(l.startswith("fungusdb_exec_epoch ") for l in lines), \
    "no epoch gauge"
assert any(re.match(r'fungusdb_server_statements_total\{worker="read-', l)
           for l in lines), "no per-read-worker statement series"
assert any(l.startswith("fungusdb_query_pin_wait_us_") for l in lines), \
    "no pin-wait attribution series"
print("trace.json and prom.txt shapes OK")
EOF
else
  # Degraded check without python3: key spans and series present.
  grep -q '"name":"decay.tick"' "$workdir/trace.json"
  grep -q '"name":"server.statement"' "$workdir/trace.json"
  grep -q '"name":"server.read_worker"' "$workdir/trace.json"
  grep -q '^fungusdb_server_requests_total ' "$workdir/prom.txt"
  grep -q 'fungusdb_decay_ticks{table="t"}' "$workdir/prom.txt"
  grep -q '^fungusdb_exec_epoch ' "$workdir/prom.txt"
fi

echo "PASS: fungusd traced a tick, scraped prom + HTTP plane, drained"
