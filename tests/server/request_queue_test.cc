#include "server/request_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fungusdb::server {
namespace {

TEST(RequestQueueTest, FifoOrder) {
  RequestQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(RequestQueueTest, TryPushFailsWhenFull) {
  RequestQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // bounded: the overload signal
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_TRUE(queue.TryPush(3));  // slot freed
}

TEST(RequestQueueTest, ZeroCapacityRefusesEverything) {
  RequestQueue<int> queue(0);
  EXPECT_FALSE(queue.TryPush(1));
}

TEST(RequestQueueTest, TryPushFailsAfterClose) {
  RequestQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(2));
}

TEST(RequestQueueTest, DrainsAfterCloseThenSignalsExit) {
  RequestQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  // Admitted items survive Close — an accepted request is answered.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // stays terminal
}

TEST(RequestQueueTest, PopBlocksUntilPush) {
  RequestQueue<int> queue(4);
  int got = 0;
  std::thread consumer([&] { got = queue.Pop().value(); });
  EXPECT_TRUE(queue.TryPush(41));
  consumer.join();
  EXPECT_EQ(got, 41);
}

TEST(RequestQueueTest, CloseWakesBlockedConsumer) {
  RequestQueue<int> queue(4);
  bool exited = false;
  std::thread consumer([&] {
    while (queue.Pop().has_value()) {
    }
    exited = true;
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(exited);
}

TEST(RequestQueueTest, HighWaterTracksDeepestDepth) {
  RequestQueue<int> queue(8);
  EXPECT_EQ(queue.depth_high_water(), 0u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  (void)queue.Pop();
  (void)queue.Pop();
  EXPECT_TRUE(queue.TryPush(4));
  EXPECT_EQ(queue.depth_high_water(), 3u);  // never shrinks
}

TEST(RequestQueueTest, ManyProducersOneConsumer) {
  RequestQueue<int> queue(64);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.TryPush(1)) {
          std::this_thread::yield();
        }
      }
    });
  }
  int popped = 0;
  std::thread consumer([&] {
    while (queue.Pop().has_value()) ++popped;
  });
  for (std::thread& t : producers) t.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped, kProducers * kPerProducer);
}

}  // namespace
}  // namespace fungusdb::server
