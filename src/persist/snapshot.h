#ifndef FUNGUSDB_PERSIST_SNAPSHOT_H_
#define FUNGUSDB_PERSIST_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/buffer_io.h"
#include "common/result.h"
#include "core/database.h"
#include "storage/table.h"

namespace fungusdb {

/// Appends a table snapshot: schema, options, and every *live* tuple
/// with its insertion time and freshness. Snapshots compact: tombstoned
/// and reclaimed tuples are not written, row ids are reassigned densely
/// on load, and per-tuple access counters reset. Fungus state (e.g.
/// EGI's infection set) is never part of a snapshot — fungi are code,
/// re-attached by the application after restore.
void SerializeTable(const Table& table, BufferWriter& out);

/// Restores a table written by SerializeTable().
Result<Table> DeserializeTable(BufferReader& in);

/// Saves the whole database — virtual clock, every table, and the
/// cellar (summaries with their decay state) — to `path`. The format is
/// versioned ("FGDB", version 1) and restore is all-or-nothing.
Status SaveDatabaseSnapshot(Database& db, const std::string& path);

/// Loads a snapshot written by SaveDatabaseSnapshot(). The returned
/// database has the saved virtual time and data, but no fungi and no
/// cook specs — re-attach those before advancing time.
Result<std::unique_ptr<Database>> LoadDatabaseSnapshot(
    const std::string& path);

/// In-memory variants (used by the file functions and by tests).
void SerializeDatabase(Database& db, BufferWriter& out);
Result<std::unique_ptr<Database>> DeserializeDatabase(BufferReader& in);

}  // namespace fungusdb

#endif  // FUNGUSDB_PERSIST_SNAPSHOT_H_
