#ifndef FUNGUSDB_PERSIST_SNAPSHOT_H_
#define FUNGUSDB_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/buffer_io.h"
#include "common/result.h"
#include "core/database.h"
#include "storage/table.h"

namespace fungusdb {

/// Snapshot format version written by SerializeDatabase. Version 2
/// added TableOptions::num_shards; version 3 replaced the flat
/// live-row list with per-segment chunks so frozen segments persist as
/// their canonical encoded block (with a per-block CRC-32) and
/// incremental snapshots can splice unchanged blocks from a base file.
/// Readers accept versions 2 and 3.
inline constexpr uint32_t kSnapshotVersion = 3;

/// One frozen-segment block of a parsed snapshot: its canonical encoded
/// payload and the CRC-32 stored next to it.
struct SnapshotBlockEntry {
  uint32_t crc = 0;
  std::string payload;
};

/// Frozen blocks of a snapshot file keyed by (table name, first row) —
/// the stable identity of a segment across snapshots of one database.
using SnapshotBlockIndex =
    std::map<std::pair<std::string, uint64_t>, SnapshotBlockEntry>;

/// Bookkeeping from an incremental save: how many frozen blocks were
/// spliced verbatim from the base file versus re-encoded because the
/// segment was dirty, thawed, or new.
struct IncrementalSnapshotStats {
  uint64_t frozen_blocks_reused = 0;
  uint64_t frozen_blocks_rewritten = 0;
  uint64_t plain_chunks = 0;
};

/// Appends a table snapshot: schema, options, and every *live* tuple
/// with its insertion time and freshness. Snapshots compact: tombstoned
/// and reclaimed tuples are not written (a frozen block carries its
/// dead rows, but they are skipped on load), row ids are reassigned
/// densely on load, and per-tuple access counters reset. Fungus state
/// (e.g. EGI's infection set) is never part of a snapshot — fungi are
/// code, re-attached by the application after restore. The caller must
/// have materialized pending decay (SerializeDatabase does).
void SerializeTable(const Table& table, BufferWriter& out);

/// Restores a table written by SerializeTable() at `version` (the
/// database framing carries it; direct callers get the current one).
Result<Table> DeserializeTable(BufferReader& in,
                               uint32_t version = kSnapshotVersion);

/// Saves the whole database — virtual clock, every table, and the
/// cellar (summaries with their decay state) — to `path`. The format is
/// versioned ("FGDB") and restore is all-or-nothing.
Status SaveDatabaseSnapshot(Database& db, const std::string& path);

/// Saves a full, self-contained snapshot of `db` to `path`, splicing
/// frozen-segment blocks verbatim from the version-3 snapshot at
/// `base_path` whenever the in-memory checksum still matches — only
/// dirty, thawed, or new segments are re-encoded. The output is
/// byte-identical to SaveDatabaseSnapshot's.
Result<IncrementalSnapshotStats> SaveIncrementalSnapshot(
    Database& db, const std::string& path, const std::string& base_path);

/// Loads a snapshot written by SaveDatabaseSnapshot(). The returned
/// database has the saved virtual time and data, but no fungi and no
/// cook specs — re-attach those before advancing time. All segments
/// load into the plain tier; the freeze policy re-freezes cold ones.
Result<std::unique_ptr<Database>> LoadDatabaseSnapshot(
    const std::string& path);

/// In-memory variants (used by the file functions and by tests). The
/// three-argument SerializeDatabase threads an optional block-reuse
/// index and stats sink for incremental saves.
void SerializeDatabase(Database& db, BufferWriter& out);
void SerializeDatabase(Database& db, BufferWriter& out,
                       const SnapshotBlockIndex* reuse,
                       IncrementalSnapshotStats* stats);
Result<std::unique_ptr<Database>> DeserializeDatabase(BufferReader& in);

/// Parses the chunk structure of a version-3 snapshot and returns its
/// frozen blocks (payload + stored CRC) keyed by (table, first row).
/// Rejects version-2 files — they have no blocks to reuse.
Result<SnapshotBlockIndex> IndexSnapshotBlocks(const std::string& data);

}  // namespace fungusdb

#endif  // FUNGUSDB_PERSIST_SNAPSHOT_H_
