#ifndef FUNGUSDB_PERSIST_JOURNAL_H_
#define FUNGUSDB_PERSIST_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace fungusdb {

/// One logical operation in the journal. The journal records the
/// *inputs* to the database (DDL, inserts, time advances, SQL), not
/// physical mutations: decay is deterministic given the attached fungi,
/// so replaying the same inputs through the same configuration
/// reproduces the same state. Fungi and cook specs are code — the
/// application re-attaches them (same parameters, same order) before
/// replay, exactly as after a snapshot restore.
struct JournalEntry {
  enum class Kind : uint8_t {
    kCreateTable = 1,
    kDropTable = 2,
    kInsert = 3,
    kAdvanceTime = 4,
    kSql = 5,
  };

  Kind kind = Kind::kInsert;
  std::string table_name;         // kCreateTable / kDropTable / kInsert
  Schema schema;                  // kCreateTable
  TableOptions table_options;     // kCreateTable
  std::vector<Value> values;      // kInsert
  Duration advance = 0;           // kAdvanceTime
  std::string sql;                // kSql
};

/// Append-only journal file. Each entry is length-prefixed and
/// checksummed (FNV-1a over the payload), so a torn tail write is
/// detected and replay stops cleanly at the last intact entry.
class JournalWriter {
 public:
  /// Opens `path` for appending (created if absent).
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path);

  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  Status Append(const JournalEntry& entry);

  /// Flushes buffered entries to the OS.
  Status Sync();

  uint64_t entries_written() const { return entries_written_; }

 private:
  explicit JournalWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  uint64_t entries_written_ = 0;
};

/// Reads a journal back; stops at end-of-file or at the first corrupt
/// entry (reported through truncated()).
class JournalReader {
 public:
  static Result<std::unique_ptr<JournalReader>> Open(
      const std::string& path);

  /// Reads from an in-memory byte string instead of a file (fuzz
  /// harnesses and corruption tests).
  static std::unique_ptr<JournalReader> FromBytes(std::string data);

  ~JournalReader();

  JournalReader(const JournalReader&) = delete;
  JournalReader& operator=(const JournalReader&) = delete;

  /// Next entry, or nullopt at the end of the intact prefix.
  std::optional<JournalEntry> Next();

  /// True when reading stopped because of a torn/corrupt tail rather
  /// than a clean end of file.
  bool truncated() const { return truncated_; }

 private:
  explicit JournalReader(std::string data) : data_(std::move(data)) {}

  std::string data_;
  size_t pos_ = 0;
  bool truncated_ = false;
};

/// A Database wrapper that records every mutating call into a journal
/// before applying it. Read paths go straight through `db()`.
///
///   auto journaled = JournaledDatabase::Open(db_options, "ops.journal");
///   journaled->CreateTable(...);   // logged + applied
///   journaled->ExecuteSql("CONSUME SELECT ...");  // logged (mutates R)
///
/// Recovery: construct a fresh Database, re-attach fungi/cook specs,
/// then ReplayJournal().
class JournaledDatabase {
 public:
  static Result<std::unique_ptr<JournaledDatabase>> Open(
      DatabaseOptions options, const std::string& journal_path);

  Database& db() { return db_; }

  Result<TableHandle> CreateTable(const std::string& name, Schema schema,
                                  TableOptions table_options = {});
  Status DropTable(const std::string& name);
  Result<RowId> Insert(const std::string& table_name,
                       const std::vector<Value>& values);
  Result<uint64_t> AdvanceTime(Duration d);
  /// Executes SQL; consuming statements are journaled, observing
  /// SELECTs are not (they do not change state).
  Result<ResultSet> ExecuteSql(std::string_view sql);

  Status Sync() { return journal_->Sync(); }

 private:
  JournaledDatabase(DatabaseOptions options,
                    std::unique_ptr<JournalWriter> journal)
      : db_(options), journal_(std::move(journal)) {}

  Database db_;
  std::unique_ptr<JournalWriter> journal_;
};

/// Replays a journal into `db` (which must already have the same fungi
/// and cook specs attached that the original run used). Returns the
/// number of entries applied; fails fast on the first entry the
/// database rejects.
Result<uint64_t> ReplayJournal(Database& db, const std::string& path);

}  // namespace fungusdb

#endif  // FUNGUSDB_PERSIST_JOURNAL_H_
