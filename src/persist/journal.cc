#include "persist/journal.h"

#include <fstream>

#include "common/buffer_io.h"
#include "common/trace.h"
#include "query/parser.h"
#include "storage/value_serde.h"
#include "summary/hashing.h"

namespace fungusdb {
namespace {

/// Payload encoding of one entry (without the frame).
std::string EncodeEntry(const JournalEntry& entry) {
  BufferWriter out;
  out.WriteU8(static_cast<uint8_t>(entry.kind));
  switch (entry.kind) {
    case JournalEntry::Kind::kCreateTable:
      out.WriteString(entry.table_name);
      WriteSchema(out, entry.schema);
      out.WriteU64(entry.table_options.rows_per_segment);
      out.WriteBool(entry.table_options.track_access);
      out.WriteU64(entry.table_options.num_shards);
      break;
    case JournalEntry::Kind::kDropTable:
      out.WriteString(entry.table_name);
      break;
    case JournalEntry::Kind::kInsert:
      out.WriteString(entry.table_name);
      out.WriteU64(entry.values.size());
      for (const Value& v : entry.values) WriteValue(out, v);
      break;
    case JournalEntry::Kind::kAdvanceTime:
      out.WriteI64(entry.advance);
      break;
    case JournalEntry::Kind::kSql:
      out.WriteString(entry.sql);
      break;
  }
  return out.Release();
}

Result<JournalEntry> DecodeEntry(std::string_view payload) {
  BufferReader in(payload);
  JournalEntry entry;
  FUNGUSDB_ASSIGN_OR_RETURN(uint8_t kind, in.ReadU8());
  if (kind < 1 || kind > 5) {
    return Status::ParseError("unknown journal entry kind");
  }
  entry.kind = static_cast<JournalEntry::Kind>(kind);
  switch (entry.kind) {
    case JournalEntry::Kind::kCreateTable: {
      FUNGUSDB_ASSIGN_OR_RETURN(entry.table_name, in.ReadString());
      FUNGUSDB_ASSIGN_OR_RETURN(entry.schema, ReadSchema(in));
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, in.ReadU64());
      if (rows == 0 || rows > (1u << 24)) {
        return Status::ParseError("implausible rows_per_segment");
      }
      entry.table_options.rows_per_segment = rows;
      FUNGUSDB_ASSIGN_OR_RETURN(entry.table_options.track_access,
                                in.ReadBool());
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_shards, in.ReadU64());
      if (num_shards == 0 || num_shards > (1u << 12)) {
        return Status::ParseError("implausible num_shards");
      }
      entry.table_options.num_shards = num_shards;
      break;
    }
    case JournalEntry::Kind::kDropTable: {
      FUNGUSDB_ASSIGN_OR_RETURN(entry.table_name, in.ReadString());
      break;
    }
    case JournalEntry::Kind::kInsert: {
      FUNGUSDB_ASSIGN_OR_RETURN(entry.table_name, in.ReadString());
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
      for (uint64_t i = 0; i < count; ++i) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
        entry.values.push_back(std::move(v));
      }
      break;
    }
    case JournalEntry::Kind::kAdvanceTime: {
      FUNGUSDB_ASSIGN_OR_RETURN(entry.advance, in.ReadI64());
      break;
    }
    case JournalEntry::Kind::kSql: {
      FUNGUSDB_ASSIGN_OR_RETURN(entry.sql, in.ReadString());
      break;
    }
  }
  if (!in.exhausted()) {
    return Status::ParseError("trailing bytes in journal entry");
  }
  return entry;
}

}  // namespace

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("cannot open journal '" + path + "'");
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(file));
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JournalWriter::Append(const JournalEntry& entry) {
  FUNGUS_TRACE_SPAN("journal.append");
  const std::string payload = EncodeEntry(entry);
  BufferWriter frame;
  frame.WriteU32(static_cast<uint32_t>(payload.size()));
  frame.WriteU64(HashBytes(payload.data(), payload.size(), /*seed=*/0));
  const std::string& header = frame.buffer();
  if (std::fwrite(header.data(), 1, header.size(), file_) !=
          header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("journal write failed");
  }
  ++entries_written_;
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("journal flush failed");
  }
  return Status::OK();
}

Result<std::unique_ptr<JournalReader>> JournalReader::Open(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open journal '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return std::unique_ptr<JournalReader>(
      new JournalReader(std::move(data)));
}

std::unique_ptr<JournalReader> JournalReader::FromBytes(std::string data) {
  return std::unique_ptr<JournalReader>(
      new JournalReader(std::move(data)));
}

JournalReader::~JournalReader() = default;

std::optional<JournalEntry> JournalReader::Next() {
  if (pos_ >= data_.size()) return std::nullopt;
  // Frame: u32 length + u64 checksum + payload.
  constexpr size_t kHeader = sizeof(uint32_t) + sizeof(uint64_t);
  if (data_.size() - pos_ < kHeader) {
    truncated_ = true;
    pos_ = data_.size();
    return std::nullopt;
  }
  BufferReader header(std::string_view(data_).substr(pos_, kHeader));
  const uint32_t length = header.ReadU32().value();
  const uint64_t checksum = header.ReadU64().value();
  if (data_.size() - pos_ - kHeader < length) {
    truncated_ = true;
    pos_ = data_.size();
    return std::nullopt;
  }
  const std::string_view payload =
      std::string_view(data_).substr(pos_ + kHeader, length);
  if (HashBytes(payload.data(), payload.size(), /*seed=*/0) != checksum) {
    truncated_ = true;
    pos_ = data_.size();
    return std::nullopt;
  }
  Result<JournalEntry> entry = DecodeEntry(payload);
  if (!entry.ok()) {
    truncated_ = true;
    pos_ = data_.size();
    return std::nullopt;
  }
  pos_ += kHeader + length;
  return std::move(entry).value();
}

Result<std::unique_ptr<JournaledDatabase>> JournaledDatabase::Open(
    DatabaseOptions options, const std::string& journal_path) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<JournalWriter> journal,
                            JournalWriter::Open(journal_path));
  return std::unique_ptr<JournaledDatabase>(
      new JournaledDatabase(options, std::move(journal)));
}

Result<TableHandle> JournaledDatabase::CreateTable(
    const std::string& name, Schema schema, TableOptions table_options) {
  FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table,
                            db_.CreateTable(name, schema, table_options));
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kCreateTable;
  entry.table_name = name;
  entry.schema = std::move(schema);
  entry.table_options = table_options;
  FUNGUSDB_RETURN_IF_ERROR(journal_->Append(entry));
  return table;
}

Status JournaledDatabase::DropTable(const std::string& name) {
  FUNGUSDB_RETURN_IF_ERROR(db_.DropTable(name));
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kDropTable;
  entry.table_name = name;
  return journal_->Append(entry);
}

Result<RowId> JournaledDatabase::Insert(const std::string& table_name,
                                        const std::vector<Value>& values) {
  FUNGUSDB_ASSIGN_OR_RETURN(RowId row, db_.Insert(table_name, values));
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kInsert;
  entry.table_name = table_name;
  entry.values = values;
  FUNGUSDB_RETURN_IF_ERROR(journal_->Append(entry));
  return row;
}

Result<uint64_t> JournaledDatabase::AdvanceTime(Duration d) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t ticks, db_.AdvanceTime(d));
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kAdvanceTime;
  entry.advance = d;
  FUNGUSDB_RETURN_IF_ERROR(journal_->Append(entry));
  return ticks;
}

Result<ResultSet> JournaledDatabase::ExecuteSql(std::string_view sql) {
  // Parse first so only statements that actually mutate are journaled.
  FUNGUSDB_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  FUNGUSDB_ASSIGN_OR_RETURN(ResultSet rs, db_.Execute(query));
  if (query.consuming) {
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::kSql;
    entry.sql = std::string(sql);
    FUNGUSDB_RETURN_IF_ERROR(journal_->Append(entry));
  }
  return rs;
}

Result<uint64_t> ReplayJournal(Database& db, const std::string& path) {
  FUNGUS_TRACE_SPAN("journal.replay");
  FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<JournalReader> reader,
                            JournalReader::Open(path));
  uint64_t applied = 0;
  while (std::optional<JournalEntry> entry = reader->Next()) {
    switch (entry->kind) {
      case JournalEntry::Kind::kCreateTable:
        FUNGUSDB_RETURN_IF_ERROR(
            db.CreateTable(entry->table_name, entry->schema,
                           entry->table_options)
                .status());
        break;
      case JournalEntry::Kind::kDropTable:
        FUNGUSDB_RETURN_IF_ERROR(db.DropTable(entry->table_name));
        break;
      case JournalEntry::Kind::kInsert:
        FUNGUSDB_RETURN_IF_ERROR(
            db.Insert(entry->table_name, entry->values).status());
        break;
      case JournalEntry::Kind::kAdvanceTime:
        FUNGUSDB_RETURN_IF_ERROR(db.AdvanceTime(entry->advance).status());
        break;
      case JournalEntry::Kind::kSql:
        FUNGUSDB_RETURN_IF_ERROR(db.ExecuteSql(entry->sql).status());
        break;
    }
    ++applied;
  }
  return applied;
}

}  // namespace fungusdb
