#include "persist/fsck.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "core/internal_access.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace fungusdb {
namespace {

verify::Violation Divergence(const std::string& table, int64_t ordinal,
                             std::string detail) {
  verify::Violation v;
  v.invariant = "replay-divergence";
  v.table = table;
  v.row = ordinal;
  v.detail = std::move(detail);
  return v;
}

}  // namespace

std::string JournalAudit::ToString() const {
  std::ostringstream os;
  os << "journal: " << entries << " intact entries (" << creates
     << " create, " << drops << " drop, " << inserts << " insert, "
     << advances << " advance, " << sql << " sql)";
  if (truncated) os << " — TORN TAIL after intact prefix";
  os << "\n";
  return os.str();
}

Result<JournalAudit> AuditJournalFile(const std::string& path) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<JournalReader> reader,
                            JournalReader::Open(path));
  JournalAudit audit;
  while (std::optional<JournalEntry> entry = reader->Next()) {
    ++audit.entries;
    switch (entry->kind) {
      case JournalEntry::Kind::kCreateTable: ++audit.creates; break;
      case JournalEntry::Kind::kDropTable: ++audit.drops; break;
      case JournalEntry::Kind::kInsert: ++audit.inserts; break;
      case JournalEntry::Kind::kAdvanceTime: ++audit.advances; break;
      case JournalEntry::Kind::kSql: ++audit.sql; break;
    }
  }
  audit.truncated = reader->truncated();
  return audit;
}

std::string SnapshotAudit::ToString() const {
  std::ostringstream os;
  os << "snapshot: " << tables << " table(s), " << live_rows
     << " live row(s)\n"
     << fsck.ToString();
  return os.str();
}

Result<SnapshotAudit> AuditSnapshotFile(const std::string& path) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                            LoadDatabaseSnapshot(path));
  SnapshotAudit audit;
  audit.fsck = db->Fsck();
  for (const std::string& name : db->TableNames()) {
    ++audit.tables;
    audit.live_rows += db->GetTable(name).value().live_rows();
  }
  return audit;
}

verify::Report CompareDatabases(Database& expected, Database& actual) {
  verify::Report report;
  if (expected.Now() != actual.Now()) {
    report.violations.push_back(Divergence(
        "<clock>", -1,
        "virtual time " + std::to_string(expected.Now()) + " vs " +
            std::to_string(actual.Now())));
  }
  const std::vector<std::string> expected_names = expected.TableNames();
  for (const std::string& name : actual.TableNames()) {
    if (!expected.GetTable(name).ok()) {
      report.violations.push_back(
          Divergence(name, -1, "table exists only in the replayed state"));
    }
  }
  for (const std::string& name : expected_names) {
    ++report.tables_checked;
    const Table* a = &expected.GetTable(name).value().table();
    Result<TableHandle> b_result = actual.GetTable(name);
    if (!b_result.ok()) {
      report.violations.push_back(
          Divergence(name, -1, "table missing from the replayed state"));
      continue;
    }
    const Table* b = &b_result.value().table();
    if (!a->schema().Equals(b->schema())) {
      report.violations.push_back(Divergence(
          name, -1,
          "schema " + a->schema().ToString() + " vs " +
              b->schema().ToString()));
      continue;
    }
    const std::vector<RowId> rows_a = a->LiveRows();
    const std::vector<RowId> rows_b = b->LiveRows();
    if (rows_a.size() != rows_b.size()) {
      report.violations.push_back(Divergence(
          name, static_cast<int64_t>(std::min(rows_a.size(), rows_b.size())),
          "live rows " + std::to_string(rows_a.size()) + " vs " +
              std::to_string(rows_b.size()) +
              " (first missing tuple at this ordinal)"));
    }
    const size_t common = std::min(rows_a.size(), rows_b.size());
    const size_t num_fields = a->schema().num_fields();
    for (size_t i = 0; i < common; ++i) {
      ++report.rows_checked;
      const RowId ra = rows_a[i];
      const RowId rb = rows_b[i];
      const Timestamp ta = a->InsertTime(ra).value();
      const Timestamp tb = b->InsertTime(rb).value();
      if (ta != tb) {
        report.violations.push_back(Divergence(
            name, static_cast<int64_t>(i),
            "insert time " + std::to_string(ta) + " vs " +
                std::to_string(tb)));
        continue;
      }
      if (a->Freshness(ra) != b->Freshness(rb)) {
        report.violations.push_back(Divergence(
            name, static_cast<int64_t>(i),
            "freshness " + FormatDouble(a->Freshness(ra), 6) + " vs " +
                FormatDouble(b->Freshness(rb), 6)));
        continue;
      }
      for (size_t c = 0; c < num_fields; ++c) {
        const Value va = a->GetValue(ra, c).value();
        const Value vb = b->GetValue(rb, c).value();
        if (!va.Equals(vb)) {
          verify::Violation v = Divergence(
              name, static_cast<int64_t>(i),
              "column value " + va.ToString() + " vs " + vb.ToString());
          v.column = static_cast<int64_t>(c);
          report.violations.push_back(std::move(v));
          break;
        }
      }
    }
  }
  return report;
}

Result<verify::Report> AuditReplayEquivalence(
    const std::string& snapshot_path, const std::string& journal_path) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> from_snapshot,
                            LoadDatabaseSnapshot(snapshot_path));
  DatabaseOptions options = from_snapshot->options();
  options.start_time = 0;  // the journal replays its own time advances
  Database replayed(options);
  FUNGUSDB_RETURN_IF_ERROR(
      ReplayJournal(replayed, journal_path).status());
  return CompareDatabases(*from_snapshot, replayed);
}

Status SeedFileCorruption(const std::string& path, FileCorruption kind,
                          uint64_t param) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  switch (kind) {
    case FileCorruption::kTruncateTail: {
      if (param > data.size()) {
        return Status::OutOfRange("cannot truncate " +
                                  std::to_string(param) + " of " +
                                  std::to_string(data.size()) + " bytes");
      }
      data.resize(data.size() - param);
      break;
    }
    case FileCorruption::kFlipByte: {
      if (param >= data.size()) {
        return Status::OutOfRange("offset " + std::to_string(param) +
                                  " beyond file of " +
                                  std::to_string(data.size()) + " bytes");
      }
      data[param] = static_cast<char>(data[param] ^ 0xFF);
      break;
    }
    case FileCorruption::kAppendGarbage: {
      data.append(param, static_cast<char>(0xA5));
      break;
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot rewrite '" + path + "'");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace fungusdb
