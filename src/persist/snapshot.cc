#include "persist/snapshot.h"

#include <fstream>
#include <vector>

#include "core/internal_access.h"

#include "common/trace.h"
#include "storage/encode/encoding.h"
#include "storage/encode/frozen.h"
#include "storage/value_serde.h"

namespace fungusdb {
namespace {

constexpr char kMagic[4] = {'F', 'G', 'D', 'B'};

// Version-3 per-table chunk tags (one chunk per segment, in segment
// order, so the global live-row order matches the version-2 flat list).
constexpr uint8_t kChunkPlain = 0;   // u64 live rows + flat row stream
constexpr uint8_t kChunkFrozen = 1;  // u64 first_row + block + u32 crc
constexpr uint8_t kChunkEnd = 2;

/// Decoded cell of a frozen column, mirroring Segment::GetValue.
Value FrozenCellValue(const encode::FrozenColumn& fc, size_t off) {
  if (fc.IsNull(off)) return Value::Null();
  switch (fc.type) {
    case DataType::kInt64:
      return Value::Int64(fc.ints.Get(off));
    case DataType::kTimestamp:
      return Value::TimestampVal(fc.ints.Get(off));
    case DataType::kFloat64:
      return Value::Float64(fc.doubles[off]);
    case DataType::kString:
      return Value::String(fc.strings.Get(off));
    case DataType::kBool:
      return Value::Bool(fc.bools.Get(off) != 0);
  }
  return Value::Null();
}

void WriteLiveRow(const Segment& seg, size_t off, size_t num_fields,
                  BufferWriter& out) {
  out.WriteI64(seg.InsertTime(off));
  out.WriteDouble(seg.Freshness(off));
  for (size_t c = 0; c < num_fields; ++c) {
    WriteValue(out, seg.GetValue(off, c));
  }
}

void WriteTableChunks(const Table& table, BufferWriter& out,
                      const SnapshotBlockIndex* reuse,
                      IncrementalSnapshotStats* stats) {
  out.WriteString(table.name());
  WriteSchema(out, table.schema());
  out.WriteU64(table.options().rows_per_segment);
  out.WriteBool(table.options().track_access);
  out.WriteU64(table.options().num_shards);
  const size_t num_fields = table.schema().num_fields();
  for (const auto& [seg_no, seg] : table.segment_index()) {
    if (seg->is_frozen()) {
      // The canonical encoded block goes to disk verbatim. With a base
      // index, an unchanged segment (same identity, same checksum)
      // splices the base file's bytes without re-serializing — the
      // incremental path's whole point. Canonical encoding guarantees
      // both routes produce identical bytes.
      out.WriteU8(kChunkFrozen);
      out.WriteU64(seg->first_row());
      const encode::FrozenSegment& fz = seg->frozen();
      const SnapshotBlockEntry* base = nullptr;
      if (reuse != nullptr) {
        auto it = reuse->find({table.name(), seg->first_row()});
        if (it != reuse->end() && it->second.crc == fz.checksum) {
          base = &it->second;
        }
      }
      if (base != nullptr) {
        out.WriteString(base->payload);
        out.WriteU32(base->crc);
        if (stats != nullptr) ++stats->frozen_blocks_reused;
      } else {
        BufferWriter block;
        fz.Serialize(block);
        out.WriteString(block.buffer());
        out.WriteU32(fz.checksum);
        if (stats != nullptr) ++stats->frozen_blocks_rewritten;
      }
      continue;
    }
    if (seg->live_count() == 0) continue;
    out.WriteU8(kChunkPlain);
    out.WriteU64(seg->live_count());
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (seg->IsLive(off)) WriteLiveRow(*seg, off, num_fields, out);
    }
    if (stats != nullptr) ++stats->plain_chunks;
  }
  out.WriteU8(kChunkEnd);
}

}  // namespace

void SerializeTable(const Table& table, BufferWriter& out) {
  WriteTableChunks(table, out, nullptr, nullptr);
}

Result<Table> DeserializeTable(BufferReader& in, uint32_t version) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
  FUNGUSDB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  TableOptions options;
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows_per_segment, in.ReadU64());
  if (rows_per_segment == 0 || rows_per_segment > (1u << 26)) {
    return Status::ParseError("implausible rows_per_segment");
  }
  options.rows_per_segment = rows_per_segment;
  FUNGUSDB_ASSIGN_OR_RETURN(options.track_access, in.ReadBool());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_shards, in.ReadU64());
  if (num_shards == 0 || num_shards > (1u << 12)) {
    return Status::ParseError("implausible num_shards");
  }
  options.num_shards = num_shards;

  Table table(std::move(name), std::move(schema), options);
  const size_t num_fields = table.schema().num_fields();

  auto replay_row = [&](int64_t ts, double freshness,
                        const std::vector<Value>& values) -> Status {
    if (!(freshness > 0.0) || freshness > 1.0) {
      return Status::ParseError("snapshot row with non-live freshness");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(RowId row, table.Append(values, ts));
    return table.SetFreshness(row, freshness);
  };

  auto replay_plain_rows = [&](uint64_t rows) -> Status {
    for (uint64_t r = 0; r < rows; ++r) {
      FUNGUSDB_ASSIGN_OR_RETURN(int64_t ts, in.ReadI64());
      FUNGUSDB_ASSIGN_OR_RETURN(double freshness, in.ReadDouble());
      std::vector<Value> values;
      values.reserve(num_fields);
      for (size_t c = 0; c < num_fields; ++c) {
        FUNGUSDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
        values.push_back(std::move(v));
      }
      FUNGUSDB_RETURN_IF_ERROR(replay_row(ts, freshness, values));
    }
    return Status::OK();
  };

  if (version <= 2) {
    // Version 2: one flat live-row list per table.
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, in.ReadU64());
    FUNGUSDB_RETURN_IF_ERROR(replay_plain_rows(rows));
  } else {
    for (;;) {
      FUNGUSDB_ASSIGN_OR_RETURN(uint8_t kind, in.ReadU8());
      if (kind == kChunkEnd) break;
      if (kind == kChunkPlain) {
        FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, in.ReadU64());
        if (rows > (uint64_t{1} << 26)) {
          return Status::ParseError("implausible chunk row count");
        }
        FUNGUSDB_RETURN_IF_ERROR(replay_plain_rows(rows));
        continue;
      }
      if (kind != kChunkFrozen) {
        return Status::ParseError("unknown snapshot chunk kind " +
                                  std::to_string(kind));
      }
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t first_row, in.ReadU64());
      (void)first_row;  // identity key for incremental saves, not replay
      FUNGUSDB_ASSIGN_OR_RETURN(std::string payload, in.ReadString());
      FUNGUSDB_ASSIGN_OR_RETURN(uint32_t crc, in.ReadU32());
      if (encode::Crc32(payload) != crc) {
        return Status::ParseError("frozen block checksum mismatch");
      }
      BufferReader block(payload);
      FUNGUSDB_ASSIGN_OR_RETURN(encode::FrozenSegment fz,
                                encode::FrozenSegment::Deserialize(block));
      if (!block.exhausted()) {
        return Status::ParseError("trailing bytes in frozen block");
      }
      if (fz.columns.size() != num_fields) {
        return Status::ParseError("frozen block arity mismatch");
      }
      // Replay live rows only — frozen blocks carry their dead rows
      // (the encoding is segment-exact) but snapshots stay compact.
      for (size_t off = 0; off < fz.num_rows; ++off) {
        if (!fz.IsLive(off)) continue;
        std::vector<Value> values;
        values.reserve(num_fields);
        for (size_t c = 0; c < num_fields; ++c) {
          values.push_back(FrozenCellValue(fz.columns[c], off));
        }
        FUNGUSDB_RETURN_IF_ERROR(
            replay_row(fz.ts.Get(off), fz.StoredFreshness(off), values));
      }
    }
  }
  // Replay leaves zone maps widened (every row passed through freshness
  // 1.0); one exact recount restores tight pruning bounds. No snapshot
  // format change — zone maps are always derivable from the rows.
  table.RecomputeZoneMaps();
  return table;
}

void SerializeDatabase(Database& db, BufferWriter& out,
                       const SnapshotBlockIndex* reuse,
                       IncrementalSnapshotStats* stats) {
  out.WriteString(std::string_view(kMagic, sizeof(kMagic)));
  out.WriteU32(kSnapshotVersion);
  out.WriteI64(db.Now());
  out.WriteDouble(db.options().cellar_eviction_threshold);
  out.WriteBool(db.options().record_access);
  const std::vector<std::string> names = db.TableNames();
  out.WriteU64(names.size());
  for (const std::string& name : names) {
    {
      // Materialize-before-write (DESIGN.md §14): fold any pending
      // decay decrements into the rows so the stored vectors equal the
      // effective values the serializer writes, keeping the on-disk
      // format oblivious to lazy decay. Frozen segments materialize in
      // place (and refresh their checksum) without thawing. Mutation
      // outside the facade, so it holds the exclusive epoch section the
      // accessor requires.
      EpochManager::WriteGuard guard(db.epochs());
      internal::DatabaseInternal::MutableTable(db, name)
          .value()
          ->MaterializePendingDecay();
    }
    WriteTableChunks(db.GetTable(name).value().table(), out, reuse, stats);
  }
  db.cellar().Serialize(out);
}

void SerializeDatabase(Database& db, BufferWriter& out) {
  SerializeDatabase(db, out, nullptr, nullptr);
}

Result<std::unique_ptr<Database>> DeserializeDatabase(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::string magic, in.ReadString());
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::ParseError("not a FungusDB snapshot (bad magic)");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t version, in.ReadU32());
  if (version != 2 && version != kSnapshotVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version));
  }
  DatabaseOptions options;
  FUNGUSDB_ASSIGN_OR_RETURN(options.start_time, in.ReadI64());
  FUNGUSDB_ASSIGN_OR_RETURN(options.cellar_eviction_threshold,
                            in.ReadDouble());
  FUNGUSDB_ASSIGN_OR_RETURN(options.record_access, in.ReadBool());
  auto db = std::make_unique<Database>(options);

  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_tables, in.ReadU64());
  for (uint64_t i = 0; i < num_tables; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(Table loaded, DeserializeTable(in, version));
    FUNGUSDB_RETURN_IF_ERROR(
        db->CreateTable(loaded.name(), loaded.schema(), loaded.options())
            .status());
    // The replay below mutates the table outside the facade, so it
    // holds the exclusive epoch section the internal accessor requires
    // (after CreateTable returns — its own write section must drain).
    EpochManager::WriteGuard guard(db->epochs());
    FUNGUSDB_ASSIGN_OR_RETURN(
        Table * created,
        internal::DatabaseInternal::MutableTable(*db, loaded.name()));
    // Move the loaded contents into the database-owned table by
    // replaying its live rows (Table is move-only but the database owns
    // its tables; replay keeps the ownership story simple).
    Status replay_status;
    loaded.ForEachLive([&](RowId row) {
      if (!replay_status.ok()) return;
      std::vector<Value> values;
      values.reserve(loaded.schema().num_fields());
      for (size_t c = 0; c < loaded.schema().num_fields(); ++c) {
        values.push_back(loaded.GetValue(row, c).value());
      }
      Result<RowId> appended =
          created->Append(values, loaded.InsertTime(row).value());
      if (!appended.ok()) {
        replay_status = appended.status();
        return;
      }
      replay_status =
          created->SetFreshness(*appended, loaded.Freshness(row));
    });
    FUNGUSDB_RETURN_IF_ERROR(replay_status);
    created->RecomputeZoneMaps();
  }
  FUNGUSDB_RETURN_IF_ERROR(db->cellar().DeserializeInto(in));
  if (!in.exhausted()) {
    return Status::ParseError("trailing bytes after snapshot");
  }
  return db;
}

Result<SnapshotBlockIndex> IndexSnapshotBlocks(const std::string& data) {
  BufferReader in(data);
  FUNGUSDB_ASSIGN_OR_RETURN(std::string magic, in.ReadString());
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::ParseError("not a FungusDB snapshot (bad magic)");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t version, in.ReadU32());
  if (version != kSnapshotVersion) {
    return Status::ParseError("base snapshot is not version " +
                              std::to_string(kSnapshotVersion));
  }
  FUNGUSDB_RETURN_IF_ERROR(in.ReadI64().status());
  FUNGUSDB_RETURN_IF_ERROR(in.ReadDouble().status());
  FUNGUSDB_RETURN_IF_ERROR(in.ReadBool().status());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_tables, in.ReadU64());
  SnapshotBlockIndex index;
  for (uint64_t t = 0; t < num_tables; ++t) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    FUNGUSDB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
    FUNGUSDB_RETURN_IF_ERROR(in.ReadU64().status());  // rows_per_segment
    FUNGUSDB_RETURN_IF_ERROR(in.ReadBool().status());  // track_access
    FUNGUSDB_RETURN_IF_ERROR(in.ReadU64().status());  // num_shards
    for (;;) {
      FUNGUSDB_ASSIGN_OR_RETURN(uint8_t kind, in.ReadU8());
      if (kind == kChunkEnd) break;
      if (kind == kChunkPlain) {
        FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, in.ReadU64());
        if (rows > (uint64_t{1} << 26)) {
          return Status::ParseError("implausible chunk row count");
        }
        for (uint64_t r = 0; r < rows; ++r) {
          FUNGUSDB_RETURN_IF_ERROR(in.ReadI64().status());
          FUNGUSDB_RETURN_IF_ERROR(in.ReadDouble().status());
          for (size_t c = 0; c < schema.num_fields(); ++c) {
            FUNGUSDB_RETURN_IF_ERROR(ReadValue(in).status());
          }
        }
        continue;
      }
      if (kind != kChunkFrozen) {
        return Status::ParseError("unknown snapshot chunk kind " +
                                  std::to_string(kind));
      }
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t first_row, in.ReadU64());
      FUNGUSDB_ASSIGN_OR_RETURN(std::string payload, in.ReadString());
      FUNGUSDB_ASSIGN_OR_RETURN(uint32_t crc, in.ReadU32());
      if (encode::Crc32(payload) != crc) {
        return Status::ParseError("frozen block checksum mismatch");
      }
      index[{name, first_row}] = SnapshotBlockEntry{crc, std::move(payload)};
    }
  }
  // The cellar trails the tables; the index does not need it.
  return index;
}

Status SaveDatabaseSnapshot(Database& db, const std::string& path) {
  FUNGUS_TRACE_SPAN("snapshot.save");
  BufferWriter out;
  SerializeDatabase(db, out);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file.write(out.buffer().data(),
             static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<IncrementalSnapshotStats> SaveIncrementalSnapshot(
    Database& db, const std::string& path, const std::string& base_path) {
  FUNGUS_TRACE_SPAN("snapshot.save_incremental");
  std::ifstream base_file(base_path, std::ios::binary);
  if (!base_file) {
    return Status::NotFound("cannot open base snapshot '" + base_path + "'");
  }
  std::string base_data((std::istreambuf_iterator<char>(base_file)),
                        std::istreambuf_iterator<char>());
  FUNGUSDB_ASSIGN_OR_RETURN(SnapshotBlockIndex index,
                            IndexSnapshotBlocks(base_data));
  IncrementalSnapshotStats stats;
  BufferWriter out;
  SerializeDatabase(db, out, &index, &stats);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file.write(out.buffer().data(),
             static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) {
    return Status::Internal("short write to '" + path + "'");
  }
  return stats;
}

Result<std::unique_ptr<Database>> LoadDatabaseSnapshot(
    const std::string& path) {
  FUNGUS_TRACE_SPAN("snapshot.load");
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  BufferReader reader(data);
  return DeserializeDatabase(reader);
}

}  // namespace fungusdb
