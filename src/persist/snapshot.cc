#include "persist/snapshot.h"

#include <fstream>

#include "core/internal_access.h"

#include "common/trace.h"
#include "storage/value_serde.h"

namespace fungusdb {
namespace {

constexpr char kMagic[4] = {'F', 'G', 'D', 'B'};
// Version 2 added TableOptions::num_shards (PR 1, sharded kernel).
constexpr uint32_t kVersion = 2;

}  // namespace

void SerializeTable(const Table& table, BufferWriter& out) {
  out.WriteString(table.name());
  WriteSchema(out, table.schema());
  out.WriteU64(table.options().rows_per_segment);
  out.WriteBool(table.options().track_access);
  out.WriteU64(table.options().num_shards);
  out.WriteU64(table.live_rows());
  const size_t num_fields = table.schema().num_fields();
  table.ForEachLive([&](RowId row) {
    out.WriteI64(table.InsertTime(row).value());
    out.WriteDouble(table.Freshness(row));
    for (size_t c = 0; c < num_fields; ++c) {
      WriteValue(out, table.GetValue(row, c).value());
    }
  });
}

Result<Table> DeserializeTable(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
  FUNGUSDB_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  TableOptions options;
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows_per_segment, in.ReadU64());
  if (rows_per_segment == 0 || rows_per_segment > (1u << 26)) {
    return Status::ParseError("implausible rows_per_segment");
  }
  options.rows_per_segment = rows_per_segment;
  FUNGUSDB_ASSIGN_OR_RETURN(options.track_access, in.ReadBool());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_shards, in.ReadU64());
  if (num_shards == 0 || num_shards > (1u << 12)) {
    return Status::ParseError("implausible num_shards");
  }
  options.num_shards = num_shards;

  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, in.ReadU64());
  Table table(std::move(name), std::move(schema), options);
  const size_t num_fields = table.schema().num_fields();
  for (uint64_t r = 0; r < rows; ++r) {
    FUNGUSDB_ASSIGN_OR_RETURN(int64_t ts, in.ReadI64());
    FUNGUSDB_ASSIGN_OR_RETURN(double freshness, in.ReadDouble());
    if (!(freshness > 0.0) || freshness > 1.0) {
      return Status::ParseError("snapshot row with non-live freshness");
    }
    std::vector<Value> values;
    values.reserve(num_fields);
    for (size_t c = 0; c < num_fields; ++c) {
      FUNGUSDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
      values.push_back(std::move(v));
    }
    FUNGUSDB_ASSIGN_OR_RETURN(RowId row, table.Append(values, ts));
    FUNGUSDB_RETURN_IF_ERROR(table.SetFreshness(row, freshness));
  }
  // Replay leaves zone maps widened (every row passed through freshness
  // 1.0); one exact recount restores tight pruning bounds. No snapshot
  // format change — zone maps are always derivable from the rows.
  table.RecomputeZoneMaps();
  return table;
}

void SerializeDatabase(Database& db, BufferWriter& out) {
  out.WriteString(std::string_view(kMagic, sizeof(kMagic)));
  out.WriteU32(kVersion);
  out.WriteI64(db.Now());
  out.WriteDouble(db.options().cellar_eviction_threshold);
  out.WriteBool(db.options().record_access);
  const std::vector<std::string> names = db.TableNames();
  out.WriteU64(names.size());
  for (const std::string& name : names) {
    {
      // Materialize-before-write (DESIGN.md §14): fold any pending
      // decay decrements into the rows so the stored vectors equal the
      // effective values the serializer writes, keeping the on-disk
      // format oblivious to lazy decay. Mutation outside the facade, so
      // it holds the exclusive epoch section the accessor requires.
      EpochManager::WriteGuard guard(db.epochs());
      internal::DatabaseInternal::MutableTable(db, name)
          .value()
          ->MaterializePendingDecay();
    }
    SerializeTable(db.GetTable(name).value().table(), out);
  }
  db.cellar().Serialize(out);
}

Result<std::unique_ptr<Database>> DeserializeDatabase(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::string magic, in.ReadString());
  if (magic != std::string_view(kMagic, sizeof(kMagic))) {
    return Status::ParseError("not a FungusDB snapshot (bad magic)");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t version, in.ReadU32());
  if (version != kVersion) {
    return Status::ParseError("unsupported snapshot version " +
                              std::to_string(version));
  }
  DatabaseOptions options;
  FUNGUSDB_ASSIGN_OR_RETURN(options.start_time, in.ReadI64());
  FUNGUSDB_ASSIGN_OR_RETURN(options.cellar_eviction_threshold,
                            in.ReadDouble());
  FUNGUSDB_ASSIGN_OR_RETURN(options.record_access, in.ReadBool());
  auto db = std::make_unique<Database>(options);

  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_tables, in.ReadU64());
  for (uint64_t i = 0; i < num_tables; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(Table loaded, DeserializeTable(in));
    FUNGUSDB_RETURN_IF_ERROR(
        db->CreateTable(loaded.name(), loaded.schema(), loaded.options())
            .status());
    // The replay below mutates the table outside the facade, so it
    // holds the exclusive epoch section the internal accessor requires
    // (after CreateTable returns — its own write section must drain).
    EpochManager::WriteGuard guard(db->epochs());
    FUNGUSDB_ASSIGN_OR_RETURN(
        Table * created,
        internal::DatabaseInternal::MutableTable(*db, loaded.name()));
    // Move the loaded contents into the database-owned table by
    // replaying its live rows (Table is move-only but the database owns
    // its tables; replay keeps the ownership story simple).
    Status replay_status;
    loaded.ForEachLive([&](RowId row) {
      if (!replay_status.ok()) return;
      std::vector<Value> values;
      values.reserve(loaded.schema().num_fields());
      for (size_t c = 0; c < loaded.schema().num_fields(); ++c) {
        values.push_back(loaded.GetValue(row, c).value());
      }
      Result<RowId> appended =
          created->Append(values, loaded.InsertTime(row).value());
      if (!appended.ok()) {
        replay_status = appended.status();
        return;
      }
      replay_status =
          created->SetFreshness(*appended, loaded.Freshness(row));
    });
    FUNGUSDB_RETURN_IF_ERROR(replay_status);
    created->RecomputeZoneMaps();
  }
  FUNGUSDB_RETURN_IF_ERROR(db->cellar().DeserializeInto(in));
  if (!in.exhausted()) {
    return Status::ParseError("trailing bytes after snapshot");
  }
  return db;
}

Status SaveDatabaseSnapshot(Database& db, const std::string& path) {
  FUNGUS_TRACE_SPAN("snapshot.save");
  BufferWriter out;
  SerializeDatabase(db, out);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  file.write(out.buffer().data(),
             static_cast<std::streamsize>(out.size()));
  file.flush();
  if (!file) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> LoadDatabaseSnapshot(
    const std::string& path) {
  FUNGUS_TRACE_SPAN("snapshot.load");
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  BufferReader reader(data);
  return DeserializeDatabase(reader);
}

}  // namespace fungusdb
