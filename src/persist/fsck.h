#ifndef FUNGUSDB_PERSIST_FSCK_H_
#define FUNGUSDB_PERSIST_FSCK_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/database.h"
#include "verify/invariant_checker.h"

namespace fungusdb {

/// On-disk auditing for snapshot and journal files — the back half of
/// `funguscheck`. The in-memory invariant checker (verify/) trusts the
/// structures it walks; these functions get a database *into* memory
/// from untrusted bytes first (load / replay), then hand it to the
/// checker, and report torn frames, checksum failures and divergence
/// with the most precise coordinates available.

/// What a journal file contained.
struct JournalAudit {
  uint64_t entries = 0;
  uint64_t creates = 0;
  uint64_t drops = 0;
  uint64_t inserts = 0;
  uint64_t advances = 0;
  uint64_t sql = 0;
  /// True when reading stopped at a torn or corrupt frame instead of a
  /// clean end of file; `entries` counts the intact prefix.
  bool truncated = false;

  std::string ToString() const;
};

/// Reads every intact entry of a journal file. Fails only when the
/// file cannot be opened — a corrupt tail is reported, not an error,
/// because the journal format is designed to survive torn writes.
Result<JournalAudit> AuditJournalFile(const std::string& path);

/// What a snapshot file contained, plus the fsck report over the
/// database it loads into.
struct SnapshotAudit {
  uint64_t tables = 0;
  uint64_t live_rows = 0;
  verify::Report fsck;

  std::string ToString() const;
};

/// Loads a snapshot and runs the full invariant checker over the
/// result. Fails when the snapshot cannot be loaded at all (bad magic,
/// version, truncation, non-live freshness, trailing bytes).
Result<SnapshotAudit> AuditSnapshotFile(const std::string& path);

/// Compares two databases logically: same virtual time, same table
/// set, and per table the same sequence of live tuples (insert time,
/// freshness, every user column) in time-axis order. RowIds are NOT
/// compared — snapshots densify them while journal replay reproduces
/// the original ids, so the live sequence is the canonical form.
/// Differences come back as `replay-divergence` violations whose `row`
/// coordinate is the ordinal position in the live sequence.
verify::Report CompareDatabases(Database& expected, Database& actual);

/// The journal/snapshot divergence audit: loads `snapshot_path`,
/// replays `journal_path` into a fresh database (same DatabaseOptions,
/// no fungi — only valid for journals recorded without attached
/// fungi), and compares the two. OK + empty report means the snapshot
/// and the journal tell the same story.
Result<verify::Report> AuditReplayEquivalence(
    const std::string& snapshot_path, const std::string& journal_path);

/// Ways to damage a file on purpose (corruption-recovery tests and the
/// `funguscheck corrupt` subcommand).
enum class FileCorruption {
  kTruncateTail,    // drop the last `param` bytes
  kFlipByte,        // XOR the byte at offset `param` with 0xFF
  kAppendGarbage,   // append `param` bytes of 0xA5
};

/// Applies `kind` to the file in place. `param` as documented per kind.
Status SeedFileCorruption(const std::string& path, FileCorruption kind,
                          uint64_t param);

}  // namespace fungusdb

#endif  // FUNGUSDB_PERSIST_FSCK_H_
