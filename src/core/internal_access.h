#ifndef FUNGUSDB_CORE_INTERNAL_ACCESS_H_
#define FUNGUSDB_CORE_INTERNAL_ACCESS_H_

#include <string>

#include "common/result.h"
#include "core/database.h"

namespace fungusdb::internal {

/// Escape hatch for in-process infrastructure that bypasses the public
/// facade by design: persistence (snapshot load replays rows straight
/// into tables), replay-divergence audits, and test seeding. NOT part
/// of the public API — application code takes TableHandles from
/// CreateTable/GetTable and mutates through the Database.
///
/// Concurrency contract: a mutable table obtained here is only touched
/// while no Session or writer is running (persistence runs before
/// serving starts / after it stops; tests are single-threaded around
/// it). These helpers do not pin or lock.
struct DatabaseInternal {
  static Result<Table*> MutableTable(Database& db, const std::string& name);
};

}  // namespace fungusdb::internal

#endif  // FUNGUSDB_CORE_INTERNAL_ACCESS_H_
