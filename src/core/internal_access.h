#ifndef FUNGUSDB_CORE_INTERNAL_ACCESS_H_
#define FUNGUSDB_CORE_INTERNAL_ACCESS_H_

#include <string>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/database.h"

namespace fungusdb::internal {

/// Escape hatch for in-process infrastructure that bypasses the public
/// facade by design: persistence (snapshot load replays rows straight
/// into tables), replay-divergence audits, and test seeding. NOT part
/// of the public API — application code takes TableHandles from
/// CreateTable/GetTable and mutates through the Database.
///
/// Concurrency contract: callers hold `db`'s exclusive epoch section
/// (take an `EpochManager::WriteGuard guard(db.epochs());` around the
/// lookup and every mutation through the returned pointer) — enforced
/// at compile time under -Wthread-safety via the REQUIRES annotation
/// below, which names the capability through the `db` parameter so the
/// analysis unifies it with the caller's guard expression.
struct DatabaseInternal {
  static Result<Table*> MutableTable(Database& db, const std::string& name)
      FUNGUS_REQUIRES(db.epochs_);
};

}  // namespace fungusdb::internal

#endif  // FUNGUSDB_CORE_INTERNAL_ACCESS_H_
