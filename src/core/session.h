#ifndef FUNGUSDB_CORE_SESSION_H_
#define FUNGUSDB_CORE_SESSION_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "core/database.h"
#include "query/classifier.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/result_set.h"

namespace fungusdb {

/// The read half of the split execution model (DESIGN.md §13): a
/// Session executes read-only statements against an epoch-pinned view
/// of its Database, concurrently with other Sessions and with the
/// single writer (which it never blocks for longer than one statement).
///
/// Each ExecuteRead pins the epoch current at dispatch for the duration
/// of the statement; the pin excludes the writer, so the statement sees
/// a fully-applied decay tick or none — never a half-applied one.
/// `__freshness` predicates, zone-map pruning, and ResultSet::Stats are
/// therefore exactly as deterministic as the writer-path equivalents.
///
/// A Session never mutates storage: consuming queries are refused (the
/// classifier routes them to the writer), its engine does not bump
/// access counters (the classifier keeps SELECTs over track_access
/// tables on the writer for that reason), and its scans run serially —
/// read concurrency comes from many sessions, not from morsel fan-out
/// inside one statement.
///
/// Thread contract: one Session per thread (it keeps per-statement
/// scratch such as queue-wait attribution); any number of Sessions may
/// run against one Database.
class Session {
 public:
  explicit Session(Database* db);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes one read-only statement. A mutating statement
  /// (CONSUME, or a SELECT the classifier routes to the writer) is
  /// refused with InvalidArgument — routing is the caller's job, this
  /// is the backstop. `pinned_epoch`, when non-null, receives the epoch
  /// the statement executed against.
  Result<ResultSet> ExecuteRead(std::string_view sql,
                                uint64_t* pinned_epoch = nullptr);

  /// Programmatic variant over a parsed query.
  Result<ResultSet> ExecuteRead(const Query& query,
                                uint64_t* pinned_epoch = nullptr);

  /// Queue-wait attribution for the next ExecuteRead, reported in its
  /// slow-query log line. One-shot, like the writer-side equivalent.
  void set_pending_queue_wait_micros(int64_t us) {
    pending_queue_wait_us_ = us;
  }

  Database& database() { return *db_; }

 private:
  Result<ResultSet> ExecutePinned(const Query& query, std::string_view sql,
                                  uint64_t* pinned_epoch);

  Database* db_;
  QueryEngine engine_;
  int64_t pending_queue_wait_us_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_CORE_SESSION_H_
