#ifndef FUNGUSDB_CORE_TABLE_HANDLE_H_
#define FUNGUSDB_CORE_TABLE_HANDLE_H_

#include <cstdint>
#include <string>

#include "storage/table.h"

namespace fungusdb {

/// Non-owning, read-only view of a table registered in a Database —
/// what CreateTable/GetTable hand out instead of a mutable Table*.
/// Exposes identity (name, schema, options) and statistics; every
/// mutation goes through the Database facade (Insert, ExecuteSql,
/// AttachFungus, ...) so the single virtual timeline stays in charge.
///
/// A handle is valid until its table is dropped or the Database is
/// destroyed; it is trivially copyable and cheap to pass by value.
class TableHandle {
 public:
  TableHandle() = default;

  bool valid() const { return table_ != nullptr; }

  const std::string& name() const { return table_->name(); }
  const Schema& schema() const { return table_->schema(); }
  const TableOptions& options() const { return table_->options(); }

  // --- Statistics (computed over the table's shards on demand). ---
  uint64_t live_rows() const { return table_->live_rows(); }
  uint64_t total_appended() const { return table_->total_appended(); }
  uint64_t rows_killed() const { return table_->rows_killed(); }
  size_t num_segments() const { return table_->num_segments(); }
  size_t memory_bytes() const { return table_->MemoryUsage(); }

  /// Tiered-storage occupancy (frozen segments, encoded bytes, ...).
  /// The supported way for out-of-core observers (HTTP handlers, CLIs)
  /// to read storage state without touching Table internals.
  StorageStats storage_stats() const { return table_->GetStorageStats(); }

  /// Read-only access for in-process utilities that walk tuples
  /// (column statistics, CSV export). Const: mutations must flow
  /// through the Database facade.
  const Table& table() const { return *table_; }

 private:
  friend class Database;
  explicit TableHandle(Table* table) : table_(table) {}

  Table* table_ = nullptr;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_CORE_TABLE_HANDLE_H_
