#include "core/internal_access.h"

namespace fungusdb::internal {

Result<Table*> DatabaseInternal::MutableTable(Database& db,
                                              const std::string& name) {
  return db.MutableTable(name);
}

}  // namespace fungusdb::internal
