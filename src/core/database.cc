#include "core/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace fungusdb {
namespace {

size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SlowQueryEnvMicros() {
  const char* env = std::getenv("FUNGUSDB_SLOW_QUERY_US");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  return (end != nullptr && *end == '\0' && v > 0) ? v : 0;
}

}  // namespace

Database::Database(DatabaseOptions options)
    : options_(options),
      clock_(options.start_time),
      pool_(std::make_unique<ThreadPool>(
          ResolveNumThreads(options.num_threads))),
      cellar_(options.cellar_eviction_threshold),
      kitchen_(&cellar_),
      engine_(QueryEngineOptions{options.record_access, pool_.get(),
                                 &metrics_}),
      ingestor_(&clock_, &kitchen_) {
  epochs_.set_metrics(&metrics_);
  scheduler_.set_metrics(&metrics_);
  scheduler_.set_thread_pool(pool_.get());
  // Every decay tick publishes its own epoch: the apply phase is the
  // moment the virtual timeline visibly moves, and readers dispatched
  // after the enclosing write section pin the newest tick's state.
  scheduler_.set_epoch_publisher([this] { epochs_.Publish(); });
  // Rotting tuples (fungus kills) and consumed tuples (Law-2 queries)
  // both flow through the kitchen's on-rot rules.
  scheduler_.AddDeathObserver(
      [this](Table& table, const std::vector<RowId>& rows, Timestamp now) {
        kitchen_.Cook(CookTrigger::kOnRot, table, rows, now);
      });
  engine_.AddConsumeObserver(
      [this](Table& table, const std::vector<RowId>& rows, Timestamp now) {
        kitchen_.Cook(CookTrigger::kOnRot, table, rows, now);
        metrics_.IncrementCounter("fungusdb.query.rows_consumed",
                                  static_cast<int64_t>(rows.size()));
      });
  int64_t slow_us = options_.slow_query_micros;
  if (slow_us == 0) slow_us = SlowQueryEnvMicros();
  slow_query_micros_.store(slow_us, std::memory_order_relaxed);
  const char* check_env = std::getenv("FUNGUSDB_CHECK_AFTER_TICK");
  if (check_env != nullptr && *check_env != '\0' &&
      std::string_view(check_env) != "0") {
    EnableCheckAfterTick();
  }
}

Result<TableHandle> Database::CreateTable(const std::string& name,
                                          Schema schema,
                                          TableOptions table_options) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  EpochManager::WriteGuard guard(epochs_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table =
      std::make_unique<Table>(name, std::move(schema), table_options);
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return TableHandle(raw);
}

Result<TableHandle> Database::GetTable(const std::string& name) {
  EpochManager::ReadPin pin(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(name));
  return TableHandle(table);
}

Result<Table*> Database::MutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::TableNotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  EpochManager::WriteGuard guard(epochs_);
  if (tables_.erase(name) == 0) {
    return Status::TableNotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  EpochManager::ReadPin pin(epochs_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Result<DecayScheduler::AttachmentId> Database::AttachFungus(
    const std::string& table_name, std::unique_ptr<Fungus> fungus,
    Duration period) {
  EpochManager::WriteGuard guard(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(table_name));
  return scheduler_.Attach(table, std::move(fungus), period, clock_.Now());
}

Status Database::DetachFungus(DecayScheduler::AttachmentId id) {
  EpochManager::WriteGuard guard(epochs_);
  return scheduler_.Detach(id);
}

Result<uint64_t> Database::AdvanceTime(Duration d) {
  if (d < 0) return Status::InvalidArgument("cannot advance time backwards");
  EpochManager::WriteGuard guard(epochs_);
  clock_.Advance(d);
  const uint64_t ticks = scheduler_.AdvanceTo(clock_.Now());
  cellar_.AdvanceTo(clock_.Now());
  return ticks;
}

Result<RowId> Database::Insert(const std::string& table_name,
                               const std::vector<Value>& values) {
  EpochManager::WriteGuard guard(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(table_name));
  FUNGUSDB_ASSIGN_OR_RETURN(RowId row, table->Append(values, clock_.Now()));
  metrics_.IncrementCounter("fungusdb.ingest.rows");
  return row;
}

Result<uint64_t> Database::Ingest(const std::string& table_name,
                                  RecordSource& source,
                                  uint64_t max_records) {
  EpochManager::WriteGuard guard(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(table_name));
  FUNGUSDB_ASSIGN_OR_RETURN(
      uint64_t n, ingestor_.IngestBatch(source, *table, max_records));
  metrics_.IncrementCounter("fungusdb.ingest.rows", static_cast<int64_t>(n));
  return n;
}

Result<uint64_t> Database::IngestPaced(const std::string& table_name,
                                       RecordSource& source,
                                       uint64_t max_records,
                                       Duration inter_arrival) {
  EpochManager::WriteGuard guard(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(table_name));
  // Interleave decay with ingestion so fungi tick close to their due
  // times instead of replaying a long backlog after the batch.
  constexpr uint64_t kChunk = 256;
  uint64_t total = 0;
  while (total < max_records) {
    const uint64_t want = std::min(kChunk, max_records - total);
    FUNGUSDB_ASSIGN_OR_RETURN(
        uint64_t n, ingestor_.IngestPaced(source, *table, want, clock_,
                                          inter_arrival));
    scheduler_.AdvanceTo(clock_.Now());
    total += n;
    if (n < want) break;  // source exhausted
  }
  cellar_.AdvanceTo(clock_.Now());
  metrics_.IncrementCounter("fungusdb.ingest.rows",
                            static_cast<int64_t>(total));
  return total;
}

int64_t Database::SlowQueryThresholdFor(const Table* table) const {
  int64_t threshold = slow_query_micros_.load(std::memory_order_relaxed);
  if (table != nullptr && table->options().slow_query_micros > 0) {
    threshold = table->options().slow_query_micros;
  }
  return threshold;
}

Result<ResultSet> Database::ExecuteSql(std::string_view sql) {
  const int64_t queue_wait_us = pending_queue_wait_us_;
  pending_queue_wait_us_ = 0;
  FUNGUSDB_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  EpochManager::WriteGuard guard(epochs_);
  const int64_t begin_us = SteadyMicros();
  Result<ResultSet> result = ExecuteLocked(query);
  if (!result.ok()) return result;
  const int64_t exec_us = SteadyMicros() - begin_us;

  // Slow-query log: the table's threshold wins; 0 falls back to the
  // database-wide one; 0 there too disables logging.
  const Result<Table*> table = MutableTable(query.table_name);
  const int64_t threshold =
      SlowQueryThresholdFor(table.ok() ? *table : nullptr);
  if (threshold > 0 && exec_us >= threshold) {
    const ResultSet::Stats& stats = result->stats;
    metrics_.IncrementCounter("fungusdb.query.slow",
                              "table=" + query.table_name);
    FUNGUSDB_LOG(Warning)
        << "slow-query t=" << clock_.Now() << " table=" << query.table_name
        << " us=" << exec_us << " queue_us=" << queue_wait_us
        << " rows_scanned=" << stats.rows_scanned
        << " rows_pruned=" << stats.rows_pruned
        << " segments_scanned=" << stats.segments_scanned
        << " segments_pruned=" << stats.segments_pruned
        << " rows_matched=" << stats.rows_matched << " sql=" << sql;
  }
  return result;
}

std::vector<Result<ResultSet>> Database::ExecuteBatch(
    std::span<const std::string_view> statements) {
  std::vector<Result<ResultSet>> results;
  results.reserve(statements.size());
  for (std::string_view statement : statements) {
    results.push_back(ExecuteSql(statement));
  }
  return results;
}

std::vector<Result<ResultSet>> Database::ExecuteBatch(
    std::span<const std::string> statements) {
  std::vector<std::string_view> views(statements.begin(), statements.end());
  return ExecuteBatch(std::span<const std::string_view>(views));
}

Result<ResultSet> Database::Execute(const Query& query) {
  EpochManager::WriteGuard guard(epochs_);
  return ExecuteLocked(query);
}

Result<ResultSet> Database::ExecuteLocked(const Query& query) {
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(query.table_name));
  metrics_.IncrementCounter("fungusdb.query.executed");
  if (query.consuming) {
    metrics_.IncrementCounter("fungusdb.query.consuming");
  }
  return engine_.Execute(query, *table, clock_.Now());
}

Status Database::AddCookSpec(CookSpec spec) {
  EpochManager::WriteGuard guard(epochs_);
  if (tables_.count(spec.table_name) == 0) {
    return Status::TableNotFound("no table named '" + spec.table_name +
                                 "'");
  }
  return kitchen_.AddSpec(std::move(spec));
}

Result<RotReport> Database::RotReportFor(const std::string& name) {
  EpochManager::ReadPin pin(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(name));
  return BuildRotReport(*table, &scheduler_);
}

Status Database::SetFreezeAfterIdleTicks(const std::string& name,
                                         uint64_t ticks) {
  EpochManager::WriteGuard guard(epochs_);
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table, MutableTable(name));
  table->set_freeze_after_idle_ticks(ticks);
  return Status::OK();
}

verify::Report Database::Fsck() const {
  EpochManager::ReadPin pin(epochs_);
  verify::InvariantChecker checker;
  verify::Report report;
  for (const auto& [name, table] : tables_) {
    report.Merge(checker.CheckTable(*table));
  }
  report.Merge(checker.CheckCellar(cellar_));
  return report;
}

void Database::EnableCheckAfterTick() {
  scheduler_.set_post_tick_check([](Table& table, Timestamp tick_time) {
    const verify::Report report =
        verify::InvariantChecker().CheckTable(table);
    if (report.ok()) return;
    std::fprintf(stderr,
                 "FUNGUSDB_CHECK_AFTER_TICK: invariant violation after "
                 "tick at t=%lld\n%s",
                 static_cast<long long>(tick_time),
                 report.ToString().c_str());
    std::abort();
  });
}

HealthReport Database::Health() const {
  EpochManager::ReadPin pin(epochs_);
  HealthReport report;
  report.now = clock_.Now();
  for (const auto& [name, table] : tables_) {
    TableHealth h;
    h.name = name;
    h.live_rows = table->live_rows();
    h.total_appended = table->total_appended();
    h.rows_killed = table->rows_killed();
    h.num_segments = table->num_segments();
    h.memory_bytes = table->MemoryUsage();
    if (h.live_rows > 0) {
      double sum = 0.0;
      table->ForEachLive(
          [&](RowId row) { sum += table->Freshness(row); });
      h.mean_freshness = sum / static_cast<double>(h.live_rows);
    }
    report.tables.push_back(std::move(h));
  }
  report.cellar_entries = cellar_.size();
  report.cellar_bytes = cellar_.MemoryUsage();
  report.rows_cooked = kitchen_.rows_cooked();
  return report;
}

std::string HealthReport::ToString() const {
  std::ostringstream os;
  os << "health @ t=" << FormatDuration(now) << "\n";
  for (const TableHealth& t : tables) {
    os << "  table " << t.name << ": live=" << t.live_rows << "/"
       << t.total_appended << " killed=" << t.rows_killed
       << " segments=" << t.num_segments << " mem="
       << FormatBytes(t.memory_bytes)
       << " mean_freshness=" << FormatDouble(t.mean_freshness, 3) << "\n";
  }
  os << "  cellar: " << cellar_entries << " entries, "
     << FormatBytes(cellar_bytes) << ", rows_cooked=" << rows_cooked << "\n";
  return os.str();
}

}  // namespace fungusdb
