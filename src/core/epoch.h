#ifndef FUNGUSDB_CORE_EPOCH_H_
#define FUNGUSDB_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb {

/// Coordinates the split execution model (DESIGN.md §13): one writer at
/// a time owns the total order over mutations (inserts, DDL, decay
/// ticks, CONSUME), while any number of readers execute concurrently
/// against the epoch that was current when they pinned.
///
/// The scheme is epoch + refcount over a single live version: a reader
/// pins the current epoch and holds a shared refcount for the duration
/// of its statement; a writer waits for the refcount to drain, mutates
/// exclusively, and publishes a new epoch on release. Readers therefore
/// never observe a half-applied decay tick or a torn insert — the
/// pinned epoch's state is immutable while any pin on it is held, which
/// is what keeps `__freshness` predicates, zone-map pruning, and
/// ResultSet::Stats exactly as deterministic as the single-threaded
/// facade.
///
/// Writer preference: once a writer is waiting, new top-level pins
/// queue behind it, so a read-heavy workload cannot starve decay ticks.
/// Pins are reentrant (a thread already holding a pin re-pins without
/// queueing — readers cannot deadlock with a waiting writer), and the
/// active writer thread may take a no-op pin (it is already exclusive).
///
/// The manager is itself a CAPABILITY for Clang's Thread Safety
/// Analysis: ReadPin acquires it shared, WriteGuard acquires it
/// exclusive, and APIs inside the pinned region carry
/// FUNGUS_REQUIRES_SHARED / FUNGUS_REQUIRES — so a reader path calling
/// a writer API is a compile error under -Wthread-safety, not a TSan
/// repro. Acquire pins with the scoped constructor form the analysis
/// tracks best:
///
///   EpochManager::ReadPin pin(db.epochs());     // shared
///   EpochManager::WriteGuard guard(epochs_);    // exclusive
class FUNGUS_CAPABILITY("epoch") EpochManager {
 public:
  /// Shared hold on the current epoch. Movable RAII: releases on
  /// destruction. A default-constructed pin holds nothing.
  class FUNGUS_SCOPED_CAPABILITY ReadPin {
   public:
    ReadPin() = default;

    /// Pins `manager` for shared read access — the constructor form the
    /// thread safety analysis tracks; equivalent to PinRead().
    explicit ReadPin(EpochManager& manager) FUNGUS_ACQUIRE_SHARED(manager);

    // Moves transfer the pin invisibly to the analysis (it has no
    // annotation for capability hand-off); the moved-from pin is inert.
    ReadPin(ReadPin&& other) noexcept FUNGUS_NO_THREAD_SAFETY_ANALYSIS
        : manager_(other.manager_),
          epoch_(other.epoch_),
          no_op_(other.no_op_) {
      other.manager_ = nullptr;
      other.no_op_ = false;
    }
    ReadPin& operator=(ReadPin&& other) noexcept
        FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        epoch_ = other.epoch_;
        no_op_ = other.no_op_;
        other.manager_ = nullptr;
        other.no_op_ = false;
      }
      return *this;
    }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    ~ReadPin() FUNGUS_RELEASE_GENERIC() { Release(); }

    /// The epoch that was current at pin time; stable until release.
    uint64_t epoch() const { return epoch_; }
    bool pinned() const { return manager_ != nullptr || no_op_; }

    void Release() FUNGUS_RELEASE_GENERIC();

   private:
    friend class EpochManager;
    EpochManager* manager_ = nullptr;  // null for no-op / released pins
    uint64_t epoch_ = 0;
    bool no_op_ = false;  // writer-thread self-pin: nothing to release
  };

  /// Exclusive hold. Destruction publishes the next epoch (every write
  /// section makes a new version observable) and wakes readers.
  class FUNGUS_SCOPED_CAPABILITY WriteGuard {
   public:
    WriteGuard() = default;

    /// Enters the write section on `manager` — the constructor form the
    /// thread safety analysis tracks; equivalent to BeginWrite().
    explicit WriteGuard(EpochManager& manager) FUNGUS_ACQUIRE(manager);

    WriteGuard(WriteGuard&& other) noexcept FUNGUS_NO_THREAD_SAFETY_ANALYSIS
        : manager_(other.manager_) {
      other.manager_ = nullptr;
    }
    WriteGuard& operator=(WriteGuard&& other) noexcept
        FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;
    ~WriteGuard() FUNGUS_RELEASE() { Release(); }

    void Release() FUNGUS_RELEASE();

   private:
    friend class EpochManager;
    explicit WriteGuard(EpochManager* manager) : manager_(manager) {}
    EpochManager* manager_ = nullptr;
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pins the current epoch for shared read access. Blocks while a
  /// writer is active or waiting (unless this thread already holds a
  /// pin, or IS the active writer — both re-enter without queueing).
  /// Prefer the ReadPin(manager) constructor in new code: the analysis
  /// cannot reliably follow a scoped capability returned by value.
  [[nodiscard]] ReadPin PinRead() FUNGUS_ACQUIRE_SHARED();

  /// Acquires exclusive write access; blocks until active readers
  /// drain. Non-reentrant: one write section at a time, and a thread
  /// holding a ReadPin must not call this. Prefer the
  /// WriteGuard(manager) constructor in new code.
  [[nodiscard]] WriteGuard BeginWrite() FUNGUS_ACQUIRE();

  /// The current published epoch (monotone; bumped on every write
  /// section release and on every mid-section Publish).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Publishes an intermediate epoch from inside an active write
  /// section — the decay scheduler calls this after each tick's apply
  /// phase, so every tick is its own epoch even when one AdvanceTime
  /// replays many. Readers cannot pin mid-section; the bump is visible
  /// the moment the section ends. Callers must hold the WriteGuard;
  /// unannotated because the scheduler reaches it through a stored
  /// callback the analysis cannot see through.
  uint64_t Publish();

  /// Sink for the "fungusdb.exec.epoch" gauge (not owned; may be null).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

 private:
  void ReleaseRead();
  void ReleaseWrite();
  void ExportEpochGauge(uint64_t epoch);
  /// Shared acquisition body behind PinRead() and ReadPin(manager).
  void AcquireReadInto(ReadPin& pin);
  /// Exclusive acquisition body behind BeginWrite() and
  /// WriteGuard(manager).
  void AcquireWrite();

  mutable Mutex mu_;
  CondVar readable_;
  CondVar writable_;
  std::atomic<uint64_t> epoch_{0};
  size_t active_readers_ FUNGUS_GUARDED_BY(mu_) = 0;
  size_t waiting_writers_ FUNGUS_GUARDED_BY(mu_) = 0;
  bool writer_active_ FUNGUS_GUARDED_BY(mu_) = false;
  std::thread::id writer_thread_ FUNGUS_GUARDED_BY(mu_);
  // Set once at Database construction, before any concurrency exists;
  // capability_audit.py carries the justified-allowlist entry.
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_CORE_EPOCH_H_
