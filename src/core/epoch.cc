#include "core/epoch.h"

namespace fungusdb {
namespace {

/// Per-thread count of pins held across all managers. Only the gate
/// against *waiting* writers consults it (a thread that already holds a
/// pin must be allowed to re-pin, or it would deadlock with the very
/// writer that is waiting for it to finish); the writer-active check is
/// never bypassed, so a false positive from a pin on a different
/// manager costs a moment of writer fairness, never correctness.
thread_local size_t tls_pins_held = 0;

}  // namespace

void EpochManager::ReadPin::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseRead();
    manager_ = nullptr;
  }
  no_op_ = false;
}

void EpochManager::WriteGuard::Release() {
  if (manager_ != nullptr) {
    manager_->ReleaseWrite();
    manager_ = nullptr;
  }
}

EpochManager::ReadPin EpochManager::PinRead() {
  ReadPin pin;
  std::unique_lock<std::mutex> lock(mu_);
  if (writer_active_ && writer_thread_ == std::this_thread::get_id()) {
    // The active writer is already exclusive; hand it a no-op pin so
    // writer-side code can call read-pinned helpers without deadlock.
    pin.no_op_ = true;
    pin.epoch_ = epoch_.load(std::memory_order_relaxed);
    return pin;
  }
  readable_.wait(lock, [this] {
    return !writer_active_ && (waiting_writers_ == 0 || tls_pins_held > 0);
  });
  ++active_readers_;
  ++tls_pins_held;
  pin.manager_ = this;
  pin.epoch_ = epoch_.load(std::memory_order_relaxed);
  return pin;
}

void EpochManager::ReleaseRead() {
  bool wake_writer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_readers_;
    --tls_pins_held;
    wake_writer = active_readers_ == 0 && waiting_writers_ > 0;
  }
  if (wake_writer) writable_.notify_one();
}

EpochManager::WriteGuard EpochManager::BeginWrite() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  writable_.wait(lock,
                 [this] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  writer_thread_ = std::this_thread::get_id();
  return WriteGuard(this);
}

void EpochManager::ReleaseWrite() {
  uint64_t published = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    writer_active_ = false;
    published = epoch_.fetch_add(1, std::memory_order_release) + 1;
  }
  ExportEpochGauge(published);
  // Wake a waiting writer first (writer preference) and every blocked
  // reader — the predicate sorts out who proceeds.
  writable_.notify_one();
  readable_.notify_all();
}

uint64_t EpochManager::Publish() {
  const uint64_t published =
      epoch_.fetch_add(1, std::memory_order_release) + 1;
  ExportEpochGauge(published);
  return published;
}

void EpochManager::ExportEpochGauge(uint64_t epoch) {
  if (metrics_ != nullptr) {
    metrics_->SetGauge("fungusdb.exec.epoch", static_cast<double>(epoch));
  }
}

}  // namespace fungusdb
