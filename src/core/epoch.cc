#include "core/epoch.h"

namespace fungusdb {
namespace {

/// Per-thread count of pins held across all managers. Only the gate
/// against *waiting* writers consults it (a thread that already holds a
/// pin must be allowed to re-pin, or it would deadlock with the very
/// writer that is waiting for it to finish); the writer-active check is
/// never bypassed, so a false positive from a pin on a different
/// manager costs a moment of writer fairness, never correctness.
thread_local size_t tls_pins_held = 0;

}  // namespace

// The bodies below implement the epoch capability itself, so they lie
// to the thread safety analysis by design (a condvar wait releases and
// reacquires mu_ invisibly; the "epoch" capability the annotations
// advertise is the refcount/flag state, not a lock the analysis can
// see). FUNGUS_NO_THREAD_SAFETY_ANALYSIS on these definitions is the
// documented escape hatch for locking primitives — capability_audit.py
// keeps it from spreading beyond this file.

void EpochManager::ReadPin::Release() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  if (manager_ != nullptr) {
    manager_->ReleaseRead();
    manager_ = nullptr;
  }
  no_op_ = false;
}

void EpochManager::WriteGuard::Release() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  if (manager_ != nullptr) {
    manager_->ReleaseWrite();
    manager_ = nullptr;
  }
}

EpochManager::ReadPin::ReadPin(EpochManager& manager)
    FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  manager.AcquireReadInto(*this);
}

EpochManager::WriteGuard::WriteGuard(EpochManager& manager)
    FUNGUS_NO_THREAD_SAFETY_ANALYSIS
    : manager_(&manager) {
  manager.AcquireWrite();
}

void EpochManager::AcquireReadInto(ReadPin& pin)
    FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  if (writer_active_ && writer_thread_ == std::this_thread::get_id()) {
    // The active writer is already exclusive; hand it a no-op pin so
    // writer-side code can call read-pinned helpers without deadlock.
    pin.no_op_ = true;
    pin.epoch_ = epoch_.load(std::memory_order_relaxed);
    return;
  }
  while (writer_active_ ||
         (waiting_writers_ > 0 && tls_pins_held == 0)) {
    readable_.Wait(mu_);
  }
  ++active_readers_;
  ++tls_pins_held;
  pin.manager_ = this;
  pin.epoch_ = epoch_.load(std::memory_order_relaxed);
}

EpochManager::ReadPin EpochManager::PinRead()
    FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  ReadPin pin;
  AcquireReadInto(pin);
  return pin;
}

void EpochManager::ReleaseRead() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  bool wake_writer = false;
  {
    MutexLock lock(mu_);
    --active_readers_;
    --tls_pins_held;
    wake_writer = active_readers_ == 0 && waiting_writers_ > 0;
  }
  if (wake_writer) writable_.NotifyOne();
}

void EpochManager::AcquireWrite() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(mu_);
  ++waiting_writers_;
  while (writer_active_ || active_readers_ > 0) writable_.Wait(mu_);
  --waiting_writers_;
  writer_active_ = true;
  writer_thread_ = std::this_thread::get_id();
}

EpochManager::WriteGuard EpochManager::BeginWrite()
    FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  AcquireWrite();
  return WriteGuard(this);
}

void EpochManager::ReleaseWrite() FUNGUS_NO_THREAD_SAFETY_ANALYSIS {
  uint64_t published = 0;
  {
    MutexLock lock(mu_);
    writer_active_ = false;
    published = epoch_.fetch_add(1, std::memory_order_release) + 1;
  }
  ExportEpochGauge(published);
  // Wake a waiting writer first (writer preference) and every blocked
  // reader — the wait loops sort out who proceeds.
  writable_.NotifyOne();
  readable_.NotifyAll();
}

uint64_t EpochManager::Publish() {
  const uint64_t published =
      epoch_.fetch_add(1, std::memory_order_release) + 1;
  ExportEpochGauge(published);
  return published;
}

void EpochManager::ExportEpochGauge(uint64_t epoch) {
  if (metrics_ != nullptr) {
    metrics_->SetGauge("fungusdb.exec.epoch", static_cast<double>(epoch));
  }
}

}  // namespace fungusdb
