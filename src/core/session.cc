#include "core/session.h"

#include <chrono>

#include "common/logging.h"
#include "query/parser.h"

namespace fungusdb {
namespace {

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

QueryEngineOptions ReadPathEngineOptions(Database* db) {
  QueryEngineOptions options;
  // Never bump access counters from the read path: the counters are
  // plain (non-atomic) storage, and the classifier keeps SELECTs over
  // track_access tables on the writer precisely so this stays false.
  options.record_access = false;
  // Serial scans: concurrency comes from many sessions. Sharing the
  // decay pool's fork/join from N reader threads at once would nest
  // coordinators; per-statement serial execution is also the right
  // throughput trade for a worker-pool server.
  options.pool = nullptr;
  options.metrics = &db->metrics();
  return options;
}

}  // namespace

Session::Session(Database* db)
    : db_(db), engine_(ReadPathEngineOptions(db)) {}

Result<ResultSet> Session::ExecuteRead(std::string_view sql,
                                       uint64_t* pinned_epoch) {
  FUNGUSDB_ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  return ExecutePinned(query, sql, pinned_epoch);
}

Result<ResultSet> Session::ExecuteRead(const Query& query,
                                       uint64_t* pinned_epoch) {
  return ExecutePinned(query, query.ToString(), pinned_epoch);
}

Result<ResultSet> Session::ExecutePinned(const Query& query,
                                         std::string_view sql,
                                         uint64_t* pinned_epoch) {
  const int64_t queue_wait_us = pending_queue_wait_us_;
  pending_queue_wait_us_ = 0;
  if (ClassifyQuery(query) == StatementKind::kMutating) {
    return Status::InvalidArgument(
        "read session cannot execute a mutating statement (route it to "
        "the writer): " +
        query.ToString());
  }

  // Pin acquisition blocks while a writer holds the exclusive section,
  // so its wall time is real head-of-line latency for the read pool —
  // attribute it like queue wait (satellite of the slow-query contract).
  const int64_t pin_begin_us = SteadyMicros();
  EpochManager::ReadPin pin(db_->epochs_);
  const int64_t pin_wait_us = SteadyMicros() - pin_begin_us;
  if (pinned_epoch != nullptr) *pinned_epoch = pin.epoch();
  FUNGUSDB_ASSIGN_OR_RETURN(Table * table,
                            db_->MutableTable(query.table_name));
  if (db_->options().record_access && table->options().track_access) {
    // Misrouted: executing here would silently skip the access-counter
    // bumps that feed ImportanceFungus. Refuse instead of diverging.
    return Status::InvalidArgument(
        "table '" + query.table_name +
        "' tracks access; its SELECTs belong to the writer");
  }
  db_->metrics().IncrementCounter("fungusdb.query.executed");
  db_->metrics().IncrementCounter("fungusdb.exec.read_statements");
  db_->metrics().RecordHistogram("fungusdb.query.pin_wait_us", pin_wait_us);
  db_->metrics().RecordHistogram("fungusdb.query.pin_wait_us",
                                 "table=" + query.table_name, pin_wait_us);
  const int64_t begin_us = SteadyMicros();
  // The engine takes Table& but this call graph is read-only end to
  // end: record_access is off, the query is non-consuming, and the pin
  // excludes every mutator.
  Result<ResultSet> result =
      engine_.Execute(query, *table, db_->clock_.Now());
  if (!result.ok()) return result;
  const int64_t exec_us = SteadyMicros() - begin_us;

  const int64_t threshold = db_->SlowQueryThresholdFor(table);
  if (threshold > 0 && exec_us >= threshold) {
    const ResultSet::Stats& stats = result->stats;
    db_->metrics().IncrementCounter("fungusdb.query.slow",
                                    "table=" + query.table_name);
    FUNGUSDB_LOG(Warning)
        << "slow-query t=" << db_->clock_.Now()
        << " table=" << query.table_name << " us=" << exec_us
        << " queue_us=" << queue_wait_us << " pin_wait_us=" << pin_wait_us
        << " epoch=" << pin.epoch()
        << " rows_scanned=" << stats.rows_scanned
        << " rows_pruned=" << stats.rows_pruned
        << " segments_scanned=" << stats.segments_scanned
        << " segments_pruned=" << stats.segments_pruned
        << " rows_matched=" << stats.rows_matched << " sql=" << sql;
  }
  return result;
}

}  // namespace fungusdb
