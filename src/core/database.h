#ifndef FUNGUSDB_CORE_DATABASE_H_
#define FUNGUSDB_CORE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/epoch.h"
#include "core/table_handle.h"
#include "fungus/fungus.h"
#include "fungus/rot_analysis.h"
#include "fungus/scheduler.h"
#include "pipeline/ingestor.h"
#include "pipeline/kitchen.h"
#include "pipeline/source.h"
#include "query/engine.h"
#include "query/parser.h"
#include "storage/table.h"
#include "summary/cellar.h"
#include "verify/invariant_checker.h"

namespace fungusdb {

class Session;

namespace internal {
struct DatabaseInternal;
}  // namespace internal

struct DatabaseOptions {
  /// Epoch of the database's virtual clock.
  Timestamp start_time = 0;

  /// Cellar entries at or below this freshness are evicted.
  double cellar_eviction_threshold = 0.01;

  /// Bump access counters on query matches (feeds ImportanceFungus).
  bool record_access = true;

  /// Execution threads for shard-parallel decay ticks and morsel-driven
  /// scans (including the coordinating thread). 0 picks the hardware
  /// concurrency. 1 runs everything inline — same results, one core:
  /// parallel outcomes are deterministic in the thread count by
  /// construction (they may depend on a table's num_shards, which is a
  /// storage property, not an execution property).
  size_t num_threads = 0;

  /// Database-wide slow-query threshold in wall-clock microseconds; a
  /// statement at or above it is logged with its scan/prune/queue-wait
  /// breakdown (DESIGN.md §12). 0 disables. A table's
  /// TableOptions::slow_query_micros overrides this per table. Also
  /// settable via the FUNGUSDB_SLOW_QUERY_US environment variable, which
  /// wins when this field is 0.
  int64_t slow_query_micros = 0;
};

/// Per-table health snapshot — the paper's "optimal health condition"
/// made observable.
struct TableHealth {
  std::string name;
  uint64_t live_rows = 0;
  uint64_t total_appended = 0;
  uint64_t rows_killed = 0;
  size_t num_segments = 0;
  size_t memory_bytes = 0;
  double mean_freshness = 0.0;  // over live tuples; 0 when empty
};

struct HealthReport {
  Timestamp now = 0;
  std::vector<TableHealth> tables;
  size_t cellar_entries = 0;
  size_t cellar_bytes = 0;
  uint64_t rows_cooked = 0;

  std::string ToString() const;
};

/// The FungusDB single-writer core: tables with freshness, fungi on a
/// periodic clock, consuming queries, the kitchen, and the cellar —
/// everything runs on one deterministic virtual clock owned here.
///
/// Typical use:
///
///   Database db;
///   TableHandle t = db.CreateTable("readings", schema).value();
///   db.AttachFungus("readings",
///                   std::make_unique<RetentionFungus>(7 * kDay),
///                   /*period=*/kHour).value();
///   db.Insert("readings", {...});
///   db.AdvanceTime(3 * kDay);                      // decay happens here
///   ResultSet rs = db.ExecuteSql(
///       "CONSUME SELECT * FROM readings WHERE temp > 30").value();
///
/// Concurrency model (DESIGN.md §13): every mutation — inserts, DDL,
/// AdvanceTime/decay ticks, CONSUME, cooking — enters an exclusive
/// write section of the EpochManager, preserving the total order the
/// one virtual timeline requires; each write section (and each decay
/// tick inside one) publishes a new epoch. Read-only statements run
/// concurrently through Session objects, which pin the epoch current at
/// dispatch. Calling this facade from one thread behaves exactly as the
/// historical single-threaded contract (write sections are uncontended
/// and cheap); multi-threaded use is: any number of Sessions, plus any
/// number of threads calling the mutating facade (they serialize).
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Tables. ---
  Result<TableHandle> CreateTable(const std::string& name, Schema schema,
                                  TableOptions table_options = {});
  Result<TableHandle> GetTable(const std::string& name);
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  // --- Decay (the first natural law). ---

  /// Attaches `fungus` to the named table, ticking every `period`.
  Result<DecayScheduler::AttachmentId> AttachFungus(
      const std::string& table_name, std::unique_ptr<Fungus> fungus,
      Duration period);

  Status DetachFungus(DecayScheduler::AttachmentId id);

  // --- Time. ---

  Timestamp Now() const { return clock_.Now(); }

  /// Advances the virtual clock by `d`, running every due fungus tick
  /// (in order) and decaying the cellar. Returns ticks executed.
  Result<uint64_t> AdvanceTime(Duration d);

  // --- Ingestion. ---

  /// Appends one row stamped with the current time.
  Result<RowId> Insert(const std::string& table_name,
                       const std::vector<Value>& values);

  /// Pulls up to `max_records` from `source` into the named table.
  Result<uint64_t> Ingest(const std::string& table_name,
                          RecordSource& source, uint64_t max_records);

  /// Paced variant: the clock advances `inter_arrival` per record.
  Result<uint64_t> IngestPaced(const std::string& table_name,
                               RecordSource& source, uint64_t max_records,
                               Duration inter_arrival);

  // --- Queries. ---

  /// Parses and executes one statement of the FungusDB dialect, in the
  /// writer's total order (read-only statements included — callers who
  /// want concurrent reads use a Session).
  Result<ResultSet> ExecuteSql(std::string_view sql);

  /// Executes a batch of statements in order, one Result per statement.
  /// A failed statement does not stop the batch — later statements
  /// still run. This is the server's pipelining primitive and the
  /// engine behind multi-statement fungusql lines.
  std::vector<Result<ResultSet>> ExecuteBatch(
      std::span<const std::string_view> statements);
  std::vector<Result<ResultSet>> ExecuteBatch(
      std::span<const std::string> statements);

  /// Executes a programmatic query.
  Result<ResultSet> Execute(const Query& query);

  // --- Cooking. ---

  /// Registers a cooking rule (validated by the kitchen).
  Status AddCookSpec(CookSpec spec);

  Cellar& cellar() { return cellar_; }
  const Cellar& cellar() const { return cellar_; }
  Kitchen& kitchen() { return kitchen_; }

  // --- Verification. ---

  /// Runs the invariant checker over every table plus the cellar and
  /// returns the combined fsck report (empty violations == healthy).
  /// Executes under a read pin: safe concurrently with the writer.
  verify::Report Fsck() const;

  /// Arms the scheduler's CHECK AFTER TICK hook: after every decay
  /// tick the ticked table is fsck'd, and the process aborts with the
  /// report on the first violation. A tripwire for tests and debug
  /// runs — also armed by the FUNGUSDB_CHECK_AFTER_TICK environment
  /// variable (any value but "0") at construction time.
  void EnableCheckAfterTick();

  // --- Introspection. ---

  HealthReport Health() const;

  /// Composes the `\rot` report for one table under a single read pin:
  /// rot structure, freshness histogram and the scheduler's decay
  /// state. The supported read path for out-of-core observers (HTTP
  /// handlers, CLIs) that must not touch Table directly.
  Result<RotReport> RotReportFor(const std::string& name);

  /// Runtime tuning of TableOptions::freeze_after_idle_ticks for one
  /// table (0 disables freezing; see storage/table.h). Mutating:
  /// enters the exclusive write section like every facade mutation.
  Status SetFreezeAfterIdleTicks(const std::string& name, uint64_t ticks);

  /// Queue-wait attribution for the next ExecuteSql call, reported in
  /// its slow-query log line (the server sets this to the statement's
  /// time between enqueue and execution). One-shot: consumed and reset
  /// by the next ExecuteSql. Writer-thread only, like ExecuteSql.
  void set_pending_queue_wait_micros(int64_t us) {
    pending_queue_wait_us_ = us;
  }

  /// Runtime-adjustable database-wide slow-query threshold (see
  /// DatabaseOptions::slow_query_micros); 0 disables. Atomic: read by
  /// concurrent Sessions.
  void set_slow_query_micros(int64_t us) {
    slow_query_micros_.store(us, std::memory_order_relaxed);
  }
  int64_t slow_query_micros() const {
    return slow_query_micros_.load(std::memory_order_relaxed);
  }

  const DatabaseOptions& options() const { return options_; }
  MetricsRegistry& metrics() { return metrics_; }
  DecayScheduler& scheduler() { return scheduler_; }
  VirtualClock& clock() { return clock_; }
  ThreadPool& thread_pool() { return *pool_; }

  /// The reader/writer coordination point. Read-mostly callers that
  /// compose several lookups (e.g. a rot report walking a table and the
  /// scheduler) take one pin around the whole composition; nested pins
  /// from the facade's own accessors are reentrant.
  EpochManager& epochs() FUNGUS_RETURN_CAPABILITY(epochs_) {
    return epochs_;
  }

  /// The current published epoch (bumped per write section and per
  /// decay tick) — also exported as the fungusdb.exec.epoch gauge.
  uint64_t epoch() const { return epochs_.epoch(); }

 private:
  friend class Session;
  friend struct internal::DatabaseInternal;

  /// Mutable-table escape hatch. Private since the Session split: every
  /// external caller goes through TableHandle or (for persistence /
  /// verification / test seeding) internal::DatabaseInternal. Requires
  /// at least a shared hold on the epoch: the map lookup races with DDL
  /// otherwise. Callers that mutate the returned table need the
  /// exclusive WriteGuard — the analysis cannot see through Table*, so
  /// that half of the contract rides on the write-path annotations.
  Result<Table*> MutableTable(const std::string& name)
      FUNGUS_REQUIRES_SHARED(epochs_);

  /// Shared by ExecuteSql (writer path) and Session (read path): the
  /// slow-query threshold for `table_name`, already resolved against
  /// the per-table override. <= 0 disables.
  int64_t SlowQueryThresholdFor(const Table* table) const
      FUNGUS_REQUIRES_SHARED(epochs_);

  /// Body of Execute without the write section (callers hold one
  /// exclusively — CONSUME and \cook mutate through here).
  Result<ResultSet> ExecuteLocked(const Query& query)
      FUNGUS_REQUIRES(epochs_);

  DatabaseOptions options_;
  VirtualClock clock_;
  MetricsRegistry metrics_;
  // Mutable: const introspection (Health, Fsck, TableNames) still pins.
  mutable EpochManager epochs_;
  // Declared before engine_/scheduler_ users; destroyed after them, so
  // no parallel phase can outlive its pool.
  std::unique_ptr<ThreadPool> pool_;
  Cellar cellar_;
  Kitchen kitchen_;
  DecayScheduler scheduler_;
  QueryEngine engine_;
  Ingestor ingestor_;
  /// The table map is versioned state: DDL mutates it under the
  /// exclusive epoch section, everything else reads it under a pin.
  std::map<std::string, std::unique_ptr<Table>> tables_
      FUNGUS_GUARDED_BY(epochs_);
  std::atomic<int64_t> slow_query_micros_{0};
  int64_t pending_queue_wait_us_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_CORE_DATABASE_H_
