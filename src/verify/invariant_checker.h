#ifndef FUNGUSDB_VERIFY_INVARIANT_CHECKER_H_
#define FUNGUSDB_VERIFY_INVARIANT_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "summary/cellar.h"

namespace fungusdb::verify {

/// One broken invariant with the most precise coordinates available.
/// Fields that do not apply stay at -1 (e.g. a shard-level violation
/// has no row). `invariant` is the stable rule name listed in
/// DESIGN.md §9 — tests and tools match on it.
struct Violation {
  std::string invariant;
  std::string table;
  int64_t shard = -1;
  int64_t segment = -1;  // global segment number
  int64_t row = -1;      // RowId
  int64_t column = -1;   // user column index
  std::string detail;

  /// "table 'events' shard 1 segment 3 row 12300: freshness-range: ...".
  std::string ToString() const;
};

/// Outcome of one checker run. Empty violations == healthy.
struct Report {
  std::vector<Violation> violations;
  uint64_t tables_checked = 0;
  uint64_t segments_checked = 0;
  uint64_t rows_checked = 0;
  /// True when the violation list was cut off at the configured cap.
  bool truncated = false;

  bool ok() const { return violations.empty(); }

  /// Folds another report (e.g. for the next table) into this one.
  void Merge(Report other);

  /// Human-readable summary plus every violation, one per line.
  std::string ToString() const;

  /// OK when healthy; otherwise Internal with the first violation and
  /// the total count — the form the CHECK AFTER TICK hook propagates.
  Status ToStatus() const;
};

/// fsck for FungusDB storage: walks Table → Shard → Segment → Column
/// and verifies the structural invariants the decay laws rely on
/// (freshness ∈ (0,1] for live tuples, dead-row exclusion from live
/// iteration, shard round-robin ownership, segment time-ordering,
/// row-count/column-length agreement, counter accounting). Read-only
/// and coordinator-thread-only: never run it while a parallel phase is
/// mutating shards.
class InvariantChecker {
 public:
  struct Options {
    /// Stop collecting after this many violations (the report notes
    /// the truncation); a badly corrupted table would otherwise drown
    /// the interesting first finding.
    size_t max_violations = 64;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Options options) : options_(options) {}

  /// Checks every table-level invariant (the full list: DESIGN.md §9).
  Report CheckTable(const Table& table) const;

  /// Checks cellar entries (freshness of cooked summaries ∈ (0,1]).
  /// Violations use the entry name in the `table` coordinate.
  Report CheckCellar(const Cellar& cellar) const;

 private:
  Options options_{};
};

}  // namespace fungusdb::verify

#endif  // FUNGUSDB_VERIFY_INVARIANT_CHECKER_H_
