#include "verify/invariant_checker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "common/string_util.h"

namespace fungusdb::verify {
namespace {

/// Collects violations with the cap applied once, so every check site
/// stays one line.
class Collector {
 public:
  Collector(Report* report, size_t cap) : report_(report), cap_(cap) {}

  void Add(Violation v) {
    if (report_->violations.size() >= cap_) {
      report_->truncated = true;
      return;
    }
    report_->violations.push_back(std::move(v));
  }

 private:
  Report* report_;
  size_t cap_;
};

Violation Make(std::string invariant, const std::string& table,
               std::string detail, int64_t shard = -1,
               int64_t segment = -1, int64_t row = -1,
               int64_t column = -1) {
  Violation v;
  v.invariant = std::move(invariant);
  v.table = table;
  v.shard = shard;
  v.segment = segment;
  v.row = row;
  v.column = column;
  v.detail = std::move(detail);
  return v;
}

/// True when `p` is a well-formed FOR encoding: the declared bit width
/// is storable, max_delta fits it, the word count matches, and no
/// stored delta escapes max_delta (the bound the frozen scan fast path
/// prunes whole segments with — an escaped delta makes pruning unsound).
bool PackedIntsWellFormed(const encode::PackedInts& p) {
  if (p.bit_width > 64) return false;
  if (p.bit_width == 0) {
    if (p.max_delta != 0) return false;
  } else if (p.bit_width < 64 && (p.max_delta >> p.bit_width) != 0) {
    return false;
  }
  if (p.words.size() != encode::PackedInts::WordsFor(p.count, p.bit_width)) {
    return false;
  }
  for (uint64_t i = 0; i < p.count; ++i) {
    const uint64_t delta = static_cast<uint64_t>(p.Get(i)) -
                           static_cast<uint64_t>(p.base);
    if (delta > p.max_delta) return false;
  }
  return true;
}

/// The `encoded-segment` rule body: audits one frozen segment's
/// encoded image (stream lengths, FOR bounds, dictionary code range,
/// block checksum) without thawing it.
void CheckFrozenImage(const Segment& seg, const std::string& name,
                      int64_t s, int64_t sno, Collector& out) {
  const encode::FrozenSegment& fz = seg.frozen();
  const uint64_t rows = fz.num_rows;
  if (fz.ts.count != rows || fz.alive.count() != rows ||
      (!fz.uniform_freshness && fz.freshness_raw.size() != rows)) {
    out.Add(Make("encoded-segment", name,
                 "encoded system streams span ts " +
                     std::to_string(fz.ts.count) + ", alive " +
                     std::to_string(fz.alive.count()) + ", freshness " +
                     std::to_string(fz.uniform_freshness
                                        ? rows
                                        : fz.freshness_raw.size()) +
                     " for " + std::to_string(rows) + " rows",
                 s, sno));
  }
  if (!PackedIntsWellFormed(fz.ts)) {
    out.Add(Make("encoded-segment", name,
                 "FOR-packed __ts span violates its declared bit "
                 "width / max delta",
                 s, sno));
  }
  for (size_t c = 0; c < fz.columns.size(); ++c) {
    const encode::FrozenColumn& fc = fz.columns[c];
    uint64_t payload_rows = rows;
    switch (fc.type) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        payload_rows = fc.ints.count;
        if (!PackedIntsWellFormed(fc.ints)) {
          out.Add(Make("encoded-segment", name,
                       "FOR-packed column violates its declared bit "
                       "width / max delta",
                       s, sno, -1, static_cast<int64_t>(c)));
        }
        break;
      case DataType::kFloat64:
        payload_rows = fc.doubles.size();
        break;
      case DataType::kString: {
        payload_rows = fc.strings.count();
        const uint32_t dict_size =
            static_cast<uint32_t>(fc.strings.dict.size());
        for (const uint32_t code : fc.strings.codes.values) {
          if (code >= dict_size) {
            out.Add(Make("encoded-segment", name,
                         "dictionary code " + std::to_string(code) +
                             " escapes a dictionary of " +
                             std::to_string(dict_size) + " entries",
                         s, sno, -1, static_cast<int64_t>(c)));
            break;
          }
        }
        break;
      }
      case DataType::kBool:
        payload_rows = fc.bools.count();
        break;
    }
    if (fc.validity.count() != rows || payload_rows != rows) {
      out.Add(Make("encoded-segment", name,
                   "encoded column spans validity " +
                       std::to_string(fc.validity.count()) + ", payload " +
                       std::to_string(payload_rows) + " for " +
                       std::to_string(rows) + " rows",
                   s, sno, -1, static_cast<int64_t>(c)));
    }
  }
  const uint32_t derived = fz.ComputeChecksum();
  if (derived != fz.checksum) {
    out.Add(Make("encoded-segment", name,
                 "stored block checksum " + std::to_string(fz.checksum) +
                     " != re-derived " + std::to_string(derived) +
                     " (encoded block corrupted in memory)",
                 s, sno));
  }
}

}  // namespace

std::string Violation::ToString() const {
  std::ostringstream os;
  os << "table '" << table << "'";
  if (shard >= 0) os << " shard " << shard;
  if (segment >= 0) os << " segment " << segment;
  if (row >= 0) os << " row " << row;
  if (column >= 0) os << " column " << column;
  os << ": " << invariant << ": " << detail;
  return os.str();
}

void Report::Merge(Report other) {
  tables_checked += other.tables_checked;
  segments_checked += other.segments_checked;
  rows_checked += other.rows_checked;
  truncated = truncated || other.truncated;
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string Report::ToString() const {
  std::ostringstream os;
  os << "fsck: " << tables_checked << " table(s), " << segments_checked
     << " segment(s), " << rows_checked << " row(s) checked — ";
  if (ok()) {
    os << "no violations\n";
    return os.str();
  }
  os << violations.size() << " violation(s)";
  if (truncated) os << " (list truncated)";
  os << "\n";
  for (const Violation& v : violations) {
    os << "  " << v.ToString() << "\n";
  }
  return os.str();
}

Status Report::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::Internal(
      "invariant check failed (" + std::to_string(violations.size()) +
      (truncated ? "+" : "") + " violation(s)); first: " +
      violations.front().ToString());
}

Report InvariantChecker::CheckTable(const Table& table) const {
  Report report;
  report.tables_checked = 1;
  Collector out(&report, options_.max_violations);

  const std::string& name = table.name();
  const size_t num_shards = table.num_shards();
  const size_t rows_per_segment = table.options().rows_per_segment;
  const size_t num_fields = table.schema().num_fields();
  const uint64_t total_appended = table.total_appended();

  // --- Per-shard walk: ownership, segment structure, per-row state. ---
  uint64_t counted_live_total = 0;
  size_t counted_segments = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const Shard& shard = table.shard(s);
    uint64_t shard_live_from_segments = 0;
    for (const auto& [seg_no, seg_owner] : shard.segments()) {
      const Segment& seg = *seg_owner;
      ++report.segments_checked;
      ++counted_segments;
      const int64_t sno = static_cast<int64_t>(seg_no);
      const size_t num_rows = seg.num_rows();
      report.rows_checked += num_rows;

      // shard-round-robin: segments are dealt round-robin by number.
      if (seg_no % num_shards != s) {
        out.Add(Make("shard-round-robin", name,
                     "segment belongs to shard " +
                         std::to_string(seg_no % num_shards) +
                         " but is owned by shard " + std::to_string(s),
                     static_cast<int64_t>(s), sno));
      }
      // segment-alignment: first_row derives from the segment number.
      if (seg.first_row() != seg_no * rows_per_segment) {
        out.Add(Make("segment-alignment", name,
                     "first_row " + std::to_string(seg.first_row()) +
                         " != seg_no * rows_per_segment " +
                         std::to_string(seg_no * rows_per_segment),
                     static_cast<int64_t>(s), sno));
      }
      // segment-capacity: fixed capacity, never overfilled.
      if (seg.capacity() != rows_per_segment || num_rows > seg.capacity()) {
        out.Add(Make("segment-capacity", name,
                     "capacity " + std::to_string(seg.capacity()) +
                         ", rows " + std::to_string(num_rows) +
                         ", rows_per_segment " +
                         std::to_string(rows_per_segment),
                     static_cast<int64_t>(s), sno));
      }
      // append-bound: no segment may extend past the append cursor.
      if (seg.first_row() + num_rows > total_appended) {
        out.Add(Make("append-bound", name,
                     "segment ends at row " +
                         std::to_string(seg.first_row() + num_rows) +
                         " but only " + std::to_string(total_appended) +
                         " rows were ever appended",
                     static_cast<int64_t>(s), sno));
      }
      // routing-index (forward): the table's index knows this segment.
      auto idx = table.segment_index().find(seg_no);
      if (idx == table.segment_index().end() || idx->second != &seg) {
        out.Add(Make("routing-index", name,
                     idx == table.segment_index().end()
                         ? "segment missing from table routing index"
                         : "routing index points at a different segment",
                     static_cast<int64_t>(s), sno));
      }
      // system-vector-length: ts/freshness/alive move in lockstep on
      // the plain tier; a frozen segment must have released them all
      // (the encoded image is then the only representation).
      const size_t expected_vec = seg.is_frozen() ? 0 : num_rows;
      if (seg.freshness_vector_size() != expected_vec ||
          seg.alive_vector_size() != expected_vec) {
        out.Add(Make("system-vector-length", name,
                     "rows " + std::to_string(num_rows) + " (" +
                         (seg.is_frozen() ? "frozen" : "plain") +
                         "), freshness " +
                         std::to_string(seg.freshness_vector_size()) +
                         ", alive " +
                         std::to_string(seg.alive_vector_size()),
                     static_cast<int64_t>(s), sno));
      }
      // access-tracking: counter vector present iff tracking is on.
      const size_t expected_access =
          table.options().track_access ? num_rows : 0;
      if (seg.tracks_access() != table.options().track_access ||
          seg.access_vector_size() != expected_access) {
        out.Add(Make("access-tracking", name,
                     "access vector has " +
                         std::to_string(seg.access_vector_size()) +
                         " entries, expected " +
                         std::to_string(expected_access),
                     static_cast<int64_t>(s), sno));
      }
      // column-length / column-type: every user column matches the
      // schema and holds exactly one cell per row. The accessors here
      // are tier-independent — a frozen segment answers from its
      // encoded image without thawing.
      if (seg.num_columns() != num_fields) {
        out.Add(Make("column-length", name,
                     "segment holds " + std::to_string(seg.num_columns()) +
                         " columns for a schema of " +
                         std::to_string(num_fields),
                     static_cast<int64_t>(s), sno));
      }
      const size_t checkable_cols = std::min(seg.num_columns(), num_fields);
      for (size_t c = 0; c < checkable_cols; ++c) {
        if (seg.column_size(c) != num_rows) {
          out.Add(Make("column-length", name,
                       "column has " + std::to_string(seg.column_size(c)) +
                           " cells for " + std::to_string(num_rows) +
                           " rows",
                       static_cast<int64_t>(s), sno, -1,
                       static_cast<int64_t>(c)));
        }
        if (seg.column_type(c) != table.schema().field(c).type) {
          out.Add(Make("column-type", name,
                       std::string("column type ") +
                           std::string(DataTypeName(seg.column_type(c))) +
                           " != schema type " +
                           std::string(DataTypeName(
                               table.schema().field(c).type)),
                       static_cast<int64_t>(s), sno, -1,
                       static_cast<int64_t>(c)));
        }
      }
      // encoded-segment: a frozen segment's encoded image must be
      // internally consistent — every encoded stream spans exactly
      // num_rows, FOR-packed spans honour their declared bit width and
      // max delta (the bound the scan fast path prunes with),
      // dictionary codes stay inside the dictionary, and the canonical
      // bytes still hash to the stored block checksum.
      if (seg.is_frozen()) {
        CheckFrozenImage(seg, name, static_cast<int64_t>(s), sno, out);
      }
      // Per-row: freshness range, liveness agreement, time ordering;
      // exact bound recount for the zone-map audit below.
      size_t recounted_live = 0;
      Timestamp prev_ts = 0;
      Timestamp exact_min_ts = std::numeric_limits<Timestamp>::max();
      Timestamp exact_max_ts = std::numeric_limits<Timestamp>::min();
      double exact_min_f = std::numeric_limits<double>::infinity();
      double exact_max_f = -std::numeric_limits<double>::infinity();
      const size_t walkable =
          seg.is_frozen()
              ? num_rows
              : std::min({num_rows, seg.freshness_vector_size(),
                          seg.alive_vector_size()});
      for (size_t off = 0; off < walkable; ++off) {
        const RowId row = seg.first_row() + off;
        const double f = seg.Freshness(off);
        if (seg.IsLive(off)) {
          ++recounted_live;
          exact_min_f = std::min(exact_min_f, f);
          exact_max_f = std::max(exact_max_f, f);
          if (f == 0.0) {
            out.Add(Make("resurrected-row", name,
                         "row is flagged live but its freshness is 0 "
                         "(dead tuple resurrected)",
                         static_cast<int64_t>(s), sno,
                         static_cast<int64_t>(row)));
          } else if (f < 0.0 || f > 1.0) {
            out.Add(Make("freshness-range", name,
                         "live row has freshness " + FormatDouble(f, 6) +
                             ", outside (0, 1]",
                         static_cast<int64_t>(s), sno,
                         static_cast<int64_t>(row)));
          }
        } else if (f != 0.0) {
          out.Add(Make("dead-freshness-nonzero", name,
                       "dead row has freshness " + FormatDouble(f, 6),
                       static_cast<int64_t>(s), sno,
                       static_cast<int64_t>(row)));
        }
        const Timestamp ts = seg.InsertTime(off);
        exact_min_ts = std::min(exact_min_ts, ts);
        exact_max_ts = std::max(exact_max_ts, ts);
        if (off > 0 && ts < prev_ts) {
          out.Add(Make("time-ordering", name,
                       "insert time " + std::to_string(ts) +
                           " precedes previous row's " +
                           std::to_string(prev_ts),
                       static_cast<int64_t>(s), sno,
                       static_cast<int64_t>(row)));
        }
        prev_ts = ts;
      }
      // segment-live-count: the cached counter matches a recount.
      if (recounted_live != seg.live_count()) {
        out.Add(Make("segment-live-count", name,
                     "live_count " + std::to_string(seg.live_count()) +
                         " but " + std::to_string(recounted_live) +
                         " rows are flagged live",
                     static_cast<int64_t>(s), sno));
      }
      // zone-map-bounds: pruning metadata must COVER the stored rows —
      // a too-narrow bound makes scans and decay ticks silently skip a
      // segment that still holds matching rows. Wide bounds only cost
      // pruning opportunity and are legal (lazy widening).
      const ZoneMap& zone = seg.zone_map();
      if (walkable > 0 &&
          (zone.min_ts > exact_min_ts || zone.max_ts < exact_max_ts)) {
        out.Add(Make("zone-map-bounds", name,
                     "ts bounds [" + std::to_string(zone.min_ts) + ", " +
                         std::to_string(zone.max_ts) +
                         "] do not cover stored rows [" +
                         std::to_string(exact_min_ts) + ", " +
                         std::to_string(exact_max_ts) + "]",
                     static_cast<int64_t>(s), sno));
      }
      // The recount above works in EFFECTIVE freshness (what readers
      // see), so it must be judged against the effective bounds —
      // stored bounds with pending decay replayed.
      const double zone_min_f_eff = seg.EffectiveMinFreshness();
      const double zone_max_f_eff = seg.EffectiveMaxFreshness();
      if (recounted_live > 0 &&
          (zone_min_f_eff > exact_min_f || zone_max_f_eff < exact_max_f)) {
        out.Add(Make("zone-map-bounds", name,
                     "live freshness bounds [" +
                         FormatDouble(zone_min_f_eff, 6) + ", " +
                         FormatDouble(zone_max_f_eff, 6) +
                         "] do not cover live rows [" +
                         FormatDouble(exact_min_f, 6) + ", " +
                         FormatDouble(exact_max_f, 6) + "]",
                     static_cast<int64_t>(s), sno));
      }
      // decay-epoch: lazy-decay metadata must be internally consistent
      // (DESIGN.md §14). A segment can never be ahead of its shard's
      // tick counter; pending decrements are nonnegative finite amounts
      // folded only over segments that still have live rows; and the
      // fold-safety proof must still hold — no pending decrement may
      // have driven the effective freshness floor to or below zero
      // (that would be a deferred death, which folds must never defer).
      if (seg.decay_epoch() > shard.decay_epoch()) {
        out.Add(Make("decay-epoch", name,
                     "segment decay epoch " +
                         std::to_string(seg.decay_epoch()) +
                         " is ahead of shard decay epoch " +
                         std::to_string(shard.decay_epoch()),
                     static_cast<int64_t>(s), sno));
      }
      if (seg.has_pending_decay()) {
        for (const double d : seg.pending_decay()) {
          if (!(d >= 0.0) || !std::isfinite(d)) {
            out.Add(Make("decay-epoch", name,
                         "pending decrement " + FormatDouble(d, 6) +
                             " is negative or non-finite",
                         static_cast<int64_t>(s), sno));
            break;
          }
        }
        if (seg.live_count() == 0 || !zone.has_live_freshness()) {
          out.Add(Make("decay-epoch", name,
                       "pending decay folded over a segment with no "
                       "live rows",
                       static_cast<int64_t>(s), sno));
        } else if (!(zone_min_f_eff > 0.0)) {
          out.Add(Make("decay-epoch", name,
                       "pending decay defers a death: effective "
                       "freshness floor " +
                           FormatDouble(zone_min_f_eff, 6) +
                           " is not positive",
                       static_cast<int64_t>(s), sno));
        }
      }
      if (zone.columns.size() != num_fields) {
        out.Add(Make("zone-map-bounds", name,
                     "zone map tracks " +
                         std::to_string(zone.columns.size()) +
                         " columns for a schema of " +
                         std::to_string(num_fields)));
      }
      const size_t zone_cols =
          std::min({zone.columns.size(), num_fields, seg.num_columns()});
      for (size_t c = 0; c < zone_cols; ++c) {
        const ColumnZone& col_zone = zone.columns[c];
        if (!col_zone.tracked) continue;
        const size_t cells = std::min(seg.column_size(c), walkable);
        for (size_t off = 0; off < cells; ++off) {
          if (seg.IsColumnNull(off, c)) continue;
          const Value cell = seg.GetValue(off, c);
          if (!IsNumeric(cell.type())) break;  // column-type flags this
          const double v = cell.ToDouble().value();
          const bool covered = std::isnan(v)
                                   ? col_zone.has_nan
                                   : col_zone.has_value() &&
                                         v >= col_zone.min &&
                                         v <= col_zone.max;
          if (!covered) {
            out.Add(Make("zone-map-bounds", name,
                         "cell value " + FormatDouble(v, 6) +
                             " escapes column zone [" +
                             FormatDouble(col_zone.min, 6) + ", " +
                             FormatDouble(col_zone.max, 6) + "]" +
                             (col_zone.has_nan ? " (+NaN)" : ""),
                         static_cast<int64_t>(s), sno,
                         static_cast<int64_t>(seg.first_row() + off),
                         static_cast<int64_t>(c)));
            break;  // one violation per column per segment is enough
          }
        }
      }
      shard_live_from_segments += seg.live_count();
    }
    // shard-live-count: the shard counter matches its segments.
    if (shard.live_rows() != shard_live_from_segments) {
      out.Add(Make("shard-live-count", name,
                   "shard live_rows " + std::to_string(shard.live_rows()) +
                       " but segments hold " +
                       std::to_string(shard_live_from_segments) +
                       " live rows",
                   static_cast<int64_t>(s)));
    }
    counted_live_total += shard.live_rows();
  }

  // routing-index (reverse): every index entry is owned by the shard
  // the round-robin rule assigns it to, with pointer identity.
  for (const auto& [seg_no, seg_ptr] : table.segment_index()) {
    const size_t home = seg_no % num_shards;
    const auto& home_segments = table.shard(home).segments();
    auto it = home_segments.find(seg_no);
    if (it == home_segments.end() || it->second.get() != seg_ptr) {
      out.Add(Make("routing-index", name,
                   it == home_segments.end()
                       ? "indexed segment is absent from its home shard " +
                             std::to_string(home)
                       : "home shard owns a different segment object",
                   static_cast<int64_t>(home),
                   static_cast<int64_t>(seg_no)));
    }
  }
  if (table.segment_index().size() != counted_segments) {
    out.Add(Make("routing-index", name,
                 "index has " +
                     std::to_string(table.segment_index().size()) +
                     " entries but shards own " +
                     std::to_string(counted_segments) + " segments"));
  }

  // full-before-tail: only the newest surviving segment may be
  // partially filled — earlier ones were full before a later one
  // started, and partial segments are never reclaimed.
  if (!table.segment_index().empty()) {
    const uint64_t max_seg_no = table.segment_index().rbegin()->first;
    for (const auto& [seg_no, seg] : table.segment_index()) {
      if (seg_no != max_seg_no && !seg->full()) {
        out.Add(Make("full-before-tail", name,
                     "non-tail segment holds " +
                         std::to_string(seg->num_rows()) + "/" +
                         std::to_string(seg->capacity()) + " rows",
                     static_cast<int64_t>(seg_no % num_shards),
                     static_cast<int64_t>(seg_no)));
      }
    }
  }

  // time-ordering (across segments): the time axis is monotone over
  // segment numbers.
  Timestamp prev_last_ts = 0;
  bool have_prev = false;
  for (const auto& [seg_no, seg] : table.segment_index()) {
    if (seg->num_rows() == 0) continue;
    const Timestamp first_ts = seg->InsertTime(0);
    if (have_prev && first_ts < prev_last_ts) {
      out.Add(Make("time-ordering", name,
                   "segment starts at t=" + std::to_string(first_ts) +
                       " before previous segment's last t=" +
                       std::to_string(prev_last_ts),
                   static_cast<int64_t>(seg_no % num_shards),
                   static_cast<int64_t>(seg_no)));
    }
    prev_last_ts = seg->InsertTime(seg->num_rows() - 1);
    have_prev = true;
  }

  // row-accounting: every appended row is live or killed, exactly once.
  uint64_t killed_total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    killed_total += table.shard(s).rows_killed();
  }
  if (counted_live_total + killed_total != total_appended) {
    out.Add(Make("row-accounting", name,
                 "live " + std::to_string(counted_live_total) +
                     " + killed " + std::to_string(killed_total) +
                     " != appended " + std::to_string(total_appended)));
  }

  // live-iteration: ForEachLive yields exactly the live rows, in
  // strictly increasing RowId order — dead rows are excluded from
  // every live index.
  uint64_t iterated = 0;
  std::optional<RowId> first_live;
  std::optional<RowId> last_live;
  bool order_ok = true;
  table.ForEachLive([&](RowId row) {
    ++iterated;
    if (!first_live.has_value()) first_live = row;
    if (last_live.has_value() && row <= *last_live) order_ok = false;
    last_live = row;
    if (!table.IsLive(row)) {
      out.Add(Make("live-iteration", name,
                   "iteration yielded a row that IsLive() rejects", -1,
                   static_cast<int64_t>(row / rows_per_segment),
                   static_cast<int64_t>(row)));
    }
  });
  if (!order_ok) {
    out.Add(Make("live-iteration", name,
                 "live iteration is not strictly increasing"));
  }
  if (iterated != table.live_rows()) {
    out.Add(Make("live-iteration", name,
                 "iteration yielded " + std::to_string(iterated) +
                     " rows but live_rows() reports " +
                     std::to_string(table.live_rows())));
  }
  // oldest-newest: the navigation endpoints agree with iteration.
  if (table.OldestLive() != first_live || table.NewestLive() != last_live) {
    out.Add(Make("oldest-newest", name,
                 "OldestLive()/NewestLive() disagree with live iteration"));
  }

  return report;
}

Report InvariantChecker::CheckCellar(const Cellar& cellar) const {
  Report report;
  Collector out(&report, options_.max_violations);
  for (const Cellar::EntryInfo& e : cellar.List()) {
    if (!(e.freshness > 0.0) || e.freshness > 1.0) {
      out.Add(Make("cellar-freshness", "<cellar:" + e.name + ">",
                   "summary freshness " + FormatDouble(e.freshness, 6) +
                       " outside (0, 1]"));
    }
  }
  return report;
}

}  // namespace fungusdb::verify
