#ifndef FUNGUSDB_VERIFY_CORRUPTOR_H_
#define FUNGUSDB_VERIFY_CORRUPTOR_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace fungusdb {

/// Deliberately breaks storage invariants, bypassing every guard the
/// normal mutators enforce. This is the seeder behind the fsck test
/// fixtures and `funguscheck` demos: each method plants exactly the
/// corruption one invariant-checker rule exists to catch, so tests can
/// assert detection with precise coordinates. Friend of Table, Shard
/// and Segment; never use it outside tests and verification tooling.
class TestCorruptor {
 public:
  /// Writes `raw` straight into the freshness vector of a live row —
  /// no clamping, no kill at zero. Caught by `freshness-range`.
  static Status CorruptFreshness(Table& table, RowId row, double raw);

  /// Flips a dead row's alive flag back on, leaving its freshness at 0
  /// and all counters stale. Caught by `resurrected-row` (row-precise)
  /// plus the live-count accounting rules.
  static Status ResurrectRow(Table& table, RowId row);

  /// Moves a segment out of its round-robin home shard into the next
  /// shard. Requires num_shards > 1. Caught by `shard-round-robin` and
  /// `routing-index`.
  static Status MisassignSegment(Table& table, uint64_t seg_no);

  /// Appends a phantom null cell to one user column so its length no
  /// longer matches the segment's row count. Caught by `column-length`.
  static Status OverfillColumn(Table& table, uint64_t seg_no, size_t col);

  /// Stales the segment's zone map: narrows the insertion-time bounds
  /// past the stored rows so the pruning planner would wrongly skip the
  /// segment. Requires a non-empty segment. Caught by `zone-map-bounds`.
  static Status StaleZoneMap(Table& table, uint64_t seg_no);

  /// Flips a low bit of a frozen segment's encoded timestamp block
  /// (the packed words, or the frame base when the span packs to zero
  /// width) without refreshing the block checksum — the in-memory
  /// image no longer hashes to what freeze recorded. Requires a frozen
  /// segment. Caught by `encoded-segment` (checksum arm).
  static Status CorruptFrozenChecksum(Table& table, uint64_t seg_no);

  /// Rewrites the first dictionary-code run of a frozen string column
  /// to a code one past the dictionary, then refreshes the checksum so
  /// only the range violation remains. Requires a frozen segment and a
  /// string column at `col`. Caught by `encoded-segment` (dictionary
  /// arm).
  static Status CorruptFrozenDictionaryCode(Table& table, uint64_t seg_no,
                                            size_t col);

  /// Folds a pending decrement large enough to drive the segment's
  /// effective freshness floor below zero — the deferred death a
  /// correct fold can never produce — and stamps a decay epoch ahead
  /// of the shard's tick counter. Requires a live row in the segment.
  /// Caught by `decay-epoch` (both the epoch-ordering and the
  /// deferred-death arm).
  static Status CorruptPendingDecay(Table& table, uint64_t seg_no);
};

}  // namespace fungusdb

#endif  // FUNGUSDB_VERIFY_CORRUPTOR_H_
