#include "verify/corruptor.h"

#include <utility>

namespace fungusdb {
namespace {

Status NoSuchRow(RowId row) {
  return Status::NotFound("row " + std::to_string(row) + " not present");
}

Status NoSuchSegment(uint64_t seg_no) {
  return Status::NotFound("segment " + std::to_string(seg_no) +
                          " not present");
}

}  // namespace

Status TestCorruptor::CorruptFreshness(Table& table, RowId row,
                                       double raw) {
  size_t off;
  Segment* seg = table.FindSegment(row, &off);
  if (seg == nullptr) return NoSuchRow(row);
  if (!seg->IsLive(off)) {
    return Status::FailedPrecondition(
        "row " + std::to_string(row) + " is dead; corrupt a live one");
  }
  if (seg->is_frozen()) {
    return Status::FailedPrecondition(
        "row " + std::to_string(row) +
        " is frozen; this seeder writes the plain freshness vector");
  }
  seg->freshness_[off] = raw;
  return Status::OK();
}

Status TestCorruptor::ResurrectRow(Table& table, RowId row) {
  size_t off;
  Segment* seg = table.FindSegment(row, &off);
  if (seg == nullptr) return NoSuchRow(row);
  if (seg->IsLive(off)) {
    return Status::FailedPrecondition(
        "row " + std::to_string(row) + " is live; resurrect a dead one");
  }
  if (seg->is_frozen()) {
    return Status::FailedPrecondition(
        "row " + std::to_string(row) +
        " is frozen; this seeder writes the plain alive vector");
  }
  seg->alive_[off] = 1;  // freshness stays 0, counters stay stale
  return Status::OK();
}

Status TestCorruptor::MisassignSegment(Table& table, uint64_t seg_no) {
  if (table.num_shards() < 2) {
    return Status::FailedPrecondition(
        "misassignment needs num_shards > 1");
  }
  Shard& home = table.shards_[seg_no % table.num_shards()];
  auto it = home.segments_.find(seg_no);
  if (it == home.segments_.end()) return NoSuchSegment(seg_no);
  Shard& wrong = table.shards_[(seg_no + 1) % table.num_shards()];
  wrong.segments_.emplace(seg_no, std::move(it->second));
  home.segments_.erase(it);
  // The routing index still points at the same Segment object (its
  // address did not change), exactly like a bookkeeping bug would
  // leave it.
  return Status::OK();
}

Status TestCorruptor::OverfillColumn(Table& table, uint64_t seg_no,
                                     size_t col) {
  auto it = table.segment_index_.find(seg_no);
  if (it == table.segment_index_.end()) return NoSuchSegment(seg_no);
  Segment& seg = *it->second;
  if (col >= seg.columns_.size()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  seg.columns_[col]->Append(Value::Null());
  return Status::OK();
}

Status TestCorruptor::StaleZoneMap(Table& table, uint64_t seg_no) {
  auto it = table.segment_index_.find(seg_no);
  if (it == table.segment_index_.end()) return NoSuchSegment(seg_no);
  Segment& seg = *it->second;
  if (seg.num_rows() == 0) {
    return Status::FailedPrecondition(
        "segment " + std::to_string(seg_no) +
        " is empty; stale a populated one");
  }
  // Shrink the ts interval past every stored row — the exact staleness
  // a missed widening (or a buggy recount) would leave behind.
  seg.zone_map_.min_ts = seg.InsertTime(0) + 1;
  seg.zone_map_.max_ts = seg.InsertTime(0);
  return Status::OK();
}

Status TestCorruptor::CorruptFrozenChecksum(Table& table, uint64_t seg_no) {
  auto it = table.segment_index_.find(seg_no);
  if (it == table.segment_index_.end()) return NoSuchSegment(seg_no);
  Segment& seg = *it->second;
  if (!seg.is_frozen()) {
    return Status::FailedPrecondition(
        "segment " + std::to_string(seg_no) +
        " is not frozen; corrupt a frozen one");
  }
  encode::FrozenSegment& fz = *seg.frozen_;
  // Flip one bit of the encoded payload, deliberately leaving
  // fz.checksum at the value freeze recorded — the precise signature
  // of a block rotting in memory (or a buggy in-place rewrite that
  // forgot to rehash).
  if (!fz.ts.words.empty()) {
    fz.ts.words[0] ^= 1;
  } else {
    fz.ts.base ^= 1;
  }
  return Status::OK();
}

Status TestCorruptor::CorruptFrozenDictionaryCode(Table& table,
                                                  uint64_t seg_no,
                                                  size_t col) {
  auto it = table.segment_index_.find(seg_no);
  if (it == table.segment_index_.end()) return NoSuchSegment(seg_no);
  Segment& seg = *it->second;
  if (!seg.is_frozen()) {
    return Status::FailedPrecondition(
        "segment " + std::to_string(seg_no) +
        " is not frozen; corrupt a frozen one");
  }
  encode::FrozenSegment& fz = *seg.frozen_;
  if (col >= fz.columns.size()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  encode::FrozenColumn& fc = fz.columns[col];
  if (fc.type != DataType::kString) {
    return Status::FailedPrecondition(
        "column " + std::to_string(col) +
        " is not a string column; dictionary codes live only there");
  }
  if (fc.strings.codes.values.empty()) {
    return Status::FailedPrecondition(
        "column " + std::to_string(col) + " has no encoded rows");
  }
  fc.strings.codes.values[0] =
      static_cast<uint32_t>(fc.strings.dict.size());
  // Rehash so the checksum arm stays quiet and the fsck violation
  // pinpoints the dictionary-range breach alone.
  fz.checksum = fz.ComputeChecksum();
  return Status::OK();
}

Status TestCorruptor::CorruptPendingDecay(Table& table, uint64_t seg_no) {
  auto it = table.segment_index_.find(seg_no);
  if (it == table.segment_index_.end()) return NoSuchSegment(seg_no);
  Segment& seg = *it->second;
  if (seg.live_count() == 0) {
    return Status::FailedPrecondition(
        "segment " + std::to_string(seg_no) +
        " has no live rows; corrupt a live one");
  }
  // A decrement of 2.0 exceeds any legal freshness, so the effective
  // floor goes negative — the fold predicate would have refused it.
  seg.pending_decay_.push_back(2.0);
  const Shard& shard = table.shard(seg_no % table.num_shards());
  seg.decay_epoch_ = shard.decay_epoch() + 1;
  return Status::OK();
}

}  // namespace fungusdb
