#include "storage/encode/frozen.h"

namespace fungusdb::encode {
namespace {

constexpr uint64_t kMaxRows = uint64_t{1} << 26;  // snapshot bound

/// Positions encoded as value 0 in a 0/1 RLE vector.
uint64_t CountZeros(const RleBytes& rle) {
  uint64_t zeros = 0;
  uint64_t prev = 0;
  for (size_t i = 0; i < rle.values.size(); ++i) {
    if (rle.values[i] == 0) zeros += rle.ends[i] - prev;
    prev = rle.ends[i];
  }
  return zeros;
}

Status ValidateBitRuns(const RleBytes& rle, uint64_t num_rows,
                       const char* what) {
  if (rle.count() != num_rows) {
    return Status::ParseError(std::string(what) + ": length mismatch");
  }
  for (const uint8_t v : rle.values) {
    if (v > 1) {
      return Status::ParseError(std::string(what) + ": non-bit run value");
    }
  }
  return Status::OK();
}

}  // namespace

size_t FrozenColumn::MemoryUsage() const {
  size_t bytes = sizeof(FrozenColumn) + validity.MemoryUsage();
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      bytes += ints.MemoryUsage();
      break;
    case DataType::kFloat64:
      bytes += doubles.capacity() * sizeof(double);
      break;
    case DataType::kString:
      bytes += strings.MemoryUsage();
      break;
    case DataType::kBool:
      bytes += bools.MemoryUsage();
      break;
  }
  return bytes;
}

void FrozenColumn::Serialize(BufferWriter& out) const {
  out.WriteU8(static_cast<uint8_t>(type));
  out.WriteU64(null_count);
  out.WriteU64(plain_bytes);
  SerializeRleBytes(validity, out);
  switch (type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      ints.Serialize(out);
      break;
    case DataType::kFloat64:
      out.WriteU64(doubles.size());
      for (const double v : doubles) out.WriteDouble(v);
      break;
    case DataType::kString:
      strings.Serialize(out);
      break;
    case DataType::kBool:
      SerializeRleBytes(bools, out);
      break;
  }
}

Result<FrozenColumn> FrozenColumn::Deserialize(BufferReader& in,
                                               uint64_t num_rows) {
  FrozenColumn col;
  FUNGUSDB_ASSIGN_OR_RETURN(uint8_t tag, in.ReadU8());
  if (tag > static_cast<uint8_t>(DataType::kTimestamp)) {
    return Status::ParseError("frozen column: unknown type tag");
  }
  col.type = static_cast<DataType>(tag);
  FUNGUSDB_ASSIGN_OR_RETURN(col.null_count, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(col.plain_bytes, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(col.validity, DeserializeRleBytes(in));
  FUNGUSDB_RETURN_IF_ERROR(
      ValidateBitRuns(col.validity, num_rows, "frozen column validity"));
  if (col.null_count != CountZeros(col.validity)) {
    return Status::ParseError("frozen column: null count mismatch");
  }
  uint64_t payload_rows = 0;
  switch (col.type) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      FUNGUSDB_ASSIGN_OR_RETURN(col.ints, PackedInts::Deserialize(in));
      payload_rows = col.ints.count;
      break;
    }
    case DataType::kFloat64: {
      FUNGUSDB_ASSIGN_OR_RETURN(uint64_t n, in.ReadU64());
      if (n > kMaxRows) {
        return Status::ParseError("frozen column: implausible length");
      }
      col.doubles.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        FUNGUSDB_ASSIGN_OR_RETURN(double v, in.ReadDouble());
        col.doubles.push_back(v);
      }
      payload_rows = n;
      break;
    }
    case DataType::kString: {
      FUNGUSDB_ASSIGN_OR_RETURN(col.strings, DictStrings::Deserialize(in));
      payload_rows = col.strings.count();
      break;
    }
    case DataType::kBool: {
      FUNGUSDB_ASSIGN_OR_RETURN(col.bools, DeserializeRleBytes(in));
      for (const uint8_t v : col.bools.values) {
        if (v > 1) {
          return Status::ParseError("frozen column: non-bit bool run");
        }
      }
      payload_rows = col.bools.count();
      break;
    }
  }
  if (payload_rows != num_rows) {
    return Status::ParseError("frozen column: payload length mismatch");
  }
  return col;
}

size_t FrozenSegment::MemoryUsage() const {
  size_t bytes = sizeof(FrozenSegment) + ts.MemoryUsage() +
                 alive.MemoryUsage() +
                 freshness_raw.capacity() * sizeof(double);
  for (const FrozenColumn& col : columns) bytes += col.MemoryUsage();
  return bytes;
}

void FrozenSegment::Serialize(BufferWriter& out) const {
  out.WriteU64(num_rows);
  out.WriteU64(plain_bytes);
  ts.Serialize(out);
  out.WriteBool(uniform_freshness);
  if (uniform_freshness) {
    out.WriteDouble(uniform_value);
  } else {
    out.WriteU64(freshness_raw.size());
    for (const double f : freshness_raw) out.WriteDouble(f);
  }
  SerializeRleBytes(alive, out);
  out.WriteU64(columns.size());
  for (const FrozenColumn& col : columns) col.Serialize(out);
}

Result<FrozenSegment> FrozenSegment::Deserialize(BufferReader& in) {
  FrozenSegment seg;
  FUNGUSDB_ASSIGN_OR_RETURN(seg.num_rows, in.ReadU64());
  if (seg.num_rows == 0 || seg.num_rows > kMaxRows) {
    return Status::ParseError("frozen segment: implausible row count");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(seg.plain_bytes, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(seg.ts, PackedInts::Deserialize(in));
  if (seg.ts.count != seg.num_rows) {
    return Status::ParseError("frozen segment: ts length mismatch");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(seg.uniform_freshness, in.ReadBool());
  if (seg.uniform_freshness) {
    FUNGUSDB_ASSIGN_OR_RETURN(seg.uniform_value, in.ReadDouble());
  } else {
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t n, in.ReadU64());
    if (n != seg.num_rows) {
      return Status::ParseError("frozen segment: freshness length mismatch");
    }
    seg.freshness_raw.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      FUNGUSDB_ASSIGN_OR_RETURN(double f, in.ReadDouble());
      seg.freshness_raw.push_back(f);
    }
  }
  FUNGUSDB_ASSIGN_OR_RETURN(seg.alive, DeserializeRleBytes(in));
  FUNGUSDB_RETURN_IF_ERROR(
      ValidateBitRuns(seg.alive, seg.num_rows, "frozen segment alive"));
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_columns, in.ReadU64());
  if (num_columns > 4096) {
    return Status::ParseError("frozen segment: implausible column count");
  }
  seg.columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    FUNGUSDB_ASSIGN_OR_RETURN(FrozenColumn col,
                              FrozenColumn::Deserialize(in, seg.num_rows));
    seg.columns.push_back(std::move(col));
  }
  seg.checksum = seg.ComputeChecksum();
  return seg;
}

uint32_t FrozenSegment::ComputeChecksum() const {
  BufferWriter payload;
  Serialize(payload);
  return Crc32(payload.buffer());
}

}  // namespace fungusdb::encode
