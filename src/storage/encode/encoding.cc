#include "storage/encode/encoding.h"

#include <algorithm>
#include <array>
#include <unordered_map>

namespace fungusdb::encode {
namespace {

/// Standard CRC-32 (reflected polynomial 0xEDB88320), table generated
/// once at first use — no external zlib dependency.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t n = 0; n < 256; ++n) {
      uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table;
}

/// Rows-per-segment is capped at 1 << 26 by the snapshot validators;
/// encoded spans inherit the same plausibility bound.
constexpr uint64_t kMaxCount = uint64_t{1} << 26;

uint32_t BitsFor(uint64_t v) {
  uint32_t bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  const std::array<uint32_t, 256>& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

PackedInts PackedInts::Pack(const int64_t* data, size_t n) {
  PackedInts out;
  out.count = n;
  if (n == 0) return out;
  int64_t lo = data[0];
  for (size_t i = 1; i < n; ++i) lo = std::min(lo, data[i]);
  out.base = lo;
  uint64_t max_delta = 0;
  for (size_t i = 0; i < n; ++i) {
    // Wrapping subtraction in unsigned space is exact for two's
    // complement: delta = data[i] - lo fits uint64 for any int64 pair.
    const uint64_t delta =
        static_cast<uint64_t>(data[i]) - static_cast<uint64_t>(lo);
    max_delta = std::max(max_delta, delta);
  }
  out.max_delta = max_delta;
  out.bit_width = BitsFor(max_delta);
  if (out.bit_width == 0) return out;  // all values equal base
  out.words.assign(WordsFor(n, out.bit_width), 0);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t delta =
        static_cast<uint64_t>(data[i]) - static_cast<uint64_t>(lo);
    const size_t bit = i * out.bit_width;
    const size_t word = bit >> 6;
    const size_t shift = bit & 63;
    out.words[word] |= delta << shift;
    if (shift + out.bit_width > 64) {
      out.words[word + 1] |= delta >> (64 - shift);
    }
  }
  return out;
}

void PackedInts::Serialize(BufferWriter& out) const {
  out.WriteI64(base);
  out.WriteU32(bit_width);
  out.WriteU64(count);
  out.WriteU64(max_delta);
  out.WriteU64(words.size());
  for (const uint64_t w : words) out.WriteU64(w);
}

Result<PackedInts> PackedInts::Deserialize(BufferReader& in) {
  PackedInts out;
  FUNGUSDB_ASSIGN_OR_RETURN(out.base, in.ReadI64());
  FUNGUSDB_ASSIGN_OR_RETURN(out.bit_width, in.ReadU32());
  FUNGUSDB_ASSIGN_OR_RETURN(out.count, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(out.max_delta, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_words, in.ReadU64());
  if (out.bit_width > 64) {
    return Status::ParseError("packed ints: bit width over 64");
  }
  if (out.count > kMaxCount) {
    return Status::ParseError("packed ints: implausible count");
  }
  if (out.bit_width < 64 && (out.max_delta >> out.bit_width) != 0) {
    return Status::ParseError("packed ints: max delta exceeds bit width");
  }
  if (num_words != WordsFor(out.count, out.bit_width)) {
    return Status::ParseError("packed ints: word count mismatch");
  }
  out.words.reserve(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t w, in.ReadU64());
    out.words.push_back(w);
  }
  return out;
}

namespace {

template <typename V, typename WriteFn>
void SerializeRle(const RleRuns<V>& rle, BufferWriter& out,
                  WriteFn&& write_value) {
  out.WriteU64(rle.values.size());
  for (size_t i = 0; i < rle.values.size(); ++i) {
    write_value(rle.values[i]);
    out.WriteU64(rle.ends[i]);
  }
}

template <typename V, typename ReadFn>
Result<RleRuns<V>> DeserializeRle(BufferReader& in, ReadFn&& read_value) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t runs, in.ReadU64());
  if (runs > kMaxCount) {
    return Status::ParseError("rle: implausible run count");
  }
  RleRuns<V> out;
  out.values.reserve(runs);
  out.ends.reserve(runs);
  uint64_t prev_end = 0;
  for (uint64_t i = 0; i < runs; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(V value, read_value());
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t end, in.ReadU64());
    if (end <= prev_end || end > kMaxCount) {
      return Status::ParseError("rle: run ends not strictly ascending");
    }
    // Adjacent runs with equal values would be a non-canonical encoding:
    // Pack never emits them, and canonical bytes are what the per-block
    // checksum covers.
    if (i > 0 && out.values.back() == value) {
      return Status::ParseError("rle: adjacent runs share a value");
    }
    out.values.push_back(value);
    out.ends.push_back(end);
    prev_end = end;
  }
  return out;
}

}  // namespace

void SerializeRleBytes(const RleBytes& rle, BufferWriter& out) {
  SerializeRle(rle, out, [&](uint8_t v) { out.WriteU8(v); });
}

Result<RleBytes> DeserializeRleBytes(BufferReader& in) {
  return DeserializeRle<uint8_t>(in, [&] { return in.ReadU8(); });
}

void SerializeRleCodes(const RleCodes& rle, BufferWriter& out) {
  SerializeRle(rle, out, [&](uint32_t v) { out.WriteU32(v); });
}

Result<RleCodes> DeserializeRleCodes(BufferReader& in) {
  return DeserializeRle<uint32_t>(in, [&] { return in.ReadU32(); });
}

DictStrings DictStrings::Pack(const std::vector<std::string>& data) {
  DictStrings out;
  std::unordered_map<std::string, uint32_t> index;
  std::vector<uint32_t> stream;
  stream.reserve(data.size());
  for (const std::string& s : data) {
    auto [it, inserted] =
        index.emplace(s, static_cast<uint32_t>(out.dict.size()));
    if (inserted) out.dict.push_back(s);
    stream.push_back(it->second);
  }
  out.codes = RleCodes::Pack(stream.data(), stream.size());
  return out;
}

void DictStrings::Serialize(BufferWriter& out) const {
  out.WriteU64(dict.size());
  for (const std::string& s : dict) out.WriteString(s);
  SerializeRleCodes(codes, out);
}

Result<DictStrings> DictStrings::Deserialize(BufferReader& in) {
  DictStrings out;
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t dict_size, in.ReadU64());
  if (dict_size > kMaxCount) {
    return Status::ParseError("dict: implausible dictionary size");
  }
  out.dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string s, in.ReadString());
    out.dict.push_back(std::move(s));
  }
  FUNGUSDB_ASSIGN_OR_RETURN(out.codes, DeserializeRleCodes(in));
  for (const uint32_t code : out.codes.values) {
    if (code >= out.dict.size()) {
      return Status::ParseError("dict: code out of dictionary range");
    }
  }
  return out;
}

}  // namespace fungusdb::encode
