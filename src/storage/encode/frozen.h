#ifndef FUNGUSDB_STORAGE_ENCODE_FROZEN_H_
#define FUNGUSDB_STORAGE_ENCODE_FROZEN_H_

#include <cstdint>
#include <vector>

#include "common/buffer_io.h"
#include "common/result.h"
#include "storage/datatype.h"
#include "storage/encode/encoding.h"

namespace fungusdb::encode {

/// One user column of a frozen segment: a validity bitmap (RLE) plus a
/// type-specific payload holding the raw cell values — including the
/// `T{}` slots null cells store in the plain representation, so a thaw
/// reproduces the plain column bit for bit.
struct FrozenColumn {
  DataType type = DataType::kInt64;
  uint64_t null_count = 0;
  RleBytes validity;  // 1 = valid cell, 0 = null

  // Exactly one payload is populated, selected by `type`.
  PackedInts ints;              // kInt64 / kTimestamp: FOR + bit-packing
  std::vector<double> doubles;  // kFloat64: raw passthrough
  DictStrings strings;          // kString: dictionary + RLE codes
  RleBytes bools;               // kBool: RLE

  /// Heap bytes the plain TypedColumn held at freeze time — the
  /// numerator of the per-column compression ratio bench_t1 reports.
  uint64_t plain_bytes = 0;

  bool IsNull(size_t off) const { return validity.Get(off) == 0; }

  size_t MemoryUsage() const;
  void Serialize(BufferWriter& out) const;
  static Result<FrozenColumn> Deserialize(BufferReader& in,
                                          uint64_t num_rows);
};

/// The compact cold-tier image of a full segment (DESIGN.md §15):
/// FOR-packed insertion timestamps, a uniform-value fast path for the
/// freshness vector (lazy decay keeps cold segments' live freshness
/// uniform), RLE liveness, and one FrozenColumn per user column. The
/// canonical `Serialize` byte stream doubles as the snapshot-v3 block
/// payload; `checksum` is its CRC-32, re-derived by the
/// `encoded-segment` fsck rule to catch in-memory corruption.
struct FrozenSegment {
  uint64_t num_rows = 0;
  PackedInts ts;

  /// Every live row stores the same freshness (`uniform_value`); dead
  /// rows store exactly 0.0 by the storage invariant, so liveness alone
  /// reconstructs the vector. When the segment's live freshness is not
  /// uniform, `freshness_raw` keeps the full vector instead.
  bool uniform_freshness = true;
  double uniform_value = 0.0;
  std::vector<double> freshness_raw;  // empty when uniform

  RleBytes alive;  // 1 = live
  std::vector<FrozenColumn> columns;

  /// Total heap bytes of the plain representation at freeze time.
  uint64_t plain_bytes = 0;

  /// CRC-32 of the canonical Serialize() bytes. Maintained in memory
  /// (recomputed when pending decay materializes in place); not part of
  /// the serialized payload itself.
  uint32_t checksum = 0;

  bool IsLive(size_t off) const { return alive.Get(off) != 0; }

  double StoredFreshness(size_t off) const {
    if (alive.Get(off) == 0) return 0.0;
    return uniform_freshness ? uniform_value : freshness_raw[off];
  }

  size_t MemoryUsage() const;

  /// Canonical payload bytes (checksum excluded).
  void Serialize(BufferWriter& out) const;
  static Result<FrozenSegment> Deserialize(BufferReader& in);

  /// CRC-32 of the current canonical payload.
  uint32_t ComputeChecksum() const;
};

}  // namespace fungusdb::encode

#endif  // FUNGUSDB_STORAGE_ENCODE_FROZEN_H_
