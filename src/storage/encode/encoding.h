#ifndef FUNGUSDB_STORAGE_ENCODE_ENCODING_H_
#define FUNGUSDB_STORAGE_ENCODE_ENCODING_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer_io.h"
#include "common/result.h"

/// Cold-tier encodings for frozen segments (DESIGN.md §15). Every codec
/// here is lossless and position-addressable: `Get(i)` reproduces the
/// exact bits the plain vector held, so a freeze/thaw round trip is
/// observationally invisible. Serialization goes through
/// BufferWriter/BufferReader (bounds-checked, no raw framing) and doubles
/// as the snapshot-v3 block format.
namespace fungusdb::encode {

/// CRC-32 (IEEE 802.3, reflected) over a byte span. Used as the
/// per-block integrity checksum for encoded segments, both in memory
/// (the `encoded-segment` fsck rule re-derives it) and on disk
/// (snapshot v3 verifies each block before decoding).
uint32_t Crc32(const uint8_t* data, size_t len);

inline uint32_t Crc32(const std::string& bytes) {
  return Crc32(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
}

/// Frame-of-reference + bit-packing for int64 spans (`__ts`, int64 and
/// timestamp columns): stores `min` once and each value's delta from it
/// in exactly `bit_width` bits, little-endian within 64-bit words.
/// Random access is O(1) — a delta spans at most two words.
struct PackedInts {
  int64_t base = 0;
  uint32_t bit_width = 0;  // bits per delta, 0 when all values equal base
  uint64_t count = 0;
  uint64_t max_delta = 0;  // largest stored delta; must fit bit_width
  std::vector<uint64_t> words;

  static PackedInts Pack(const int64_t* data, size_t n);

  int64_t Get(size_t i) const {
    assert(i < count);
    if (bit_width == 0) return base;
    const size_t bit = i * bit_width;
    const size_t word = bit >> 6;
    const size_t shift = bit & 63;
    uint64_t delta = words[word] >> shift;
    if (shift + bit_width > 64) {
      delta |= words[word + 1] << (64 - shift);
    }
    if (bit_width < 64) delta &= (uint64_t{1} << bit_width) - 1;
    return static_cast<int64_t>(static_cast<uint64_t>(base) + delta);
  }

  void Decode(size_t begin, size_t n, int64_t* out) const {
    assert(begin + n <= count);
    for (size_t i = 0; i < n; ++i) out[i] = Get(begin + i);
  }

  void Serialize(BufferWriter& out) const;
  static Result<PackedInts> Deserialize(BufferReader& in);

  size_t MemoryUsage() const {
    return words.capacity() * sizeof(uint64_t) + sizeof(PackedInts);
  }

  /// Words a well-formed encoding of `count` deltas occupies.
  static uint64_t WordsFor(uint64_t count, uint32_t bit_width) {
    return (count * bit_width + 63) / 64;
  }
};

/// Run-length encoding over a value type with O(log runs) random access
/// via cumulative run ends. The workhorse for the liveness vector,
/// validity bitmaps, bool columns (V = uint8_t) and dictionary code
/// streams (V = uint32_t) — all of which are long constant runs on cold
/// data.
template <typename V>
struct RleRuns {
  std::vector<V> values;       // one entry per run
  std::vector<uint64_t> ends;  // cumulative exclusive ends, ascending

  uint64_t count() const { return ends.empty() ? 0 : ends.back(); }
  size_t num_runs() const { return values.size(); }

  static RleRuns Pack(const V* data, size_t n) {
    RleRuns out;
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && data[j] == data[i]) ++j;
      out.values.push_back(data[i]);
      out.ends.push_back(j);
      i = j;
    }
    return out;
  }

  /// Index of the run containing position `i`.
  size_t RunOf(size_t i) const {
    assert(i < count());
    size_t lo = 0;
    size_t hi = ends.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (ends[mid] <= i) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  V Get(size_t i) const { return values[RunOf(i)]; }

  void Decode(size_t begin, size_t n, V* out) const {
    assert(begin + n <= count());
    size_t run = RunOf(begin);
    size_t pos = begin;
    size_t emitted = 0;
    while (emitted < n) {
      const size_t run_end = ends[run];
      while (pos < run_end && emitted < n) {
        out[emitted++] = values[run];
        ++pos;
      }
      ++run;
    }
  }

  /// True when any position in [begin, begin + n) holds a value other
  /// than V{} (e.g. any live row in an alive vector). O(runs touched).
  bool AnyNonZero(size_t begin, size_t n) const {
    if (n == 0) return false;
    assert(begin + n <= count());
    size_t run = RunOf(begin);
    const size_t limit = begin + n;
    size_t pos = begin;
    while (pos < limit) {
      if (values[run] != V{}) return true;
      pos = ends[run];
      ++run;
    }
    return false;
  }

  size_t MemoryUsage() const {
    return values.capacity() * sizeof(V) +
           ends.capacity() * sizeof(uint64_t) + sizeof(RleRuns);
  }
};

using RleBytes = RleRuns<uint8_t>;
using RleCodes = RleRuns<uint32_t>;

void SerializeRleBytes(const RleBytes& rle, BufferWriter& out);
Result<RleBytes> DeserializeRleBytes(BufferReader& in);
void SerializeRleCodes(const RleCodes& rle, BufferWriter& out);
Result<RleCodes> DeserializeRleCodes(BufferReader& in);

/// Dictionary + RLE for string columns: unique payloads in
/// first-appearance order, the per-row code stream run-length encoded.
/// Null rows store "" in the plain column (TypedColumn appends T{}), so
/// they simply code the "" dictionary entry — the validity bitmap, kept
/// by the enclosing column, is what distinguishes them.
struct DictStrings {
  std::vector<std::string> dict;
  RleCodes codes;

  static DictStrings Pack(const std::vector<std::string>& data);

  uint64_t count() const { return codes.count(); }

  const std::string& Get(size_t i) const { return dict[codes.Get(i)]; }

  /// Dictionary code of `needle`, if present. Lets predicates compare
  /// codes instead of decoded strings (the vector_eval dictionary
  /// kernel); absence decides the predicate for the whole segment.
  std::optional<uint32_t> CodeOf(const std::string& needle) const {
    for (size_t i = 0; i < dict.size(); ++i) {
      if (dict[i] == needle) return static_cast<uint32_t>(i);
    }
    return std::nullopt;
  }

  void Serialize(BufferWriter& out) const;
  static Result<DictStrings> Deserialize(BufferReader& in);

  size_t MemoryUsage() const {
    size_t bytes = sizeof(DictStrings) + codes.MemoryUsage();
    for (const std::string& s : dict) bytes += s.capacity() + sizeof(s);
    return bytes;
  }
};

}  // namespace fungusdb::encode

#endif  // FUNGUSDB_STORAGE_ENCODE_ENCODING_H_
