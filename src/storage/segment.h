#ifndef FUNGUSDB_STORAGE_SEGMENT_H_
#define FUNGUSDB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fungusdb {

/// Min/max bounds for one numeric user column of a segment, kept as
/// doubles (int64/timestamp convert monotonically, so double-space
/// bounds are always a superset of the values' double images — the
/// space every comparison path evaluates in).
struct ColumnZone {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Some non-null cell holds a NaN. NaN compares "equal" to everything
  /// under Value::Compare, so a NaN cell can satisfy =, <= and >=
  /// predicates that the min/max bounds would rule out.
  bool has_nan = false;
  /// False for non-numeric columns; their zones are never consulted.
  bool tracked = false;

  /// True when at least one non-null, non-NaN cell contributed.
  bool has_value() const { return min <= max; }
};

/// Per-segment statistics for scan pruning and tick skipping. Because a
/// segment is a contiguous insertion range, every time-range predicate
/// and freshness threshold maps to zone-map bounds that either rule the
/// whole segment out or leave it for the row-level scan.
///
/// Bound discipline (audited by the `zone-map-bounds` fsck rule):
///  * `min_ts`/`max_ts` cover every row ever appended — exact, since
///    insertion times never change.
///  * `min_f`/`max_f` cover every LIVE row's freshness — conservative:
///    widened eagerly on every freshness write, tightened only on
///    recount (RecomputeZoneMap) or trivially when the segment empties.
///  * `columns[c]` covers every non-null cell of numeric column c over
///    ALL rows, live and dead — attribute values never change, so the
///    bounds are exact over all rows and a superset over live ones.
struct ZoneMap {
  Timestamp min_ts = std::numeric_limits<Timestamp>::max();
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  double min_f = std::numeric_limits<double>::infinity();
  double max_f = -std::numeric_limits<double>::infinity();
  std::vector<ColumnZone> columns;

  bool has_rows() const { return min_ts <= max_ts; }
  bool has_live_freshness() const { return min_f <= max_f; }
};

/// A fixed-capacity, append-only run of consecutive tuples. Tuples are
/// stored in insertion order, so offset order *is* the paper's time axis.
/// Alongside the user columns each segment holds the two system vectors:
/// insertion timestamps (`t`) and freshness (`f`), plus a liveness flag
/// (freshness 0 == dead == tombstoned) and an optional access counter.
///
/// Segments are the unit of space reclamation: when every tuple in a full
/// segment has died, the Table frees the whole segment — the paper's
/// "removing complete insertion ranges". They are also the unit of scan
/// pruning: each segment maintains a ZoneMap the query engine and decay
/// planners consult to skip segments that cannot match.
///
/// Lazy decay (DESIGN.md §14): a decay tick that would subtract the
/// same delta from every live row of the segment can be *folded* into
/// `pending_decay_` instead of rewriting the freshness vector — an O(1)
/// metadata write. The stored freshness vector is then "as of
/// decay_epoch"; readers reconstruct the effective value by replaying
/// the pending deltas IN FOLD ORDER (`f - d1 - d2 - ...`), which makes
/// the reconstruction bit-identical to the eager per-row subtractions
/// it stands in for (floating-point subtraction is not associative, so
/// the order is part of the contract). Pending deltas are applied for
/// real — materialized — on the first mutating touch, on
/// RecomputeZoneMap, and before snapshot serialization, so the on-disk
/// format never sees them.
///
/// Visibility: none of this is internally synchronized. Decay ticks
/// tombstone rows, rewrite freshness vectors and free whole segments;
/// a concurrent reader iterating offsets mid-tick could see a zone map
/// disagreeing with its cells, or a dangling segment outright. The
/// epoch scheme (core/epoch.h) is what rules that out: writers mutate
/// only inside an exclusive write section, readers only under a pin,
/// and segment lifetime ends strictly inside a write section — so a
/// pinned reader can hold raw Segment pointers for the pin's duration.
class Segment {
 public:
  Segment(const Schema& schema, uint64_t first_row, size_t capacity,
          bool track_access);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint64_t first_row() const { return first_row_; }
  size_t capacity() const { return capacity_; }
  size_t num_rows() const { return ts_.size(); }
  bool full() const { return num_rows() == capacity_; }
  size_t live_count() const { return live_count_; }

  /// Appends an already-validated row with freshness 1.0.
  /// Requires !full().
  void Append(const std::vector<Value>& values, Timestamp now);

  bool IsLive(size_t off) const { return alive_[off] != 0; }

  /// Effective freshness: the stored value with every pending uniform
  /// decrement replayed in fold order. Equals the stored value exactly
  /// when nothing is pending (the common case); dead rows are always 0.
  double Freshness(size_t off) const {
    if (pending_decay_.empty() || alive_[off] == 0) {
      return freshness_[off];
    }
    double f = freshness_[off];
    for (const double d : pending_decay_) f -= d;
    return f;
  }

  /// Raw stored freshness, ignoring pending decay — verification and
  /// tests only; every consumer of row state wants Freshness().
  double stored_freshness(size_t off) const { return freshness_[off]; }

  /// Sets freshness; clamps into [0, 1] and kills the tuple at 0.
  /// A write equal to the current value is a no-op (decay ticks call
  /// this for every infected tuple; most writes repeat the old value
  /// when the clock did not advance). Returns true when this call
  /// killed the tuple. Requires no pending decay (the shard mutators
  /// materialize first).
  bool SetFreshness(size_t off, double f);

  /// Tombstones the tuple (idempotent). Returns true if it was live.
  bool Kill(size_t off);

  Timestamp InsertTime(size_t off) const { return ts_.at(off); }

  Value GetValue(size_t off, size_t col) const {
    return columns_[col]->GetValue(off);
  }

  const Column& column(size_t col) const { return *columns_[col]; }

  /// Zone map for pruning decisions. Bounds are conservative supersets
  /// (see ZoneMap); a stale bound is an invariant violation.
  const ZoneMap& zone_map() const { return zone_map_; }

  /// Recomputes the zone map exactly from the stored rows, tightening
  /// any bounds that lazy widening left loose. Materializes pending
  /// decay first (the recount must describe what rows actually hold).
  /// O(rows × columns).
  void RecomputeZoneMap();

  // --- Lazy decay (DESIGN.md §14). ---

  /// True when `delta` can be folded as a uniform decrement over every
  /// live row without changing observable state relative to the eager
  /// per-row path: there are live rows with a non-empty live-freshness
  /// interval, and even the stalest of them provably survives
  /// (effective min freshness stays strictly positive), so no death —
  /// and no death-observer or reclamation side effect — is deferred.
  bool CanFoldUniformDecay(double delta) const {
    return live_count_ > 0 && zone_map_.has_live_freshness() &&
           delta >= 0.0 && EffectiveMinFreshness() - delta > 0.0;
  }

  /// Folds a uniform decrement (caller proved CanFoldUniformDecay) and
  /// stamps the shard tick epoch it belongs to. O(1).
  void FoldUniformDecay(double delta, uint64_t epoch) {
    pending_decay_.push_back(delta);
    decay_epoch_ = epoch;
  }

  /// Applies every pending decrement to the rows, in fold order, and
  /// tightens the live-freshness zone bounds by the same replay. No row
  /// can die here (fold-time proof). Returns rows rewritten (0 when
  /// nothing was pending); stamps `epoch` as the segment's decay epoch.
  size_t MaterializePendingDecay(uint64_t epoch);

  bool has_pending_decay() const { return !pending_decay_.empty(); }

  /// Uniform decrements folded but not yet applied, in fold order.
  const std::vector<double>& pending_decay() const { return pending_decay_; }

  /// Shard tick epoch this segment is current through (last fold or
  /// materialization; 0 if never touched by a fold).
  uint64_t decay_epoch() const { return decay_epoch_; }

  /// Conservative live-freshness bounds in EFFECTIVE space: the stored
  /// zone bounds with pending deltas replayed in fold order (x ↦ x - d
  /// is weakly monotone, so the replayed bounds still cover every live
  /// row's effective freshness).
  double EffectiveMinFreshness() const {
    double v = zone_map_.min_f;
    for (const double d : pending_decay_) v -= d;
    return v;
  }
  double EffectiveMaxFreshness() const {
    double v = zone_map_.max_f;
    for (const double d : pending_decay_) v -= d;
    return v;
  }

  // --- Raw system-vector spans (vectorized scan kernels). ---

  const Timestamp* ts_data() const { return ts_.data(); }

  /// STORED freshness values — callers evaluating `__freshness` must
  /// replay pending_decay() on top (see VectorPredicate).
  const double* freshness_data() const { return freshness_.data(); }
  const uint8_t* alive_data() const { return alive_.data(); }

  void RecordAccess(size_t off);
  uint32_t AccessCount(size_t off) const;

  size_t MemoryUsage() const;

  // --- Verification accessors (invariant checker only). ---

  /// Raw system-vector lengths; each must equal num_rows(), and the
  /// access vector must be empty unless tracking is on.
  size_t freshness_vector_size() const { return freshness_.size(); }
  size_t alive_vector_size() const { return alive_.size(); }
  size_t access_vector_size() const { return access_.size(); }
  bool tracks_access() const { return track_access_; }

 private:
  // Seeds deliberate corruption for fsck tests (verify/corruptor.h).
  friend class TestCorruptor;

  uint64_t first_row_;
  size_t capacity_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<Timestamp> ts_;
  std::vector<double> freshness_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> access_;  // empty unless track_access
  bool track_access_;
  ZoneMap zone_map_;
  // Uniform per-tick decrements folded but not yet applied to rows, in
  // fold order (reconstruction replays them sequentially so it matches
  // the eager path bit for bit). Cleared by MaterializePendingDecay.
  std::vector<double> pending_decay_;
  uint64_t decay_epoch_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_SEGMENT_H_
