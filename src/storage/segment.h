#ifndef FUNGUSDB_STORAGE_SEGMENT_H_
#define FUNGUSDB_STORAGE_SEGMENT_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/column.h"
#include "storage/encode/frozen.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fungusdb {

/// Min/max bounds for one numeric user column of a segment, kept as
/// doubles (int64/timestamp convert monotonically, so double-space
/// bounds are always a superset of the values' double images — the
/// space every comparison path evaluates in).
struct ColumnZone {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  /// Some non-null cell holds a NaN. NaN compares "equal" to everything
  /// under Value::Compare, so a NaN cell can satisfy =, <= and >=
  /// predicates that the min/max bounds would rule out.
  bool has_nan = false;
  /// False for non-numeric columns; their zones are never consulted.
  bool tracked = false;

  /// True when at least one non-null, non-NaN cell contributed.
  bool has_value() const { return min <= max; }
};

/// Per-segment statistics for scan pruning and tick skipping. Because a
/// segment is a contiguous insertion range, every time-range predicate
/// and freshness threshold maps to zone-map bounds that either rule the
/// whole segment out or leave it for the row-level scan.
///
/// Bound discipline (audited by the `zone-map-bounds` fsck rule):
///  * `min_ts`/`max_ts` cover every row ever appended — exact, since
///    insertion times never change.
///  * `min_f`/`max_f` cover every LIVE row's freshness — conservative:
///    widened eagerly on every freshness write, tightened only on
///    recount (RecomputeZoneMap) or trivially when the segment empties.
///  * `columns[c]` covers every non-null cell of numeric column c over
///    ALL rows, live and dead — attribute values never change, so the
///    bounds are exact over all rows and a superset over live ones.
struct ZoneMap {
  Timestamp min_ts = std::numeric_limits<Timestamp>::max();
  Timestamp max_ts = std::numeric_limits<Timestamp>::min();
  double min_f = std::numeric_limits<double>::infinity();
  double max_f = -std::numeric_limits<double>::infinity();
  std::vector<ColumnZone> columns;

  bool has_rows() const { return min_ts <= max_ts; }
  bool has_live_freshness() const { return min_f <= max_f; }
};

/// A fixed-capacity, append-only run of consecutive tuples. Tuples are
/// stored in insertion order, so offset order *is* the paper's time axis.
/// Alongside the user columns each segment holds the two system vectors:
/// insertion timestamps (`t`) and freshness (`f`), plus a liveness flag
/// (freshness 0 == dead == tombstoned) and an optional access counter.
///
/// Segments are the unit of space reclamation: when every tuple in a full
/// segment has died, the Table frees the whole segment — the paper's
/// "removing complete insertion ranges". They are also the unit of scan
/// pruning: each segment maintains a ZoneMap the query engine and decay
/// planners consult to skip segments that cannot match.
///
/// Lazy decay (DESIGN.md §14): a decay tick that would subtract the
/// same delta from every live row of the segment can be *folded* into
/// `pending_decay_` instead of rewriting the freshness vector — an O(1)
/// metadata write. The stored freshness vector is then "as of
/// decay_epoch"; readers reconstruct the effective value by replaying
/// the pending deltas IN FOLD ORDER (`f - d1 - d2 - ...`), which makes
/// the reconstruction bit-identical to the eager per-row subtractions
/// it stands in for (floating-point subtraction is not associative, so
/// the order is part of the contract). Pending deltas are applied for
/// real — materialized — on the first mutating touch, on
/// RecomputeZoneMap, and before snapshot serialization, so the on-disk
/// format never sees them.
///
/// Tiered storage (DESIGN.md §15): a full, idle segment can be *frozen*
/// into the compact encoded form (encode::FrozenSegment) — the plain
/// vectors are released and every accessor answers from the encoding
/// (FOR lookup O(1), RLE/dict lookup O(log runs)). Reads never thaw;
/// zone maps, pruning and the decode-to-scratch scan API all work on
/// the frozen form, and uniform decay folds/materializations update it
/// in place. Any per-row mutation (SetFreshness, Kill) or a zone-map
/// recount thaws the segment back to plain vectors, bit-identically.
/// Appends never reach a frozen segment (freezing requires full()).
///
/// Visibility: none of this is internally synchronized. Decay ticks
/// tombstone rows, rewrite freshness vectors and free whole segments;
/// a concurrent reader iterating offsets mid-tick could see a zone map
/// disagreeing with its cells, or a dangling segment outright. The
/// epoch scheme (core/epoch.h) is what rules that out: writers mutate
/// only inside an exclusive write section, readers only under a pin,
/// and segment lifetime — including freeze and thaw, which swap the
/// physical representation — ends strictly inside a write section, so
/// a pinned reader can hold raw Segment pointers for the pin's
/// duration and never observes a representation change.
class Segment {
 public:
  Segment(const Schema& schema, uint64_t first_row, size_t capacity,
          bool track_access);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint64_t first_row() const { return first_row_; }
  size_t capacity() const { return capacity_; }
  size_t num_rows() const {
    return frozen_ ? static_cast<size_t>(frozen_->num_rows) : ts_.size();
  }
  bool full() const { return num_rows() == capacity_; }
  size_t live_count() const { return live_count_; }

  /// Appends an already-validated row with freshness 1.0.
  /// Requires !full() (which implies !is_frozen()).
  void Append(const std::vector<Value>& values, Timestamp now);

  bool IsLive(size_t off) const {
    return frozen_ ? frozen_->IsLive(off) : alive_[off] != 0;
  }

  /// Effective freshness: the stored value with every pending uniform
  /// decrement replayed in fold order. Equals the stored value exactly
  /// when nothing is pending (the common case); dead rows are always 0.
  double Freshness(size_t off) const {
    const double stored = stored_freshness(off);
    if (pending_decay_.empty() || !IsLive(off)) return stored;
    double f = stored;
    for (const double d : pending_decay_) f -= d;
    return f;
  }

  /// Raw stored freshness, ignoring pending decay — verification and
  /// tests only; every consumer of row state wants Freshness().
  double stored_freshness(size_t off) const {
    return frozen_ ? frozen_->StoredFreshness(off) : freshness_[off];
  }

  /// Sets freshness; clamps into [0, 1] and kills the tuple at 0.
  /// A write equal to the current value is a no-op (decay ticks call
  /// this for every infected tuple; most writes repeat the old value
  /// when the clock did not advance). Returns true when this call
  /// killed the tuple. Requires no pending decay and a thawed segment
  /// (the shard mutators thaw and materialize first).
  bool SetFreshness(size_t off, double f);

  /// Tombstones the tuple (idempotent). Returns true if it was live.
  /// Requires a thawed segment.
  bool Kill(size_t off);

  Timestamp InsertTime(size_t off) const {
    return frozen_ ? static_cast<Timestamp>(frozen_->ts.Get(off))
                   : ts_.at(off);
  }

  Value GetValue(size_t off, size_t col) const;

  /// Plain-representation column access. Requires !is_frozen(); code
  /// outside src/storage uses the segment-level cell accessors and the
  /// decode-to-scratch API below, which work on both tiers.
  const Column& column(size_t col) const {
    assert(!frozen_);
    return *columns_[col];
  }

  // --- Tier-independent column metadata (works frozen or plain). ---

  size_t num_columns() const {
    return frozen_ ? frozen_->columns.size() : columns_.size();
  }
  DataType column_type(size_t col) const {
    return frozen_ ? frozen_->columns[col].type : columns_[col]->type();
  }
  size_t column_size(size_t col) const {
    return frozen_ ? static_cast<size_t>(frozen_->num_rows)
                   : columns_[col]->size();
  }
  size_t column_null_count(size_t col) const {
    return frozen_ ? static_cast<size_t>(frozen_->columns[col].null_count)
                   : columns_[col]->null_count();
  }
  bool IsColumnNull(size_t off, size_t col) const {
    return frozen_ ? frozen_->columns[col].IsNull(off)
                   : columns_[col]->IsNull(off);
  }

  /// Zone map for pruning decisions. Bounds are conservative supersets
  /// (see ZoneMap); a stale bound is an invariant violation. Valid on
  /// both tiers — pruning never thaws.
  const ZoneMap& zone_map() const { return zone_map_; }

  /// Recomputes the zone map exactly from the stored rows, tightening
  /// any bounds that lazy widening left loose. A mutating touch: thaws
  /// a frozen segment and materializes pending decay first (the recount
  /// must describe what rows actually hold). O(rows × columns).
  void RecomputeZoneMap();

  // --- Compression tier (DESIGN.md §15). ---

  bool is_frozen() const { return frozen_ != nullptr; }

  /// The encoded image. Requires is_frozen().
  const encode::FrozenSegment& frozen() const { return *frozen_; }

  /// Eligible for the cold tier: full (so no appends can arrive), not
  /// already frozen, and not access-tracked (RecordAccess mutates on
  /// the read path, which must never thaw).
  bool can_freeze() const {
    return !frozen_ && full() && !track_access_;
  }

  /// Encodes the segment and releases the plain vectors. Materializes
  /// pending decay first so the encoding holds the true stored values.
  /// Requires can_freeze(). A write — callers run under the apply
  /// phase / write section.
  void Freeze();

  /// Reconstructs the plain vectors from the encoding, bit-identically,
  /// and drops it. Requires is_frozen().
  void Thaw();

  /// Shard tick epoch of the last mutating touch (append, per-row
  /// freshness write, thaw) — the temperature the freeze policy reads.
  /// Uniform folds deliberately do not count: a segment only touched
  /// by folds is exactly the cold case freezing targets.
  uint64_t last_touch_epoch() const { return last_touch_epoch_; }
  void set_last_touch_epoch(uint64_t epoch) { last_touch_epoch_ = epoch; }

  // --- Lazy decay (DESIGN.md §14). ---

  /// True when `delta` can be folded as a uniform decrement over every
  /// live row without changing observable state relative to the eager
  /// per-row path: there are live rows with a non-empty live-freshness
  /// interval, and even the stalest of them provably survives
  /// (effective min freshness stays strictly positive), so no death —
  /// and no death-observer or reclamation side effect — is deferred.
  bool CanFoldUniformDecay(double delta) const {
    return live_count_ > 0 && zone_map_.has_live_freshness() &&
           delta >= 0.0 && EffectiveMinFreshness() - delta > 0.0;
  }

  /// Folds a uniform decrement (caller proved CanFoldUniformDecay) and
  /// stamps the shard tick epoch it belongs to. O(1) on both tiers —
  /// folding never thaws, which is what keeps ticks over frozen
  /// segments O(segments).
  void FoldUniformDecay(double delta, uint64_t epoch) {
    pending_decay_.push_back(delta);
    decay_epoch_ = epoch;
  }

  /// Applies every pending decrement to the rows, in fold order, and
  /// tightens the live-freshness zone bounds by the same replay. No row
  /// can die here (fold-time proof). Returns rows rewritten (0 when
  /// nothing was pending); stamps `epoch` as the segment's decay epoch.
  /// On a frozen segment the encoded image is updated in place — O(1)
  /// for the uniform-freshness fast path — and the block checksum is
  /// recomputed; the segment stays frozen.
  size_t MaterializePendingDecay(uint64_t epoch);

  bool has_pending_decay() const { return !pending_decay_.empty(); }

  /// Uniform decrements folded but not yet applied, in fold order.
  const std::vector<double>& pending_decay() const { return pending_decay_; }

  /// Shard tick epoch this segment is current through (last fold or
  /// materialization; 0 if never touched by a fold).
  uint64_t decay_epoch() const { return decay_epoch_; }

  /// Conservative live-freshness bounds in EFFECTIVE space: the stored
  /// zone bounds with pending deltas replayed in fold order (x ↦ x - d
  /// is weakly monotone, so the replayed bounds still cover every live
  /// row's effective freshness).
  double EffectiveMinFreshness() const {
    double v = zone_map_.min_f;
    for (const double d : pending_decay_) v -= d;
    return v;
  }
  double EffectiveMaxFreshness() const {
    double v = zone_map_.max_f;
    for (const double d : pending_decay_) v -= d;
    return v;
  }

  // --- Decode-to-scratch scan API (both tiers; never thaws). ---
  //
  // The one routine family every scan path shares (vectorized kernel,
  // morsel-parallel workers, walker fallback, no-WHERE fast path): on a
  // plain segment these read the backing vectors directly (liveness is
  // even zero-copy); on a frozen segment they decode the requested span
  // into caller scratch.

  /// Liveness bytes for [base, base + n). Returns a pointer into the
  /// plain vector when thawed (zero copy); decodes into `scratch` and
  /// returns it when frozen.
  const uint8_t* DecodeAlive(size_t base, size_t n, uint8_t* scratch) const;

  /// True when any row in [base, base + n) is live. O(runs touched) on
  /// a frozen segment — the batch-skip test that lets scans hop over
  /// dead spans of cold data without decoding them.
  bool AnyLive(size_t base, size_t n) const;

  /// Insertion timestamps for [base, base + n) as doubles (the space
  /// the vector kernel compares in).
  void DecodeTs(size_t base, size_t n, double* out) const;

  /// STORED freshness for [base, base + n) — callers evaluating
  /// `__freshness` must replay pending_decay() on top. `alive` is the
  /// span DecodeAlive returned for the same range (the frozen
  /// uniform-value path reconstructs from liveness).
  void DecodeStoredFreshness(size_t base, size_t n, const uint8_t* alive,
                             double* out) const;

  /// Numeric column cells for [base, base + n) as doubles
  /// (int64/timestamp convert monotonically, float64 copies). When
  /// `nulls` is non-null it receives 1 per null cell (whose value slot
  /// is then unspecified); callers may pass nullptr for all-valid
  /// columns (column_null_count() == 0).
  void DecodeNumericColumn(size_t col, size_t base, size_t n, double* vals,
                           uint8_t* nulls) const;

  /// String equality against a literal for [base, base + n): eq[i] = 1
  /// where the cell equals `needle`, nulls[i] = 1 where it is null. On
  /// a frozen segment this compares dictionary codes — one dictionary
  /// probe per call, no string decoding.
  void MatchStringEq(size_t col, size_t base, size_t n,
                     const std::string& needle, uint8_t* eq,
                     uint8_t* nulls) const;

  // --- Raw system-vector spans (plain tier only; src/storage and the
  // invariant checker — everything else goes through the decode API,
  // enforced by the `encoded-access` lint rule). ---

  const Timestamp* ts_data() const {
    assert(!frozen_);
    return ts_.data();
  }

  /// STORED freshness values — callers evaluating `__freshness` must
  /// replay pending_decay() on top (see VectorPredicate).
  const double* freshness_data() const {
    assert(!frozen_);
    return freshness_.data();
  }
  const uint8_t* alive_data() const {
    assert(!frozen_);
    return alive_.data();
  }

  void RecordAccess(size_t off);
  uint32_t AccessCount(size_t off) const;

  /// Heap bytes of the current representation — the encoded image when
  /// frozen, the plain vectors when thawed.
  size_t MemoryUsage() const;

  // --- Verification accessors (invariant checker only). ---

  /// Raw system-vector lengths; each must equal num_rows() on a thawed
  /// segment (and be zero on a frozen one), and the access vector must
  /// be empty unless tracking is on.
  size_t freshness_vector_size() const { return freshness_.size(); }
  size_t alive_vector_size() const { return alive_.size(); }
  size_t access_vector_size() const { return access_.size(); }
  bool tracks_access() const { return track_access_; }

 private:
  // Seeds deliberate corruption for fsck tests (verify/corruptor.h).
  friend class TestCorruptor;

  uint64_t first_row_;
  size_t capacity_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<Timestamp> ts_;
  std::vector<double> freshness_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> access_;  // empty unless track_access
  bool track_access_;
  ZoneMap zone_map_;
  // Uniform per-tick decrements folded but not yet applied to rows, in
  // fold order (reconstruction replays them sequentially so it matches
  // the eager path bit for bit). Cleared by MaterializePendingDecay.
  std::vector<double> pending_decay_;
  uint64_t decay_epoch_ = 0;
  // Non-null iff the segment is on the cold tier; the plain vectors
  // above are then empty (audited by the `encoded-segment` fsck rule).
  std::unique_ptr<encode::FrozenSegment> frozen_;
  uint64_t last_touch_epoch_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_SEGMENT_H_
