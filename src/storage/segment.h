#ifndef FUNGUSDB_STORAGE_SEGMENT_H_
#define FUNGUSDB_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fungusdb {

/// A fixed-capacity, append-only run of consecutive tuples. Tuples are
/// stored in insertion order, so offset order *is* the paper's time axis.
/// Alongside the user columns each segment holds the two system vectors:
/// insertion timestamps (`t`) and freshness (`f`), plus a liveness flag
/// (freshness 0 == dead == tombstoned) and an optional access counter.
///
/// Segments are the unit of space reclamation: when every tuple in a full
/// segment has died, the Table frees the whole segment — the paper's
/// "removing complete insertion ranges".
class Segment {
 public:
  Segment(const Schema& schema, uint64_t first_row, size_t capacity,
          bool track_access);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  uint64_t first_row() const { return first_row_; }
  size_t capacity() const { return capacity_; }
  size_t num_rows() const { return ts_.size(); }
  bool full() const { return num_rows() == capacity_; }
  size_t live_count() const { return live_count_; }

  /// Appends an already-validated row with freshness 1.0.
  /// Requires !full().
  void Append(const std::vector<Value>& values, Timestamp now);

  bool IsLive(size_t off) const { return alive_[off] != 0; }
  double Freshness(size_t off) const { return freshness_[off]; }

  /// Sets freshness; clamps into [0, 1] and kills the tuple at 0.
  /// Returns true when this call killed the tuple.
  bool SetFreshness(size_t off, double f);

  /// Tombstones the tuple (idempotent). Returns true if it was live.
  bool Kill(size_t off);

  Timestamp InsertTime(size_t off) const { return ts_.at(off); }

  Value GetValue(size_t off, size_t col) const {
    return columns_[col]->GetValue(off);
  }

  const Column& column(size_t col) const { return *columns_[col]; }

  void RecordAccess(size_t off);
  uint32_t AccessCount(size_t off) const;

  size_t MemoryUsage() const;

  // --- Verification accessors (invariant checker only). ---

  /// Raw system-vector lengths; each must equal num_rows(), and the
  /// access vector must be empty unless tracking is on.
  size_t freshness_vector_size() const { return freshness_.size(); }
  size_t alive_vector_size() const { return alive_.size(); }
  size_t access_vector_size() const { return access_.size(); }
  bool tracks_access() const { return track_access_; }

 private:
  // Seeds deliberate corruption for fsck tests (verify/corruptor.h).
  friend class TestCorruptor;

  uint64_t first_row_;
  size_t capacity_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<Timestamp> ts_;
  std::vector<double> freshness_;
  std::vector<uint8_t> alive_;
  std::vector<uint32_t> access_;  // empty unless track_access
  bool track_access_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_SEGMENT_H_
