#include "storage/value_serde.h"

namespace fungusdb {
namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt64 = 1;
constexpr uint8_t kTagFloat64 = 2;
constexpr uint8_t kTagString = 3;
constexpr uint8_t kTagBool = 4;
constexpr uint8_t kTagTimestamp = 5;

uint8_t TypeTag(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return kTagInt64;
    case DataType::kFloat64:
      return kTagFloat64;
    case DataType::kString:
      return kTagString;
    case DataType::kBool:
      return kTagBool;
    case DataType::kTimestamp:
      return kTagTimestamp;
  }
  return kTagNull;
}

Result<DataType> TagType(uint8_t tag) {
  switch (tag) {
    case kTagInt64:
      return DataType::kInt64;
    case kTagFloat64:
      return DataType::kFloat64;
    case kTagString:
      return DataType::kString;
    case kTagBool:
      return DataType::kBool;
    case kTagTimestamp:
      return DataType::kTimestamp;
    default:
      return Status::ParseError("unknown type tag " + std::to_string(tag));
  }
}

}  // namespace

void WriteValue(BufferWriter& out, const Value& value) {
  if (value.is_null()) {
    out.WriteU8(kTagNull);
    return;
  }
  out.WriteU8(TypeTag(value.type()));
  switch (value.type()) {
    case DataType::kInt64:
      out.WriteI64(value.AsInt64());
      break;
    case DataType::kFloat64:
      out.WriteDouble(value.AsFloat64());
      break;
    case DataType::kString:
      out.WriteString(value.AsString());
      break;
    case DataType::kBool:
      out.WriteBool(value.AsBool());
      break;
    case DataType::kTimestamp:
      out.WriteI64(value.AsTimestamp());
      break;
  }
}

Result<Value> ReadValue(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint8_t tag, in.ReadU8());
  if (tag == kTagNull) return Value::Null();
  FUNGUSDB_ASSIGN_OR_RETURN(DataType type, TagType(tag));
  switch (type) {
    case DataType::kInt64: {
      FUNGUSDB_ASSIGN_OR_RETURN(int64_t v, in.ReadI64());
      return Value::Int64(v);
    }
    case DataType::kFloat64: {
      FUNGUSDB_ASSIGN_OR_RETURN(double v, in.ReadDouble());
      return Value::Float64(v);
    }
    case DataType::kString: {
      FUNGUSDB_ASSIGN_OR_RETURN(std::string v, in.ReadString());
      return Value::String(std::move(v));
    }
    case DataType::kBool: {
      FUNGUSDB_ASSIGN_OR_RETURN(bool v, in.ReadBool());
      return Value::Bool(v);
    }
    case DataType::kTimestamp: {
      FUNGUSDB_ASSIGN_OR_RETURN(int64_t v, in.ReadI64());
      return Value::TimestampVal(v);
    }
  }
  return Status::Internal("unhandled tag");
}

void WriteSchema(BufferWriter& out, const Schema& schema) {
  out.WriteU64(schema.num_fields());
  for (const Field& f : schema.fields()) {
    out.WriteString(f.name);
    out.WriteU8(TypeTag(f.type));
    out.WriteBool(f.nullable);
  }
}

Result<Schema> ReadSchema(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Field f;
    FUNGUSDB_ASSIGN_OR_RETURN(f.name, in.ReadString());
    FUNGUSDB_ASSIGN_OR_RETURN(uint8_t tag, in.ReadU8());
    FUNGUSDB_ASSIGN_OR_RETURN(f.type, TagType(tag));
    FUNGUSDB_ASSIGN_OR_RETURN(f.nullable, in.ReadBool());
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

}  // namespace fungusdb
