#include "storage/datatype.h"

namespace fungusdb {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "bool";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kFloat64 ||
         type == DataType::kTimestamp;
}

}  // namespace fungusdb
