#include "storage/segment.h"

#include <algorithm>
#include <cassert>

namespace fungusdb {

Segment::Segment(const Schema& schema, uint64_t first_row, size_t capacity,
                 bool track_access)
    : first_row_(first_row), capacity_(capacity), track_access_(track_access) {
  columns_.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    columns_.push_back(MakeColumn(f.type));
  }
  ts_.reserve(capacity);
  freshness_.reserve(capacity);
  alive_.reserve(capacity);
  if (track_access_) access_.reserve(capacity);
}

void Segment::Append(const std::vector<Value>& values, Timestamp now) {
  assert(!full());
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
  }
  ts_.push_back(now);
  freshness_.push_back(1.0);
  alive_.push_back(1);
  if (track_access_) access_.push_back(0);
  ++live_count_;
}

bool Segment::SetFreshness(size_t off, double f) {
  assert(off < num_rows());
  if (!alive_[off]) return false;
  f = std::clamp(f, 0.0, 1.0);
  freshness_[off] = f;
  if (f <= 0.0) {
    alive_[off] = 0;
    --live_count_;
    return true;
  }
  return false;
}

bool Segment::Kill(size_t off) {
  assert(off < num_rows());
  if (!alive_[off]) return false;
  alive_[off] = 0;
  freshness_[off] = 0.0;
  --live_count_;
  return true;
}

void Segment::RecordAccess(size_t off) {
  if (track_access_ && off < access_.size()) ++access_[off];
}

uint32_t Segment::AccessCount(size_t off) const {
  if (!track_access_ || off >= access_.size()) return 0;
  return access_[off];
}

size_t Segment::MemoryUsage() const {
  size_t bytes = sizeof(Segment);
  for (const auto& col : columns_) bytes += col->MemoryUsage();
  bytes += ts_.capacity() * sizeof(Timestamp);
  bytes += freshness_.capacity() * sizeof(double);
  bytes += alive_.capacity() * sizeof(uint8_t);
  bytes += access_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace fungusdb
