#include "storage/segment.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fungusdb {

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64 ||
         t == DataType::kTimestamp;
}

/// Double image of a numeric cell — the space Value::Compare works in.
/// int64/timestamp -> double is monotone, so zone bounds taken here are
/// a sound superset for double-space comparisons.
double NumericCell(const Column& col, size_t pos) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(
          static_cast<const Int64Column&>(col).at(pos));
    case DataType::kFloat64:
      return static_cast<const Float64Column&>(col).at(pos);
    case DataType::kTimestamp:
      return static_cast<double>(
          static_cast<const TimestampColumn&>(col).at(pos));
    default:
      assert(false);
      return 0.0;
  }
}

void WidenColumnZone(ColumnZone& zone, double v) {
  if (std::isnan(v)) {
    zone.has_nan = true;
    return;
  }
  zone.min = std::min(zone.min, v);
  zone.max = std::max(zone.max, v);
}

}  // namespace

Segment::Segment(const Schema& schema, uint64_t first_row, size_t capacity,
                 bool track_access)
    : first_row_(first_row), capacity_(capacity), track_access_(track_access) {
  columns_.reserve(schema.num_fields());
  zone_map_.columns.resize(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.fields()[i];
    columns_.push_back(MakeColumn(f.type));
    zone_map_.columns[i].tracked = IsNumericType(f.type);
  }
  ts_.reserve(capacity);
  freshness_.reserve(capacity);
  alive_.reserve(capacity);
  if (track_access_) access_.reserve(capacity);
}

void Segment::Append(const std::vector<Value>& values, Timestamp now) {
  assert(!full());
  assert(values.size() == columns_.size());
  // A new row must not inherit decrements from ticks that predate it —
  // the shard materializes before appending (mutating touch).
  assert(pending_decay_.empty());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
    ColumnZone& zone = zone_map_.columns[i];
    if (zone.tracked && !values[i].is_null()) {
      WidenColumnZone(zone, NumericCell(*columns_[i], ts_.size()));
    }
  }
  ts_.push_back(now);
  freshness_.push_back(1.0);
  alive_.push_back(1);
  if (track_access_) access_.push_back(0);
  ++live_count_;
  zone_map_.min_ts = std::min(zone_map_.min_ts, now);
  zone_map_.max_ts = std::max(zone_map_.max_ts, now);
  zone_map_.min_f = std::min(zone_map_.min_f, 1.0);
  zone_map_.max_f = std::max(zone_map_.max_f, 1.0);
}

bool Segment::SetFreshness(size_t off, double f) {
  assert(off < num_rows());
  if (!alive_[off]) return false;
  // No-op early-out: decay ticks call this for every infected tuple, and
  // the write often repeats the old value. Live freshness is in (0, 1],
  // so an equal incoming value needs neither clamping nor killing, and
  // the zone bounds already cover it.
  if (f == freshness_[off]) return false;
  f = std::clamp(f, 0.0, 1.0);
  freshness_[off] = f;
  if (f <= 0.0) {
    alive_[off] = 0;
    --live_count_;
    if (live_count_ == 0) {
      // Empty of live rows: the live-freshness zone tightens to empty
      // for free (the only O(1) tightening; others need a recount).
      zone_map_.min_f = std::numeric_limits<double>::infinity();
      zone_map_.max_f = -std::numeric_limits<double>::infinity();
    }
    return true;
  }
  zone_map_.min_f = std::min(zone_map_.min_f, f);
  zone_map_.max_f = std::max(zone_map_.max_f, f);
  return false;
}

bool Segment::Kill(size_t off) {
  assert(off < num_rows());
  if (!alive_[off]) return false;
  alive_[off] = 0;
  freshness_[off] = 0.0;
  --live_count_;
  if (live_count_ == 0) {
    zone_map_.min_f = std::numeric_limits<double>::infinity();
    zone_map_.max_f = -std::numeric_limits<double>::infinity();
  }
  return true;
}

size_t Segment::MaterializePendingDecay(uint64_t epoch) {
  decay_epoch_ = epoch;
  if (pending_decay_.empty()) return 0;
  size_t rewritten = 0;
  for (size_t off = 0; off < num_rows(); ++off) {
    if (!alive_[off]) continue;
    // Replay in fold order — the exact op sequence the eager path would
    // have executed tick by tick, so the result matches bit for bit.
    double f = freshness_[off];
    for (const double d : pending_decay_) f -= d;
    freshness_[off] = f;
    ++rewritten;
  }
  // The live-freshness bounds shift by the same replay: x ↦ x - d is
  // weakly monotone, so the replayed bounds still cover every live row.
  if (zone_map_.has_live_freshness()) {
    double lo = zone_map_.min_f;
    double hi = zone_map_.max_f;
    for (const double d : pending_decay_) {
      lo -= d;
      hi -= d;
    }
    zone_map_.min_f = lo;
    zone_map_.max_f = hi;
  }
  pending_decay_.clear();
  return rewritten;
}

void Segment::RecomputeZoneMap() {
  // The recount reads the stored vectors; fold the pending decrements in
  // first so the result describes what rows actually hold. The epoch is
  // already current (folds stamp it), so re-stamping it is a no-op.
  MaterializePendingDecay(decay_epoch_);
  ZoneMap fresh;
  fresh.columns.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    fresh.columns[c].tracked = zone_map_.columns[c].tracked;
  }
  for (size_t off = 0; off < num_rows(); ++off) {
    fresh.min_ts = std::min(fresh.min_ts, ts_[off]);
    fresh.max_ts = std::max(fresh.max_ts, ts_[off]);
    if (alive_[off]) {
      fresh.min_f = std::min(fresh.min_f, freshness_[off]);
      fresh.max_f = std::max(fresh.max_f, freshness_[off]);
    }
    for (size_t c = 0; c < columns_.size(); ++c) {
      ColumnZone& zone = fresh.columns[c];
      if (zone.tracked && !columns_[c]->IsNull(off)) {
        WidenColumnZone(zone, NumericCell(*columns_[c], off));
      }
    }
  }
  zone_map_ = std::move(fresh);
}

void Segment::RecordAccess(size_t off) {
  if (track_access_ && off < access_.size()) ++access_[off];
}

uint32_t Segment::AccessCount(size_t off) const {
  if (!track_access_ || off >= access_.size()) return 0;
  return access_[off];
}

size_t Segment::MemoryUsage() const {
  size_t bytes = sizeof(Segment);
  for (const auto& col : columns_) bytes += col->MemoryUsage();
  bytes += ts_.capacity() * sizeof(Timestamp);
  bytes += freshness_.capacity() * sizeof(double);
  bytes += alive_.capacity() * sizeof(uint8_t);
  bytes += access_.capacity() * sizeof(uint32_t);
  bytes += zone_map_.columns.capacity() * sizeof(ColumnZone);
  return bytes;
}

}  // namespace fungusdb
