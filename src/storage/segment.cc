#include "storage/segment.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fungusdb {

namespace {

bool IsNumericType(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64 ||
         t == DataType::kTimestamp;
}

/// Double image of a numeric cell — the space Value::Compare works in.
/// int64/timestamp -> double is monotone, so zone bounds taken here are
/// a sound superset for double-space comparisons.
double NumericCell(const Column& col, size_t pos) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(
          static_cast<const Int64Column&>(col).at(pos));
    case DataType::kFloat64:
      return static_cast<const Float64Column&>(col).at(pos);
    case DataType::kTimestamp:
      return static_cast<double>(
          static_cast<const TimestampColumn&>(col).at(pos));
    default:
      assert(false);
      return 0.0;
  }
}

void WidenColumnZone(ColumnZone& zone, double v) {
  if (std::isnan(v)) {
    zone.has_nan = true;
    return;
  }
  zone.min = std::min(zone.min, v);
  zone.max = std::max(zone.max, v);
}

}  // namespace

Segment::Segment(const Schema& schema, uint64_t first_row, size_t capacity,
                 bool track_access)
    : first_row_(first_row), capacity_(capacity), track_access_(track_access) {
  columns_.reserve(schema.num_fields());
  zone_map_.columns.resize(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const Field& f = schema.fields()[i];
    columns_.push_back(MakeColumn(f.type));
    zone_map_.columns[i].tracked = IsNumericType(f.type);
  }
  ts_.reserve(capacity);
  freshness_.reserve(capacity);
  alive_.reserve(capacity);
  if (track_access_) access_.reserve(capacity);
}

void Segment::Append(const std::vector<Value>& values, Timestamp now) {
  assert(!full());
  assert(!frozen_);
  assert(values.size() == columns_.size());
  // A new row must not inherit decrements from ticks that predate it —
  // the shard materializes before appending (mutating touch).
  assert(pending_decay_.empty());
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
    ColumnZone& zone = zone_map_.columns[i];
    if (zone.tracked && !values[i].is_null()) {
      WidenColumnZone(zone, NumericCell(*columns_[i], ts_.size()));
    }
  }
  ts_.push_back(now);
  freshness_.push_back(1.0);
  alive_.push_back(1);
  if (track_access_) access_.push_back(0);
  ++live_count_;
  zone_map_.min_ts = std::min(zone_map_.min_ts, now);
  zone_map_.max_ts = std::max(zone_map_.max_ts, now);
  zone_map_.min_f = std::min(zone_map_.min_f, 1.0);
  zone_map_.max_f = std::max(zone_map_.max_f, 1.0);
}

bool Segment::SetFreshness(size_t off, double f) {
  assert(off < num_rows());
  assert(!frozen_);
  if (!alive_[off]) return false;
  // No-op early-out: decay ticks call this for every infected tuple, and
  // the write often repeats the old value. Live freshness is in (0, 1],
  // so an equal incoming value needs neither clamping nor killing, and
  // the zone bounds already cover it.
  if (f == freshness_[off]) return false;
  f = std::clamp(f, 0.0, 1.0);
  freshness_[off] = f;
  if (f <= 0.0) {
    alive_[off] = 0;
    --live_count_;
    if (live_count_ == 0) {
      // Empty of live rows: the live-freshness zone tightens to empty
      // for free (the only O(1) tightening; others need a recount).
      zone_map_.min_f = std::numeric_limits<double>::infinity();
      zone_map_.max_f = -std::numeric_limits<double>::infinity();
    }
    return true;
  }
  zone_map_.min_f = std::min(zone_map_.min_f, f);
  zone_map_.max_f = std::max(zone_map_.max_f, f);
  return false;
}

bool Segment::Kill(size_t off) {
  assert(off < num_rows());
  assert(!frozen_);
  if (!alive_[off]) return false;
  alive_[off] = 0;
  freshness_[off] = 0.0;
  --live_count_;
  if (live_count_ == 0) {
    zone_map_.min_f = std::numeric_limits<double>::infinity();
    zone_map_.max_f = -std::numeric_limits<double>::infinity();
  }
  return true;
}

Value Segment::GetValue(size_t off, size_t col) const {
  if (!frozen_) return columns_[col]->GetValue(off);
  const encode::FrozenColumn& fc = frozen_->columns[col];
  if (fc.IsNull(off)) return Value::Null();
  switch (fc.type) {
    case DataType::kInt64:
      return Value::Int64(fc.ints.Get(off));
    case DataType::kTimestamp:
      return Value::TimestampVal(fc.ints.Get(off));
    case DataType::kFloat64:
      return Value::Float64(fc.doubles[off]);
    case DataType::kString:
      return Value::String(fc.strings.Get(off));
    case DataType::kBool:
      return Value::Bool(fc.bools.Get(off) != 0);
  }
  assert(false);
  return Value::Null();
}

size_t Segment::MaterializePendingDecay(uint64_t epoch) {
  decay_epoch_ = epoch;
  if (pending_decay_.empty()) return 0;
  size_t rewritten = 0;
  if (frozen_) {
    // The encoded image updates in place — materializing never thaws
    // (snapshot writes materialize every table; thawing there would
    // evict the whole cold tier each save).
    if (frozen_->uniform_freshness) {
      // All live rows share one stored value, so the fold-order replay
      // collapses to a single scalar replay: bit-identical to the
      // per-row path because every row would execute the exact same
      // subtraction sequence from the exact same start value.
      if (live_count_ > 0) {
        double f = frozen_->uniform_value;
        for (const double d : pending_decay_) f -= d;
        frozen_->uniform_value = f;
        rewritten = live_count_;
      }
    } else {
      std::vector<uint8_t> alive(frozen_->num_rows);
      frozen_->alive.Decode(0, frozen_->num_rows, alive.data());
      for (size_t off = 0; off < frozen_->num_rows; ++off) {
        if (!alive[off]) continue;
        double f = frozen_->freshness_raw[off];
        for (const double d : pending_decay_) f -= d;
        frozen_->freshness_raw[off] = f;
        ++rewritten;
      }
    }
  } else {
    for (size_t off = 0; off < num_rows(); ++off) {
      if (!alive_[off]) continue;
      // Replay in fold order — the exact op sequence the eager path
      // would have executed tick by tick, so the result matches bit
      // for bit.
      double f = freshness_[off];
      for (const double d : pending_decay_) f -= d;
      freshness_[off] = f;
      ++rewritten;
    }
  }
  // The live-freshness bounds shift by the same replay: x ↦ x - d is
  // weakly monotone, so the replayed bounds still cover every live row.
  if (zone_map_.has_live_freshness()) {
    double lo = zone_map_.min_f;
    double hi = zone_map_.max_f;
    for (const double d : pending_decay_) {
      lo -= d;
      hi -= d;
    }
    zone_map_.min_f = lo;
    zone_map_.max_f = hi;
  }
  pending_decay_.clear();
  if (frozen_) frozen_->checksum = frozen_->ComputeChecksum();
  return rewritten;
}

void Segment::RecomputeZoneMap() {
  // A recount is a mutating touch: thaw first so it reads plain rows.
  if (frozen_) Thaw();
  // The recount reads the stored vectors; fold the pending decrements in
  // first so the result describes what rows actually hold. The epoch is
  // already current (folds stamp it), so re-stamping it is a no-op.
  MaterializePendingDecay(decay_epoch_);
  ZoneMap fresh;
  fresh.columns.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    fresh.columns[c].tracked = zone_map_.columns[c].tracked;
  }
  for (size_t off = 0; off < num_rows(); ++off) {
    fresh.min_ts = std::min(fresh.min_ts, ts_[off]);
    fresh.max_ts = std::max(fresh.max_ts, ts_[off]);
    if (alive_[off]) {
      fresh.min_f = std::min(fresh.min_f, freshness_[off]);
      fresh.max_f = std::max(fresh.max_f, freshness_[off]);
    }
    for (size_t c = 0; c < columns_.size(); ++c) {
      ColumnZone& zone = fresh.columns[c];
      if (zone.tracked && !columns_[c]->IsNull(off)) {
        WidenColumnZone(zone, NumericCell(*columns_[c], off));
      }
    }
  }
  zone_map_ = std::move(fresh);
}

void Segment::Freeze() {
  assert(can_freeze());
  // The encoding holds true stored values, not "stored minus pending" —
  // fold the pending decrements in first (cheap: a freeze-eligible
  // segment is exactly the kind whose pending list is short or empty).
  MaterializePendingDecay(decay_epoch_);
  const size_t n = ts_.size();
  auto fz = std::make_unique<encode::FrozenSegment>();
  fz->num_rows = n;
  fz->plain_bytes = MemoryUsage();
  fz->ts = encode::PackedInts::Pack(ts_.data(), n);
  // Uniform-value fast path: lazy decay keeps every live row of a cold
  // segment at one shared stored freshness, and dead rows store exactly
  // 0.0 by invariant — liveness alone reconstructs the vector.
  bool uniform = true;
  double shared = 0.0;
  bool seen_live = false;
  for (size_t off = 0; off < n && uniform; ++off) {
    if (!alive_[off]) continue;
    if (!seen_live) {
      shared = freshness_[off];
      seen_live = true;
    } else if (freshness_[off] != shared) {
      uniform = false;
    }
  }
  if (uniform) {
    fz->uniform_freshness = true;
    fz->uniform_value = seen_live ? shared : 0.0;
  } else {
    fz->uniform_freshness = false;
    fz->freshness_raw = freshness_;
  }
  fz->alive = encode::RleBytes::Pack(alive_.data(), n);
  fz->columns.reserve(columns_.size());
  std::vector<uint8_t> valid(n);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = *columns_[c];
    encode::FrozenColumn fc;
    fc.type = col.type();
    fc.null_count = col.null_count();
    fc.plain_bytes = col.MemoryUsage();
    for (size_t off = 0; off < n; ++off) {
      valid[off] = col.IsNull(off) ? 0 : 1;
    }
    fc.validity = encode::RleBytes::Pack(valid.data(), n);
    switch (fc.type) {
      case DataType::kInt64:
        fc.ints = encode::PackedInts::Pack(
            static_cast<const Int64Column&>(col).data().data(), n);
        break;
      case DataType::kTimestamp:
        fc.ints = encode::PackedInts::Pack(
            static_cast<const TimestampColumn&>(col).data().data(), n);
        break;
      case DataType::kFloat64:
        fc.doubles = static_cast<const Float64Column&>(col).data();
        break;
      case DataType::kString:
        fc.strings = encode::DictStrings::Pack(
            static_cast<const StringColumn&>(col).data());
        break;
      case DataType::kBool: {
        const std::vector<bool>& bits =
            static_cast<const BoolColumn&>(col).data();
        std::vector<uint8_t> bytes(n);
        for (size_t off = 0; off < n; ++off) bytes[off] = bits[off] ? 1 : 0;
        fc.bools = encode::RleBytes::Pack(bytes.data(), n);
        break;
      }
    }
    fz->columns.push_back(std::move(fc));
  }
  fz->checksum = fz->ComputeChecksum();
  frozen_ = std::move(fz);
  // Release the plain representation — this is the whole point.
  columns_.clear();
  ts_ = std::vector<Timestamp>();
  freshness_ = std::vector<double>();
  alive_ = std::vector<uint8_t>();
}

void Segment::Thaw() {
  assert(frozen_);
  const std::unique_ptr<encode::FrozenSegment> fz = std::move(frozen_);
  const size_t n = static_cast<size_t>(fz->num_rows);
  ts_.reserve(capacity_);
  ts_.resize(n);
  fz->ts.Decode(0, n, ts_.data());
  alive_.reserve(capacity_);
  alive_.resize(n);
  fz->alive.Decode(0, n, alive_.data());
  freshness_.reserve(capacity_);
  if (fz->uniform_freshness) {
    freshness_.resize(n);
    for (size_t off = 0; off < n; ++off) {
      freshness_[off] = alive_[off] ? fz->uniform_value : 0.0;
    }
  } else {
    freshness_ = fz->freshness_raw;
    freshness_.reserve(capacity_);
  }
  columns_.reserve(fz->columns.size());
  std::vector<uint8_t> valid(n);
  for (const encode::FrozenColumn& fc : fz->columns) {
    std::unique_ptr<Column> col = MakeColumn(fc.type);
    fc.validity.Decode(0, n, valid.data());
    switch (fc.type) {
      case DataType::kInt64: {
        auto& typed = static_cast<Int64Column&>(*col);
        for (size_t off = 0; off < n; ++off) {
          // Null cells re-enter through Append(Null) so the backing
          // vector regains the exact T{} slot freeze captured.
          if (!valid[off]) {
            col->Append(Value::Null());
          } else {
            typed.AppendTyped(fc.ints.Get(off));
          }
        }
        break;
      }
      case DataType::kTimestamp: {
        auto& typed = static_cast<TimestampColumn&>(*col);
        for (size_t off = 0; off < n; ++off) {
          if (!valid[off]) {
            col->Append(Value::Null());
          } else {
            typed.AppendTyped(static_cast<Timestamp>(fc.ints.Get(off)));
          }
        }
        break;
      }
      case DataType::kFloat64: {
        auto& typed = static_cast<Float64Column&>(*col);
        for (size_t off = 0; off < n; ++off) {
          if (!valid[off]) {
            col->Append(Value::Null());
          } else {
            typed.AppendTyped(fc.doubles[off]);
          }
        }
        break;
      }
      case DataType::kString: {
        auto& typed = static_cast<StringColumn&>(*col);
        std::vector<uint32_t> codes(n);
        fc.strings.codes.Decode(0, n, codes.data());
        for (size_t off = 0; off < n; ++off) {
          if (!valid[off]) {
            col->Append(Value::Null());
          } else {
            typed.AppendTyped(fc.strings.dict[codes[off]]);
          }
        }
        break;
      }
      case DataType::kBool: {
        auto& typed = static_cast<BoolColumn&>(*col);
        std::vector<uint8_t> bits(n);
        fc.bools.Decode(0, n, bits.data());
        for (size_t off = 0; off < n; ++off) {
          if (!valid[off]) {
            col->Append(Value::Null());
          } else {
            typed.AppendTyped(bits[off] != 0);
          }
        }
        break;
      }
    }
    columns_.push_back(std::move(col));
  }
}

const uint8_t* Segment::DecodeAlive(size_t base, size_t n,
                                    uint8_t* scratch) const {
  if (!frozen_) return alive_.data() + base;
  frozen_->alive.Decode(base, n, scratch);
  return scratch;
}

bool Segment::AnyLive(size_t base, size_t n) const {
  if (frozen_) return frozen_->alive.AnyNonZero(base, n);
  for (size_t i = 0; i < n; ++i) {
    if (alive_[base + i]) return true;
  }
  return false;
}

void Segment::DecodeTs(size_t base, size_t n, double* out) const {
  if (!frozen_) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(ts_[base + i]);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(frozen_->ts.Get(base + i));
  }
}

void Segment::DecodeStoredFreshness(size_t base, size_t n,
                                    const uint8_t* alive,
                                    double* out) const {
  if (!frozen_) {
    std::copy(freshness_.begin() + static_cast<ptrdiff_t>(base),
              freshness_.begin() + static_cast<ptrdiff_t>(base + n), out);
    return;
  }
  if (frozen_->uniform_freshness) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = alive[i] ? frozen_->uniform_value : 0.0;
    }
    return;
  }
  std::copy(frozen_->freshness_raw.begin() + static_cast<ptrdiff_t>(base),
            frozen_->freshness_raw.begin() + static_cast<ptrdiff_t>(base + n),
            out);
}

void Segment::DecodeNumericColumn(size_t col, size_t base, size_t n,
                                  double* vals, uint8_t* nulls) const {
  if (!frozen_) {
    const Column& c = *columns_[col];
    switch (c.type()) {
      case DataType::kInt64: {
        const auto& data = static_cast<const Int64Column&>(c).data();
        for (size_t i = 0; i < n; ++i) {
          vals[i] = static_cast<double>(data[base + i]);
        }
        break;
      }
      case DataType::kTimestamp: {
        const auto& data = static_cast<const TimestampColumn&>(c).data();
        for (size_t i = 0; i < n; ++i) {
          vals[i] = static_cast<double>(data[base + i]);
        }
        break;
      }
      case DataType::kFloat64: {
        const auto& data = static_cast<const Float64Column&>(c).data();
        std::copy(data.begin() + static_cast<ptrdiff_t>(base),
                  data.begin() + static_cast<ptrdiff_t>(base + n), vals);
        break;
      }
      default:
        assert(false);
    }
    if (nulls != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        nulls[i] = c.IsNull(base + i) ? 1 : 0;
      }
    }
    return;
  }
  const encode::FrozenColumn& fc = frozen_->columns[col];
  switch (fc.type) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      for (size_t i = 0; i < n; ++i) {
        vals[i] = static_cast<double>(fc.ints.Get(base + i));
      }
      break;
    case DataType::kFloat64:
      std::copy(fc.doubles.begin() + static_cast<ptrdiff_t>(base),
                fc.doubles.begin() + static_cast<ptrdiff_t>(base + n), vals);
      break;
    default:
      assert(false);
  }
  if (nulls != nullptr) {
    fc.validity.Decode(base, n, nulls);  // 1 = valid...
    for (size_t i = 0; i < n; ++i) nulls[i] ^= 1;  // ... flipped to 1 = null
  }
}

void Segment::MatchStringEq(size_t col, size_t base, size_t n,
                            const std::string& needle, uint8_t* eq,
                            uint8_t* nulls) const {
  if (!frozen_) {
    const auto& scol = static_cast<const StringColumn&>(*columns_[col]);
    const std::vector<std::string>& data = scol.data();
    for (size_t i = 0; i < n; ++i) {
      if (scol.IsNull(base + i)) {
        nulls[i] = 1;
        eq[i] = 0;
      } else {
        nulls[i] = 0;
        eq[i] = data[base + i] == needle ? 1 : 0;
      }
    }
    return;
  }
  const encode::FrozenColumn& fc = frozen_->columns[col];
  fc.validity.Decode(base, n, nulls);  // 1 = valid for now; flipped below
  const std::optional<uint32_t> code = fc.strings.CodeOf(needle);
  if (!code.has_value()) {
    for (size_t i = 0; i < n; ++i) {
      eq[i] = 0;
      nulls[i] ^= 1;
    }
    return;
  }
  // Compare dictionary codes run by run — no string decoding.
  const encode::RleCodes& codes = fc.strings.codes;
  size_t run = codes.RunOf(base);
  size_t pos = base;
  size_t i = 0;
  while (i < n) {
    const uint8_t match = codes.values[run] == *code ? 1 : 0;
    const size_t run_end = std::min<size_t>(codes.ends[run], base + n);
    for (; pos < run_end; ++pos, ++i) eq[i] = match;
    ++run;
  }
  for (size_t j = 0; j < n; ++j) {
    const uint8_t valid = nulls[j];
    nulls[j] = valid ^ 1;
    if (!valid) eq[j] = 0;
  }
}

void Segment::RecordAccess(size_t off) {
  if (track_access_ && off < access_.size()) ++access_[off];
}

uint32_t Segment::AccessCount(size_t off) const {
  if (!track_access_ || off >= access_.size()) return 0;
  return access_[off];
}

size_t Segment::MemoryUsage() const {
  size_t bytes = sizeof(Segment);
  bytes += zone_map_.columns.capacity() * sizeof(ColumnZone);
  if (frozen_) return bytes + frozen_->MemoryUsage();
  for (const auto& col : columns_) bytes += col->MemoryUsage();
  bytes += ts_.capacity() * sizeof(Timestamp);
  bytes += freshness_.capacity() * sizeof(double);
  bytes += alive_.capacity() * sizeof(uint8_t);
  bytes += access_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace fungusdb
