#ifndef FUNGUSDB_STORAGE_VALUE_H_
#define FUNGUSDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/clock.h"
#include "common/result.h"
#include "storage/datatype.h"

namespace fungusdb {

/// A single dynamically-typed cell. Used at API boundaries (ingest rows,
/// query literals, result sets); the hot paths inside the engine operate
/// on typed column vectors instead.
///
/// A Value is either null (typeless) or holds exactly one of the five
/// storage types. Timestamps are int64 microseconds wrapped in a distinct
/// static type so they don't collapse into kInt64.
class Value {
 public:
  /// Null value; compares equal only to other nulls via Equals().
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Float64(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value TimestampVal(Timestamp t) {
    return Value(Payload(Ts{t}));
  }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(data_);
  }

  /// Type of a non-null value. Calling on null is a programming error.
  DataType type() const;

  /// True when the value is null or has type `t`.
  bool IsCompatibleWith(DataType t) const { return is_null() || type() == t; }

  /// Typed accessors; type must match (checked via assert in debug).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsFloat64() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  Timestamp AsTimestamp() const { return std::get<Ts>(data_).micros; }

  /// Numeric view: int64/float64/timestamp as double.
  /// Fails with TypeMismatch otherwise.
  Result<double> ToDouble() const;

  /// Deep equality: null == null, same type + same payload.
  bool Equals(const Value& other) const { return data_ == other.data_; }

  /// Three-way comparison for orderable same-type values; numeric types
  /// compare cross-type through double. Fails on null or on
  /// non-comparable type combinations.
  Result<int> Compare(const Value& other) const;

  /// Human-readable rendering ("null", "42", "3.14", "'abc'", ...).
  std::string ToString() const;

  /// Bytes attributable to this value (strings dominate).
  size_t MemoryUsage() const;

 private:
  struct Ts {
    Timestamp micros;
    bool operator==(const Ts&) const = default;
  };
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, bool, Ts>;

  explicit Value(Payload data) : data_(std::move(data)) {}

  Payload data_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_VALUE_H_
