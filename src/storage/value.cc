#include "storage/value.h"

#include <cassert>

#include "common/string_util.h"

namespace fungusdb {

DataType Value::type() const {
  assert(!is_null());
  switch (data_.index()) {
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kFloat64;
    case 3:
      return DataType::kString;
    case 4:
      return DataType::kBool;
    case 5:
      return DataType::kTimestamp;
    default:
      break;
  }
  return DataType::kInt64;  // unreachable; keeps -Werror happy
}

Result<double> Value::ToDouble() const {
  if (is_null()) return Status::TypeMismatch("null has no numeric value");
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(AsInt64());
    case DataType::kFloat64:
      return AsFloat64();
    case DataType::kTimestamp:
      return static_cast<double>(AsTimestamp());
    default:
      return Status::TypeMismatch("value of type " +
                                  std::string(DataTypeName(type())) +
                                  " is not numeric");
  }
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    return Status::TypeMismatch("cannot compare null values");
  }
  const DataType a = type();
  const DataType b = other.type();
  if (IsNumeric(a) && IsNumeric(b)) {
    const double x = ToDouble().value();
    const double y = other.ToDouble().value();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a != b) {
    return Status::TypeMismatch("cannot compare " +
                                std::string(DataTypeName(a)) + " with " +
                                std::string(DataTypeName(b)));
  }
  switch (a) {
    case DataType::kString: {
      const int cmp = AsString().compare(other.AsString());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    default:
      return Status::TypeMismatch("unsupported comparison");
  }
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  switch (type()) {
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kFloat64:
      return FormatDouble(AsFloat64(), 6);
    case DataType::kString: {
      // SQL-style quoting with '' escaping, so the rendering of a
      // string literal is always re-parseable by the lexer.
      std::string quoted = "'";
      for (char c : AsString()) {
        if (c == '\'') quoted += "''";
        else quoted.push_back(c);
      }
      quoted += "'";
      return quoted;
    }
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kTimestamp:
      return "ts:" + std::to_string(AsTimestamp());
  }
  return "?";
}

size_t Value::MemoryUsage() const {
  size_t base = sizeof(Value);
  if (!is_null() && type() == DataType::kString) {
    base += AsString().capacity();
  }
  return base;
}

}  // namespace fungusdb
