#include "storage/shard.h"

namespace fungusdb {

Segment* Shard::FindSegment(RowId row, size_t* offset) const {
  const uint64_t seg_no = row / rows_per_segment_;
  auto it = segments_.find(seg_no);
  if (it == segments_.end()) return nullptr;
  const size_t off = row - it->second->first_row();
  if (off >= it->second->num_rows()) return nullptr;
  *offset = off;
  return it->second.get();
}

Segment* Shard::GetOrCreateSegment(uint64_t seg_no, const Schema& schema,
                                   bool track_access) {
  auto it = segments_.find(seg_no);
  if (it == segments_.end()) {
    it = segments_
             .emplace(seg_no, std::make_unique<Segment>(
                                  schema, seg_no * rows_per_segment_,
                                  rows_per_segment_, track_access))
             .first;
  }
  // Appends only land in non-full segments, which are never frozen —
  // stamping the touch epoch is all the freeze policy needs here.
  it->second->set_last_touch_epoch(decay_epoch_);
  rows_materialized_ += it->second->MaterializePendingDecay(decay_epoch_);
  return it->second.get();
}

size_t Shard::FreezeColdSegments(uint64_t min_idle_epochs,
                                 size_t max_segments) {
  size_t frozen = 0;
  for (auto& [seg_no, seg] : segments_) {
    if (frozen >= max_segments) break;
    if (!seg->can_freeze()) continue;
    if (decay_epoch_ - seg->last_touch_epoch() < min_idle_epochs) continue;
    seg->Freeze();
    ++frozen;
  }
  segments_frozen_ += frozen;
  return frozen;
}

bool Shard::TryFoldUniformDecay(uint64_t seg_no, double delta) {
  auto it = segments_.find(seg_no);
  if (it == segments_.end()) return false;
  Segment& seg = *it->second;
  if (!seg.CanFoldUniformDecay(delta)) return false;
  seg.FoldUniformDecay(delta, decay_epoch_);
  return true;
}

size_t Shard::MaterializeAllPending() {
  size_t rows = 0;
  for (auto& [seg_no, seg] : segments_) {
    rows += seg->MaterializePendingDecay(decay_epoch_);
  }
  rows_materialized_ += rows;
  return rows;
}

Status Shard::SetFreshness(RowId row, double f) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  // First mutating touch: thaw if frozen, then pending decrements must
  // land before any per-row write (Segment::SetFreshness works in
  // stored space).
  TouchForWrite(seg);
  rows_materialized_ += seg->MaterializePendingDecay(decay_epoch_);
  if (!seg->IsLive(off)) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " is already dead");
  }
  if (seg->SetFreshness(off, f)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

Status Shard::DecayFreshness(RowId row, double delta) {
  if (delta < 0.0) {
    return Status::InvalidArgument("decay delta must be >= 0");
  }
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  TouchForWrite(seg);
  rows_materialized_ += seg->MaterializePendingDecay(decay_epoch_);
  if (!seg->IsLive(off)) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " is already dead");
  }
  if (seg->SetFreshness(off, seg->Freshness(off) - delta)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

Status Shard::Kill(RowId row) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  // Kill() leaves other rows' stored freshness alone, but the segment's
  // zone bounds and live set change — thaw if frozen, and keep the
  // invariant that a mutated segment holds no pending decay.
  TouchForWrite(seg);
  rows_materialized_ += seg->MaterializePendingDecay(decay_epoch_);
  if (seg->Kill(off)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

std::optional<RowId> Shard::OldestLive() const {
  for (const auto& [seg_no, seg] : segments_) {
    if (seg->live_count() == 0) continue;
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (seg->IsLive(off)) return seg->first_row() + off;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Shard::NewestLive() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    for (size_t off = seg.num_rows(); off > 0; --off) {
      if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Shard::NextLiveInShard(RowId row) const {
  const uint64_t seg_no = row / rows_per_segment_;
  for (auto it = segments_.lower_bound(seg_no); it != segments_.end();
       ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    const size_t n = seg.num_rows();
    size_t off = row > seg.first_row() ? row - seg.first_row() : 0;
    for (; off < n; ++off) {
      if (seg.IsLive(off)) return seg.first_row() + off;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Shard::PrevLiveInShard(RowId row) const {
  const uint64_t seg_no = row / rows_per_segment_;
  auto it = segments_.upper_bound(seg_no);
  while (it != segments_.begin()) {
    --it;
    const Segment& seg = *it->second;
    if (seg.live_count() == 0 || seg.first_row() > row) continue;
    const size_t start = std::min<uint64_t>(row - seg.first_row(),
                                            seg.num_rows() - 1);
    for (size_t off = start + 1; off > 0; --off) {
      if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
    }
  }
  return std::nullopt;
}

uint64_t Shard::ReclaimDeadSegments(std::vector<uint64_t>* removed) {
  uint64_t freed = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second->full() && it->second->live_count() == 0) {
      if (removed != nullptr) removed->push_back(it->first);
      it = segments_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  return freed;
}

size_t Shard::MemoryUsage() const {
  size_t bytes = sizeof(Shard);
  for (const auto& [seg_no, seg] : segments_) bytes += seg->MemoryUsage();
  return bytes;
}

}  // namespace fungusdb
