#ifndef FUNGUSDB_STORAGE_VALUE_SERDE_H_
#define FUNGUSDB_STORAGE_VALUE_SERDE_H_

#include "common/buffer_io.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fungusdb {

/// Binary encoding of a single Value: 1-byte type tag (0 = null) +
/// payload. Used by the snapshot format and by serialized summaries
/// that hold raw values (reservoir samples).
void WriteValue(BufferWriter& out, const Value& value);
Result<Value> ReadValue(BufferReader& in);

/// Binary encoding of a schema: field count + (name, type, nullable).
void WriteSchema(BufferWriter& out, const Schema& schema);
Result<Schema> ReadSchema(BufferReader& in);

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_VALUE_SERDE_H_
