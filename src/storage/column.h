#ifndef FUNGUSDB_STORAGE_COLUMN_H_
#define FUNGUSDB_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/datatype.h"
#include "storage/value.h"

namespace fungusdb {

/// Append-only typed column with a validity bitmap. One Column per field
/// per segment. Access by position is bounds-checked only in debug
/// builds; callers (Segment) own the invariant that positions are valid.
class Column {
 public:
  virtual ~Column() = default;

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  virtual DataType type() const = 0;
  virtual size_t size() const = 0;

  /// Appends a value; must be null (on nullable columns) or of the
  /// column's type — the Segment validates before calling.
  virtual void Append(const Value& value) = 0;

  /// Cell as a dynamic Value (null if invalid).
  virtual Value GetValue(size_t pos) const = 0;

  virtual bool IsNull(size_t pos) const = 0;

  /// Number of null cells; lets vectorized scans skip per-cell validity
  /// checks on all-valid columns.
  virtual size_t null_count() const = 0;

  /// Heap bytes held by this column.
  virtual size_t MemoryUsage() const = 0;

 protected:
  Column() = default;
};

namespace internal_column {

/// Maps a storage C++ type to its DataType tag and Value conversions.
template <typename T>
struct ColumnTraits;

template <>
struct ColumnTraits<int64_t> {
  static constexpr DataType kType = DataType::kInt64;
  static Value Wrap(int64_t v) { return Value::Int64(v); }
  static int64_t Unwrap(const Value& v) { return v.AsInt64(); }
};

template <>
struct ColumnTraits<double> {
  static constexpr DataType kType = DataType::kFloat64;
  static Value Wrap(double v) { return Value::Float64(v); }
  static double Unwrap(const Value& v) { return v.AsFloat64(); }
};

template <>
struct ColumnTraits<std::string> {
  static constexpr DataType kType = DataType::kString;
  static Value Wrap(std::string v) { return Value::String(std::move(v)); }
  static std::string Unwrap(const Value& v) { return v.AsString(); }
};

template <>
struct ColumnTraits<bool> {
  static constexpr DataType kType = DataType::kBool;
  static Value Wrap(bool v) { return Value::Bool(v); }
  static bool Unwrap(const Value& v) { return v.AsBool(); }
};

}  // namespace internal_column

/// Concrete column storing `T` contiguously. `TimestampColumn` is a
/// distinct subclass because Timestamp aliases int64_t.
template <typename T>
class TypedColumn : public Column {
 public:
  TypedColumn() = default;

  DataType type() const override {
    return internal_column::ColumnTraits<T>::kType;
  }
  size_t size() const override { return data_.size(); }

  void Append(const Value& value) override {
    if (value.is_null()) {
      data_.push_back(T{});
      valid_.push_back(false);
      ++null_count_;
    } else {
      data_.push_back(internal_column::ColumnTraits<T>::Unwrap(value));
      valid_.push_back(true);
    }
  }

  /// Typed fast-path append (non-null).
  void AppendTyped(T v) {
    data_.push_back(std::move(v));
    valid_.push_back(true);
  }

  Value GetValue(size_t pos) const override {
    assert(pos < data_.size());
    if (!valid_[pos]) return Value::Null();
    return internal_column::ColumnTraits<T>::Wrap(data_[pos]);
  }

  bool IsNull(size_t pos) const override {
    assert(pos < valid_.size());
    return !valid_[pos];
  }

  size_t null_count() const override { return null_count_; }

  /// Raw typed access for vectorized evaluation; caller checks IsNull.
  const T& at(size_t pos) const {
    assert(pos < data_.size());
    return data_[pos];
  }

  const std::vector<T>& data() const { return data_; }

  size_t MemoryUsage() const override {
    size_t bytes = data_.capacity() * sizeof(T) + valid_.capacity() / 8;
    if constexpr (std::is_same_v<T, std::string>) {
      for (const std::string& s : data_) bytes += s.capacity();
    }
    return bytes;
  }

 private:
  std::vector<T> data_;
  std::vector<bool> valid_;
  size_t null_count_ = 0;
};

using Int64Column = TypedColumn<int64_t>;
using Float64Column = TypedColumn<double>;
using StringColumn = TypedColumn<std::string>;
using BoolColumn = TypedColumn<bool>;

/// Timestamp column: same layout as Int64Column, distinct DataType.
class TimestampColumn : public Column {
 public:
  TimestampColumn() = default;

  DataType type() const override { return DataType::kTimestamp; }
  size_t size() const override { return data_.size(); }

  void Append(const Value& value) override {
    if (value.is_null()) {
      data_.push_back(0);
      valid_.push_back(false);
      ++null_count_;
    } else {
      data_.push_back(value.AsTimestamp());
      valid_.push_back(true);
    }
  }

  void AppendTyped(Timestamp t) {
    data_.push_back(t);
    valid_.push_back(true);
  }

  Value GetValue(size_t pos) const override {
    assert(pos < data_.size());
    if (!valid_[pos]) return Value::Null();
    return Value::TimestampVal(data_[pos]);
  }

  bool IsNull(size_t pos) const override {
    assert(pos < valid_.size());
    return !valid_[pos];
  }

  size_t null_count() const override { return null_count_; }

  Timestamp at(size_t pos) const {
    assert(pos < data_.size());
    return data_[pos];
  }

  const std::vector<Timestamp>& data() const { return data_; }

  size_t MemoryUsage() const override {
    return data_.capacity() * sizeof(Timestamp) + valid_.capacity() / 8;
  }

 private:
  std::vector<Timestamp> data_;
  std::vector<bool> valid_;
  size_t null_count_ = 0;
};

/// Creates an empty column of the given type.
std::unique_ptr<Column> MakeColumn(DataType type);

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_COLUMN_H_
