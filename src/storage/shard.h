#ifndef FUNGUSDB_STORAGE_SHARD_H_
#define FUNGUSDB_STORAGE_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/status.h"
#include "storage/segment.h"

namespace fungusdb {

using RowId = uint64_t;

/// One partition of a Table along the time axis. Segments — each a
/// contiguous insertion range — are dealt to shards round-robin by
/// segment number, so every shard owns a set of disjoint time ranges
/// spread evenly across the whole axis. That keeps temporally-biased
/// work (EGI seeds old data hardest) balanced across shards instead of
/// piling onto whichever shard holds the oldest range.
///
/// Threading contract: during a parallel phase each shard is mutated by
/// at most one worker (the one that claimed it), and no thread reads
/// another shard's state while any shard is being mutated. All
/// table-level structure changes (Append, reclamation) happen on the
/// coordinator thread between parallel phases. The shard itself
/// therefore needs no locks.
class Shard {
 public:
  Shard(uint32_t shard_id, size_t rows_per_segment)
      : shard_id_(shard_id), rows_per_segment_(rows_per_segment) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;
  Shard(Shard&&) = default;
  Shard& operator=(Shard&&) = default;

  uint32_t shard_id() const { return shard_id_; }

  /// Live tuples in this shard.
  uint64_t live_rows() const { return live_rows_; }

  /// Tuples of this shard discarded so far.
  uint64_t rows_killed() const { return rows_killed_; }

  size_t num_segments() const { return segments_.size(); }

  /// Segment holding `row` with its in-segment offset, or nullptr if the
  /// row was reclaimed, never appended, or routed to another shard.
  Segment* FindSegment(RowId row, size_t* offset) const;

  /// True if `row` belongs to this shard and is live.
  bool IsLive(RowId row) const {
    size_t off;
    Segment* seg = FindSegment(row, &off);
    return seg != nullptr && seg->IsLive(off);
  }

  /// Calls fn(RowId) for every live tuple of this shard in insertion
  /// order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& [seg_no, seg] : segments_) {
      if (seg->live_count() == 0) continue;
      const size_t n = seg->num_rows();
      for (size_t off = 0; off < n; ++off) {
        if (seg->IsLive(off)) fn(seg->first_row() + off);
      }
    }
  }

  /// Segment for `seg_no`, creating it if absent (Append path). Also
  /// materializes the segment's pending decay: appending is a mutating
  /// touch, and a new row must not inherit decrements from ticks that
  /// predate it.
  Segment* GetOrCreateSegment(uint64_t seg_no, const Schema& schema,
                              bool track_access);

  /// Notes one appended row (Append goes through the segment directly).
  void NoteAppend() { ++live_rows_; }

  // --- Lazy decay (DESIGN.md §14). ---

  /// Advances the shard's tick epoch. Coordinator thread, once per
  /// decay tick over the owning table, before any plan or apply work.
  void AdvanceDecayEpoch() { ++decay_epoch_; }

  /// Ticks folded or accounted so far (every segment's decay_epoch is
  /// <= this — the `decay-epoch` fsck rule).
  uint64_t decay_epoch() const { return decay_epoch_; }

  /// Folds `delta` as a uniform decrement over every live row of
  /// segment `seg_no` if the segment proves that safe (see
  /// Segment::CanFoldUniformDecay). Returns whether it folded; on
  /// false the caller decays row by row.
  FUNGUS_REQUIRES_APPLY_PHASE bool TryFoldUniformDecay(uint64_t seg_no,
                                                       double delta);

  /// Applies every segment's pending decrements (snapshot write, fsck
  /// entry). Returns live rows rewritten.
  size_t MaterializeAllPending();

  /// Cumulative live-row rewrites performed by lazy materialization
  /// (the price actually paid for deferred ticks).
  uint64_t rows_materialized() const { return rows_materialized_; }

  // --- Tiered storage (DESIGN.md §15). ---

  /// Freezes cold full segments into the compact encoded tier. A
  /// segment is cold when at least `min_idle_epochs` ticks passed since
  /// its last mutating touch (append, per-row write, thaw — uniform
  /// folds do not reset the clock). At most `max_segments` freeze per
  /// call; oldest first. Returns segments frozen.
  FUNGUS_REQUIRES_APPLY_PHASE size_t FreezeColdSegments(
      uint64_t min_idle_epochs, size_t max_segments);

  /// Cumulative freezes / mutating-touch thaws performed by this shard.
  uint64_t segments_frozen() const { return segments_frozen_; }
  uint64_t thaw_count() const { return thaw_count_; }

  // --- Per-row mutators (update shard-local counters only). ---
  //
  // FUNGUS_REQUIRES_APPLY_PHASE: these mutate shard state without a
  // lock, so they may only run on the coordinator thread or inside the
  // apply phase of a parallel tick (one worker per shard). The lint
  // pass enforces the caller allowlist.

  /// Sets freshness (clamped to [0, 1]); 0 discards the tuple.
  FUNGUS_REQUIRES_APPLY_PHASE Status SetFreshness(RowId row, double f);

  /// Decreases freshness by `delta` >= 0; discards at 0.
  FUNGUS_REQUIRES_APPLY_PHASE Status DecayFreshness(RowId row, double delta);

  /// Discards the tuple immediately.
  FUNGUS_REQUIRES_APPLY_PHASE Status Kill(RowId row);

  // --- Shard-local navigation along the time axis. ---

  std::optional<RowId> OldestLive() const;
  std::optional<RowId> NewestLive() const;

  /// Nearest live row of THIS shard at or after / at or before `row`
  /// (used by per-shard age-biased seed sampling).
  std::optional<RowId> NextLiveInShard(RowId row) const;
  std::optional<RowId> PrevLiveInShard(RowId row) const;

  /// Frees full segments with zero live tuples. `removed` (optional)
  /// receives the freed segment numbers so the table can drop them from
  /// its routing map. Returns segments freed.
  uint64_t ReclaimDeadSegments(std::vector<uint64_t>* removed);

  /// Recomputes every segment's zone map exactly, tightening bounds
  /// that lazy widening left loose (snapshot/journal load, compaction).
  /// Materializes pending decay first — a recount must describe what
  /// rows actually hold.
  void RecomputeZoneMaps() {
    for (auto& [seg_no, seg] : segments_) {
      // A recount is a mutating touch: RecomputeZoneMap thaws a frozen
      // segment internally; account for it here.
      if (seg->is_frozen()) {
        ++thaw_count_;
        seg->set_last_touch_epoch(decay_epoch_);
      }
      rows_materialized_ += seg->MaterializePendingDecay(decay_epoch_);
      seg->RecomputeZoneMap();
    }
  }

  /// Ordered (by segment number == time order) access for iteration,
  /// persistence and tests.
  const std::map<uint64_t, std::unique_ptr<Segment>>& segments() const {
    return segments_;
  }

  size_t MemoryUsage() const;

 private:
  // Seeds deliberate corruption for fsck tests (verify/corruptor.h).
  friend class TestCorruptor;

  uint32_t shard_id_;
  size_t rows_per_segment_;
  // Keyed by global segment number; ordered, so shard iteration follows
  // the time axis.
  std::map<uint64_t, std::unique_ptr<Segment>> segments_;
  uint64_t live_rows_ = 0;
  uint64_t rows_killed_ = 0;
  // Tick counter for lazy decay: advanced once per decay tick by the
  // coordinator; folds stamp it into segments. Plan/apply workers only
  // read it.
  uint64_t decay_epoch_ = 0;
  uint64_t rows_materialized_ = 0;
  uint64_t segments_frozen_ = 0;
  uint64_t thaw_count_ = 0;

  /// Thaws `seg` if frozen — the prologue of every per-row mutator —
  /// and stamps the touch epoch either way.
  void TouchForWrite(Segment* seg) {
    if (seg->is_frozen()) {
      seg->Thaw();
      ++thaw_count_;
    }
    seg->set_last_touch_epoch(decay_epoch_);
  }
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_SHARD_H_
