#include "storage/table.h"

#include <cassert>

namespace fungusdb {

Table::Table(std::string name, Schema schema, TableOptions options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options) {
  assert(options_.rows_per_segment > 0);
  if (options_.num_shards == 0) options_.num_shards = 1;
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.emplace_back(static_cast<uint32_t>(s),
                         options_.rows_per_segment);
  }
}

Result<RowId> Table::Append(const std::vector<Value>& values, Timestamp now) {
  if (values.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " does not match " +
        "schema arity " + std::to_string(schema_.num_fields()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Field& f = schema_.field(i);
    if (values[i].is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("null value for non-nullable field '" +
                                       f.name + "'");
      }
    } else if (values[i].type() != f.type) {
      return Status::TypeMismatch(
          "value of type " + std::string(DataTypeName(values[i].type())) +
          " for field '" + f.name + "' of type " +
          std::string(DataTypeName(f.type)));
    }
  }

  const RowId row = next_row_;
  const uint64_t seg_no = row / options_.rows_per_segment;
  Shard& shard = ShardFor(row);
  Segment* seg =
      shard.GetOrCreateSegment(seg_no, schema_, options_.track_access);
  segment_index_[seg_no] = seg;
  seg->Append(values, now);
  shard.NoteAppend();
  ++next_row_;
  return row;
}

uint64_t Table::live_rows() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.live_rows();
  return total;
}

uint64_t Table::rows_killed() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.rows_killed();
  return total;
}

Segment* Table::FindSegment(RowId row, size_t* offset) const {
  if (row >= next_row_) return nullptr;
  const uint64_t seg_no = row / options_.rows_per_segment;
  auto it = segment_index_.find(seg_no);
  if (it == segment_index_.end()) return nullptr;
  const size_t off = row - it->second->first_row();
  if (off >= it->second->num_rows()) return nullptr;
  *offset = off;
  return it->second;
}

bool Table::Contains(RowId row) const {
  size_t off;
  return FindSegment(row, &off) != nullptr;
}

bool Table::IsLive(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg != nullptr && seg->IsLive(off);
}

double Table::Freshness(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg == nullptr ? 0.0 : seg->Freshness(off);
}

Status Table::SetFreshness(RowId row, double f) {
  if (row >= next_row_) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return ShardFor(row).SetFreshness(row, f);
}

Status Table::DecayFreshness(RowId row, double delta) {
  if (row >= next_row_) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return ShardFor(row).DecayFreshness(row, delta);
}

Status Table::Kill(RowId row) {
  if (row >= next_row_) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return ShardFor(row).Kill(row);
}

Result<Timestamp> Table::InsertTime(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return seg->InsertTime(off);
}

Result<Value> Table::GetValue(RowId row, size_t col) const {
  if (col >= schema_.num_fields()) {
    return Status::OutOfRange("column index " + std::to_string(col) +
                              " out of range");
  }
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return seg->GetValue(off, col);
}

Result<Value> Table::GetValueByName(RowId row,
                                    const std::string& name) const {
  if (name == kTimestampColumnName) {
    FUNGUSDB_ASSIGN_OR_RETURN(Timestamp t, InsertTime(row));
    return Value::TimestampVal(t);
  }
  if (name == kFreshnessColumnName) {
    if (!Contains(row)) {
      return Status::NotFound("row " + std::to_string(row) + " not present");
    }
    return Value::Float64(Freshness(row));
  }
  auto idx = schema_.FindField(name);
  if (!idx.has_value()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return GetValue(row, *idx);
}

std::optional<RowId> Table::OldestLive() const {
  for (const auto& [seg_no, seg] : segment_index_) {
    if (seg->live_count() == 0) continue;
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (seg->IsLive(off)) return seg->first_row() + off;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::NewestLive() const {
  for (auto it = segment_index_.rbegin(); it != segment_index_.rend();
       ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    for (size_t off = seg.num_rows(); off > 0; --off) {
      if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::PrevLive(RowId row) const {
  if (row == 0 || next_row_ == 0) return std::nullopt;
  RowId cursor = std::min<RowId>(row, next_row_) - 1;
  // Walk segments in descending order starting at cursor's segment.
  uint64_t seg_no = cursor / options_.rows_per_segment;
  auto it = segment_index_.upper_bound(seg_no);
  while (it != segment_index_.begin()) {
    --it;
    const Segment& seg = *it->second;
    if (seg.live_count() > 0 && seg.first_row() <= cursor) {
      size_t start =
          std::min<uint64_t>(cursor - seg.first_row(), seg.num_rows() - 1);
      for (size_t off = start + 1; off > 0; --off) {
        if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
      }
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::NextLive(RowId row) const {
  const RowId cursor = row + 1;
  if (cursor >= next_row_) return std::nullopt;
  const uint64_t seg_no = cursor / options_.rows_per_segment;
  for (auto it = segment_index_.lower_bound(seg_no);
       it != segment_index_.end(); ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    const size_t n = seg.num_rows();
    size_t off = cursor > seg.first_row() ? cursor - seg.first_row() : 0;
    for (; off < n; ++off) {
      if (seg.IsLive(off)) return seg.first_row() + off;
    }
  }
  return std::nullopt;
}

std::vector<const Segment*> Table::LiveSegments() const {
  std::vector<const Segment*> out;
  out.reserve(segment_index_.size());
  for (const auto& [seg_no, seg] : segment_index_) {
    if (seg->live_count() > 0) out.push_back(seg);
  }
  return out;
}

std::vector<RowId> Table::LiveRows() const {
  std::vector<RowId> out;
  out.reserve(live_rows());
  ForEachLive([&out](RowId row) { out.push_back(row); });
  return out;
}

void Table::RecordAccess(RowId row) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg != nullptr) seg->RecordAccess(off);
}

uint32_t Table::AccessCount(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg == nullptr ? 0 : seg->AccessCount(off);
}

bool Table::TryFoldUniformDecay(uint64_t seg_no, double delta) {
  if (!options_.lazy_decay) return false;
  Shard& shard = shards_[seg_no % shards_.size()];
  return shard.TryFoldUniformDecay(seg_no, delta);
}

size_t Table::MaterializePendingDecay() {
  size_t rows = 0;
  for (Shard& shard : shards_) rows += shard.MaterializeAllPending();
  return rows;
}

uint64_t Table::rows_materialized() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.rows_materialized();
  return total;
}

size_t Table::FreezeColdSegments(uint64_t min_idle_epochs,
                                 size_t max_segments) {
  if (options_.track_access) return 0;
  size_t frozen = 0;
  for (Shard& shard : shards_) {
    if (frozen >= max_segments) break;
    frozen += shard.FreezeColdSegments(min_idle_epochs,
                                       max_segments - frozen);
  }
  return frozen;
}

StorageStats Table::GetStorageStats() const {
  StorageStats stats;
  stats.total_segments = segment_index_.size();
  for (const Shard& shard : shards_) {
    stats.segments_frozen_total += shard.segments_frozen();
    stats.thaw_count += shard.thaw_count();
    for (const auto& [seg_no, seg] : shard.segments()) {
      if (!seg->is_frozen()) continue;
      ++stats.frozen_segments;
      stats.encoded_bytes += seg->MemoryUsage();
      stats.plain_bytes_before += seg->frozen().plain_bytes;
    }
  }
  return stats;
}

uint64_t Table::ReclaimDeadSegments() {
  uint64_t freed = 0;
  std::vector<uint64_t> removed;
  for (Shard& shard : shards_) {
    removed.clear();
    freed += shard.ReclaimDeadSegments(&removed);
    for (uint64_t seg_no : removed) segment_index_.erase(seg_no);
  }
  return freed;
}

size_t Table::MemoryUsage() const {
  size_t bytes = sizeof(Table);
  for (const Shard& shard : shards_) bytes += shard.MemoryUsage();
  return bytes;
}

}  // namespace fungusdb
