#include "storage/table.h"

#include <cassert>

namespace fungusdb {

Table::Table(std::string name, Schema schema, TableOptions options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options) {
  assert(options_.rows_per_segment > 0);
}

Result<RowId> Table::Append(const std::vector<Value>& values, Timestamp now) {
  if (values.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " does not match " +
        "schema arity " + std::to_string(schema_.num_fields()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Field& f = schema_.field(i);
    if (values[i].is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("null value for non-nullable field '" +
                                       f.name + "'");
      }
    } else if (values[i].type() != f.type) {
      return Status::TypeMismatch(
          "value of type " + std::string(DataTypeName(values[i].type())) +
          " for field '" + f.name + "' of type " +
          std::string(DataTypeName(f.type)));
    }
  }

  const RowId row = next_row_;
  const uint64_t seg_no = row / options_.rows_per_segment;
  auto it = segments_.find(seg_no);
  if (it == segments_.end()) {
    it = segments_
             .emplace(seg_no, std::make_unique<Segment>(
                                  schema_, seg_no * options_.rows_per_segment,
                                  options_.rows_per_segment,
                                  options_.track_access))
             .first;
  }
  it->second->Append(values, now);
  ++next_row_;
  ++live_rows_;
  return row;
}

Segment* Table::FindSegment(RowId row, size_t* offset) const {
  if (row >= next_row_) return nullptr;
  const uint64_t seg_no = row / options_.rows_per_segment;
  auto it = segments_.find(seg_no);
  if (it == segments_.end()) return nullptr;
  const size_t off = row - it->second->first_row();
  if (off >= it->second->num_rows()) return nullptr;
  *offset = off;
  return it->second.get();
}

bool Table::Contains(RowId row) const {
  size_t off;
  return FindSegment(row, &off) != nullptr;
}

bool Table::IsLive(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg != nullptr && seg->IsLive(off);
}

double Table::Freshness(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg == nullptr ? 0.0 : seg->Freshness(off);
}

Status Table::SetFreshness(RowId row, double f) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  if (!seg->IsLive(off)) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " is already dead");
  }
  if (seg->SetFreshness(off, f)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

Status Table::DecayFreshness(RowId row, double delta) {
  if (delta < 0.0) {
    return Status::InvalidArgument("decay delta must be >= 0");
  }
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  if (!seg->IsLive(off)) {
    return Status::FailedPrecondition("row " + std::to_string(row) +
                                      " is already dead");
  }
  if (seg->SetFreshness(off, seg->Freshness(off) - delta)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

Status Table::Kill(RowId row) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  if (seg->Kill(off)) {
    --live_rows_;
    ++rows_killed_;
  }
  return Status::OK();
}

Result<Timestamp> Table::InsertTime(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return seg->InsertTime(off);
}

Result<Value> Table::GetValue(RowId row, size_t col) const {
  if (col >= schema_.num_fields()) {
    return Status::OutOfRange("column index " + std::to_string(col) +
                              " out of range");
  }
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg == nullptr) {
    return Status::NotFound("row " + std::to_string(row) + " not present");
  }
  return seg->GetValue(off, col);
}

Result<Value> Table::GetValueByName(RowId row,
                                    const std::string& name) const {
  if (name == kTimestampColumnName) {
    FUNGUSDB_ASSIGN_OR_RETURN(Timestamp t, InsertTime(row));
    return Value::TimestampVal(t);
  }
  if (name == kFreshnessColumnName) {
    if (!Contains(row)) {
      return Status::NotFound("row " + std::to_string(row) + " not present");
    }
    return Value::Float64(Freshness(row));
  }
  auto idx = schema_.FindField(name);
  if (!idx.has_value()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return GetValue(row, *idx);
}

std::optional<RowId> Table::OldestLive() const {
  for (const auto& [seg_no, seg] : segments_) {
    if (seg->live_count() == 0) continue;
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (seg->IsLive(off)) return seg->first_row() + off;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::NewestLive() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    for (size_t off = seg.num_rows(); off > 0; --off) {
      if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::PrevLive(RowId row) const {
  if (row == 0 || next_row_ == 0) return std::nullopt;
  RowId cursor = std::min<RowId>(row, next_row_) - 1;
  // Walk segments in descending order starting at cursor's segment.
  uint64_t seg_no = cursor / options_.rows_per_segment;
  auto it = segments_.upper_bound(seg_no);
  while (it != segments_.begin()) {
    --it;
    const Segment& seg = *it->second;
    if (seg.live_count() > 0 && seg.first_row() <= cursor) {
      size_t start =
          std::min<uint64_t>(cursor - seg.first_row(), seg.num_rows() - 1);
      for (size_t off = start + 1; off > 0; --off) {
        if (seg.IsLive(off - 1)) return seg.first_row() + off - 1;
      }
    }
  }
  return std::nullopt;
}

std::optional<RowId> Table::NextLive(RowId row) const {
  const RowId cursor = row + 1;
  if (cursor >= next_row_) return std::nullopt;
  const uint64_t seg_no = cursor / options_.rows_per_segment;
  for (auto it = segments_.lower_bound(seg_no); it != segments_.end(); ++it) {
    const Segment& seg = *it->second;
    if (seg.live_count() == 0) continue;
    const size_t n = seg.num_rows();
    size_t off = cursor > seg.first_row() ? cursor - seg.first_row() : 0;
    for (; off < n; ++off) {
      if (seg.IsLive(off)) return seg.first_row() + off;
    }
  }
  return std::nullopt;
}

std::vector<RowId> Table::LiveRows() const {
  std::vector<RowId> out;
  out.reserve(live_rows_);
  ForEachLive([&out](RowId row) { out.push_back(row); });
  return out;
}

void Table::RecordAccess(RowId row) {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  if (seg != nullptr) seg->RecordAccess(off);
}

uint32_t Table::AccessCount(RowId row) const {
  size_t off;
  Segment* seg = FindSegment(row, &off);
  return seg == nullptr ? 0 : seg->AccessCount(off);
}

uint64_t Table::ReclaimDeadSegments() {
  uint64_t freed = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second->full() && it->second->live_count() == 0) {
      it = segments_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  return freed;
}

size_t Table::MemoryUsage() const {
  size_t bytes = sizeof(Table);
  for (const auto& [seg_no, seg] : segments_) bytes += seg->MemoryUsage();
  return bytes;
}

}  // namespace fungusdb
