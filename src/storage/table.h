#ifndef FUNGUSDB_STORAGE_TABLE_H_
#define FUNGUSDB_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "storage/schema.h"
#include "storage/segment.h"
#include "storage/shard.h"
#include "storage/value.h"

namespace fungusdb {

/// Globally-unique, never-reused tuple identifier: the position of the
/// tuple in the table's append sequence. Row ids are totally ordered by
/// insertion time — the paper's time axis — so "direct neighbouring
/// tuples" (EGI) are exactly adjacent row ids.
using RowId = uint64_t;

struct TableOptions {
  /// Tuples per segment; segments are the unit of space reclamation.
  size_t rows_per_segment = 4096;

  /// Maintain a per-tuple access counter (needed by ImportanceFungus).
  bool track_access = false;

  /// Partitions of the table along the time axis (segments are dealt to
  /// shards round-robin by segment number). 1 keeps the classic
  /// single-partition layout; > 1 enables shard-parallel decay ticks.
  /// The shard count is a property of the table, NOT of the thread pool,
  /// so decay outcomes never depend on how many threads execute them.
  size_t num_shards = 1;

  /// Statements against this table slower than this (wall-clock
  /// microseconds) hit the slow-query log; 0 defers to the database-wide
  /// threshold. Runtime tuning knob only — NOT serialized in snapshots.
  int64_t slow_query_micros = 0;

  /// Fold provably-uniform decay ticks into per-segment pending
  /// decrements instead of rewriting rows (DESIGN.md §14). Observable
  /// state is bit-identical either way — this is purely an execution
  /// strategy, so it is a runtime knob, NOT serialized in snapshots or
  /// the journal. Off exists for differential testing and bisection.
  bool lazy_decay = true;

  /// Freeze a full segment into the compact encoded cold tier once this
  /// many decay ticks pass without a mutating touch (DESIGN.md §15).
  /// 0 disables freezing. Like lazy_decay this is purely a
  /// representation strategy — observable state is bit-identical with
  /// freezing on or off — so it is a runtime knob, NOT serialized.
  /// Ignored when track_access is set (hot access counters pin the
  /// plain representation).
  uint64_t freeze_after_idle_ticks = 0;
};

/// Point-in-time storage-tier accounting for one table, summed over
/// shards. Reported by `\storage`, the rot report and the
/// fungusdb.storage.* metrics.
struct StorageStats {
  uint64_t total_segments = 0;
  uint64_t frozen_segments = 0;
  /// Heap bytes the frozen segments hold now (encoded form).
  uint64_t encoded_bytes = 0;
  /// Heap bytes the same segments held in plain form at freeze time.
  uint64_t plain_bytes_before = 0;
  /// Cumulative freeze / mutating-touch-thaw counts.
  uint64_t segments_frozen_total = 0;
  uint64_t thaw_count = 0;
};

/// The paper's relation R(t, f, A1..An): an append-only, insertion-ordered
/// columnar table whose tuples carry an insertion timestamp `t` and a
/// freshness `f` in (0, 1]. Fungi decrease freshness; a tuple whose
/// freshness reaches 0 is discarded (tombstoned, and its segment freed
/// once fully dead).
///
/// Storage is partitioned into `num_shards` Shards, each owning its
/// segments and live/killed counts; the table keeps an ordered, non-owning
/// segment map for RowId routing and global time-axis iteration.
///
/// Threading contract: structural mutations (Append, reclamation) and
/// cross-shard reads are coordinator-thread-only. During a parallel decay
/// phase, workers mutate disjoint shards through shard-scoped mutators
/// and the coordinator stays out until the barrier. Aggregate counters
/// (live_rows, rows_killed) are therefore summed over shards on demand
/// instead of being maintained centrally.
///
/// Snapshot-read visibility: the table itself carries no versioning —
/// concurrent readers (core/session.h) are made safe purely by the
/// epoch scheme in core/epoch.h. The single writer mutates only inside
/// an exclusive write section, and every tick-shaped unit of mutation
/// ends with an epoch publication; a reader's pin excludes the writer
/// for the pin's duration, so any traversal of segments, tombstones and
/// freshness values under one pin observes one published epoch — never
/// a half-applied tick. Code reading table state off the writer thread
/// without a pin is a bug, whatever race detectors say.
class Table {
 public:
  Table(std::string name, Schema schema, TableOptions options = {});

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const TableOptions& options() const { return options_; }

  /// Adjusts the freeze-after-idle runtime knob post-construction
  /// (0 disables freezing). Writer-thread-only, like every structural
  /// mutation; takes effect on the next decay tick.
  void set_freeze_after_idle_ticks(uint64_t ticks) {
    options_.freeze_after_idle_ticks = ticks;
  }

  /// Appends one tuple with insertion time `now` and freshness 1.0.
  /// Validates arity, types, and nullability against the schema.
  Result<RowId> Append(const std::vector<Value>& values, Timestamp now);

  /// Total tuples ever appended (== next RowId).
  uint64_t total_appended() const { return next_row_; }

  /// Currently live tuples — the extent of R (summed over shards).
  uint64_t live_rows() const;

  /// Tuples discarded so far (by fungi or consuming queries).
  uint64_t rows_killed() const;

  /// True if the row id was appended and its segment still exists.
  bool Contains(RowId row) const;

  /// True if the tuple exists and has freshness > 0.
  bool IsLive(RowId row) const;

  /// Freshness in [0, 1]; 0 for dead or reclaimed tuples.
  double Freshness(RowId row) const;

  /// Sets freshness (clamped to [0, 1]); freshness 0 discards the tuple.
  Status SetFreshness(RowId row, double f);

  /// Decreases freshness by `delta` (>= 0); discards at 0.
  Status DecayFreshness(RowId row, double delta);

  /// Discards the tuple immediately (consuming queries, retention).
  Status Kill(RowId row);

  /// Insertion time `t`. Fails on reclaimed rows.
  Result<Timestamp> InsertTime(RowId row) const;

  /// Cell accessor for user column `col`. Works on live and dead (but
  /// not reclaimed) tuples; fungi never alter attribute values.
  Result<Value> GetValue(RowId row, size_t col) const;

  /// Accessor by column name; also resolves `__ts` and `__freshness`.
  Result<Value> GetValueByName(RowId row, const std::string& name) const;

  /// Oldest / newest live tuple, if any.
  std::optional<RowId> OldestLive() const;
  std::optional<RowId> NewestLive() const;

  /// Nearest live neighbour along the time axis, if any.
  std::optional<RowId> PrevLive(RowId row) const;
  std::optional<RowId> NextLive(RowId row) const;

  /// Calls fn(RowId) for every live tuple in insertion order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const auto& [seg_no, seg] : segment_index_) {
      if (seg->live_count() == 0) continue;
      const size_t n = seg->num_rows();
      for (size_t off = 0; off < n; ++off) {
        if (seg->IsLive(off)) fn(seg->first_row() + off);
      }
    }
  }

  /// Calls fn(const Segment&) for every segment holding at least one
  /// live tuple, in insertion order. The fast scan path in the query
  /// engine uses this to read typed columns directly instead of going
  /// through per-row id resolution.
  template <typename Fn>
  void ForEachLiveSegment(Fn&& fn) const {
    for (const auto& [seg_no, seg] : segment_index_) {
      if (seg->live_count() == 0) continue;
      fn(static_cast<const Segment&>(*seg));
    }
  }

  /// Segments with at least one live tuple, in insertion order — the
  /// morsel list for parallel scans. Pointers stay valid until the next
  /// structural mutation (Append / reclamation).
  std::vector<const Segment*> LiveSegments() const;

  /// Materializes the live row ids in insertion order.
  std::vector<RowId> LiveRows() const;

  /// Bumps the access counter (no-op unless options().track_access).
  void RecordAccess(RowId row);
  uint32_t AccessCount(RowId row) const;

  /// Frees full segments with zero live tuples. Returns segments freed.
  /// This is FungusDB's compaction: reclaimed rows stop counting toward
  /// MemoryUsage() and Contains() becomes false for them.
  uint64_t ReclaimDeadSegments();

  /// Recomputes every segment's zone map exactly (O(rows)); tightens
  /// bounds that incremental widening left loose. Coordinator-only.
  void RecomputeZoneMaps() {
    for (Shard& shard : shards_) shard.RecomputeZoneMaps();
  }

  /// Number of segments currently held (live or partially dead).
  size_t num_segments() const { return segment_index_.size(); }

  // --- Lazy decay (DESIGN.md §14). ---

  /// Advances every shard's tick epoch. Called by the scheduler once
  /// per decay tick over this table, before plan/apply work starts.
  /// Coordinator-only.
  void AdvanceDecayEpochs() {
    for (Shard& shard : shards_) shard.AdvanceDecayEpoch();
  }

  /// Folds `delta` as a uniform decrement over segment `seg_no` when
  /// lazy decay is enabled and the segment proves it safe. Returns
  /// whether it folded; on false the caller decays row by row. Same
  /// threading contract as the per-row mutators: coordinator thread or
  /// the owning shard's apply-phase worker.
  bool TryFoldUniformDecay(uint64_t seg_no, double delta);

  /// Applies all pending decrements everywhere (snapshot write, tests).
  /// Returns live rows rewritten. Coordinator-only.
  size_t MaterializePendingDecay();

  /// Cumulative live-row rewrites performed by lazy materialization,
  /// summed over shards.
  uint64_t rows_materialized() const;

  // --- Tiered storage (DESIGN.md §15). ---

  /// Freezes cold full segments (idle for >= `min_idle_epochs` ticks)
  /// into the encoded tier, at most `max_segments` across the table
  /// (oldest first per shard; the bench uses the cap to build exact
  /// frozen fractions). Returns segments frozen. Same threading
  /// contract as the per-row mutators.
  size_t FreezeColdSegments(uint64_t min_idle_epochs,
                            size_t max_segments = SIZE_MAX);

  /// Current + cumulative tier accounting, summed over shards.
  StorageStats GetStorageStats() const;

  // --- Sharding. ---

  size_t num_shards() const { return shards_.size(); }

  /// Shard owning `row` (valid for any RowId, even reclaimed ones).
  uint32_t ShardIdOf(RowId row) const {
    return static_cast<uint32_t>((row / options_.rows_per_segment) %
                                 shards_.size());
  }

  Shard& shard(size_t i) { return shards_[i]; }
  const Shard& shard(size_t i) const { return shards_[i]; }

  /// Heap bytes held by all current segments.
  size_t MemoryUsage() const;

  /// Read-only view of the routing index, keyed by segment number. For
  /// the invariant checker (cross-checked against shard ownership) and
  /// other verification walkers; regular callers use the iteration
  /// helpers above.
  const std::map<uint64_t, Segment*>& segment_index() const {
    return segment_index_;
  }

 private:
  // Seeds deliberate corruption for fsck tests (verify/corruptor.h).
  friend class TestCorruptor;

  /// Segment holding `row`, with its offset, or nullptr if reclaimed
  /// or out of range.
  Segment* FindSegment(RowId row, size_t* offset) const;

  /// Shard owning `row`'s segment.
  Shard& ShardFor(RowId row) { return shards_[ShardIdOf(row)]; }

  std::string name_;
  Schema schema_;
  TableOptions options_;
  std::vector<Shard> shards_;
  // Non-owning routing index keyed by segment number (first_row /
  // rows_per_segment); ordered, so iteration is insertion order and
  // reclaimed ranges are simply absent. Mutated only on the coordinator
  // thread (Append / reclamation); parallel phases read it freely.
  std::map<uint64_t, Segment*> segment_index_;
  RowId next_row_ = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_TABLE_H_
