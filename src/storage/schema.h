#ifndef FUNGUSDB_STORAGE_SCHEMA_H_
#define FUNGUSDB_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/datatype.h"

namespace fungusdb {

/// One user column: name, type, nullability.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = false;

  bool operator==(const Field&) const = default;

  /// "name type" or "name type null".
  std::string ToString() const;
};

/// Ordered set of user columns. The per-tuple system columns `t`
/// (insertion time) and `f` (freshness) from the paper are *not* part of
/// the schema; the Table maintains them implicitly and queries address
/// them via the reserved names `__ts` and `__freshness`.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Validates field names: non-empty, unique, no `__` reserved prefix.
  static Result<Schema> Make(std::vector<Field> fields);

  /// Parses the textual form ToString() produces — "(a int64, b
  /// float64 null)" — used by fungusql \create and the wire \create
  /// command. Whitespace-tolerant; fails with ParseError.
  static Result<Schema> Parse(std::string_view spec);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or nullopt.
  std::optional<size_t> FindField(const std::string& name) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// "(a int64, b float64 null)".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Reserved query-visible names for the system columns.
inline constexpr const char* kTimestampColumnName = "__ts";
inline constexpr const char* kFreshnessColumnName = "__freshness";

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_SCHEMA_H_
