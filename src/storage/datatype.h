#ifndef FUNGUSDB_STORAGE_DATATYPE_H_
#define FUNGUSDB_STORAGE_DATATYPE_H_

#include <string_view>

namespace fungusdb {

/// Column data types supported by the storage engine.
enum class DataType {
  kInt64,
  kFloat64,
  kString,
  kBool,
  kTimestamp,
};

/// Canonical lowercase name ("int64", "float64", ...).
std::string_view DataTypeName(DataType type);

/// True for types with a total numeric order usable in range predicates.
bool IsNumeric(DataType type);

}  // namespace fungusdb

#endif  // FUNGUSDB_STORAGE_DATATYPE_H_
