#include "storage/column.h"

namespace fungusdb {

std::unique_ptr<Column> MakeColumn(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return std::make_unique<Int64Column>();
    case DataType::kFloat64:
      return std::make_unique<Float64Column>();
    case DataType::kString:
      return std::make_unique<StringColumn>();
    case DataType::kBool:
      return std::make_unique<BoolColumn>();
    case DataType::kTimestamp:
      return std::make_unique<TimestampColumn>();
  }
  return nullptr;
}

}  // namespace fungusdb
