#include "storage/schema.h"

#include <unordered_set>

namespace fungusdb {

std::string Field::ToString() const {
  std::string out = name;
  out += " ";
  out += DataTypeName(type);
  if (nullable) out += " null";
  return out;
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("field name must not be empty");
    }
    if (f.name.rfind("__", 0) == 0) {
      return Status::InvalidArgument("field name '" + f.name +
                                     "' uses the reserved '__' prefix");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name '" + f.name + "'");
    }
  }
  return Schema(std::move(fields));
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fungusdb
