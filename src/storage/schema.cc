#include "storage/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace fungusdb {
namespace {

Result<DataType> DataTypeByName(std::string_view name) {
  for (DataType t : {DataType::kInt64, DataType::kFloat64,
                     DataType::kString, DataType::kBool,
                     DataType::kTimestamp}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::ParseError("unknown type '" + std::string(name) + "'");
}

}  // namespace

std::string Field::ToString() const {
  std::string out = name;
  out += " ";
  out += DataTypeName(type);
  if (nullable) out += " null";
  return out;
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("field name must not be empty");
    }
    if (f.name.rfind("__", 0) == 0) {
      return Status::InvalidArgument("field name '" + f.name +
                                     "' uses the reserved '__' prefix");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name '" + f.name + "'");
    }
  }
  return Schema(std::move(fields));
}

Result<Schema> Schema::Parse(std::string_view spec) {
  const size_t open = spec.find('(');
  const size_t close = spec.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::ParseError("expected (col type [null], ...)");
  }
  const std::string_view body = spec.substr(open + 1, close - open - 1);
  std::vector<Field> fields;
  for (const std::string& part : Split(body, ',')) {
    std::vector<std::string> words;
    for (const std::string& word : Split(part, ' ')) {
      const std::string_view stripped = StripWhitespace(word);
      if (!stripped.empty()) words.emplace_back(stripped);
    }
    if (words.size() < 2 || words.size() > 3) {
      return Status::ParseError("bad column spec '" +
                                std::string(StripWhitespace(part)) + "'");
    }
    Field f;
    f.name = words[0];
    FUNGUSDB_ASSIGN_OR_RETURN(f.type, DataTypeByName(ToLower(words[1])));
    if (words.size() == 3) {
      if (ToLower(words[2]) != "null") {
        return Status::ParseError("expected 'null', got '" + words[2] +
                                  "'");
      }
      f.nullable = true;
    }
    fields.push_back(std::move(f));
  }
  return Make(std::move(fields));
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace fungusdb
