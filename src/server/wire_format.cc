#include "server/wire_format.h"

#include "common/status.h"
#include "query/result_set_serde.h"
#include "server/socket.h"

namespace fungusdb::server {
namespace {

// A request may not claim more statements than a payload of maximum
// size could possibly hold (each statement costs at least a u64 length
// prefix), and no single decoded count may trigger unbounded reserve.
constexpr uint64_t kMaxStatementsPerRequest = 1u << 16;

}  // namespace

std::string EncodeStatementRequest(const StatementRequest& request) {
  BufferWriter out;
  out.WriteU64(request.request_id);
  out.WriteU64(request.deadline_micros);
  out.WriteU32(static_cast<uint32_t>(request.statements.size()));
  for (const std::string& statement : request.statements) {
    out.WriteString(statement);
  }
  return out.Release();
}

Result<StatementRequest> DecodeStatementRequest(std::string_view payload) {
  BufferReader in(payload);
  StatementRequest request;
  FUNGUSDB_ASSIGN_OR_RETURN(request.request_id, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(request.deadline_micros, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t count, in.ReadU32());
  if (count > kMaxStatementsPerRequest) {
    return Status::WireFormat("request claims " + std::to_string(count) +
                              " statements");
  }
  request.statements.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string statement, in.ReadString());
    request.statements.push_back(std::move(statement));
  }
  if (!in.exhausted()) {
    return Status::WireFormat("trailing bytes after statement request");
  }
  return request;
}

std::string EncodeStatementResponse(const StatementResponse& response) {
  BufferWriter out;
  out.WriteU64(response.request_id);
  out.WriteU32(static_cast<uint32_t>(response.results.size()));
  for (const Result<ResultSet>& result : response.results) {
    if (result.ok()) {
      out.WriteU8(1);
      SerializeResultSet(result.value(), out);
    } else {
      out.WriteU8(0);
      out.WriteU32(
          static_cast<uint16_t>(result.status().error_code()));
      out.WriteString(result.status().message());
    }
  }
  return out.Release();
}

Result<StatementResponse> DecodeStatementResponse(
    std::string_view payload) {
  BufferReader in(payload);
  StatementResponse response;
  FUNGUSDB_ASSIGN_OR_RETURN(response.request_id, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t count, in.ReadU32());
  if (count > kMaxStatementsPerRequest) {
    return Status::WireFormat("response claims " + std::to_string(count) +
                              " results");
  }
  response.results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(uint8_t ok, in.ReadU8());
    if (ok == 1) {
      FUNGUSDB_ASSIGN_OR_RETURN(ResultSet result,
                                DeserializeResultSet(in));
      response.results.push_back(std::move(result));
    } else if (ok == 0) {
      FUNGUSDB_ASSIGN_OR_RETURN(uint32_t raw_code, in.ReadU32());
      FUNGUSDB_ASSIGN_OR_RETURN(std::string message, in.ReadString());
      if (raw_code > UINT16_MAX) {
        return Status::WireFormat("error code out of range");
      }
      response.results.push_back(Status::FromWire(
          ErrorCodeFromWire(static_cast<uint16_t>(raw_code)),
          std::move(message)));
    } else {
      return Status::WireFormat("bad result discriminator " +
                                std::to_string(ok));
    }
  }
  if (!in.exhausted()) {
    return Status::WireFormat("trailing bytes after statement response");
  }
  return response;
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  BufferWriter out;
  out.WriteU32(kWireMagic);
  out.WriteU32(static_cast<uint32_t>(kWireVersion) |
               (static_cast<uint32_t>(type) << 16));
  out.WriteU32(static_cast<uint32_t>(payload.size()));
  std::string frame = out.Release();
  frame.append(payload.data(), payload.size());
  return frame;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() != kFrameHeaderBytes) {
    return Status::WireFormat("frame header must be " +
                              std::to_string(kFrameHeaderBytes) +
                              " bytes, got " +
                              std::to_string(bytes.size()));
  }
  BufferReader in(bytes);
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t magic, in.ReadU32());
  if (magic != kWireMagic) {
    return Status::WireFormat("bad magic (not a FungusDB peer?)");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t version_and_type, in.ReadU32());
  FrameHeader header;
  header.version = static_cast<uint16_t>(version_and_type & 0xffff);
  if (header.version != kWireVersion) {
    return Status::WireFormat("unsupported protocol version " +
                              std::to_string(header.version));
  }
  const uint16_t raw_type =
      static_cast<uint16_t>(version_and_type >> 16);
  if (raw_type != static_cast<uint16_t>(FrameType::kStatementRequest) &&
      raw_type != static_cast<uint16_t>(FrameType::kStatementResponse)) {
    return Status::WireFormat("unknown frame type " +
                              std::to_string(raw_type));
  }
  header.type = static_cast<FrameType>(raw_type);
  FUNGUSDB_ASSIGN_OR_RETURN(header.payload_size, in.ReadU32());
  if (header.payload_size > kMaxPayloadBytes) {
    return Status::WireFormat("frame payload of " +
                              std::to_string(header.payload_size) +
                              " bytes exceeds the protocol maximum");
  }
  return header;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::WireFormat("refusing to send oversized frame");
  }
  return WriteAll(fd, EncodeFrame(type, payload));
}

Result<Frame> ReadFrame(int fd) {
  char header_bytes[kFrameHeaderBytes];
  FUNGUSDB_RETURN_IF_ERROR(
      ReadExact(fd, header_bytes, kFrameHeaderBytes));
  Frame frame;
  FUNGUSDB_ASSIGN_OR_RETURN(
      frame.header,
      DecodeFrameHeader(
          std::string_view(header_bytes, kFrameHeaderBytes)));
  frame.payload.resize(frame.header.payload_size);
  if (frame.header.payload_size > 0) {
    FUNGUSDB_RETURN_IF_ERROR(ReadExact(fd, frame.payload.data(),
                                       frame.payload.size()));
  }
  return frame;
}

}  // namespace fungusdb::server
