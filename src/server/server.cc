#include "server/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "common/clock.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "fungus/fungus_factory.h"
#include "fungus/rot_analysis.h"
#include "persist/snapshot.h"
#include "pipeline/csv.h"
#include "query/classifier.h"
#include "storage/schema.h"

namespace fungusdb::server {
namespace {

std::vector<std::string> Tokens(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> out;
  std::string token;
  while (stream >> token) out.push_back(token);
  return out;
}

/// Meta-command output travels as an ordinary single-column ResultSet
/// so the wire protocol has exactly one response shape.
ResultSet TextResult(std::string column, std::string text) {
  ResultSet rs;
  rs.column_names.push_back(std::move(column));
  rs.rows.push_back({Value::String(std::move(text))});
  return rs;
}

size_t ResolveReadWorkers(int configured) {
  if (configured >= 0) return static_cast<size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4u : std::min(8u, hw);
}

}  // namespace

Server::Server(std::unique_ptr<Database> db, ServerOptions options)
    : db_(std::move(db)),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      read_queue_(options_.queue_capacity),
      latency_sketch_(/*lo=*/0.0, /*hi=*/1e7, /*buckets=*/64) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  FUNGUSDB_ASSIGN_OR_RETURN(listener_,
                            ListenTcp(options_.host, options_.port));
  FUNGUSDB_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  num_read_workers_ = ResolveReadWorkers(options_.read_workers);
  db_->metrics().SetGauge("fungusdb.server.read_workers",
                          static_cast<double>(num_read_workers_));
  sessions_.clear();
  for (size_t i = 0; i < num_read_workers_; ++i) {
    sessions_.push_back(std::make_unique<Session>(db_.get()));
  }
  executor_ = std::thread([this] { ExecutorLoop(); });
  for (size_t i = 0; i < num_read_workers_; ++i) {
    read_threads_.emplace_back([this, i] { ReadWorkerLoop(i); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  {
    MutexLock stop_lock(stop_mu_);
    started_ = true;
  }
  return Status::OK();
}

void Server::Stop() {
  MutexLock stop_lock(stop_mu_);
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop the intake: unblock accept(), join the acceptor.
  ::shutdown(listener_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();

  // 2. Close admission on both queues. Requests already admitted still
  //    drain — the workers answer every one of them before exiting.
  queue_.Close();
  read_queue_.Close();
  if (executor_.joinable()) executor_.join();
  for (std::thread& t : read_threads_) {
    if (t.joinable()) t.join();
  }
  read_threads_.clear();
  sessions_.clear();

  // 3. Every promise is now fulfilled, so connection threads are back
  //    in (or heading to) ReadFrame; unblock them and join.
  {
    MutexLock lock(conns_mu_);
    for (auto& [id, conn] : conns_) {
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::map<uint64_t, Connection>::node_type node;
    {
      MutexLock lock(conns_mu_);
      if (conns_.empty()) break;
      node = conns_.extract(conns_.begin());
    }
    if (node.mapped().thread.joinable()) node.mapped().thread.join();
  }

  listener_.Reset();
  db_->metrics().SetGauge("fungusdb.server.connections_active", 0);
  db_->metrics().SetGauge("fungusdb.server.queue_depth_high_water",
                          static_cast<double>(queue_.depth_high_water()));
  db_->metrics().SetGauge(
      "fungusdb.server.read_queue_depth_high_water",
      static_cast<double>(read_queue_.depth_high_water()));

  // 4. All threads are gone; the database is ours again. Persist it.
  if (!options_.snapshot_path.empty()) {
    const Status saved =
        SaveDatabaseSnapshot(*db_, options_.snapshot_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "fungusd: snapshot on shutdown failed: %s\n",
                   saved.ToString().c_str());
    }
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    MutexLock lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second.done) {
        finished.push_back(std::move(it->second.thread));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  MetricsRegistry& metrics = db_->metrics();
  while (!stopping_.load(std::memory_order_acquire)) {
    UniqueFd conn(::accept(listener_.get(), nullptr, nullptr));
    if (!conn.valid()) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;  // EINTR / transient accept failure
    }
    metrics.IncrementCounter("fungusdb.server.connections_accepted");
    ReapFinishedConnections();

    MutexLock lock(conns_mu_);
    if (conns_.size() >= options_.max_connections) {
      // Admission control for connections: a clean immediate EOF (the
      // UniqueFd destructor) — the client sees ConnectionClosed, not a
      // hang. Request-level overload gets the typed kOverloaded answer.
      continue;
    }
    const uint64_t id = next_conn_id_++;
    Connection& slot = conns_[id];
    slot.fd = conn.Release();
    metrics.SetGauge("fungusdb.server.connections_active",
                     static_cast<double>(conns_.size()));
    const int fd = slot.fd;
    slot.thread = std::thread([this, id, fd] { ServeConnection(id, fd); });
  }
}

bool Server::BatchIsReadOnly(const std::vector<std::string>& statements) {
  if (statements.empty()) return false;
  ClassifyContext context;
  context.table_tracks_access = [this](std::string_view table) {
    if (!db_->options().record_access) return false;
    const Result<TableHandle> t = db_->GetTable(std::string(table));
    return t.ok() && t.value().options().track_access;
  };
  for (const std::string& statement : statements) {
    if (ClassifyStatement(statement, context) == StatementKind::kMutating) {
      return false;
    }
  }
  return true;
}

void Server::ServeConnection(uint64_t conn_id, int fd) {
  UniqueFd owned(fd);
  MetricsRegistry& metrics = db_->metrics();
  while (true) {
    Result<Frame> frame_or = ReadFrame(owned.get());
    if (!frame_or.ok()) break;  // hangup or torn framing: drop
    const Frame& frame = frame_or.value();
    if (frame.header.type != FrameType::kStatementRequest) {
      break;  // a client sending response frames is not speaking v1
    }
    Result<StatementRequest> request_or = [&frame] {
      FUNGUS_TRACE_SPAN("server.decode", frame.payload.size());
      return DecodeStatementRequest(frame.payload);
    }();
    if (!request_or.ok()) {
      // Framing was intact but the payload was not — answer with the
      // decode error (request id unknown, so 0), then drop: the byte
      // stream can no longer be trusted.
      StatementResponse response;
      response.results.push_back(request_or.status());
      const Status answered =
          WriteFrame(owned.get(), FrameType::kStatementResponse,
                     EncodeStatementResponse(response));
      (void)answered;  // best effort: the connection is dropped either way
      break;
    }
    StatementRequest request = std::move(request_or).value();
    metrics.IncrementCounter("fungusdb.server.requests_total");

    // Route: a batch that is read-only end to end goes to the read
    // worker pool; one mutating (or unclassifiable) statement sends
    // the whole batch to the writer, preserving intra-batch order.
    const bool read_path =
        num_read_workers_ > 0 && BatchIsReadOnly(request.statements);
    if (read_path) {
      metrics.IncrementCounter("fungusdb.server.requests_read_path");
    }
    RequestQueue<PendingRequest>& target = read_path ? read_queue_ : queue_;

    PendingRequest pending;
    // A budget too large for steady_clock arithmetic is no budget.
    pending.has_deadline =
        request.deadline_micros != 0 &&
        request.deadline_micros <= static_cast<uint64_t>(INT64_MAX / 2);
    pending.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            pending.has_deadline ? request.deadline_micros : 0);
    const uint64_t request_id = request.request_id;
    const size_t num_statements = request.statements.size();
    pending.request = std::move(request);
    pending.enqueued_us = Tracer::NowMicros();
    std::future<std::vector<Result<ResultSet>>> reply =
        pending.reply.get_future();

    StatementResponse response;
    response.request_id = request_id;
    if (target.TryPush(std::move(pending))) {
      response.results = reply.get();
    } else {
      // Typed refusal — never an OOM, never a silent drop.
      const Status refusal =
          target.closed()
              ? Status::ShuttingDown("server is draining; retry elsewhere")
              : Status::Overloaded("request queue is full; retry later");
      metrics.IncrementCounter(target.closed()
                                   ? "fungusdb.server.requests_shutdown"
                                   : "fungusdb.server.requests_overloaded");
      for (size_t i = 0; i < num_statements; ++i) {
        response.results.push_back(refusal);
      }
    }
    Status sent;
    {
      FUNGUS_TRACE_SPAN("server.respond", response.results.size());
      sent = WriteFrame(owned.get(), FrameType::kStatementResponse,
                        EncodeStatementResponse(response));
    }
    if (!sent.ok()) break;
  }
  MutexLock lock(conns_mu_);
  auto it = conns_.find(conn_id);
  if (it != conns_.end()) {
    it->second.done = true;
    it->second.fd = -1;  // about to close; Stop() must not shut it down
  }
  size_t active = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.done) ++active;
  }
  metrics.SetGauge("fungusdb.server.connections_active",
                   static_cast<double>(active));
}

void Server::ExecutorLoop() {
  while (std::optional<PendingRequest> item = queue_.Pop()) {
    ProcessRequest(std::move(*item), kWriterWorker);
  }
}

void Server::ReadWorkerLoop(size_t worker_index) {
  while (std::optional<PendingRequest> item = read_queue_.Pop()) {
    ProcessRequest(std::move(*item), static_cast<int>(worker_index));
  }
}

void Server::ProcessRequest(PendingRequest pending, int worker) {
  MetricsRegistry& metrics = db_->metrics();
  const bool read_path = worker != kWriterWorker;
  RequestQueue<PendingRequest>& queue = read_path ? read_queue_ : queue_;
  metrics.SetGauge(read_path
                       ? "fungusdb.server.read_queue_depth_high_water"
                       : "fungusdb.server.queue_depth_high_water",
                   static_cast<double>(queue.depth_high_water()));
  const uint64_t dequeued_us = Tracer::NowMicros();
  const uint64_t queue_wait_us = dequeued_us > pending.enqueued_us
                                     ? dequeued_us - pending.enqueued_us
                                     : 0;
  metrics.RecordHistogram("fungusdb.server.queue_wait_us",
                          static_cast<int64_t>(queue_wait_us));
  if (Tracer::enabled()) {
    // The wait has no RAII site — the span covers the time the request
    // sat in the queue, recorded manually once it leaves.
    Tracer::Global().Record("server.queue_wait", pending.enqueued_us,
                            queue_wait_us, pending.request.request_id,
                            /*has_arg=*/true);
  }
  const std::string worker_label =
      read_path ? "worker=read-" + std::to_string(worker) : "worker=writer";
  std::vector<Result<ResultSet>> results;
  results.reserve(pending.request.statements.size());
  bool timed_out = false;
  for (const std::string& statement : pending.request.statements) {
    // The deadline is re-checked per statement, so a long batch that
    // blows its budget mid-way stops burning worker time.
    if (pending.has_deadline &&
        std::chrono::steady_clock::now() >= pending.deadline) {
      if (!timed_out) {
        metrics.IncrementCounter("fungusdb.server.requests_timeout");
        timed_out = true;
      }
      results.push_back(
          Status::Timeout("deadline exceeded before execution"));
      continue;
    }
    const auto started = std::chrono::steady_clock::now();
    if (read_path) {
      sessions_[static_cast<size_t>(worker)]->set_pending_queue_wait_micros(
          static_cast<int64_t>(queue_wait_us));
      FUNGUS_TRACE_SPAN("server.read_worker", worker);
      results.push_back(ExecuteReadStatement(static_cast<size_t>(worker),
                                             statement));
    } else {
      db_->set_pending_queue_wait_micros(
          static_cast<int64_t>(queue_wait_us));
      FUNGUS_TRACE_SPAN("server.statement");
      results.push_back(ExecuteStatement(statement));
    }
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    metrics.IncrementCounter("fungusdb.server.statements_total");
    metrics.IncrementCounter("fungusdb.server.statements_total",
                             worker_label);
    metrics.RecordHistogram("fungusdb.server.statement_latency_us", micros);
    metrics.RecordHistogram("fungusdb.server.statement_latency_us",
                            worker_label, micros);
    {
      MutexLock lock(latency_mu_);
      latency_sketch_.Observe(Value::Float64(static_cast<double>(micros)));
    }
    if (!results.back().ok()) {
      metrics.IncrementCounter(
          "fungusdb.server.errors",
          "code=" + std::to_string(static_cast<int>(
                        results.back().status().error_code())));
    }
  }
  pending.reply.set_value(std::move(results));
}

Result<ResultSet> Server::ExecuteStatement(const std::string& statement) {
  const std::string trimmed(StripWhitespace(statement));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (trimmed[0] == '\\') return ExecuteMeta(trimmed);
  return db_->ExecuteSql(trimmed);
}

Result<ResultSet> Server::ExecuteReadStatement(size_t worker_index,
                                               const std::string& statement) {
  const std::string trimmed(StripWhitespace(statement));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (trimmed[0] == '\\') {
    // One outer pin for the whole command: inner facade reads
    // (GetTable, Health, Fsck, TableNames) re-pin reentrantly, and
    // scheduler state (\rot) cannot change underneath because the pin
    // excludes the writer for the duration.
    EpochManager::ReadPin pin(db_->epochs());
    return ExecuteReadMeta(trimmed);
  }
  return sessions_[worker_index]->ExecuteRead(trimmed);
}

Result<ResultSet> Server::ExecuteReadMeta(const std::string& line) {
  const std::vector<std::string> args = Tokens(line);
  const std::string& cmd = args[0];
  if (cmd == "\\health") {
    return TextResult("health", db_->Health().ToString());
  }
  if (cmd == "\\now") {
    return TextResult("now", FormatDuration(db_->Now()));
  }
  if (cmd == "\\metrics") {
    if (args.size() == 2 && args[1] == "prom") {
      return TextResult("metrics", db_->metrics().PrometheusReport());
    }
    if (args.size() != 1) {
      return Status::InvalidArgument("usage: \\metrics [prom]");
    }
    std::string sketch;
    {
      MutexLock lock(latency_mu_);
      sketch = latency_sketch_.Describe();
    }
    return TextResult("metrics",
                      db_->metrics().Report() +
                          "fungusdb.server.statement_latency = " + sketch +
                          "\n");
  }
  if (cmd == "\\trace") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: \\trace on|off|dump");
    }
    if (args[1] == "on") {
      Tracer::Global().Enable();
      return TextResult("trace", "tracing enabled");
    }
    if (args[1] == "off") {
      Tracer::Global().Disable();
      return TextResult("trace", "tracing disabled");
    }
    if (args[1] == "dump") {
      return TextResult("trace", Tracer::Global().ExportChromeJson());
    }
    return Status::InvalidArgument("usage: \\trace on|off|dump");
  }
  if (cmd == "\\rot") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: \\rot <table>");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
    return TextResult(
        "rot", BuildRotReport(table.table(), &db_->scheduler()).ToString());
  }
  if (cmd == "\\fsck") {
    const verify::Report report = db_->Fsck();
    FUNGUSDB_RETURN_IF_ERROR(report.ToStatus());
    return TextResult("fsck", report.ToString());
  }
  if (cmd == "\\tables") {
    ResultSet rs;
    rs.column_names = {"table", "schema", "live_rows"};
    for (const std::string& name : db_->TableNames()) {
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle t, db_->GetTable(name));
      rs.rows.push_back({Value::String(name),
                         Value::String(t.schema().ToString()),
                         Value::Int64(static_cast<int64_t>(t.live_rows()))});
    }
    return rs;
  }
  if (cmd == "\\storage") {
    if (args.size() > 2) {
      return Status::InvalidArgument("usage: \\storage [table]");
    }
    std::vector<std::string> names;
    if (args.size() == 2) {
      // Resolve first so an unknown table reports NotFound, not an
      // empty result.
      FUNGUSDB_RETURN_IF_ERROR(db_->GetTable(args[1]).status());
      names.push_back(args[1]);
    } else {
      names = db_->TableNames();
    }
    ResultSet rs;
    rs.column_names = {"table",
                       "segments",
                       "frozen",
                       "encoded_bytes",
                       "plain_bytes_before",
                       "compression_ratio",
                       "freezes_total",
                       "thaws_total"};
    for (const std::string& name : names) {
      FUNGUSDB_ASSIGN_OR_RETURN(TableHandle t, db_->GetTable(name));
      const StorageStats st = t.table().GetStorageStats();
      const double ratio =
          (st.frozen_segments > 0 && st.encoded_bytes > 0)
              ? static_cast<double>(st.plain_bytes_before) /
                    static_cast<double>(st.encoded_bytes)
              : 0.0;
      rs.rows.push_back(
          {Value::String(name),
           Value::Int64(static_cast<int64_t>(st.total_segments)),
           Value::Int64(static_cast<int64_t>(st.frozen_segments)),
           Value::Int64(static_cast<int64_t>(st.encoded_bytes)),
           Value::Int64(static_cast<int64_t>(st.plain_bytes_before)),
           Value::Float64(ratio),
           Value::Int64(static_cast<int64_t>(st.segments_frozen_total)),
           Value::Int64(static_cast<int64_t>(st.thaw_count))});
    }
    return rs;
  }
  return Status::InvalidArgument("not a read-only server command: " + cmd);
}

Result<ResultSet> Server::ExecuteMeta(const std::string& line) {
  const std::vector<std::string> args = Tokens(line);
  const std::string& cmd = args[0];
  if (IsReadOnlyMetaCommand(cmd)) return ExecuteReadMeta(line);
  if (cmd == "\\attach") {
    if (args.size() < 4 || args.size() > 5) {
      return Status::InvalidArgument(
          "usage: \\attach <fungus> <table> <period> [arg]");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(Duration period, ParseDuration(args[3]));
    std::optional<std::string> arg;
    if (args.size() == 5) arg = args[4];
    FUNGUSDB_ASSIGN_OR_RETURN(std::unique_ptr<Fungus> fungus,
                              MakeFungusFromSpec(args[1], arg, db_->Now()));
    const std::string description = fungus->Describe();
    FUNGUSDB_RETURN_IF_ERROR(
        db_->AttachFungus(args[2], std::move(fungus), period).status());
    return TextResult("attached", description + " to " + args[2] +
                                      " every " + FormatDuration(period));
  }
  if (cmd == "\\slowlog") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: \\slowlog <micros>");
    }
    char* end = nullptr;
    const long long us = std::strtoll(args[1].c_str(), &end, 10);
    if (end == args[1].c_str() || *end != '\0' || us < 0) {
      return Status::InvalidArgument("bad threshold '" + args[1] + "'");
    }
    db_->set_slow_query_micros(us);
    return TextResult("slowlog",
                      us == 0 ? "slow-query log disabled"
                              : "slow-query threshold " + args[1] + "us");
  }
  if (cmd == "\\freeze") {
    if (args.size() != 3) {
      return Status::InvalidArgument("usage: \\freeze <table> <idle_ticks>");
    }
    char* end = nullptr;
    const unsigned long long ticks = std::strtoull(args[2].c_str(), &end, 10);
    if (end == args[2].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad tick count '" + args[2] + "'");
    }
    FUNGUSDB_RETURN_IF_ERROR(
        db_->SetFreezeAfterIdleTicks(args[1], ticks));
    return TextResult("freeze",
                      ticks == 0
                          ? "freezing disabled on " + args[1]
                          : args[1] + " freezes after " + args[2] +
                                " idle ticks");
  }
  if (cmd == "\\advance") {
    if (args.size() != 2) {
      return Status::InvalidArgument("usage: \\advance <duration>");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(Duration d, ParseDuration(args[1]));
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t ticks, db_->AdvanceTime(d));
    ResultSet rs;
    rs.column_names = {"now", "ticks"};
    rs.rows.push_back({Value::String(FormatDuration(db_->Now())),
                       Value::Int64(static_cast<int64_t>(ticks))});
    return rs;
  }
  if (cmd == "\\create") {
    if (args.size() < 3) {
      return Status::InvalidArgument(
          "usage: \\create <name> (<col> <type> [null], ...)");
    }
    // Search after the command token — the table name may be a
    // substring of "\create" itself (e.g. a table called "c").
    const size_t name_end =
        line.find(args[1], cmd.size()) + args[1].size();
    FUNGUSDB_ASSIGN_OR_RETURN(Schema schema,
                              Schema::Parse(line.substr(name_end)));
    FUNGUSDB_RETURN_IF_ERROR(
        db_->CreateTable(args[1], std::move(schema)).status());
    return TextResult("created", args[1]);
  }
  if (cmd == "\\insert") {
    if (args.size() < 3) {
      return Status::InvalidArgument(
          "usage: \\insert <table> <csv fields>");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(TableHandle table, db_->GetTable(args[1]));
    const size_t name_end =
        line.find(args[1], cmd.size()) + args[1].size();
    const std::string csv(StripWhitespace(line.substr(name_end)));
    const std::vector<std::string> fields = SplitCsvLine(csv, ',');
    const Schema& schema = table.schema();
    if (fields.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "expected " + std::to_string(schema.num_fields()) +
          " fields, got " + std::to_string(fields.size()));
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const Field& field = schema.fields()[i];
      FUNGUSDB_ASSIGN_OR_RETURN(
          Value value,
          ParseCsvField(fields[i], field.type, field.nullable));
      values.push_back(std::move(value));
    }
    FUNGUSDB_ASSIGN_OR_RETURN(RowId row, db_->Insert(args[1], values));
    ResultSet rs;
    rs.column_names = {"row_id"};
    rs.rows.push_back({Value::Int64(static_cast<int64_t>(row))});
    return rs;
  }
  return Status::InvalidArgument(
      "unknown server command " + cmd +
      " (remote subset: \\health \\now \\metrics [prom] \\fsck \\tables "
      "\\storage \\advance \\create \\insert \\attach \\rot \\trace "
      "\\slowlog \\freeze)");
}

}  // namespace fungusdb::server
