#ifndef FUNGUSDB_SERVER_CLIENT_H_
#define FUNGUSDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/result_set.h"
#include "server/socket.h"

namespace fungusdb::server {

/// Small blocking client for the fungusd wire protocol — one
/// connection, strict request/response lockstep. Used by
/// `fungusql --connect` and the server tests; NOT thread-safe (wrap one
/// Client per thread, the server handles concurrency on its side).
class Client {
 public:
  static Result<Client> Connect(const std::string& host, uint16_t port);

  /// Parses "host:port" (or ":port" / "port" for localhost).
  static Result<Client> ConnectSpec(std::string_view spec);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Executes a batch of statements in order on the server; one Result
  /// per statement (a failed statement does not stop the batch).
  /// `deadline_micros` is the server-side budget (0 = none): statements
  /// still queued past it come back as E:2003 Timeout.
  Result<std::vector<Result<ResultSet>>> Execute(
      const std::vector<std::string>& statements,
      uint64_t deadline_micros = 0);

  /// Single-statement convenience; unwraps the one result.
  Result<ResultSet> ExecuteOne(std::string_view statement,
                               uint64_t deadline_micros = 0);

  bool connected() const { return fd_.valid(); }

 private:
  explicit Client(UniqueFd fd) : fd_(std::move(fd)) {}

  UniqueFd fd_;
  uint64_t next_request_id_ = 1;
};

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_CLIENT_H_
