#ifndef FUNGUSDB_SERVER_HTTP_DEBUG_H_
#define FUNGUSDB_SERVER_HTTP_DEBUG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "server/request_queue.h"
#include "server/socket.h"

namespace fungusdb::server {

struct HttpDebugOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Handlers serving requests concurrently. /tracez blocks for its
  /// capture window, so keep at least 2 or a capture starves scrapes.
  size_t handler_threads = 2;
  /// Accepted-but-unserved connections; past it connects are closed
  /// (clean EOF) — same explicit-backpressure story as the wire
  /// protocol's policy for excess connects.
  size_t queue_capacity = 64;
  /// Feeds the fungusdb.process.snapshot_age_seconds gauge. May be
  /// empty (no snapshot configured).
  std::string snapshot_path;
};

/// The HTTP observability plane: a dependency-free HTTP/1.1 server that
/// fungusd mounts next to the wire protocol so standard tooling —
/// Prometheus, load balancers, `curl`, Perfetto — can see a running
/// node without speaking FGWP. GET-only, Connection: close.
///
/// Endpoints (DESIGN.md §16):
///   /metrics            Prometheus text exposition (0.0.4), real
///                       cumulative histogram _bucket series
///   /healthz            200 while the process serves HTTP at all
///   /readyz             200 only when ready; 503 during startup
///                       replay and SIGTERM drain (balancer rotation)
///   /rotz[?table=T]     RotReport JSON per table
///   /storagez[?table=T] StorageStats JSON per table (fold ratio,
///                       frozen-tier strip come via /rotz)
///   /tracez?ms=N        enable the span tracer for N ms, return the
///                       captured Chrome trace-event JSON
///   /varz               build info, uptime, epoch/queue/worker gauges
///
/// Threading model: one acceptor thread pushes accepted sockets onto a
/// bounded RequestQueue drained by a small handler pool — no
/// per-connection threads, no locks of its own beyond the queue's.
/// Every database read goes through the epoch-pin read protocol
/// (EpochManager::ReadPin, reentrant with the facade's own pins); the
/// plane never touches Table or tier internals, only the public stats
/// structs (enforced by the `http-handler` lint rule).
///
/// Lifecycle: Start() before the Database exists is supported — the
/// pointer is atomic and endpoints that need it answer 503 until
/// SetDatabase(). Readiness is a separate tri-state so /readyz can flip
/// to draining while /metrics keeps answering during the drain window.
///
/// Exported metrics (on the Database's registry once attached):
/// fungusdb.http.requests (plus per-path series), fungusdb.http.errors
/// (per-status series), fungusdb.http.request_latency_us.
class HttpDebugServer {
 public:
  enum class Readiness { kStarting, kReady, kDraining };

  explicit HttpDebugServer(HttpDebugOptions options = {});
  ~HttpDebugServer();

  HttpDebugServer(const HttpDebugServer&) = delete;
  HttpDebugServer& operator=(const HttpDebugServer&) = delete;

  /// Binds, listens, and spawns the acceptor and handler threads.
  Status Start();

  /// Stops accepting, drains queued connections, joins every thread.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (valid after Start(), also with options.port == 0).
  uint16_t port() const { return port_; }

  /// Attaches the database once it exists (after snapshot replay).
  /// May be called at most once; endpoints answer 503 before it.
  void SetDatabase(Database* db) {
    db_.store(db, std::memory_order_release);
  }

  /// Flips /readyz. fungusd drives: kStarting at boot, kReady once
  /// serving, kDraining on SIGTERM (before the wire server drains).
  void SetReadiness(Readiness r) {
    readiness_.store(static_cast<int>(r), std::memory_order_release);
  }
  Readiness readiness() const {
    return static_cast<Readiness>(
        readiness_.load(std::memory_order_acquire));
  }

 private:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void AcceptLoop();
  void HandlerLoop();
  /// Parses one request off `fd`, routes it, writes the response.
  void Handle(int fd);
  Response Route(const std::string& path, const std::string& query);

  // Endpoint bodies. `db` is non-null (Route answers 503 otherwise).
  Response Metrics(Database& db);
  Response Varz(Database& db);
  Response Rotz(Database& db, const std::string& query);
  Response Storagez(Database& db, const std::string& query);
  Response Tracez(const std::string& query);
  Response Readyz();

  HttpDebugOptions options_;
  RequestQueue<UniqueFd> queue_;

  // Lifecycle state: written in Start() before any thread exists, read
  // by the acceptor/handlers afterwards (same contract as Server).
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  std::atomic<Database*> db_{nullptr};
  std::atomic<int> readiness_{0};  // Readiness::kStarting
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_HTTP_DEBUG_H_
