#include "server/client.h"

#include <cstdlib>

#include "server/wire_format.h"

namespace fungusdb::server {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  FUNGUSDB_ASSIGN_OR_RETURN(UniqueFd fd, ConnectTcp(host, port));
  return Client(std::move(fd));
}

Result<Client> Client::ConnectSpec(std::string_view spec) {
  std::string host = "127.0.0.1";
  std::string_view port_text = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon > 0) host = std::string(spec.substr(0, colon));
    port_text = spec.substr(colon + 1);
  }
  char* end = nullptr;
  const std::string port_str(port_text);
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (port_str.empty() || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad connect spec '" + std::string(spec) +
                                   "' (want host:port)");
  }
  return Connect(host, static_cast<uint16_t>(port));
}

Result<std::vector<Result<ResultSet>>> Client::Execute(
    const std::vector<std::string>& statements, uint64_t deadline_micros) {
  if (!fd_.valid()) {
    return Status::ConnectionClosed("client is not connected");
  }
  StatementRequest request;
  request.request_id = next_request_id_++;
  request.deadline_micros = deadline_micros;
  request.statements = statements;

  const Status sent = WriteFrame(fd_.get(), FrameType::kStatementRequest,
                                 EncodeStatementRequest(request));
  if (!sent.ok()) {
    fd_.Reset();
    return sent;
  }
  Result<Frame> frame_or = ReadFrame(fd_.get());
  if (!frame_or.ok()) {
    fd_.Reset();
    return frame_or.status();
  }
  const Frame& frame = frame_or.value();
  if (frame.header.type != FrameType::kStatementResponse) {
    fd_.Reset();
    return Status::WireFormat("expected a response frame");
  }
  Result<StatementResponse> response_or =
      DecodeStatementResponse(frame.payload);
  if (!response_or.ok()) {
    fd_.Reset();
    return response_or.status();
  }
  StatementResponse response = std::move(response_or).value();
  // request_id 0 is the server's "could not even decode your request"
  // answer; anything else must echo ours (the protocol is lockstep, so
  // a mismatch means the stream is desynchronized).
  if (response.request_id != request.request_id &&
      response.request_id != 0) {
    fd_.Reset();
    return Status::WireFormat(
        "response id " + std::to_string(response.request_id) +
        " does not match request id " + std::to_string(request.request_id));
  }
  return std::move(response.results);
}

Result<ResultSet> Client::ExecuteOne(std::string_view statement,
                                     uint64_t deadline_micros) {
  FUNGUSDB_ASSIGN_OR_RETURN(
      std::vector<Result<ResultSet>> results,
      Execute({std::string(statement)}, deadline_micros));
  if (results.size() != 1) {
    return Status::WireFormat("expected 1 result, got " +
                              std::to_string(results.size()));
  }
  return std::move(results[0]);
}

}  // namespace fungusdb::server
