#include "server/http_debug.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <utility>

#include "common/process_stats.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace fungusdb::server {
namespace {

/// Largest request head we accept; debug-plane GETs are tiny.
constexpr size_t kMaxRequestBytes = 8192;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("table=t&ms=250"). No percent-decoding: every recognized value is
/// a table name or an integer. Empty when absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  for (const std::string& pair : Split(query, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) == key) return pair.substr(eq + 1);
  }
  return "";
}

std::string StorageStatsJson(const std::string& name,
                             const StorageStats& st) {
  const double ratio = (st.frozen_segments > 0 && st.encoded_bytes > 0)
                           ? static_cast<double>(st.plain_bytes_before) /
                                 static_cast<double>(st.encoded_bytes)
                           : 0.0;
  std::ostringstream os;
  os << "{\"table\":\"" << JsonEscape(name) << "\""
     << ",\"total_segments\":" << st.total_segments
     << ",\"frozen_segments\":" << st.frozen_segments
     << ",\"encoded_bytes\":" << st.encoded_bytes
     << ",\"plain_bytes_before\":" << st.plain_bytes_before
     << ",\"compression_ratio\":" << ratio
     << ",\"segments_frozen_total\":" << st.segments_frozen_total
     << ",\"thaw_count\":" << st.thaw_count << "}";
  return os.str();
}

}  // namespace

HttpDebugServer::HttpDebugServer(HttpDebugOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity == 0 ? 1 : options_.queue_capacity) {}

HttpDebugServer::~HttpDebugServer() { Stop(); }

Status HttpDebugServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("http server already started");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(listener_,
                            ListenTcp(options_.host, options_.port));
  FUNGUSDB_ASSIGN_OR_RETURN(port_, LocalPort(listener_.get()));
  const size_t handlers =
      options_.handler_threads == 0 ? 1 : options_.handler_threads;
  handlers_.reserve(handlers);
  for (size_t i = 0; i < handlers; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpDebugServer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);
  // Unblock accept(); queued connections still get answered.
  ::shutdown(listener_.get(), SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  queue_.Close();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  listener_.Reset();
}

void HttpDebugServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;
    }
    // A full queue closes the connection (clean EOF) — the plane's
    // explicit backpressure, mirroring the wire server's policy for
    // excess connects.
    queue_.TryPush(UniqueFd(fd));
  }
}

void HttpDebugServer::HandlerLoop() {
  while (std::optional<UniqueFd> conn = queue_.Pop()) {
    Handle(conn->get());
  }
}

void HttpDebugServer::Handle(int fd) {
  // A stalled or dead client must not wedge a handler slot.
  struct timeval timeout = {};
  timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout, EOF or reset — nothing to answer
    request.append(buf, static_cast<size_t>(n));
  }

  const uint64_t start_us = Tracer::NowMicros();
  FUNGUS_TRACE_SPAN("http.request");

  Response response;
  std::string path = "?";
  const size_t line_end = request.find("\r\n");
  const std::vector<std::string> parts =
      Split(request.substr(0, line_end), ' ');
  if (parts.size() != 3) {
    response = {400, "text/plain; charset=utf-8", "malformed request\n"};
  } else if (parts[0] != "GET") {
    response = {405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string target = parts[1];
    std::string query;
    if (const size_t q = target.find('?'); q != std::string::npos) {
      query = target.substr(q + 1);
      target.resize(q);
    }
    path = target;
    response = Route(target, query);
  }

  // The plane meters itself on the database's registry; before
  // SetDatabase there is nowhere to record (and nothing to scrape).
  if (Database* db = db_.load(std::memory_order_acquire)) {
    MetricsRegistry& metrics = db->metrics();
    metrics.IncrementCounter("fungusdb.http.requests");
    metrics.IncrementCounter("fungusdb.http.requests", "path=" + path);
    metrics.RecordHistogram(
        "fungusdb.http.request_latency_us",
        static_cast<int64_t>(Tracer::NowMicros() - start_us));
    if (response.status >= 400) {
      metrics.IncrementCounter("fungusdb.http.errors",
                               "status=" + std::to_string(response.status));
    }
  }

  std::ostringstream head;
  head << "HTTP/1.1 " << response.status << " "
       << ReasonPhrase(response.status) << "\r\n"
       << "Content-Type: " << response.content_type << "\r\n"
       << "Content-Length: " << response.body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  // Best-effort: the client may already be gone, which is fine.
  const Status written = WriteAll(fd, head.str() + response.body);
  (void)written;
}

HttpDebugServer::Response HttpDebugServer::Route(const std::string& path,
                                                 const std::string& query) {
  if (path == "/healthz") return {200, "text/plain; charset=utf-8", "ok\n"};
  if (path == "/readyz") return Readyz();
  if (path == "/tracez") return Tracez(query);

  const bool needs_db = path == "/metrics" || path == "/varz" ||
                        path == "/rotz" || path == "/storagez";
  if (!needs_db) {
    return {404, "text/plain; charset=utf-8", "no such endpoint\n"};
  }
  Database* db = db_.load(std::memory_order_acquire);
  if (db == nullptr) {
    // Known endpoint, no database yet (startup replay still running):
    // unavailable, not missing, so scrapers retry rather than give up.
    return {503, "text/plain; charset=utf-8", "database not ready\n"};
  }
  if (path == "/metrics") return Metrics(*db);
  if (path == "/varz") return Varz(*db);
  if (path == "/rotz") return Rotz(*db, query);
  return Storagez(*db, query);
}

HttpDebugServer::Response HttpDebugServer::Readyz() {
  switch (readiness()) {
    case Readiness::kReady:
      return {200, "text/plain; charset=utf-8", "ready\n"};
    case Readiness::kStarting:
      return {503, "text/plain; charset=utf-8", "starting\n"};
    case Readiness::kDraining:
      break;
  }
  return {503, "text/plain; charset=utf-8", "draining\n"};
}

HttpDebugServer::Response HttpDebugServer::Metrics(Database& db) {
  // Refresh point-in-time process gauges at scrape time so /metrics and
  // /varz render the same registry values — one source of truth.
  UpdateProcessGauges(db.metrics(), options_.snapshot_path);
  db.metrics().SetGauge("fungusdb.exec.epoch",
                        static_cast<double>(db.epoch()));
  return {200, "text/plain; version=0.0.4; charset=utf-8",
          db.metrics().PrometheusReport()};
}

HttpDebugServer::Response HttpDebugServer::Varz(Database& db) {
  UpdateProcessGauges(db.metrics(), options_.snapshot_path);
  MetricsRegistry& metrics = db.metrics();
  std::ostringstream os;
  os << "{\"build\":{\"name\":\"fungusd\",\"compiler\":\""
     << JsonEscape(__VERSION__) << "\"}"
     << ",\"uptime_seconds\":"
     << metrics.GetGauge("fungusdb.process.uptime_seconds")
     << ",\"rss_bytes\":" << metrics.GetGauge("fungusdb.process.rss_bytes")
     << ",\"open_fds\":" << metrics.GetGauge("fungusdb.process.open_fds")
     << ",\"threads\":" << metrics.GetGauge("fungusdb.process.threads")
     << ",\"snapshot_age_seconds\":"
     << metrics.GetGauge("fungusdb.process.snapshot_age_seconds")
     << ",\"readiness\":\""
     << (readiness() == Readiness::kReady
             ? "ready"
             : readiness() == Readiness::kStarting ? "starting"
                                                   : "draining")
     << "\"";
  {
    // One pin for the composed snapshot: epoch, virtual now and table
    // list all come from the same published epoch.
    EpochManager::ReadPin pin(db.epochs());
    os << ",\"epoch\":" << db.epoch() << ",\"virtual_now_us\":" << db.Now()
       << ",\"tables\":" << db.TableNames().size();
  }
  os << ",\"read_workers\":"
     << metrics.GetGauge("fungusdb.server.read_workers")
     << ",\"connections_active\":"
     << metrics.GetGauge("fungusdb.server.connections_active")
     << ",\"queue_depth_high_water\":"
     << metrics.GetGauge("fungusdb.server.queue_depth_high_water")
     << ",\"http_requests\":"
     << metrics.GetCounter("fungusdb.http.requests") << "}\n";
  return {200, "application/json", os.str()};
}

HttpDebugServer::Response HttpDebugServer::Rotz(Database& db,
                                                const std::string& query) {
  const std::string only = QueryParam(query, "table");
  // One pin across the whole composition: the table list and every
  // report come from one published epoch, and the inner facade pins
  // (RotReportFor) are reentrant under it.
  EpochManager::ReadPin pin(db.epochs());
  std::vector<std::string> names;
  if (!only.empty()) {
    names.push_back(only);
  } else {
    names = db.TableNames();
  }
  std::ostringstream os;
  os << "{\"now_us\":" << db.Now() << ",\"tables\":[";
  bool first = true;
  for (const std::string& name : names) {
    Result<RotReport> report = db.RotReportFor(name);
    if (!report.ok()) {
      return {404, "text/plain; charset=utf-8",
              report.status().ToString() + "\n"};
    }
    if (!first) os << ",";
    first = false;
    os << report->ToJson();
  }
  os << "]}\n";
  return {200, "application/json", os.str()};
}

HttpDebugServer::Response HttpDebugServer::Storagez(
    Database& db, const std::string& query) {
  const std::string only = QueryParam(query, "table");
  EpochManager::ReadPin pin(db.epochs());
  std::vector<std::string> names;
  if (!only.empty()) {
    names.push_back(only);
  } else {
    names = db.TableNames();
  }
  std::ostringstream os;
  os << "{\"tables\":[";
  bool first = true;
  for (const std::string& name : names) {
    Result<TableHandle> table = db.GetTable(name);
    if (!table.ok()) {
      return {404, "text/plain; charset=utf-8",
              table.status().ToString() + "\n"};
    }
    if (!first) os << ",";
    first = false;
    os << StorageStatsJson(name, table->storage_stats());
  }
  os << "]}\n";
  return {200, "application/json", os.str()};
}

HttpDebugServer::Response HttpDebugServer::Tracez(const std::string& query) {
  int64_t ms = 250;
  const std::string arg = QueryParam(query, "ms");
  if (!arg.empty()) {
    char* end = nullptr;
    ms = std::strtoll(arg.c_str(), &end, 10);
    if (end == arg.c_str() || *end != '\0' || ms < 0 || ms > 10000) {
      return {400, "text/plain; charset=utf-8",
              "ms must be an integer in [0, 10000]\n"};
    }
  }
  // A capture owns the tracer for its window; if a client (or the
  // FUNGUSDB_TRACE env) already enabled tracing, export the live ring
  // without clearing or disabling it.
  const bool was_enabled = Tracer::enabled();
  if (!was_enabled) {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  if (!was_enabled) Tracer::Global().Disable();
  return {200, "application/json", Tracer::Global().ExportChromeJson()};
}

}  // namespace fungusdb::server
