#ifndef FUNGUSDB_SERVER_SOCKET_H_
#define FUNGUSDB_SERVER_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace fungusdb::server {

/// Owning POSIX file descriptor. Move-only; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor now (idempotent).
  void Reset();

 private:
  int fd_ = -1;
};

/// Opens a TCP listener on host:port (port 0 picks an ephemeral port;
/// read it back with LocalPort). The socket has SO_REUSEADDR set and a
/// listen backlog sized for bursts of simultaneous connects.
Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to host:port. TCP_NODELAY is set: the protocol is
/// request/response, so Nagle only adds latency.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Writes all of `data`, retrying on short writes and EINTR.
Status WriteAll(int fd, std::string_view data);

/// Reads exactly `len` bytes into `buffer`. A clean EOF before the
/// first byte fails with ConnectionClosed (distinguishable by error
/// code); EOF mid-buffer fails with WireFormat (torn frame).
Status ReadExact(int fd, char* buffer, size_t len);

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_SOCKET_H_
