#ifndef FUNGUSDB_SERVER_REQUEST_QUEUE_H_
#define FUNGUSDB_SERVER_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fungusdb::server {

/// Bounded multi-producer single-consumer queue between the connection
/// threads (producers) and the executor thread (consumer).
///
/// Backpressure is explicit: TryPush never blocks and never grows the
/// queue past its capacity — a full queue is the caller's signal to
/// answer kOverloaded. That is the server's whole admission-control
/// story, so the failure mode under load is a typed error on the wire
/// instead of unbounded memory growth or a silent drop.
///
/// Close() wakes the consumer; items already queued still drain (a
/// request we accepted is a request we answer), and Pop returns
/// nullopt only once the queue is both closed and empty.
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// False when the queue is full or closed — callers map both to a
  /// typed refusal (kOverloaded / kShuttingDown).
  bool TryPush(T item) FUNGUS_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > depth_high_water_) {
        depth_high_water_ = items_.size();
      }
    }
    ready_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND
  /// drained; nullopt means the consumer should exit.
  std::optional<T> Pop() FUNGUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) ready_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission. Idempotent; queued items still drain.
  void Close() FUNGUS_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.NotifyAll();
  }

  bool closed() const FUNGUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t depth() const FUNGUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been — exported as the
  /// fungusdb.server.queue_depth_high_water gauge.
  size_t depth_high_water() const FUNGUS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return depth_high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ FUNGUS_GUARDED_BY(mu_);
  bool closed_ FUNGUS_GUARDED_BY(mu_) = false;
  size_t depth_high_water_ FUNGUS_GUARDED_BY(mu_) = 0;
};

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_REQUEST_QUEUE_H_
