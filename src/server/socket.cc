#include "server/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace fungusdb::server {
namespace {

/// getaddrinfo deals in textual service names, which keeps all byte-
/// order conversion inside libc — no htons/ntohs in this file (the
/// project lint confines raw framing primitives to wire_format).
struct AddrInfoDeleter {
  void operator()(addrinfo* info) const { freeaddrinfo(info); }
};
using AddrInfoPtr = std::unique_ptr<addrinfo, AddrInfoDeleter>;

Result<AddrInfoPtr> Resolve(const std::string& host, uint16_t port,
                            bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* raw = nullptr;
  const std::string service = std::to_string(port);
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             service.c_str(), &hints, &raw);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve " + host + ":" + service +
                               ": " + gai_strerror(rc));
  }
  return AddrInfoPtr(raw);
}

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(const std::string& host, uint16_t port) {
  FUNGUSDB_ASSIGN_OR_RETURN(AddrInfoPtr info, Resolve(host, port, true));
  Status last = Status::Unavailable("no usable address for " + host);
  for (addrinfo* ai = info.get(); ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Errno("socket");
      continue;
    }
    const int one = 1;
    setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("bind " + host + ":" + std::to_string(port));
      continue;
    }
    if (::listen(fd.get(), 128) != 0) {
      last = Errno("listen");
      continue;
    }
    return fd;
  }
  return last;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  char service[NI_MAXSERV];
  const int rc = getnameinfo(reinterpret_cast<sockaddr*>(&addr), len,
                             nullptr, 0, service, sizeof(service),
                             NI_NUMERICSERV);
  if (rc != 0) {
    return Status::Internal(std::string("getnameinfo: ") +
                            gai_strerror(rc));
  }
  return static_cast<uint16_t>(std::strtoul(service, nullptr, 10));
}

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  FUNGUSDB_ASSIGN_OR_RETURN(AddrInfoPtr info, Resolve(host, port, false));
  Status last = Status::Unavailable("no usable address for " + host);
  for (addrinfo* ai = info.get(); ai != nullptr; ai = ai->ai_next) {
    UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect " + host + ":" + std::to_string(port));
      continue;
    }
    const int one = 1;
    setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  return last;
}

Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(fd, data.data() + written,
                             data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, char* buffer, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buffer + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        return Status::ConnectionClosed("peer closed the connection");
      }
      return Status::WireFormat("connection closed mid-frame (" +
                                std::to_string(got) + " of " +
                                std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace fungusdb::server
