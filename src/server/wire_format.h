#ifndef FUNGUSDB_SERVER_WIRE_FORMAT_H_
#define FUNGUSDB_SERVER_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_io.h"
#include "common/result.h"
#include "fungusdb/error_code.h"
#include "query/result_set.h"

namespace fungusdb::server {

/// FungusDB wire protocol v1 — the ONLY place in the tree that lays
/// out bytes for the network (enforced by the `wire-framing` project
/// lint rule). Every frame is:
///
///   offset  size  field
///        0     4  magic "FGWP" (little-endian u32 0x50574746)
///        4     2  protocol version (u16, currently 1)
///        6     2  frame type (u16, FrameType)
///        8     4  payload length in bytes (u32, <= kMaxPayloadBytes)
///       12     n  payload
///
/// All integers are little-endian (BufferWriter's encoding — the
/// snapshot and journal formats made that choice first). A peer that
/// sees a bad magic, an unknown version, or an oversized length MUST
/// drop the connection: framing can no longer be trusted.
inline constexpr uint32_t kWireMagic = 0x50574746;  // "FGWP"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : uint16_t {
  /// Client -> server: a batch of statements to execute in order.
  kStatementRequest = 1,
  /// Server -> client: one result per statement of the request.
  kStatementResponse = 2,
};

struct FrameHeader {
  uint16_t version = kWireVersion;
  FrameType type = FrameType::kStatementRequest;
  uint32_t payload_size = 0;
};

/// A batch of statements (SQL or the remote meta subset, e.g.
/// `\health`).
struct StatementRequest {
  uint64_t request_id = 0;
  /// Per-request wall-clock budget in microseconds, measured from
  /// arrival at the server. A request still queued when its budget runs
  /// out is answered with E:2003 Timeout instead of being executed.
  /// 0 = no deadline.
  uint64_t deadline_micros = 0;
  std::vector<std::string> statements;
};

struct StatementResponse {
  uint64_t request_id = 0;
  std::vector<Result<ResultSet>> results;
};

// --- Payload codecs (header-less; framing is separate). ---

std::string EncodeStatementRequest(const StatementRequest& request);
Result<StatementRequest> DecodeStatementRequest(std::string_view payload);

std::string EncodeStatementResponse(const StatementResponse& response);
Result<StatementResponse> DecodeStatementResponse(std::string_view payload);

// --- Framing. ---

/// Header + payload as one contiguous byte string ready to send.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Validates magic/version/length. `bytes` must be exactly
/// kFrameHeaderBytes.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

// --- Blocking frame I/O over a connected socket. ---

Status WriteFrame(int fd, FrameType type, std::string_view payload);

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Reads one full frame. ConnectionClosed when the peer hangs up
/// between frames; WireFormat on torn or malformed framing.
Result<Frame> ReadFrame(int fd);

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_WIRE_FORMAT_H_
