#ifndef FUNGUSDB_SERVER_SERVER_H_
#define FUNGUSDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/request_queue.h"
#include "server/socket.h"
#include "server/wire_format.h"
#include "summary/histogram_sketch.h"

namespace fungusdb::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Requests admitted but not yet executed. A full queue answers
  /// kOverloaded — the server's only backpressure mechanism, by design.
  size_t queue_capacity = 128;
  /// Simultaneous connections; excess connects are accepted and
  /// immediately closed so clients see a clean EOF, not a hang.
  size_t max_connections = 256;
  /// When non-empty, Stop() snapshots the database here after draining
  /// in-flight requests (the SIGTERM contract).
  std::string snapshot_path;
};

/// fungusd's engine room: a TCP front-end over one Database.
///
/// Threading model — one connection thread per client decodes frames
/// and pushes requests into a bounded MPSC queue; a SINGLE executor
/// thread pops and runs them against the Database. The Database stays
/// single-threaded exactly as its contract requires: between Start()
/// and the end of Stop(), only the executor touches it. Connection
/// threads block on a per-request future for the answer, which also
/// serializes each connection's request/response exchange.
///
/// Overload answers E:2002 kOverloaded (typed, never a silent drop),
/// expired deadlines answer E:2003 kTimeout, and a stopping server
/// answers E:2004 kShuttingDown. Stop() drains every admitted request,
/// then snapshots (if configured) — an accepted request is always
/// answered.
///
/// Exported metrics (on the Database's registry, all prefixed
/// fungusdb.server.): connections_accepted, connections_active,
/// requests_total, requests_overloaded, requests_timeout,
/// statements_total, queue_depth_high_water, statement_latency_us.
class Server {
 public:
  /// Takes ownership of a (possibly pre-populated) database.
  explicit Server(std::unique_ptr<Database> db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + executor threads.
  Status Start();

  /// Graceful shutdown: stop accepting, drain the queue, join every
  /// thread, then snapshot. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (valid after Start(), also with options.port == 0).
  uint16_t port() const { return port_; }

  /// The owned database. Only safe to touch before Start() (seeding)
  /// or after Stop() returns (inspection) — in between it belongs to
  /// the executor thread.
  Database& database() { return *db_; }

 private:
  struct PendingRequest {
    StatementRequest request;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// Tracer-epoch enqueue time; the executor turns it into the
    /// queue-wait metric and the "server.queue_wait" trace span.
    uint64_t enqueued_us = 0;
    std::promise<std::vector<Result<ResultSet>>> reply;
  };

  struct Connection {
    std::thread thread;
    int fd = -1;
    bool done = false;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  void ExecutorLoop();

  /// Executor-thread only. Dispatches SQL vs the remote meta subset.
  Result<ResultSet> ExecuteStatement(const std::string& statement);
  Result<ResultSet> ExecuteMeta(const std::string& line);

  /// Joins connections whose threads have finished (acceptor thread).
  void ReapFinishedConnections();

  std::unique_ptr<Database> db_;
  ServerOptions options_;
  RequestQueue<PendingRequest> queue_;
  HistogramSketch latency_sketch_;

  UniqueFd listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread executor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex stop_mu_;
  bool stopped_ = false;

  std::mutex conns_mu_;
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 0;
};

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_SERVER_H_
