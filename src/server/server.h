#ifndef FUNGUSDB_SERVER_SERVER_H_
#define FUNGUSDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/database.h"
#include "core/session.h"
#include "server/request_queue.h"
#include "server/socket.h"
#include "server/wire_format.h"
#include "summary/histogram_sketch.h"

namespace fungusdb::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Requests admitted but not yet executed (per queue: the write queue
  /// and the read queue each get this capacity). A full queue answers
  /// kOverloaded — the server's only backpressure mechanism, by design.
  size_t queue_capacity = 128;
  /// Simultaneous connections; excess connects are accepted and
  /// immediately closed so clients see a clean EOF, not a hang.
  size_t max_connections = 256;
  /// When non-empty, Stop() snapshots the database here after draining
  /// in-flight requests (the SIGTERM contract).
  std::string snapshot_path;
  /// Read worker pool size: -1 sizes from the hardware (capped at 8),
  /// 0 disables the read path entirely (every statement runs on the
  /// writer, the pre-split behavior), N > 0 spawns exactly N workers,
  /// each owning one Session.
  int read_workers = -1;
};

/// fungusd's engine room: a TCP front-end over one Database.
///
/// Threading model (DESIGN.md §13) — one connection thread per client
/// decodes frames and classifies each request's batch. A batch whose
/// statements are all provably read-only goes to the read queue, served
/// by a pool of read workers that each own a Session and execute
/// against an epoch-pinned snapshot view. Everything else goes to the
/// write queue, served by a SINGLE executor thread that owns the total
/// order over mutations (inserts, DDL, \advance ticks, CONSUME,
/// cooking). Connection threads block on a per-request future for the
/// answer, which also serializes each connection's request/response
/// exchange.
///
/// Overload answers E:2002 kOverloaded (typed, never a silent drop),
/// expired deadlines answer E:2003 kTimeout, and a stopping server
/// answers E:2004 kShuttingDown — on both queues. Stop() drains every
/// admitted request, then snapshots (if configured) — an accepted
/// request is always answered.
///
/// Exported metrics (on the Database's registry, all prefixed
/// fungusdb.server.): connections_accepted, connections_active,
/// requests_total, requests_read_path, requests_overloaded,
/// requests_timeout, statements_total (plus per-worker series labeled
/// worker=writer / worker=read-<i>), queue_depth_high_water,
/// read_queue_depth_high_water, read_workers, statement_latency_us.
class Server {
 public:
  /// Takes ownership of a (possibly pre-populated) database.
  explicit Server(std::unique_ptr<Database> db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor, executor, and read
  /// worker threads.
  Status Start();

  /// Graceful shutdown: stop accepting, drain both queues, join every
  /// thread, then snapshot. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (valid after Start(), also with options.port == 0).
  uint16_t port() const { return port_; }

  /// Resolved read worker count (valid after Start()).
  size_t num_read_workers() const { return num_read_workers_; }

  /// The owned database. Only safe to touch before Start() (seeding)
  /// or after Stop() returns (inspection) — in between it belongs to
  /// the executor and read worker threads.
  Database& database() { return *db_; }

 private:
  struct PendingRequest {
    StatementRequest request;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// Tracer-epoch enqueue time; the worker turns it into the
    /// queue-wait metric and the "server.queue_wait" trace span.
    uint64_t enqueued_us = 0;
    std::promise<std::vector<Result<ResultSet>>> reply;
  };

  struct Connection {
    std::thread thread;
    int fd = -1;
    bool done = false;
  };

  /// Writer sentinel for ProcessRequest's worker index.
  static constexpr int kWriterWorker = -1;

  void AcceptLoop();
  void ServeConnection(uint64_t conn_id, int fd);
  void ExecutorLoop();
  void ReadWorkerLoop(size_t worker_index);

  /// Shared request body for the writer and the read workers: queue
  /// wait attribution, per-statement deadline recheck, execution,
  /// latency accounting. `worker` is kWriterWorker or a read worker
  /// index.
  void ProcessRequest(PendingRequest pending, int worker);

  /// True iff every statement in the batch classifies kReadOnly —
  /// the routing predicate for the read queue (connection threads).
  bool BatchIsReadOnly(const std::vector<std::string>& statements);

  /// Writer-thread only. Dispatches SQL vs the remote meta subset.
  Result<ResultSet> ExecuteStatement(const std::string& statement);
  Result<ResultSet> ExecuteMeta(const std::string& line);

  /// Read-worker execution: SQL through the worker's Session, the
  /// read-only meta subset under an explicit epoch pin.
  Result<ResultSet> ExecuteReadStatement(size_t worker_index,
                                         const std::string& statement);

  /// The read-only meta subset (\health \now \metrics \tables \rot
  /// \fsck \trace). Runs on the writer or, under an outer epoch pin,
  /// on any read worker.
  Result<ResultSet> ExecuteReadMeta(const std::string& line);

  /// Joins connections whose threads have finished (acceptor thread).
  void ReapFinishedConnections();

  std::unique_ptr<Database> db_;
  ServerOptions options_;
  RequestQueue<PendingRequest> queue_;
  RequestQueue<PendingRequest> read_queue_;
  /// Written by every worker; HistogramSketch is not thread-safe.
  Mutex latency_mu_;
  HistogramSketch latency_sketch_ FUNGUS_GUARDED_BY(latency_mu_);

  // Lifecycle state below is written only in Start() (before any worker
  // thread exists) and read by workers afterwards — the thread spawns
  // order it; capability_audit.py carries the justified entries.
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread executor_;
  size_t num_read_workers_ = 0;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::thread> read_threads_;
  std::atomic<bool> stopping_{false};

  Mutex stop_mu_;
  bool started_ FUNGUS_GUARDED_BY(stop_mu_) = false;
  bool stopped_ FUNGUS_GUARDED_BY(stop_mu_) = false;

  Mutex conns_mu_;
  std::map<uint64_t, Connection> conns_ FUNGUS_GUARDED_BY(conns_mu_);
  uint64_t next_conn_id_ FUNGUS_GUARDED_BY(conns_mu_) = 0;
};

}  // namespace fungusdb::server

#endif  // FUNGUSDB_SERVER_SERVER_H_
