#include "summary/reservoir_sample.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "storage/value_serde.h"

namespace fungusdb {

ReservoirSample::ReservoirSample(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  assert(capacity > 0);
  sample_.reserve(capacity);
}

void ReservoirSample::Observe(const Value& value) {
  if (value.is_null()) return;
  ++observations_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  // Keep each of the n observations with probability capacity/n.
  const uint64_t slot = rng_.NextBounded(observations_);
  if (slot < capacity_) {
    sample_[static_cast<size_t>(slot)] = value;
  }
}

Status ReservoirSample::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge reservoir with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const ReservoirSample&>(other);
  // Weighted merge: keep each incoming element in proportion to the
  // other reservoir's population so the union stays (approximately)
  // uniform over both streams.
  if (o.observations_ == 0) return Status::OK();
  const double take_probability =
      static_cast<double>(o.observations_) /
      static_cast<double>(observations_ + o.observations_);
  for (const Value& v : o.sample_) {
    if (sample_.size() < capacity_) {
      sample_.push_back(v);
    } else if (rng_.NextBernoulli(take_probability)) {
      sample_[static_cast<size_t>(rng_.NextBounded(capacity_))] = v;
    }
  }
  observations_ += o.observations_;
  return Status::OK();
}

size_t ReservoirSample::MemoryUsage() const {
  size_t bytes = sizeof(ReservoirSample);
  for (const Value& v : sample_) bytes += v.MemoryUsage();
  bytes += (sample_.capacity() - sample_.size()) * sizeof(Value);
  return bytes;
}

Result<double> ReservoirSample::EstimateMean() const {
  if (sample_.empty()) {
    return Status::FailedPrecondition("empty reservoir");
  }
  double sum = 0.0;
  for (const Value& v : sample_) {
    FUNGUSDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
    sum += d;
  }
  return sum / static_cast<double>(sample_.size());
}

Result<double> ReservoirSample::EstimateQuantile(double q) const {
  if (sample_.empty()) {
    return Status::FailedPrecondition("empty reservoir");
  }
  std::vector<double> values;
  values.reserve(sample_.size());
  for (const Value& v : sample_) {
    FUNGUSDB_ASSIGN_OR_RETURN(double d, v.ToDouble());
    values.push_back(d);
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

void ReservoirSample::Serialize(BufferWriter& out) const {
  out.WriteU64(capacity_);
  out.WriteU64(observations_);
  out.WriteU64(sample_.size());
  for (const Value& v : sample_) WriteValue(out, v);
}

Result<std::unique_ptr<ReservoirSample>> ReservoirSample::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t capacity, in.ReadU64());
  if (capacity == 0 || capacity > (1u << 26)) {
    return Status::ParseError("implausible reservoir capacity");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t observations, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t sample_size, in.ReadU64());
  if (sample_size > capacity) {
    return Status::ParseError("reservoir sample larger than capacity");
  }
  auto res = std::make_unique<ReservoirSample>(
      capacity, /*seed=*/0x5A3317 ^ observations);
  res->observations_ = observations;
  for (uint64_t i = 0; i < sample_size; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(Value v, ReadValue(in));
    res->sample_.push_back(std::move(v));
  }
  return res;
}

std::string ReservoirSample::Describe() const {
  return "reservoir(k=" + std::to_string(capacity_) + ")";
}

}  // namespace fungusdb
