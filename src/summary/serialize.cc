#include "summary/serialize.h"

#include "summary/bloom_filter.h"
#include "summary/count_min_sketch.h"
#include "summary/grouped_aggregate.h"
#include "summary/histogram_sketch.h"
#include "summary/hyperloglog.h"
#include "summary/p2_quantile.h"
#include "summary/reservoir_sample.h"

namespace fungusdb {

void SerializeSummary(const Summary& summary, BufferWriter& out) {
  out.WriteString(summary.kind());
  summary.Serialize(out);
}

Result<std::unique_ptr<Summary>> DeserializeSummary(BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(std::string kind, in.ReadString());
  if (kind == "count_min") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, CountMinSketch::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "hyperloglog") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, HyperLogLog::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "bloom") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, BloomFilter::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "reservoir") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, ReservoirSample::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "histogram") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, HistogramSketch::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "p2_quantile") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, P2Quantile::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  if (kind == "grouped_aggregate") {
    FUNGUSDB_ASSIGN_OR_RETURN(auto s, GroupedAggregate::Deserialize(in));
    return std::unique_ptr<Summary>(std::move(s));
  }
  return Status::ParseError("unknown summary kind '" + kind + "'");
}

}  // namespace fungusdb
