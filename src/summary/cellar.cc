#include "summary/cellar.h"

#include <cmath>

#include "summary/serialize.h"

namespace fungusdb {

Cellar::Cellar(double eviction_threshold)
    : eviction_threshold_(eviction_threshold) {}

Status Cellar::Put(std::string name, std::unique_ptr<Summary> summary,
                   Duration half_life, Timestamp now) {
  if (summary == nullptr) {
    return Status::InvalidArgument("summary is null");
  }
  auto [it, inserted] = entries_.try_emplace(std::move(name));
  if (!inserted) {
    return Status::AlreadyExists("cellar entry '" + it->first +
                                 "' already exists");
  }
  Entry& e = it->second;
  e.summary = std::move(summary);
  e.half_life = half_life;
  e.stored_at = now;
  e.last_decay = now;
  e.freshness = 1.0;
  return Status::OK();
}

Summary* Cellar::Find(const std::string& name) {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.summary.get();
}

const Summary* Cellar::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.summary.get();
}

Status Cellar::MergeInto(const std::string& name,
                         std::unique_ptr<Summary> summary,
                         Duration half_life, Timestamp now) {
  if (summary == nullptr) {
    return Status::InvalidArgument("summary is null");
  }
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Put(name, std::move(summary), half_life, now);
  }
  // Merging refreshes the entry: new knowledge arrived.
  FUNGUSDB_RETURN_IF_ERROR(it->second.summary->Merge(*summary));
  it->second.freshness = 1.0;
  it->second.last_decay = now;
  return Status::OK();
}

Status Cellar::Evict(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound("no cellar entry '" + name + "'");
  }
  return Status::OK();
}

uint64_t Cellar::AdvanceTo(Timestamp now) {
  uint64_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& e = it->second;
    if (e.half_life > 0 && now > e.last_decay) {
      const double halvings = static_cast<double>(now - e.last_decay) /
                              static_cast<double>(e.half_life);
      e.freshness *= std::pow(0.5, halvings);
      e.last_decay = now;
    }
    if (e.half_life > 0 && e.freshness <= eviction_threshold_) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

Result<double> Cellar::FreshnessOf(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no cellar entry '" + name + "'");
  }
  return it->second.freshness;
}

size_t Cellar::MemoryUsage() const {
  size_t bytes = sizeof(Cellar);
  for (const auto& [name, entry] : entries_) {
    bytes += name.capacity() + sizeof(Entry) +
             entry.summary->MemoryUsage();
  }
  return bytes;
}

void Cellar::Serialize(BufferWriter& out) const {
  out.WriteU64(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.WriteString(name);
    out.WriteI64(entry.half_life);
    out.WriteI64(entry.stored_at);
    out.WriteI64(entry.last_decay);
    out.WriteDouble(entry.freshness);
    SerializeSummary(*entry.summary, out);
  }
}

Status Cellar::DeserializeInto(BufferReader& in) {
  if (!entries_.empty()) {
    return Status::FailedPrecondition(
        "cellar must be empty before restore");
  }
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t count, in.ReadU64());
  std::map<std::string, Entry> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string name, in.ReadString());
    Entry entry;
    FUNGUSDB_ASSIGN_OR_RETURN(entry.half_life, in.ReadI64());
    FUNGUSDB_ASSIGN_OR_RETURN(entry.stored_at, in.ReadI64());
    FUNGUSDB_ASSIGN_OR_RETURN(entry.last_decay, in.ReadI64());
    FUNGUSDB_ASSIGN_OR_RETURN(entry.freshness, in.ReadDouble());
    FUNGUSDB_ASSIGN_OR_RETURN(entry.summary, DeserializeSummary(in));
    loaded.emplace(std::move(name), std::move(entry));
  }
  entries_ = std::move(loaded);
  return Status::OK();
}

std::vector<Cellar::EntryInfo> Cellar::List() const {
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    EntryInfo info;
    info.name = name;
    info.kind = std::string(entry.summary->kind());
    info.freshness = entry.freshness;
    info.observations = entry.summary->observations();
    info.memory_bytes = entry.summary->MemoryUsage();
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace fungusdb
