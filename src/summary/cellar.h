#ifndef FUNGUSDB_SUMMARY_CELLAR_H_
#define FUNGUSDB_SUMMARY_CELLAR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer_io.h"
#include "common/clock.h"
#include "common/result.h"
#include "summary/summary.h"

namespace fungusdb {

/// The "new container subject to different data fungi" from the paper's
/// second law: named summaries, each with its own (optional) exponential
/// decay. A cellar entry's freshness starts at 1.0 and halves every
/// `half_life`; at or below the eviction threshold the summary itself is
/// discarded — cooked knowledge rots too, just more slowly than raw
/// tuples.
class Cellar {
 public:
  struct EntryInfo {
    std::string name;
    std::string kind;
    double freshness = 1.0;
    uint64_t observations = 0;
    size_t memory_bytes = 0;
  };

  /// `eviction_threshold`: freshness at or below which entries are
  /// dropped by AdvanceTo().
  explicit Cellar(double eviction_threshold = 0.01);

  Cellar(const Cellar&) = delete;
  Cellar& operator=(const Cellar&) = delete;

  /// Stores a summary under `name`. `half_life` <= 0 makes the entry
  /// immortal. Fails with AlreadyExists on name collision.
  Status Put(std::string name, std::unique_ptr<Summary> summary,
             Duration half_life, Timestamp now);

  /// Looks up an entry (nullptr when absent). The pointer stays valid
  /// until the entry is evicted or the cellar is destroyed.
  Summary* Find(const std::string& name);
  const Summary* Find(const std::string& name) const;

  /// Merges `summary` into the existing entry, or stores it when the
  /// name is free.
  Status MergeInto(const std::string& name,
                   std::unique_ptr<Summary> summary, Duration half_life,
                   Timestamp now);

  /// Removes an entry.
  Status Evict(const std::string& name);

  /// Applies decay up to `now` and evicts entries whose freshness fell
  /// to or below the threshold. Returns the number evicted.
  uint64_t AdvanceTo(Timestamp now);

  /// Current freshness of an entry; fails with NotFound when absent.
  Result<double> FreshnessOf(const std::string& name) const;

  size_t size() const { return entries_.size(); }
  size_t MemoryUsage() const;

  /// Name-sorted snapshot of the shelf.
  std::vector<EntryInfo> List() const;

  /// Appends every entry (decay state + serialized summary) to `out`.
  void Serialize(BufferWriter& out) const;

  /// Restores the entries written by Serialize() into this cellar
  /// (which must be empty). Fails atomically on malformed input.
  Status DeserializeInto(BufferReader& in);

 private:
  struct Entry {
    std::unique_ptr<Summary> summary;
    Duration half_life = 0;  // <= 0: immortal
    Timestamp stored_at = 0;
    Timestamp last_decay = 0;
    double freshness = 1.0;
  };

  double eviction_threshold_;
  std::map<std::string, Entry> entries_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_CELLAR_H_
