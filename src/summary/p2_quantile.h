#ifndef FUNGUSDB_SUMMARY_P2_QUANTILE_H_
#define FUNGUSDB_SUMMARY_P2_QUANTILE_H_

#include <cstdint>
#include <string>

#include "summary/summary.h"

namespace fungusdb {

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985): tracks
/// one target quantile in O(1) space without storing observations, by
/// maintaining five markers whose heights are adjusted with a piecewise
/// parabolic formula.
///
/// Note: P² state is not mergeable in a principled way; Merge() combines
/// estimates weighted by observation counts and is only an
/// approximation (documented, and exercised by tests on similar
/// distributions).
class P2Quantile : public ColumnSummary {
 public:
  /// `q` in (0, 1): the quantile to track.
  explicit P2Quantile(double q);

  std::string_view kind() const override { return "p2_quantile"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return count_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override { return sizeof(P2Quantile); }
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  static Result<std::unique_ptr<P2Quantile>> Deserialize(BufferReader& in);

  double target_quantile() const { return q_; }

  /// Current estimate; fails before any numeric observation.
  Result<double> Estimate() const;

 private:
  void ObserveDouble(double x);
  void CopyStateFrom(const P2Quantile& o);

  double q_;
  uint64_t count_ = 0;
  // Marker heights, positions, and desired positions (5 markers once
  // count_ >= 5; before that heights_ holds the raw sorted prefix).
  double heights_[5];
  double positions_[5];
  double desired_[5];
  double increments_[5];
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_P2_QUANTILE_H_
