#ifndef FUNGUSDB_SUMMARY_HISTOGRAM_SKETCH_H_
#define FUNGUSDB_SUMMARY_HISTOGRAM_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "summary/summary.h"

namespace fungusdb {

/// Equi-width histogram over a fixed numeric domain [lo, hi). Values
/// outside the domain are clamped into the edge buckets. Answers count,
/// range-count and quantile estimates over rotted numeric data.
class HistogramSketch : public ColumnSummary {
 public:
  HistogramSketch(double lo, double hi, size_t buckets);

  std::string_view kind() const override { return "histogram"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return total_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  static Result<std::unique_ptr<HistogramSketch>> Deserialize(
      BufferReader& in);

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  double bucket_low(size_t i) const;
  double bucket_high(size_t i) const;

  /// Estimated number of observations in [range_lo, range_hi), with
  /// linear interpolation inside partially-covered buckets.
  double EstimateRangeCount(double range_lo, double range_hi) const;

  /// Estimated q-quantile (q in [0, 1]).
  Result<double> EstimateQuantile(double q) const;

  /// Estimated mean (bucket midpoints weighted by counts).
  Result<double> EstimateMean() const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_HISTOGRAM_SKETCH_H_
