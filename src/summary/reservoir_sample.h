#ifndef FUNGUSDB_SUMMARY_RESERVOIR_SAMPLE_H_
#define FUNGUSDB_SUMMARY_RESERVOIR_SAMPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "summary/summary.h"

namespace fungusdb {

/// Uniform reservoir sample (Vitter's Algorithm R) of up to `capacity`
/// values. The cooked form that keeps raw representatives — handy for
/// "inspect them once before removal" style workflows and for estimating
/// arbitrary statistics of rotted data.
class ReservoirSample : public ColumnSummary {
 public:
  explicit ReservoirSample(size_t capacity, uint64_t seed = 0x5A3317);

  std::string_view kind() const override { return "reservoir"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return observations_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  /// The sampled values and counters are restored exactly; the PRNG
  /// stream restarts from a seed derived from the observation count.
  static Result<std::unique_ptr<ReservoirSample>> Deserialize(
      BufferReader& in);

  size_t capacity() const { return capacity_; }
  const std::vector<Value>& sample() const { return sample_; }

  /// Sample mean of numeric values; fails on empty or non-numeric data.
  Result<double> EstimateMean() const;

  /// Sample quantile (q in [0, 1]) of numeric values.
  Result<double> EstimateQuantile(double q) const;

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t observations_ = 0;
  std::vector<Value> sample_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_RESERVOIR_SAMPLE_H_
