#ifndef FUNGUSDB_SUMMARY_SUMMARY_H_
#define FUNGUSDB_SUMMARY_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/buffer_io.h"
#include "common/status.h"
#include "storage/value.h"

namespace fungusdb {

/// A cooked distillate of data that has rotted (or is about to). This is
/// the paper's answer to the data deluge: "once you take something out
/// of R, you should distill it into useful knowledge, summary".
///
/// Summaries are mergeable so cellar entries cooked from different rot
/// events can be combined, and so answers can be assembled across time
/// slices.
class Summary {
 public:
  virtual ~Summary() = default;

  Summary(const Summary&) = delete;
  Summary& operator=(const Summary&) = delete;

  /// Stable kind tag, e.g. "count_min", "hyperloglog".
  virtual std::string_view kind() const = 0;

  /// Number of non-null observations folded in.
  virtual uint64_t observations() const = 0;

  /// Folds `other` into this summary. Fails with TypeMismatch /
  /// InvalidArgument when kinds or shapes differ.
  virtual Status Merge(const Summary& other) = 0;

  /// Heap + inline bytes held.
  virtual size_t MemoryUsage() const = 0;

  /// Human-readable parameterization.
  virtual std::string Describe() const = 0;

  /// Appends the complete state (parameters + counters) to `out`; the
  /// inverse is the kind-dispatched DeserializeSummary() in
  /// summary/serialize.h. Reservoir samples regain a fresh PRNG stream
  /// on load (their sampled contents are preserved exactly).
  virtual void Serialize(BufferWriter& out) const = 0;

 protected:
  Summary() = default;
};

/// A summary fed one column's values (all sketches except
/// GroupedAggregate). Null values are ignored.
class ColumnSummary : public Summary {
 public:
  virtual void Observe(const Value& value) = 0;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_SUMMARY_H_
