#include "summary/histogram_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace fungusdb {

HistogramSketch::HistogramSketch(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi) {
  assert(hi > lo);
  assert(buckets > 0);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

double HistogramSketch::bucket_low(size_t i) const {
  return lo_ + static_cast<double>(i) * bucket_width_;
}

double HistogramSketch::bucket_high(size_t i) const {
  return lo_ + static_cast<double>(i + 1) * bucket_width_;
}

void HistogramSketch::Observe(const Value& value) {
  if (value.is_null()) return;
  Result<double> d = value.ToDouble();
  if (!d.ok()) return;  // non-numeric values are silently skipped
  double x = std::clamp(*d, lo_, std::nextafter(hi_, lo_));
  size_t bucket = static_cast<size_t>((x - lo_) / bucket_width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  ++counts_[bucket];
  ++total_;
}

double HistogramSketch::EstimateRangeCount(double range_lo,
                                           double range_hi) const {
  if (range_hi <= range_lo) return 0.0;
  double estimate = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = bucket_low(i);
    const double b_hi = bucket_high(i);
    const double overlap_lo = std::max(b_lo, range_lo);
    const double overlap_hi = std::min(b_hi, range_hi);
    if (overlap_hi <= overlap_lo) continue;
    const double fraction = (overlap_hi - overlap_lo) / (b_hi - b_lo);
    estimate += fraction * static_cast<double>(counts_[i]);
  }
  return estimate;
}

Result<double> HistogramSketch::EstimateQuantile(double q) const {
  if (total_ == 0) return Status::FailedPrecondition("empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double seen = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = seen + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - seen) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * bucket_width_;
    }
    seen = next;
  }
  return hi_;
}

Result<double> HistogramSketch::EstimateMean() const {
  if (total_ == 0) return Status::FailedPrecondition("empty histogram");
  double sum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double mid = 0.5 * (bucket_low(i) + bucket_high(i));
    sum += mid * static_cast<double>(counts_[i]);
  }
  return sum / static_cast<double>(total_);
}

Status HistogramSketch::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge histogram with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const HistogramSketch&>(other);
  if (o.lo_ != lo_ || o.hi_ != hi_ || o.counts_.size() != counts_.size()) {
    return Status::InvalidArgument("histogram domains differ");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
  return Status::OK();
}

void HistogramSketch::Serialize(BufferWriter& out) const {
  out.WriteDouble(lo_);
  out.WriteDouble(hi_);
  out.WriteU64(counts_.size());
  out.WriteU64(total_);
  for (uint64_t count : counts_) out.WriteU64(count);
}

Result<std::unique_ptr<HistogramSketch>> HistogramSketch::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(double lo, in.ReadDouble());
  FUNGUSDB_ASSIGN_OR_RETURN(double hi, in.ReadDouble());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t buckets, in.ReadU64());
  if (!(hi > lo) || buckets == 0 || buckets > (1u << 26)) {
    return Status::ParseError("implausible histogram shape");
  }
  auto hist = std::make_unique<HistogramSketch>(lo, hi, buckets);
  FUNGUSDB_ASSIGN_OR_RETURN(hist->total_, in.ReadU64());
  for (uint64_t& count : hist->counts_) {
    FUNGUSDB_ASSIGN_OR_RETURN(count, in.ReadU64());
  }
  return hist;
}

size_t HistogramSketch::MemoryUsage() const {
  return sizeof(HistogramSketch) + counts_.capacity() * sizeof(uint64_t);
}

std::string HistogramSketch::Describe() const {
  return "histogram([" + FormatDouble(lo_, 2) + ", " + FormatDouble(hi_, 2) +
         "), b=" + std::to_string(counts_.size()) + ")";
}

}  // namespace fungusdb
