#ifndef FUNGUSDB_SUMMARY_HYPERLOGLOG_H_
#define FUNGUSDB_SUMMARY_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "summary/summary.h"

namespace fungusdb {

/// HyperLogLog (Flajolet et al. 2007) distinct-count sketch with the
/// standard small-range (linear counting) correction. With precision p
/// it uses 2^p one-byte registers and has relative standard error
/// ~1.04 / sqrt(2^p).
class HyperLogLog : public ColumnSummary {
 public:
  /// `precision` in [4, 18].
  explicit HyperLogLog(int precision, uint64_t seed = 0x1171u);

  std::string_view kind() const override { return "hyperloglog"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return observations_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  static Result<std::unique_ptr<HyperLogLog>> Deserialize(BufferReader& in);

  /// Estimated number of distinct non-null values observed.
  double EstimateDistinct() const;

  int precision() const { return precision_; }

  /// Theoretical relative standard error for this precision.
  double StandardError() const;

 private:
  int precision_;
  uint64_t seed_;
  uint64_t observations_ = 0;
  std::vector<uint8_t> registers_;  // 2^precision entries
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_HYPERLOGLOG_H_
