#ifndef FUNGUSDB_SUMMARY_TABLE_STATS_H_
#define FUNGUSDB_SUMMARY_TABLE_STATS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace fungusdb {

/// On-demand statistics for one column over the *live* extent.
struct ColumnStats {
  std::string name;
  DataType type = DataType::kInt64;
  uint64_t live_values = 0;  // non-null live cells
  uint64_t nulls = 0;

  /// Min/max over live non-null cells (strings compare
  /// lexicographically); absent when every live cell is null.
  std::optional<Value> min;
  std::optional<Value> max;

  /// Mean of numeric columns; absent otherwise.
  std::optional<double> mean;

  /// HyperLogLog(12) distinct estimate (~1% error).
  double approx_distinct = 0.0;

  std::string ToString() const;
};

/// Full-table analysis: one ColumnStats per user column, plus the two
/// system columns (`__ts`, `__freshness`) appended at the end. A single
/// scan of the live extent; O(live_rows * columns).
struct TableStats {
  std::string table_name;
  uint64_t live_rows = 0;
  std::vector<ColumnStats> columns;

  std::string ToString() const;
};

/// Analyzes one column by index (user columns only).
Result<ColumnStats> ComputeColumnStats(const Table& table, size_t column);

/// Analyzes every column including the system columns.
TableStats AnalyzeTable(const Table& table);

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_TABLE_STATS_H_
