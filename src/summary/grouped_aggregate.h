#ifndef FUNGUSDB_SUMMARY_GROUPED_AGGREGATE_H_
#define FUNGUSDB_SUMMARY_GROUPED_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "summary/summary.h"

namespace fungusdb {

/// Per-group running aggregate state.
struct AggregateState {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Observe(double x);
  void Merge(const AggregateState& other);
  double Mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// Exact grouped count/sum/min/max/mean over (group key, numeric value)
/// pairs — the classical "cooking scheme": distilling detail rows into
/// per-key rollups before the detail rots. Keys are rendered through
/// Value::ToString() so any storage type can group.
class GroupedAggregate : public Summary {
 public:
  GroupedAggregate() = default;

  std::string_view kind() const override { return "grouped_aggregate"; }
  uint64_t observations() const override { return observations_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  static Result<std::unique_ptr<GroupedAggregate>> Deserialize(
      BufferReader& in);

  /// Folds one (key, value) pair in. Null keys or values are skipped.
  void Observe(const Value& key, const Value& value);

  size_t num_groups() const { return groups_.size(); }

  /// State for a key; fails with NotFound for unseen keys.
  Result<AggregateState> GroupState(const Value& key) const;

  /// (key string, state) pairs, key-sorted.
  std::vector<std::pair<std::string, AggregateState>> Entries() const;

 private:
  uint64_t observations_ = 0;
  std::map<std::string, AggregateState> groups_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_GROUPED_AGGREGATE_H_
