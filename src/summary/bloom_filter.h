#ifndef FUNGUSDB_SUMMARY_BLOOM_FILTER_H_
#define FUNGUSDB_SUMMARY_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "summary/summary.h"

namespace fungusdb {

/// Standard Bloom filter: set membership with no false negatives. Used
/// as a cooked "was this key ever in the rotted region?" distillate.
class BloomFilter : public ColumnSummary {
 public:
  /// `num_bits` bits of state, `num_hashes` probes per key.
  BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed = 0xB100F);

  /// Sized for `expected_items` at `false_positive_rate`.
  static BloomFilter FromExpectedItems(uint64_t expected_items,
                                       double false_positive_rate,
                                       uint64_t seed = 0xB100F);

  std::string_view kind() const override { return "bloom"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return observations_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  static Result<std::unique_ptr<BloomFilter>> Deserialize(BufferReader& in);

  /// False => definitely never observed. True => probably observed.
  bool MayContain(const Value& value) const;

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }

  /// Current expected false-positive rate given the observed load.
  double EstimatedFalsePositiveRate() const;

 private:
  size_t BitIndex(size_t probe, uint64_t hash) const;

  size_t num_bits_;
  size_t num_hashes_;
  uint64_t seed_;
  uint64_t observations_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_BLOOM_FILTER_H_
