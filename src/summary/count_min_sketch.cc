#include "summary/count_min_sketch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "summary/hashing.h"

namespace fungusdb {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  assert(width > 0 && depth > 0);
  cells_.assign(width_ * depth_, 0);
}

CountMinSketch CountMinSketch::FromErrorBound(double epsilon, double delta,
                                              uint64_t seed) {
  assert(epsilon > 0.0 && epsilon < 1.0);
  assert(delta > 0.0 && delta < 1.0);
  const size_t width =
      static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  const size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<size_t>(width, 1),
                        std::max<size_t>(depth, 1), seed);
}

size_t CountMinSketch::CellIndex(size_t row, uint64_t hash) const {
  // Derive per-row hashes from one 64-bit value via double hashing.
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xDEADBEEFCAFEF00DULL) | 1;
  return row * width_ + static_cast<size_t>((h1 + row * h2) % width_);
}

void CountMinSketch::Observe(const Value& value) {
  if (value.is_null()) return;
  const uint64_t h = HashValue(value, seed_);
  for (size_t row = 0; row < depth_; ++row) {
    ++cells_[CellIndex(row, h)];
  }
  ++total_;
}

uint64_t CountMinSketch::EstimateCount(const Value& value) const {
  if (value.is_null()) return 0;
  const uint64_t h = HashValue(value, seed_);
  uint64_t best = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    best = std::min(best, cells_[CellIndex(row, h)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

Status CountMinSketch::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge count_min with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const CountMinSketch&>(other);
  if (o.width_ != width_ || o.depth_ != depth_ || o.seed_ != seed_) {
    return Status::InvalidArgument(
        "count_min shapes differ (width/depth/seed)");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += o.cells_[i];
  total_ += o.total_;
  return Status::OK();
}

size_t CountMinSketch::MemoryUsage() const {
  return sizeof(CountMinSketch) + cells_.capacity() * sizeof(uint64_t);
}

double CountMinSketch::Epsilon() const {
  return std::exp(1.0) / static_cast<double>(width_);
}

void CountMinSketch::Serialize(BufferWriter& out) const {
  out.WriteU64(width_);
  out.WriteU64(depth_);
  out.WriteU64(seed_);
  out.WriteU64(total_);
  for (uint64_t cell : cells_) out.WriteU64(cell);
}

Result<std::unique_ptr<CountMinSketch>> CountMinSketch::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t width, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t depth, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t seed, in.ReadU64());
  if (width == 0 || depth == 0 || width * depth > (1u << 28)) {
    return Status::ParseError("implausible count_min shape");
  }
  auto sketch = std::make_unique<CountMinSketch>(width, depth, seed);
  FUNGUSDB_ASSIGN_OR_RETURN(sketch->total_, in.ReadU64());
  for (uint64_t& cell : sketch->cells_) {
    FUNGUSDB_ASSIGN_OR_RETURN(cell, in.ReadU64());
  }
  return sketch;
}

std::string CountMinSketch::Describe() const {
  return "count_min(w=" + std::to_string(width_) +
         ", d=" + std::to_string(depth_) + ")";
}

}  // namespace fungusdb
