#ifndef FUNGUSDB_SUMMARY_SERIALIZE_H_
#define FUNGUSDB_SUMMARY_SERIALIZE_H_

#include <memory>

#include "common/buffer_io.h"
#include "common/result.h"
#include "summary/summary.h"

namespace fungusdb {

/// Writes `kind` as a length-prefixed string followed by the summary's
/// own state, so DeserializeSummary() can dispatch.
void SerializeSummary(const Summary& summary, BufferWriter& out);

/// Reconstructs a summary written by SerializeSummary(). Fails with
/// ParseError on unknown kinds and OutOfRange on truncation.
Result<std::unique_ptr<Summary>> DeserializeSummary(BufferReader& in);

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_SERIALIZE_H_
