#include "summary/grouped_aggregate.h"

#include <algorithm>

namespace fungusdb {

void AggregateState::Observe(double x) {
  if (count == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  sum += x;
}

void AggregateState::Merge(const AggregateState& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void GroupedAggregate::Observe(const Value& key, const Value& value) {
  if (key.is_null() || value.is_null()) return;
  Result<double> d = value.ToDouble();
  if (!d.ok()) return;
  groups_[key.ToString()].Observe(*d);
  ++observations_;
}

Status GroupedAggregate::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge grouped_aggregate with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const GroupedAggregate&>(other);
  for (const auto& [key, state] : o.groups_) {
    groups_[key].Merge(state);
  }
  observations_ += o.observations_;
  return Status::OK();
}

size_t GroupedAggregate::MemoryUsage() const {
  size_t bytes = sizeof(GroupedAggregate);
  for (const auto& entry : groups_) {
    // Key bytes + state + approximate red-black tree node overhead.
    bytes += entry.first.capacity() + sizeof(AggregateState) + 48;
  }
  return bytes;
}

void GroupedAggregate::Serialize(BufferWriter& out) const {
  out.WriteU64(observations_);
  out.WriteU64(groups_.size());
  for (const auto& [key, state] : groups_) {
    out.WriteString(key);
    out.WriteU64(state.count);
    out.WriteDouble(state.sum);
    out.WriteDouble(state.min);
    out.WriteDouble(state.max);
  }
}

Result<std::unique_ptr<GroupedAggregate>> GroupedAggregate::Deserialize(
    BufferReader& in) {
  auto agg = std::make_unique<GroupedAggregate>();
  FUNGUSDB_ASSIGN_OR_RETURN(agg->observations_, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t groups, in.ReadU64());
  for (uint64_t i = 0; i < groups; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    AggregateState state;
    FUNGUSDB_ASSIGN_OR_RETURN(state.count, in.ReadU64());
    FUNGUSDB_ASSIGN_OR_RETURN(state.sum, in.ReadDouble());
    FUNGUSDB_ASSIGN_OR_RETURN(state.min, in.ReadDouble());
    FUNGUSDB_ASSIGN_OR_RETURN(state.max, in.ReadDouble());
    agg->groups_.emplace(std::move(key), state);
  }
  return agg;
}

Result<AggregateState> GroupedAggregate::GroupState(const Value& key) const {
  if (key.is_null()) return Status::InvalidArgument("null group key");
  auto it = groups_.find(key.ToString());
  if (it == groups_.end()) {
    return Status::NotFound("no group " + key.ToString());
  }
  return it->second;
}

std::vector<std::pair<std::string, AggregateState>>
GroupedAggregate::Entries() const {
  return {groups_.begin(), groups_.end()};
}

std::string GroupedAggregate::Describe() const {
  return "grouped_aggregate(groups=" + std::to_string(groups_.size()) + ")";
}

}  // namespace fungusdb
