#include "summary/table_stats.h"

#include <memory>
#include <sstream>

#include "common/string_util.h"
#include "summary/hyperloglog.h"

namespace fungusdb {
namespace {

/// Streaming accumulator shared by the per-column and whole-table paths.
class StatsAccumulator {
 public:
  StatsAccumulator(std::string name, DataType type)
      : hll_(12) {
    stats_.name = std::move(name);
    stats_.type = type;
  }

  void Observe(const Value& v) {
    if (v.is_null()) {
      ++stats_.nulls;
      return;
    }
    ++stats_.live_values;
    hll_.Observe(v);
    if (!stats_.min.has_value()) {
      stats_.min = v;
      stats_.max = v;
    } else {
      Result<int> cmp_min = v.Compare(*stats_.min);
      if (cmp_min.ok() && *cmp_min < 0) stats_.min = v;
      Result<int> cmp_max = v.Compare(*stats_.max);
      if (cmp_max.ok() && *cmp_max > 0) stats_.max = v;
    }
    Result<double> d = v.ToDouble();
    if (d.ok()) {
      sum_ += *d;
      ++numeric_count_;
    }
  }

  ColumnStats Finish() {
    stats_.approx_distinct = hll_.EstimateDistinct();
    if (numeric_count_ > 0) {
      stats_.mean = sum_ / static_cast<double>(numeric_count_);
    }
    return std::move(stats_);
  }

 private:
  ColumnStats stats_;
  HyperLogLog hll_;
  double sum_ = 0.0;
  uint64_t numeric_count_ = 0;
};

}  // namespace

std::string ColumnStats::ToString() const {
  std::ostringstream os;
  os << name << " (" << DataTypeName(type) << "): live=" << live_values
     << " nulls=" << nulls;
  if (min.has_value()) {
    os << " min=" << min->ToString() << " max=" << max->ToString();
  }
  if (mean.has_value()) os << " mean=" << FormatDouble(*mean, 3);
  os << " ~distinct=" << FormatDouble(approx_distinct, 0);
  return os.str();
}

std::string TableStats::ToString() const {
  std::ostringstream os;
  os << "table " << table_name << ": " << live_rows << " live rows\n";
  for (const ColumnStats& c : columns) {
    os << "  " << c.ToString() << "\n";
  }
  return os.str();
}

Result<ColumnStats> ComputeColumnStats(const Table& table, size_t column) {
  if (column >= table.schema().num_fields()) {
    return Status::OutOfRange("column index " + std::to_string(column) +
                              " out of range");
  }
  const Field& field = table.schema().field(column);
  StatsAccumulator acc(field.name, field.type);
  table.ForEachLive([&](RowId row) {
    acc.Observe(table.GetValue(row, column).value());
  });
  return acc.Finish();
}

TableStats AnalyzeTable(const Table& table) {
  TableStats out;
  out.table_name = table.name();
  out.live_rows = table.live_rows();

  // Accumulators hold a HyperLogLog (non-movable Summary); keep them
  // behind unique_ptr so the vector stays happy.
  std::vector<std::unique_ptr<StatsAccumulator>> accumulators;
  for (const Field& f : table.schema().fields()) {
    accumulators.push_back(
        std::make_unique<StatsAccumulator>(f.name, f.type));
  }
  StatsAccumulator ts_acc(kTimestampColumnName, DataType::kTimestamp);
  StatsAccumulator freshness_acc(kFreshnessColumnName,
                                 DataType::kFloat64);
  table.ForEachLive([&](RowId row) {
    for (size_t c = 0; c < accumulators.size(); ++c) {
      accumulators[c]->Observe(table.GetValue(row, c).value());
    }
    ts_acc.Observe(Value::TimestampVal(table.InsertTime(row).value()));
    freshness_acc.Observe(Value::Float64(table.Freshness(row)));
  });
  for (auto& acc : accumulators) {
    out.columns.push_back(acc->Finish());
  }
  out.columns.push_back(ts_acc.Finish());
  out.columns.push_back(freshness_acc.Finish());
  return out;
}

}  // namespace fungusdb
