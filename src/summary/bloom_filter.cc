#include "summary/bloom_filter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "summary/hashing.h"

namespace fungusdb {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed)
    : num_bits_(num_bits), num_hashes_(num_hashes), seed_(seed) {
  assert(num_bits > 0 && num_hashes > 0);
  words_.assign((num_bits_ + 63) / 64, 0);
}

BloomFilter BloomFilter::FromExpectedItems(uint64_t expected_items,
                                           double false_positive_rate,
                                           uint64_t seed) {
  assert(expected_items > 0);
  assert(false_positive_rate > 0.0 && false_positive_rate < 1.0);
  const double ln2 = std::log(2.0);
  const double bits = -static_cast<double>(expected_items) *
                      std::log(false_positive_rate) / (ln2 * ln2);
  const double hashes = bits / static_cast<double>(expected_items) * ln2;
  return BloomFilter(std::max<size_t>(64, static_cast<size_t>(bits)),
                     std::max<size_t>(1, static_cast<size_t>(
                                             std::lround(hashes))),
                     seed);
}

size_t BloomFilter::BitIndex(size_t probe, uint64_t hash) const {
  const uint64_t h1 = hash;
  const uint64_t h2 = Mix64(hash ^ 0xA5A5A5A55A5A5A5AULL) | 1;
  return static_cast<size_t>((h1 + probe * h2) % num_bits_);
}

void BloomFilter::Observe(const Value& value) {
  if (value.is_null()) return;
  const uint64_t h = HashValue(value, seed_);
  for (size_t probe = 0; probe < num_hashes_; ++probe) {
    const size_t bit = BitIndex(probe, h);
    words_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  ++observations_;
}

bool BloomFilter::MayContain(const Value& value) const {
  if (value.is_null()) return false;
  const uint64_t h = HashValue(value, seed_);
  for (size_t probe = 0; probe < num_hashes_; ++probe) {
    const size_t bit = BitIndex(probe, h);
    if ((words_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

Status BloomFilter::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge bloom with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const BloomFilter&>(other);
  if (o.num_bits_ != num_bits_ || o.num_hashes_ != num_hashes_ ||
      o.seed_ != seed_) {
    return Status::InvalidArgument("bloom shapes differ");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  observations_ += o.observations_;
  return Status::OK();
}

size_t BloomFilter::MemoryUsage() const {
  return sizeof(BloomFilter) + words_.capacity() * sizeof(uint64_t);
}

void BloomFilter::Serialize(BufferWriter& out) const {
  out.WriteU64(num_bits_);
  out.WriteU64(num_hashes_);
  out.WriteU64(seed_);
  out.WriteU64(observations_);
  for (uint64_t word : words_) out.WriteU64(word);
}

Result<std::unique_ptr<BloomFilter>> BloomFilter::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_bits, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t num_hashes, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t seed, in.ReadU64());
  if (num_bits == 0 || num_bits > (1ull << 36) || num_hashes == 0 ||
      num_hashes > 64) {
    return Status::ParseError("implausible bloom shape");
  }
  auto bloom = std::make_unique<BloomFilter>(num_bits, num_hashes, seed);
  FUNGUSDB_ASSIGN_OR_RETURN(bloom->observations_, in.ReadU64());
  for (uint64_t& word : bloom->words_) {
    FUNGUSDB_ASSIGN_OR_RETURN(word, in.ReadU64());
  }
  return bloom;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double k = static_cast<double>(num_hashes_);
  const double n = static_cast<double>(observations_);
  const double m = static_cast<double>(num_bits_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

std::string BloomFilter::Describe() const {
  return "bloom(bits=" + std::to_string(num_bits_) +
         ", k=" + std::to_string(num_hashes_) + ")";
}

}  // namespace fungusdb
