#include "summary/hashing.h"

#include <cassert>
#include <cstring>

namespace fungusdb {

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t Hash64(uint64_t x, uint64_t seed) {
  return Mix64(x ^ Mix64(seed ^ 0x9E3779B97F4A7C15ULL));
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = 0xCBF29CE484222325ULL ^ Mix64(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

uint64_t HashValue(const Value& value, uint64_t seed) {
  assert(!value.is_null());
  switch (value.type()) {
    case DataType::kInt64:
      return Hash64(static_cast<uint64_t>(value.AsInt64()), seed);
    case DataType::kTimestamp:
      return Hash64(static_cast<uint64_t>(value.AsTimestamp()), seed);
    case DataType::kFloat64: {
      double d = value.AsFloat64();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Hash64(bits, seed);
    }
    case DataType::kBool:
      return Hash64(value.AsBool() ? 1 : 0, seed ^ 0xB001);
    case DataType::kString: {
      const std::string& s = value.AsString();
      return HashBytes(s.data(), s.size(), seed);
    }
  }
  return 0;
}

}  // namespace fungusdb
