#include "summary/p2_quantile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace fungusdb {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Observe(const Value& value) {
  if (value.is_null()) return;
  Result<double> d = value.ToDouble();
  if (!d.ok()) return;
  ObserveDouble(*d);
}

void P2Quantile::ObserveDouble(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
    }
    return;
  }
  ++count_;

  // Locate the cell containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers.
  for (int i = 1; i <= 3; ++i) {
    const double delta = desired_[i] - positions_[i];
    const double ahead = positions_[i + 1] - positions_[i];
    const double behind = positions_[i - 1] - positions_[i];
    if ((delta >= 1.0 && ahead > 1.0) || (delta <= -1.0 && behind < -1.0)) {
      const double direction = delta >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double np = positions_[i] + direction;
      const double qp =
          heights_[i] +
          direction / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + direction) *
                   (heights_[i + 1] - heights_[i]) /
                   (positions_[i + 1] - positions_[i]) +
               (positions_[i + 1] - positions_[i] - direction) *
                   (heights_[i] - heights_[i - 1]) /
                   (positions_[i] - positions_[i - 1]));
      if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
        heights_[i] = qp;
      } else {
        // Fall back to linear prediction.
        const int j = i + static_cast<int>(direction);
        heights_[i] += direction * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

Result<double> P2Quantile::Estimate() const {
  if (count_ == 0) return Status::FailedPrecondition("no observations");
  if (count_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double pos = q_ * static_cast<double>(count_ - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min<size_t>(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

Status P2Quantile::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge p2_quantile with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const P2Quantile&>(other);
  if (o.q_ != q_) {
    return Status::InvalidArgument("p2_quantile targets differ");
  }
  if (o.count_ == 0) return Status::OK();
  if (count_ == 0) {
    CopyStateFrom(o);
    return Status::OK();
  }
  // Approximate merge: weighted average of the two estimates, keeping
  // the marker state of the larger side.
  const double mine = Estimate().value();
  const double theirs = o.Estimate().value();
  const double total = static_cast<double>(count_ + o.count_);
  const double blended = (mine * static_cast<double>(count_) +
                          theirs * static_cast<double>(o.count_)) /
                         total;
  if (o.count_ > count_) {
    const uint64_t my_count = count_;
    CopyStateFrom(o);
    count_ += my_count;
  } else {
    count_ += o.count_;
  }
  if (count_ >= 5) heights_[2] = blended;
  return Status::OK();
}

void P2Quantile::Serialize(BufferWriter& out) const {
  out.WriteDouble(q_);
  out.WriteU64(count_);
  for (int i = 0; i < 5; ++i) out.WriteDouble(heights_[i]);
  for (int i = 0; i < 5; ++i) out.WriteDouble(positions_[i]);
  for (int i = 0; i < 5; ++i) out.WriteDouble(desired_[i]);
  for (int i = 0; i < 5; ++i) out.WriteDouble(increments_[i]);
}

Result<std::unique_ptr<P2Quantile>> P2Quantile::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(double q, in.ReadDouble());
  if (!(q > 0.0 && q < 1.0)) {
    return Status::ParseError("implausible p2 target quantile");
  }
  auto p2 = std::make_unique<P2Quantile>(q);
  FUNGUSDB_ASSIGN_OR_RETURN(p2->count_, in.ReadU64());
  for (int i = 0; i < 5; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(p2->heights_[i], in.ReadDouble());
  }
  for (int i = 0; i < 5; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(p2->positions_[i], in.ReadDouble());
  }
  for (int i = 0; i < 5; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(p2->desired_[i], in.ReadDouble());
  }
  for (int i = 0; i < 5; ++i) {
    FUNGUSDB_ASSIGN_OR_RETURN(p2->increments_[i], in.ReadDouble());
  }
  return p2;
}

void P2Quantile::CopyStateFrom(const P2Quantile& o) {
  q_ = o.q_;
  count_ = o.count_;
  std::copy(o.heights_, o.heights_ + 5, heights_);
  std::copy(o.positions_, o.positions_ + 5, positions_);
  std::copy(o.desired_, o.desired_ + 5, desired_);
  std::copy(o.increments_, o.increments_ + 5, increments_);
}

std::string P2Quantile::Describe() const {
  return "p2_quantile(q=" + FormatDouble(q_, 3) + ")";
}

}  // namespace fungusdb
