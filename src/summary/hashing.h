#ifndef FUNGUSDB_SUMMARY_HASHING_H_
#define FUNGUSDB_SUMMARY_HASHING_H_

#include <cstddef>
#include <cstdint>

#include "storage/value.h"

namespace fungusdb {

/// 64-bit avalanche mix (SplitMix64 finalizer). Good dispersion for
/// integer keys.
uint64_t Mix64(uint64_t x);

/// Seeded hash of a 64-bit word.
uint64_t Hash64(uint64_t x, uint64_t seed);

/// Seeded FNV-1a-then-mixed hash of a byte string.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed);

/// Seeded hash of a non-null Value. Int64 and Timestamp values with the
/// same numeric payload hash identically; Float64 hashes its bit
/// pattern (with -0.0 normalized to 0.0).
uint64_t HashValue(const Value& value, uint64_t seed);

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_HASHING_H_
