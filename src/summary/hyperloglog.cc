#include "summary/hyperloglog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "summary/hashing.h"

namespace fungusdb {
namespace {

double AlphaFor(size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision, uint64_t seed)
    : precision_(precision), seed_(seed) {
  assert(precision >= 4 && precision <= 18);
  registers_.assign(size_t{1} << precision_, 0);
}

void HyperLogLog::Observe(const Value& value) {
  if (value.is_null()) return;
  ++observations_;
  const uint64_t h = HashValue(value, seed_);
  const size_t index = static_cast<size_t>(h >> (64 - precision_));
  const uint64_t rest = h << precision_;
  // Rank = position of the leftmost 1 bit in the remaining bits, 1-based;
  // all-zero rest gets the maximum rank.
  const int zeros =
      rest == 0 ? (64 - precision_) : __builtin_clzll(rest);
  const uint8_t rank = static_cast<uint8_t>(
      std::min(zeros + 1, 64 - precision_ + 1));
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::EstimateDistinct() const {
  const size_t m = registers_.size();
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  const double md = static_cast<double>(m);
  double estimate = AlphaFor(m) * md * md / inverse_sum;
  if (estimate <= 2.5 * md && zero_registers > 0) {
    // Small-range correction: linear counting.
    estimate = md * std::log(md / static_cast<double>(zero_registers));
  }
  return estimate;
}

Status HyperLogLog::Merge(const Summary& other) {
  if (other.kind() != kind()) {
    return Status::TypeMismatch("cannot merge hyperloglog with " +
                                std::string(other.kind()));
  }
  const auto& o = static_cast<const HyperLogLog&>(other);
  if (o.precision_ != precision_ || o.seed_ != seed_) {
    return Status::InvalidArgument("hyperloglog shapes differ");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], o.registers_[i]);
  }
  observations_ += o.observations_;
  return Status::OK();
}

size_t HyperLogLog::MemoryUsage() const {
  return sizeof(HyperLogLog) + registers_.capacity();
}

double HyperLogLog::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

void HyperLogLog::Serialize(BufferWriter& out) const {
  out.WriteU32(static_cast<uint32_t>(precision_));
  out.WriteU64(seed_);
  out.WriteU64(observations_);
  out.WriteString(std::string_view(
      reinterpret_cast<const char*>(registers_.data()), registers_.size()));
}

Result<std::unique_ptr<HyperLogLog>> HyperLogLog::Deserialize(
    BufferReader& in) {
  FUNGUSDB_ASSIGN_OR_RETURN(uint32_t precision, in.ReadU32());
  FUNGUSDB_ASSIGN_OR_RETURN(uint64_t seed, in.ReadU64());
  if (precision < 4 || precision > 18) {
    return Status::ParseError("implausible hyperloglog precision");
  }
  auto hll = std::make_unique<HyperLogLog>(static_cast<int>(precision),
                                           seed);
  FUNGUSDB_ASSIGN_OR_RETURN(hll->observations_, in.ReadU64());
  FUNGUSDB_ASSIGN_OR_RETURN(std::string registers, in.ReadString());
  if (registers.size() != hll->registers_.size()) {
    return Status::ParseError("hyperloglog register block size mismatch");
  }
  std::copy(registers.begin(), registers.end(), hll->registers_.begin());
  return hll;
}

std::string HyperLogLog::Describe() const {
  return "hyperloglog(p=" + std::to_string(precision_) + ")";
}

}  // namespace fungusdb
