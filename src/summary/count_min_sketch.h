#ifndef FUNGUSDB_SUMMARY_COUNT_MIN_SKETCH_H_
#define FUNGUSDB_SUMMARY_COUNT_MIN_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "summary/summary.h"

namespace fungusdb {

/// Count-Min sketch (Cormode & Muthukrishnan 2005): frequency estimates
/// with one-sided error. With width w and depth d, the estimate for any
/// item exceeds its true count by more than (e/w)·N with probability at
/// most e^-d, where N is the total count folded in.
class CountMinSketch : public ColumnSummary {
 public:
  /// `width` counters per row, `depth` independent hash rows.
  CountMinSketch(size_t width, size_t depth, uint64_t seed = 0xC0117);

  /// Width/depth sized to guarantee error <= epsilon·N with probability
  /// 1 - delta.
  static CountMinSketch FromErrorBound(double epsilon, double delta,
                                       uint64_t seed = 0xC0117);

  std::string_view kind() const override { return "count_min"; }
  void Observe(const Value& value) override;
  uint64_t observations() const override { return total_; }
  Status Merge(const Summary& other) override;
  size_t MemoryUsage() const override;
  std::string Describe() const override;
  void Serialize(BufferWriter& out) const override;

  /// Reconstructs a sketch written by Serialize().
  static Result<std::unique_ptr<CountMinSketch>> Deserialize(
      BufferReader& in);

  /// Point frequency estimate (never underestimates).
  uint64_t EstimateCount(const Value& value) const;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

  /// Guaranteed epsilon (= e / width).
  double Epsilon() const;

 private:
  size_t CellIndex(size_t row, uint64_t hash) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  uint64_t total_ = 0;
  std::vector<uint64_t> cells_;  // depth_ rows of width_ counters
};

}  // namespace fungusdb

#endif  // FUNGUSDB_SUMMARY_COUNT_MIN_SKETCH_H_
