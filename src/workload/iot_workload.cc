#include "workload/iot_workload.h"

#include <cassert>

namespace fungusdb {

IotWorkload::IotWorkload(Params params)
    : params_(params), rng_(params.seed) {
  assert(params_.num_sensors > 0);
  schema_ = Schema::Make({{"sensor_id", DataType::kInt64, false},
                          {"temp", DataType::kFloat64, false},
                          {"humidity", DataType::kFloat64, false},
                          {"status", DataType::kString, false}})
                .value();
  sensor_temperature_.reserve(params_.num_sensors);
  for (uint64_t i = 0; i < params_.num_sensors; ++i) {
    sensor_temperature_.push_back(params_.base_temperature +
                                  rng_.NextGaussian() * 3.0);
  }
}

std::optional<std::vector<Value>> IotWorkload::Next() {
  const uint64_t sensor = rng_.NextBounded(params_.num_sensors);
  double& temp = sensor_temperature_[sensor];
  temp += rng_.NextGaussian() * params_.walk_step;
  const double humidity = 40.0 + 30.0 * rng_.NextDouble();
  const bool fault = rng_.NextBernoulli(params_.fault_probability);
  return std::vector<Value>{
      Value::Int64(static_cast<int64_t>(sensor)),
      Value::Float64(temp),
      Value::Float64(humidity),
      Value::String(fault ? "FAULT" : "OK"),
  };
}

}  // namespace fungusdb
