#ifndef FUNGUSDB_WORKLOAD_IOT_WORKLOAD_H_
#define FUNGUSDB_WORKLOAD_IOT_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "pipeline/source.h"

namespace fungusdb {

/// Sensor-fleet telemetry: (sensor_id int64, temp float64,
/// humidity float64, status string). Each sensor holds a random-walk
/// temperature around its own baseline; ~0.5% of readings report a
/// fault status. Deterministic given the seed.
class IotWorkload : public RecordSource {
 public:
  struct Params {
    uint64_t num_sensors = 100;
    double base_temperature = 20.0;
    double walk_step = 0.4;
    double fault_probability = 0.005;
    uint64_t seed = 0x107;
  };

  explicit IotWorkload(Params params);

  const Schema& schema() const override { return schema_; }
  std::optional<std::vector<Value>> Next() override;

  const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
  Schema schema_;
  std::vector<double> sensor_temperature_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_WORKLOAD_IOT_WORKLOAD_H_
