#include "workload/query_workload.h"

namespace fungusdb {

QueryWorkload::QueryWorkload(Params params)
    : params_(params), rng_(params.seed) {}

std::string_view QueryWorkload::ClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kPoint:
      return "point";
    case QueryClass::kValueRange:
      return "value_range";
    case QueryClass::kRecent:
      return "recent";
    case QueryClass::kHistorical:
      return "historical";
  }
  return "?";
}

QueryWorkload::GeneratedQuery QueryWorkload::Next(Timestamp now) {
  const double roll = rng_.NextDouble();
  GeneratedQuery out;
  out.query.table_name = params_.table_name;

  if (roll < params_.point_fraction) {
    out.query_class = QueryClass::kPoint;
    const int64_t sensor =
        static_cast<int64_t>(rng_.NextBounded(params_.num_sensors));
    out.query.where = Eq(Col("sensor_id"), Lit(sensor));
    return out;
  }
  if (roll < params_.point_fraction + params_.value_range_fraction) {
    out.query_class = QueryClass::kValueRange;
    const double lo = rng_.NextDouble(0.0, 30.0);
    const double width = rng_.NextDouble(1.0, 8.0);
    out.query.where =
        And(Ge(Col("temp"), Lit(lo)), Le(Col("temp"), Lit(lo + width)));
    return out;
  }
  if (roll < params_.point_fraction + params_.value_range_fraction +
                 params_.recent_fraction) {
    out.query_class = QueryClass::kRecent;
    out.query.where = Ge(Col("__ts"), Lit(now - params_.recent_window));
    return out;
  }

  out.query_class = QueryClass::kHistorical;
  // A one-day aggregate window somewhere in the past `history_depth`.
  const Duration offset = static_cast<Duration>(
      rng_.NextDouble() * static_cast<double>(params_.history_depth));
  const Timestamp window_end = now - offset;
  const Timestamp window_start = window_end - kDay;
  out.query.items.push_back({Expr::Aggregate(AggFn::kCount, nullptr), "n"});
  out.query.items.push_back(
      {Expr::Aggregate(AggFn::kAvg, Col("temp")), "avg_temp"});
  out.query.where = And(Ge(Col("__ts"), Lit(window_start)),
                        Lt(Col("__ts"), Lit(window_end)));
  return out;
}

}  // namespace fungusdb
