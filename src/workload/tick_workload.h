#ifndef FUNGUSDB_WORKLOAD_TICK_WORKLOAD_H_
#define FUNGUSDB_WORKLOAD_TICK_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "pipeline/source.h"

namespace fungusdb {

/// Financial tick stream: (symbol string, price float64, volume int64).
/// Prices follow independent geometric random walks per symbol; symbol
/// popularity is Zipfian. Substrate for the sketch-accuracy experiment
/// (F3) where frequency/distinct/quantile questions have known answers.
class TickWorkload : public RecordSource {
 public:
  struct Params {
    uint64_t num_symbols = 50;
    double symbol_skew = 0.8;
    double volatility = 0.002;
    uint64_t seed = 0x71C4;
  };

  explicit TickWorkload(Params params);

  const Schema& schema() const override { return schema_; }
  std::optional<std::vector<Value>> Next() override;

  /// Symbol name for an index ("SYM000"...).
  static std::string SymbolName(uint64_t index);

 private:
  Params params_;
  Rng rng_;
  Zipfian symbol_dist_;
  Schema schema_;
  std::vector<double> price_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_WORKLOAD_TICK_WORKLOAD_H_
