#ifndef FUNGUSDB_WORKLOAD_CLICKSTREAM_WORKLOAD_H_
#define FUNGUSDB_WORKLOAD_CLICKSTREAM_WORKLOAD_H_

#include <vector>

#include "common/random.h"
#include "pipeline/source.h"

namespace fungusdb {

/// Web event stream: (user_id int64, session_id int64, url string,
/// dwell_ms int64). Users are drawn Zipfian (a few heavy users dominate,
/// as in real traffic); each user's events share a session id that rolls
/// over with probability `session_end_probability` — the substrate for
/// the Law-2 sessionization example and experiment T3.
class ClickstreamWorkload : public RecordSource {
 public:
  struct Params {
    uint64_t num_users = 1000;
    double user_skew = 0.9;  // Zipfian theta
    double session_end_probability = 0.05;
    uint64_t num_urls = 200;
    uint64_t seed = 0xC11C;
  };

  explicit ClickstreamWorkload(Params params);

  const Schema& schema() const override { return schema_; }
  std::optional<std::vector<Value>> Next() override;

 private:
  Params params_;
  Rng rng_;
  Zipfian user_dist_;
  Zipfian url_dist_;
  Schema schema_;
  std::vector<int64_t> current_session_;
  int64_t next_session_id_ = 1;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_WORKLOAD_CLICKSTREAM_WORKLOAD_H_
