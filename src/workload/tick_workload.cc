#include "workload/tick_workload.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace fungusdb {

TickWorkload::TickWorkload(Params params)
    : params_(params),
      rng_(params.seed),
      symbol_dist_(params.num_symbols, params.symbol_skew) {
  assert(params_.num_symbols > 0);
  schema_ = Schema::Make({{"symbol", DataType::kString, false},
                          {"price", DataType::kFloat64, false},
                          {"volume", DataType::kInt64, false}})
                .value();
  price_.reserve(params_.num_symbols);
  for (uint64_t i = 0; i < params_.num_symbols; ++i) {
    price_.push_back(20.0 + 200.0 * rng_.NextDouble());
  }
}

std::string TickWorkload::SymbolName(uint64_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "SYM%03llu",
                static_cast<unsigned long long>(index));
  return buf;
}

std::optional<std::vector<Value>> TickWorkload::Next() {
  const uint64_t symbol = symbol_dist_.Next(rng_);
  double& price = price_[symbol];
  price *= std::exp(rng_.NextGaussian() * params_.volatility);
  const int64_t volume = 1 + static_cast<int64_t>(
                                 rng_.NextExponential(1.0 / 500.0));
  return std::vector<Value>{
      Value::String(SymbolName(symbol)),
      Value::Float64(price),
      Value::Int64(volume),
  };
}

}  // namespace fungusdb
