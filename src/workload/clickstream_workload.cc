#include "workload/clickstream_workload.h"

#include <cassert>

namespace fungusdb {

ClickstreamWorkload::ClickstreamWorkload(Params params)
    : params_(params),
      rng_(params.seed),
      user_dist_(params.num_users, params.user_skew),
      url_dist_(params.num_urls, 0.7) {
  assert(params_.num_users > 0);
  schema_ = Schema::Make({{"user_id", DataType::kInt64, false},
                          {"session_id", DataType::kInt64, false},
                          {"url", DataType::kString, false},
                          {"dwell_ms", DataType::kInt64, false}})
                .value();
  current_session_.assign(params_.num_users, 0);
}

std::optional<std::vector<Value>> ClickstreamWorkload::Next() {
  const uint64_t user = user_dist_.Next(rng_);
  int64_t& session = current_session_[user];
  if (session == 0 || rng_.NextBernoulli(params_.session_end_probability)) {
    session = next_session_id_++;
  }
  const uint64_t url = url_dist_.Next(rng_);
  const int64_t dwell =
      static_cast<int64_t>(rng_.NextExponential(1.0 / 8000.0));
  return std::vector<Value>{
      Value::Int64(static_cast<int64_t>(user)),
      Value::Int64(session),
      Value::String("/page/" + std::to_string(url)),
      Value::Int64(dwell),
  };
}

}  // namespace fungusdb
