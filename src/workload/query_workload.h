#ifndef FUNGUSDB_WORKLOAD_QUERY_WORKLOAD_H_
#define FUNGUSDB_WORKLOAD_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "query/query.h"

namespace fungusdb {

/// Generates the read-side workload for experiments T2 and F4: a mix of
/// point lookups, value-range scans, recent-window scans and historical
/// aggregates against an IoT-schema table. Each generated query carries
/// a class tag so recall can be reported per class.
class QueryWorkload {
 public:
  enum class QueryClass {
    kPoint,       // sensor_id = k
    kValueRange,  // temp BETWEEN a AND b
    kRecent,      // __ts within the last `recent_window`
    kHistorical,  // aggregate over a window ending `history_depth` ago
  };

  struct Params {
    std::string table_name = "readings";
    uint64_t num_sensors = 100;
    Duration recent_window = kHour;
    Duration history_depth = 7 * kDay;
    double point_fraction = 0.3;
    double value_range_fraction = 0.3;
    double recent_fraction = 0.2;  // remainder is historical
    uint64_t seed = 0x9E37;
  };

  struct GeneratedQuery {
    QueryClass query_class;
    Query query;
  };

  explicit QueryWorkload(Params params);

  /// Generates one query as of (virtual) time `now`.
  GeneratedQuery Next(Timestamp now);

  static std::string_view ClassName(QueryClass c);

 private:
  Params params_;
  Rng rng_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_WORKLOAD_QUERY_WORKLOAD_H_
