#include "fungus/egi_fungus.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace fungusdb {

EgiFungus::EgiFungus(Params params)
    : params_(params), rng_(params.rng_seed) {
  assert(params_.seeds_per_tick >= 0.0);
  assert(params_.decay_step > 0.0 && params_.decay_step <= 1.0);
  assert(params_.spread_probability >= 0.0 &&
         params_.spread_probability <= 1.0);
  assert(params_.age_bias >= 1.0);
}

std::optional<RowId> EgiFungus::SampleSeed(const Table& table) {
  const std::optional<RowId> lo = table.OldestLive();
  const std::optional<RowId> hi = table.NewestLive();
  if (!lo.has_value()) return std::nullopt;
  const RowId span = *hi - *lo + 1;
  // Rejection-sample an age-biased position on the time axis. Row ids
  // are insertion-ordered, so position == age rank. u^bias skews the
  // draw toward 0 (the oldest end).
  RowId candidate = *lo;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double u = std::pow(rng_.NextDouble(), params_.age_bias);
    candidate = *lo + static_cast<RowId>(u * static_cast<double>(span));
    if (candidate > *hi) candidate = *hi;
    if (table.IsLive(candidate)) return candidate;
  }
  // Dense dead regions: snap to the nearest live tuple instead.
  std::optional<RowId> next = table.NextLive(candidate);
  if (next.has_value()) return next;
  return table.PrevLive(candidate);
}

void EgiFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();

  // Phase 1: seed new infections, age-biased.
  int seeds = static_cast<int>(params_.seeds_per_tick);
  const double frac = params_.seeds_per_tick - seeds;
  if (rng_.NextBernoulli(frac)) ++seeds;
  for (int i = 0; i < seeds; ++i) {
    std::optional<RowId> seed = SampleSeed(table);
    if (!seed.has_value()) break;
    if (infected_.insert(*seed).second) ctx.NoteSeed();
  }

  // Phase 2: spread to direct neighbours along the time axis, then decay
  // every infected tuple at equal rate. Spreading is computed against a
  // snapshot so freshly infected neighbours start decaying next tick.
  std::vector<RowId> frontier(infected_.begin(), infected_.end());
  for (RowId row : frontier) {
    if (params_.spread_probability > 0.0) {
      if (rng_.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> prev = table.PrevLive(row);
        if (prev.has_value()) infected_.insert(*prev);
      }
      if (rng_.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> next = table.NextLive(row);
        if (next.has_value()) infected_.insert(*next);
      }
    }
  }
  for (auto it = infected_.begin(); it != infected_.end();) {
    const RowId row = *it;
    if (!table.IsLive(row)) {
      // Died earlier (another fungus, a consuming query, or last tick);
      // the rot boundary lives on in the infected neighbours.
      it = infected_.erase(it);
      continue;
    }
    ctx.Decay(row, params_.decay_step);
    if (!table.IsLive(row)) {
      it = infected_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<RowId> EgiFungus::SampleSeedInShard(const Shard& shard,
                                                 Rng& rng) {
  const std::optional<RowId> lo = shard.OldestLive();
  const std::optional<RowId> hi = shard.NewestLive();
  if (!lo.has_value()) return std::nullopt;
  const RowId span = *hi - *lo + 1;
  // Same age-biased rejection sampling as the serial path, but over the
  // shard's own row range; candidates landing in a gap (a row owned by
  // another shard, or a dead stretch) are rejected or snapped to the
  // nearest live row of THIS shard.
  RowId candidate = *lo;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double u = std::pow(rng.NextDouble(), params_.age_bias);
    candidate = *lo + static_cast<RowId>(u * static_cast<double>(span));
    if (candidate > *hi) candidate = *hi;
    if (shard.IsLive(candidate)) return candidate;
  }
  std::optional<RowId> next = shard.NextLiveInShard(candidate);
  if (next.has_value()) return next;
  return shard.PrevLiveInShard(candidate);
}

void EgiFungus::BeginShardedTick(const Table& table, Timestamp now) {
  (void)now;
  if (shard_states_.size() != table.num_shards()) {
    shard_states_.assign(table.num_shards(), ShardState{});
  }
}

void EgiFungus::PlanShard(ShardPlanContext& ctx) {
  ShardState& state = shard_states_[ctx.shard_id()];
  state.outbox.clear();
  const Table& table = ctx.table();
  Rng rng(ctx.StreamSeed(params_.rng_seed));

  // Phase 1: seed new infections, age-biased within the shard. The
  // table-wide expected seeding rate is preserved by splitting it evenly
  // across shards (fractional share resolved by Bernoulli draw).
  const double expected =
      params_.seeds_per_tick / static_cast<double>(table.num_shards());
  int seeds = static_cast<int>(expected);
  const double frac = expected - seeds;
  if (rng.NextBernoulli(frac)) ++seeds;
  for (int i = 0; i < seeds; ++i) {
    std::optional<RowId> seed = SampleSeedInShard(ctx.shard(), rng);
    if (!seed.has_value()) break;
    if (state.infected.insert(*seed).second) ctx.NoteSeed();
  }

  // Phase 2: spread to direct neighbours along the GLOBAL time axis.
  // Neighbours may belong to another shard, so targets go through the
  // outbox and join their shard's infection set after the barrier —
  // they start decaying next tick.
  if (params_.spread_probability > 0.0) {
    for (RowId row : state.infected) {
      if (rng.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> prev = table.PrevLive(row);
        if (prev.has_value()) state.outbox.push_back(*prev);
      }
      if (rng.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> next = table.NextLive(row);
        if (next.has_value()) state.outbox.push_back(*next);
      }
    }
  }

  // Phase 3: every infected tuple of this shard decays at equal rate.
  // Rows that died since last tick are skipped here and pruned in
  // FinishShardedTick (planning must not mutate shared state).
  for (RowId row : state.infected) {
    ctx.Decay(row, params_.decay_step);
  }
}

void EgiFungus::FinishShardedTick(const Table& table,
                                  const std::vector<RowId>& killed) {
  (void)killed;
  // Prune dead tuples from the infection sets (killed this tick by the
  // applied plans, or earlier by other fungi / consuming queries); the
  // rot boundary lives on in the still-live infected neighbours.
  for (ShardState& state : shard_states_) {
    for (auto it = state.infected.begin(); it != state.infected.end();) {
      if (!table.IsLive(*it)) {
        it = state.infected.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Merge outboxes in shard order — deterministic, and by now all kills
  // are applied, so only still-live targets join the infection front.
  for (ShardState& source : shard_states_) {
    for (RowId target : source.outbox) {
      if (!table.IsLive(target)) continue;
      shard_states_[table.ShardIdOf(target)].infected.insert(target);
    }
    source.outbox.clear();
  }
}

std::set<RowId> EgiFungus::AllInfected() const {
  std::set<RowId> all = infected_;
  for (const ShardState& state : shard_states_) {
    all.insert(state.infected.begin(), state.infected.end());
  }
  return all;
}

std::string EgiFungus::Describe() const {
  return "egi(seeds=" + FormatDouble(params_.seeds_per_tick, 2) +
         "/tick, step=" + FormatDouble(params_.decay_step, 3) +
         ", spread=" + FormatDouble(params_.spread_probability, 2) +
         ", age_bias=" + FormatDouble(params_.age_bias, 1) + ")";
}

void EgiFungus::Reset() {
  infected_.clear();
  shard_states_.clear();
  rng_ = Rng(params_.rng_seed);
}

}  // namespace fungusdb
