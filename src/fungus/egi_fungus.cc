#include "fungus/egi_fungus.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace fungusdb {

EgiFungus::EgiFungus(Params params)
    : params_(params), rng_(params.rng_seed) {
  assert(params_.seeds_per_tick >= 0.0);
  assert(params_.decay_step > 0.0 && params_.decay_step <= 1.0);
  assert(params_.spread_probability >= 0.0 &&
         params_.spread_probability <= 1.0);
  assert(params_.age_bias >= 1.0);
}

std::optional<RowId> EgiFungus::SampleSeed(const Table& table) {
  const std::optional<RowId> lo = table.OldestLive();
  const std::optional<RowId> hi = table.NewestLive();
  if (!lo.has_value()) return std::nullopt;
  const RowId span = *hi - *lo + 1;
  // Rejection-sample an age-biased position on the time axis. Row ids
  // are insertion-ordered, so position == age rank. u^bias skews the
  // draw toward 0 (the oldest end).
  RowId candidate = *lo;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double u = std::pow(rng_.NextDouble(), params_.age_bias);
    candidate = *lo + static_cast<RowId>(u * static_cast<double>(span));
    if (candidate > *hi) candidate = *hi;
    if (table.IsLive(candidate)) return candidate;
  }
  // Dense dead regions: snap to the nearest live tuple instead.
  std::optional<RowId> next = table.NextLive(candidate);
  if (next.has_value()) return next;
  return table.PrevLive(candidate);
}

void EgiFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();

  // Phase 1: seed new infections, age-biased.
  int seeds = static_cast<int>(params_.seeds_per_tick);
  const double frac = params_.seeds_per_tick - seeds;
  if (rng_.NextBernoulli(frac)) ++seeds;
  for (int i = 0; i < seeds; ++i) {
    std::optional<RowId> seed = SampleSeed(table);
    if (!seed.has_value()) break;
    if (infected_.insert(*seed).second) ctx.NoteSeed();
  }

  // Phase 2: spread to direct neighbours along the time axis, then decay
  // every infected tuple at equal rate. Spreading is computed against a
  // snapshot so freshly infected neighbours start decaying next tick.
  std::vector<RowId> frontier(infected_.begin(), infected_.end());
  for (RowId row : frontier) {
    if (params_.spread_probability > 0.0) {
      if (rng_.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> prev = table.PrevLive(row);
        if (prev.has_value()) infected_.insert(*prev);
      }
      if (rng_.NextBernoulli(params_.spread_probability)) {
        const std::optional<RowId> next = table.NextLive(row);
        if (next.has_value()) infected_.insert(*next);
      }
    }
  }
  for (auto it = infected_.begin(); it != infected_.end();) {
    const RowId row = *it;
    if (!table.IsLive(row)) {
      // Died earlier (another fungus, a consuming query, or last tick);
      // the rot boundary lives on in the infected neighbours.
      it = infected_.erase(it);
      continue;
    }
    ctx.Decay(row, params_.decay_step);
    if (!table.IsLive(row)) {
      it = infected_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string EgiFungus::Describe() const {
  return "egi(seeds=" + FormatDouble(params_.seeds_per_tick, 2) +
         "/tick, step=" + FormatDouble(params_.decay_step, 3) +
         ", spread=" + FormatDouble(params_.spread_probability, 2) +
         ", age_bias=" + FormatDouble(params_.age_bias, 1) + ")";
}

void EgiFungus::Reset() {
  infected_.clear();
  rng_ = Rng(params_.rng_seed);
}

}  // namespace fungusdb
