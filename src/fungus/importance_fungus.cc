#include "fungus/importance_fungus.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace fungusdb {

ImportanceFungus::ImportanceFungus(Params params) : params_(params) {
  assert(params_.decay_step > 0.0 && params_.decay_step <= 1.0);
  assert(params_.access_weight >= 0.0);
}

void ImportanceFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();
  table.ForEachLive([&](RowId row) {
    const uint32_t accesses = table.AccessCount(row);
    const double protection =
        1.0 + params_.access_weight * std::log2(1.0 + accesses);
    ctx.Decay(row, params_.decay_step / protection);
  });
}

std::string ImportanceFungus::Describe() const {
  return "importance(step=" + FormatDouble(params_.decay_step, 3) +
         ", access_weight=" + FormatDouble(params_.access_weight, 2) + ")";
}

}  // namespace fungusdb
