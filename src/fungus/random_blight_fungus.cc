#include "fungus/random_blight_fungus.h"

#include <cassert>

#include "common/string_util.h"

namespace fungusdb {

RandomBlightFungus::RandomBlightFungus(Params params)
    : params_(params), rng_(params.rng_seed) {
  assert(params_.decay_step > 0.0 && params_.decay_step <= 1.0);
}

void RandomBlightFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();
  const std::optional<RowId> lo = table.OldestLive();
  const std::optional<RowId> hi = table.NewestLive();
  if (!lo.has_value()) return;
  const RowId span = *hi - *lo + 1;
  for (uint64_t i = 0; i < params_.tuples_per_tick; ++i) {
    // Uniform rejection sampling over the live id range.
    std::optional<RowId> pick;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const RowId candidate = *lo + rng_.NextBounded(span);
      if (table.IsLive(candidate)) {
        pick = candidate;
        break;
      }
    }
    if (!pick.has_value()) {
      // Sparse table: snap to a live neighbour of a random position.
      pick = table.NextLive(*lo + rng_.NextBounded(span));
      if (!pick.has_value()) pick = table.OldestLive();
      if (!pick.has_value()) return;
    }
    ctx.Decay(*pick, params_.decay_step);
  }
}

std::string RandomBlightFungus::Describe() const {
  return "random_blight(n=" + std::to_string(params_.tuples_per_tick) +
         "/tick, step=" + FormatDouble(params_.decay_step, 3) + ")";
}

void RandomBlightFungus::Reset() { rng_ = Rng(params_.rng_seed); }

}  // namespace fungusdb
