#include "fungus/fungus.h"

#include <cassert>

namespace fungusdb {

ShardPlanContext::ShardPlanContext(const Table* table, uint32_t shard_id,
                                   Timestamp now, uint64_t tick_index)
    : table_(table),
      shard_id_(shard_id),
      now_(now),
      tick_index_(tick_index) {}

uint64_t ShardPlanContext::StreamSeed(uint64_t base_seed) const {
  return SplitSeed(SplitSeed(base_seed, tick_index_), shard_id_);
}

void ShardPlanContext::Record(RowId row, ShardAction::Op op,
                              double amount) {
  assert(table_->ShardIdOf(row) == shard_id_ &&
         "planned action targets a foreign shard");
  // Rows dead at plan time stay untouched (matches DecayContext, which
  // silently ignores dead rows). Liveness is stable during planning —
  // nothing mutates the table until every planner passed the barrier.
  if (!table_->shard(shard_id_).IsLive(row)) return;
  plan_.actions.push_back(ShardAction{row, op, amount});
}

void ShardPlanContext::Decay(RowId row, double delta) {
  Record(row, ShardAction::Op::kDecay, delta);
}

void ShardPlanContext::SetFreshness(RowId row, double f) {
  Record(row, ShardAction::Op::kSet, f);
}

void ShardPlanContext::Kill(RowId row) {
  Record(row, ShardAction::Op::kKill, 0.0);
}

void ShardPlanContext::DecaySegmentUniform(uint64_t seg_no,
                                           const Segment& seg,
                                           double delta) {
  assert(table_->ShardIdOf(seg.first_row()) == shard_id_ &&
         "planned fold targets a foreign shard");
  // Foldability is stable between here and the apply phase: nothing
  // mutates the table until every planner passed the barrier, and the
  // apply worker handles a shard's folds before its row actions.
  if (table_->options().lazy_decay && seg.CanFoldUniformDecay(delta)) {
    plan_.folds.push_back(ShardFold{seg_no, delta});
    return;
  }
  const size_t n = seg.num_rows();
  for (size_t off = 0; off < n; ++off) {
    if (seg.IsLive(off)) Decay(seg.first_row() + off, delta);
  }
}

DecayContext::DecayContext(Table* table, Timestamp now)
    : table_(table), now_(now) {}

void DecayContext::Decay(RowId row, double delta) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  const uint64_t killed_before = table_->rows_killed();
  // Cannot fail for live rows; a failure means storage invariants broke.
  FUNGUSDB_CHECK_OK(table_->DecayFreshness(row, delta));
  if (table_->rows_killed() > killed_before) {
    killed_.push_back(row);
    ++stats_.tuples_killed;
  }
}

void DecayContext::SetFreshness(RowId row, double f) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  const uint64_t killed_before = table_->rows_killed();
  FUNGUSDB_CHECK_OK(table_->SetFreshness(row, f));
  if (table_->rows_killed() > killed_before) {
    killed_.push_back(row);
    ++stats_.tuples_killed;
  }
}

void DecayContext::Kill(RowId row) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  FUNGUSDB_CHECK_OK(table_->Kill(row));
  killed_.push_back(row);
  ++stats_.tuples_killed;
}

void DecayContext::DecaySegmentUniform(uint64_t seg_no, const Segment& seg,
                                       double delta) {
  if (table_->TryFoldUniformDecay(seg_no, delta)) {
    // The fold's no-death proof covers exactly the live rows, so the
    // eager path would have touched live_count() rows and killed none —
    // count the same, keeping stats mode-independent.
    stats_.tuples_touched += seg.live_count();
    ++stats_.segments_folded;
    return;
  }
  const size_t n = seg.num_rows();
  for (size_t off = 0; off < n; ++off) {
    if (seg.IsLive(off)) Decay(seg.first_row() + off, delta);
  }
}

}  // namespace fungusdb
