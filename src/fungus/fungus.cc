#include "fungus/fungus.h"

namespace fungusdb {

DecayContext::DecayContext(Table* table, Timestamp now)
    : table_(table), now_(now) {}

void DecayContext::Decay(RowId row, double delta) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  const uint64_t killed_before = table_->rows_killed();
  table_->DecayFreshness(row, delta);  // cannot fail for live rows
  if (table_->rows_killed() > killed_before) {
    killed_.push_back(row);
    ++stats_.tuples_killed;
  }
}

void DecayContext::SetFreshness(RowId row, double f) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  const uint64_t killed_before = table_->rows_killed();
  table_->SetFreshness(row, f);
  if (table_->rows_killed() > killed_before) {
    killed_.push_back(row);
    ++stats_.tuples_killed;
  }
}

void DecayContext::Kill(RowId row) {
  if (!table_->IsLive(row)) return;
  ++stats_.tuples_touched;
  table_->Kill(row);
  killed_.push_back(row);
  ++stats_.tuples_killed;
}

}  // namespace fungusdb
