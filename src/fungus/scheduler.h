#ifndef FUNGUSDB_FUNGUS_SCHEDULER_H_
#define FUNGUSDB_FUNGUS_SCHEDULER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fungus/fungus.h"

namespace fungusdb {

/// The paper's periodic clock: "The extent of table R decays with a
/// periodic clock of T seconds using a data fungus F until it has
/// completely disappeared."
///
/// The scheduler owns (table, fungus, period) attachments and replays the
/// due ticks, in global time order, whenever AdvanceTo() moves the clock
/// forward. Death observers fire after each tick with the tuples that
/// died in it — their attribute values are still readable (tombstoned,
/// not yet reclaimed), which is the hook the Kitchen uses to cook rotting
/// tuples into summaries before reclamation frees them.
class DecayScheduler {
 public:
  using AttachmentId = size_t;

  /// (table, rows that died this tick, tick time).
  using DeathObserver =
      std::function<void(Table&, const std::vector<RowId>&, Timestamp)>;

  /// Debug hook run after every tick (post-reclamation) on the table
  /// that ticked — the CHECK AFTER TICK tripwire. The hook decides what
  /// to do about a violation (the one Database installs aborts with the
  /// fsck report); the scheduler just guarantees the call happens while
  /// no parallel phase is running.
  using PostTickCheck = std::function<void(Table&, Timestamp)>;

  /// Per-attachment cumulative statistics.
  struct AttachmentStats {
    uint64_t ticks = 0;
    DecayStats decay;
  };

  DecayScheduler() = default;

  DecayScheduler(const DecayScheduler&) = delete;
  DecayScheduler& operator=(const DecayScheduler&) = delete;

  /// Attaches `fungus` to `table` with clock period `period` (> 0).
  /// The first tick fires at start_time + period. `table` must outlive
  /// the scheduler.
  Result<AttachmentId> Attach(Table* table, std::unique_ptr<Fungus> fungus,
                              Duration period, Timestamp start_time);

  /// Removes an attachment; its fungus is destroyed.
  Status Detach(AttachmentId id);

  /// Registers an observer called after every tick that killed tuples.
  void AddDeathObserver(DeathObserver observer);

  /// Runs every tick due at or before `now`, in chronological order
  /// across attachments, then reclaims fully-dead segments. Returns the
  /// number of ticks executed.
  uint64_t AdvanceTo(Timestamp now);

  /// Stats for an attachment (zeroed if detached/unknown).
  AttachmentStats StatsFor(AttachmentId id) const;

  /// Decay state of the first active attachment on `table`, for the
  /// `\rot` report (clock period, next due tick, cumulative stats).
  struct TableDecayInfo {
    Duration period = 0;
    Timestamp next_tick = 0;
    uint64_t ticks = 0;
    DecayStats decay;
  };
  std::optional<TableDecayInfo> StatsForTable(const Table* table) const;

  size_t num_attachments() const;

  /// Optional sink for scheduler metrics ("fungusdb.decay.*",
  /// "fungusdb.parallel.*", "fungusdb.rot.oldest_live_ts"). Not owned.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Optional worker pool for shard-parallel ticks. Not owned. Without a
  /// pool (or with a single-thread pool) sharded ticks still run the
  /// two-phase plan/apply pipeline, just inline — outcomes are identical
  /// by construction, which is what the determinism tests assert.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Installs (or clears, with nullptr) the CHECK AFTER TICK hook.
  void set_post_tick_check(PostTickCheck check) {
    post_tick_check_ = std::move(check);
  }

  /// Called after each tick's apply phase is fully published (kills,
  /// cooking, reclamation, post-tick check) — the Database wires this
  /// to EpochManager::Publish so readers dispatched after the enclosing
  /// write section pin a per-tick epoch, never a half-applied one.
  void set_epoch_publisher(std::function<void()> publisher) {
    epoch_publisher_ = std::move(publisher);
  }

  bool has_post_tick_check() const {
    return static_cast<bool>(post_tick_check_);
  }

 private:
  struct Attachment {
    Table* table = nullptr;
    std::unique_ptr<Fungus> fungus;
    Duration period = 0;
    Timestamp next_tick = 0;
    AttachmentStats stats;
    bool active = false;
  };

  /// Runs one tick of `a` through the sharded plan/apply pipeline,
  /// returning the tick's merged (RowId-sorted) death list.
  std::vector<RowId> RunShardedTick(Attachment& a, Timestamp tick_time,
                                    DecayStats* tick_stats);

  const Attachment* AttachmentForTable(const Table* table) const;

  std::vector<Attachment> attachments_;
  std::vector<DeathObserver> observers_;
  PostTickCheck post_tick_check_;
  std::function<void()> epoch_publisher_;
  MetricsRegistry* metrics_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_SCHEDULER_H_
