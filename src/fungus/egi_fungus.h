#ifndef FUNGUSDB_FUNGUS_EGI_FUNGUS_H_
#define FUNGUSDB_FUNGUS_EGI_FUNGUS_H_

#include <optional>
#include <set>
#include <string>

#include "common/random.h"
#include "fungus/fungus.h"

namespace fungusdb {

/// EGI — "Evict Grouped Individuals", the fungus defined in the paper.
/// At each clock tick:
///
///   1. *Seed.* Select live tuples with probability biased by age
///      (the paper: "inversely randomly correlated with its age" — old
///      tuples are more likely to be picked; decay starts where data is
///      stale) and infect them.
///   2. *Spread & decay.* Every infected tuple loses `decay_step`
///      freshness, and infects its direct live neighbours along the time
///      axis (previous/next row in insertion order) with probability
///      `spread_probability`, "at equal rate".
///
/// An infected region therefore grows bidirectionally while its interior
/// dies — contiguous "rotting spots", the Blue-Cheese effect. Once a
/// whole segment (insertion range) has died the table reclaims it.
class EgiFungus : public Fungus {
 public:
  struct Params {
    /// Expected new infections per tick (fractional part is Bernoulli).
    double seeds_per_tick = 1.0;

    /// Freshness lost per tick by each infected tuple.
    double decay_step = 0.1;

    /// Probability that an infected tuple infects each direct live
    /// neighbour on a given tick (1.0 = deterministic bidirectional
    /// growth, 0.0 = no spreading — isolated pinpricks).
    double spread_probability = 1.0;

    /// Age bias exponent for seeding, >= 1. Seed position is drawn as
    /// u^age_bias scaled over the live row-id range, so larger values
    /// concentrate seeds on older tuples; 1.0 is uniform.
    double age_bias = 2.0;

    /// PRNG seed; EGI runs are fully deterministic given this.
    uint64_t rng_seed = 0xE61FA57;
  };

  explicit EgiFungus(Params params);

  std::string_view name() const override { return "egi"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  // --- Sharded tick. ---
  //
  // Each shard keeps its own infection set and plans with an RNG stream
  // derived from (rng_seed, tick, shard), so outcomes depend on the
  // shard count but never on the thread count. Seeding draws an
  // age-biased position within the shard's own slice of the time axis
  // (shards interleave segments, so every shard sees the full age
  // spectrum); expected seeds per shard are seeds_per_tick / num_shards.
  // Spread looks up direct time-axis neighbours through the *global*
  // table — safe because planning is read-only — and routes every spread
  // target (own-shard or foreign) through a per-shard outbox that
  // FinishShardedTick merges after the barrier, so neighbour infection
  // crosses shard boundaries and newly spread-to tuples start decaying
  // on the next tick.
  bool SupportsShardedTick() const override { return true; }
  void BeginShardedTick(const Table& table, Timestamp now) override;
  void PlanShard(ShardPlanContext& ctx) override;
  void FinishShardedTick(const Table& table,
                         const std::vector<RowId>& killed) override;

  const Params& params() const { return params_; }

  /// Currently infected, still-live tuples (exposed for tests and the
  /// blue-cheese visualizer). Serial-tick state only.
  const std::set<RowId>& infected() const { return infected_; }

  /// Infected tuples across serial and per-shard state (merged).
  std::set<RowId> AllInfected() const;

 private:
  /// Per-shard infection bookkeeping for sharded ticks.
  struct ShardState {
    std::set<RowId> infected;
    // Spread targets discovered while planning (any shard's rows);
    // merged into the owning shards' infection sets after the barrier.
    std::vector<RowId> outbox;
  };

  /// Draws one live row, age-biased; nullopt when the table is empty.
  std::optional<RowId> SampleSeed(const Table& table);

  /// Shard-local variant: age-biased draw over the shard's own rows.
  std::optional<RowId> SampleSeedInShard(const Shard& shard, Rng& rng);

  Params params_;
  Rng rng_;
  std::set<RowId> infected_;
  std::vector<ShardState> shard_states_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_EGI_FUNGUS_H_
