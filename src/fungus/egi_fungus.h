#ifndef FUNGUSDB_FUNGUS_EGI_FUNGUS_H_
#define FUNGUSDB_FUNGUS_EGI_FUNGUS_H_

#include <optional>
#include <set>
#include <string>

#include "common/random.h"
#include "fungus/fungus.h"

namespace fungusdb {

/// EGI — "Evict Grouped Individuals", the fungus defined in the paper.
/// At each clock tick:
///
///   1. *Seed.* Select live tuples with probability biased by age
///      (the paper: "inversely randomly correlated with its age" — old
///      tuples are more likely to be picked; decay starts where data is
///      stale) and infect them.
///   2. *Spread & decay.* Every infected tuple loses `decay_step`
///      freshness, and infects its direct live neighbours along the time
///      axis (previous/next row in insertion order) with probability
///      `spread_probability`, "at equal rate".
///
/// An infected region therefore grows bidirectionally while its interior
/// dies — contiguous "rotting spots", the Blue-Cheese effect. Once a
/// whole segment (insertion range) has died the table reclaims it.
class EgiFungus : public Fungus {
 public:
  struct Params {
    /// Expected new infections per tick (fractional part is Bernoulli).
    double seeds_per_tick = 1.0;

    /// Freshness lost per tick by each infected tuple.
    double decay_step = 0.1;

    /// Probability that an infected tuple infects each direct live
    /// neighbour on a given tick (1.0 = deterministic bidirectional
    /// growth, 0.0 = no spreading — isolated pinpricks).
    double spread_probability = 1.0;

    /// Age bias exponent for seeding, >= 1. Seed position is drawn as
    /// u^age_bias scaled over the live row-id range, so larger values
    /// concentrate seeds on older tuples; 1.0 is uniform.
    double age_bias = 2.0;

    /// PRNG seed; EGI runs are fully deterministic given this.
    uint64_t rng_seed = 0xE61FA57;
  };

  explicit EgiFungus(Params params);

  std::string_view name() const override { return "egi"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  const Params& params() const { return params_; }

  /// Currently infected, still-live tuples (exposed for tests and the
  /// blue-cheese visualizer).
  const std::set<RowId>& infected() const { return infected_; }

 private:
  /// Draws one live row, age-biased; nullopt when the table is empty.
  std::optional<RowId> SampleSeed(const Table& table);

  Params params_;
  Rng rng_;
  std::set<RowId> infected_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_EGI_FUNGUS_H_
