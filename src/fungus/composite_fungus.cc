#include "fungus/composite_fungus.h"

namespace fungusdb {

CompositeFungus::CompositeFungus(
    std::vector<std::unique_ptr<Fungus>> children)
    : children_(std::move(children)) {}

void CompositeFungus::Tick(DecayContext& ctx) {
  for (auto& child : children_) child->Tick(ctx);
}

std::string CompositeFungus::Describe() const {
  std::string out = "composite[";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += " + ";
    out += children_[i]->Describe();
  }
  out += "]";
  return out;
}

void CompositeFungus::Reset() {
  for (auto& child : children_) child->Reset();
}

}  // namespace fungusdb
