#ifndef FUNGUSDB_FUNGUS_RANDOM_BLIGHT_FUNGUS_H_
#define FUNGUSDB_FUNGUS_RANDOM_BLIGHT_FUNGUS_H_

#include <optional>
#include <string>

#include "common/random.h"
#include "fungus/fungus.h"

namespace fungusdb {

/// Spotless comparator for EGI: on each tick it decays `tuples_per_tick`
/// uniformly random live tuples by `decay_step`, with no spreading and no
/// age bias. Under this fungus dead tuples are scattered — it produces no
/// contiguous rotting spots, which is exactly what experiment F2 contrasts
/// against the Blue-Cheese pattern of EGI.
class RandomBlightFungus : public Fungus {
 public:
  struct Params {
    /// Live tuples decayed per tick.
    uint64_t tuples_per_tick = 16;

    /// Freshness lost by each selected tuple.
    double decay_step = 0.34;

    uint64_t rng_seed = 0xB116887;
  };

  explicit RandomBlightFungus(Params params);

  std::string_view name() const override { return "random_blight"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_RANDOM_BLIGHT_FUNGUS_H_
