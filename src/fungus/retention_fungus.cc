#include "fungus/retention_fungus.h"

#include <cassert>

namespace fungusdb {
namespace {

/// Decays one segment under a fixed retention. Shared verbatim by the
/// serial Tick and the per-shard planner (`Ctx` is DecayContext or
/// ShardPlanContext) so both paths take identical skip decisions and
/// produce identical stats — the determinism contract of sharded ticks.
///
/// Zone-map skips, cheapest first:
///  * live_count == 0 — nothing left to decay;
///  * frozen-fresh — every row was inserted at or after `now`
///    (min_ts >= now) and every live effective freshness is exactly 1.0
///    (the conservative [min_f, max_f] collapses to [1, 1], and the
///    storage layer never lets freshness exceed 1), so every write this
///    tick would set the value it already has. The EFFECTIVE bounds make
///    this decision identical with lazy decay on or off.
/// When max_ts is at least `retention` old, every row is expired and the
/// segment bulk-kills without computing per-row ages. Otherwise, a
/// segment whose rows all predate `prev_tick` already had its
/// per-row formula pass, and since then every row aged by exactly
/// now - prev_tick — one uniform decrement, the foldable shape.
/// Everything else (first tick, segments with rows newer than the
/// previous tick) takes the formula pass.
template <typename Ctx>
void TickSegment(uint64_t seg_no, const Segment& seg, Timestamp now,
                 Duration retention, std::optional<Timestamp> prev_tick,
                 Ctx& ctx) {
  if (seg.live_count() == 0) {
    ctx.NoteSegmentSkipped();
    return;
  }
  const ZoneMap& zone = seg.zone_map();
  if (zone.min_ts >= now && seg.EffectiveMinFreshness() == 1.0 &&
      seg.EffectiveMaxFreshness() == 1.0) {
    ctx.NoteSegmentSkipped();
    return;
  }
  const bool all_expired = now - zone.max_ts >= retention;
  if (!all_expired && prev_tick.has_value() && zone.max_ts <= *prev_tick) {
    const double delta = static_cast<double>(now - *prev_tick) /
                         static_cast<double>(retention);
    ctx.DecaySegmentUniform(seg_no, seg, delta);
    return;
  }
  const size_t n = seg.num_rows();
  for (size_t off = 0; off < n; ++off) {
    if (!seg.IsLive(off)) continue;
    const RowId row = seg.first_row() + off;
    if (all_expired) {
      ctx.Kill(row);
      continue;
    }
    const Duration age = now - seg.InsertTime(off);
    if (age >= retention) {
      ctx.Kill(row);
      continue;
    }
    const double f =
        age <= 0 ? 1.0
                 : 1.0 - static_cast<double>(age) /
                             static_cast<double>(retention);
    ctx.SetFreshness(row, f);
  }
}

}  // namespace

RetentionFungus::RetentionFungus(Duration retention) : retention_(retention) {
  assert(retention > 0);
}

void RetentionFungus::Tick(DecayContext& ctx) {
  const Timestamp now = ctx.now();
  Table& table = ctx.table();
  const std::optional<Timestamp> prev = last_tick_;
  last_tick_ = now;
  // Freshness under retention is the remaining-life fraction; at or past
  // the retention age it hits 0 and the tuple is discarded. Killing and
  // freshness updates only flip per-row state, so mutating during the
  // segment walk is safe (the segment map itself is untouched).
  for (const auto& [seg_no, seg] : table.segment_index()) {
    TickSegment(seg_no, *seg, now, retention_, prev, ctx);
  }
}

void RetentionFungus::BeginShardedTick(const Table& table, Timestamp now) {
  (void)table;
  plan_prev_tick_ = last_tick_;
  last_tick_ = now;
}

void RetentionFungus::PlanShard(ShardPlanContext& ctx) {
  const Timestamp now = ctx.now();
  const Shard& shard = ctx.shard();
  for (const auto& [seg_no, seg] : shard.segments()) {
    TickSegment(seg_no, *seg, now, retention_, plan_prev_tick_, ctx);
  }
}

std::string RetentionFungus::Describe() const {
  return "retention(" + FormatDuration(retention_) + ")";
}

}  // namespace fungusdb
