#include "fungus/retention_fungus.h"

#include <cassert>

namespace fungusdb {
namespace {

/// Decays one segment under a fixed retention. Shared verbatim by the
/// serial Tick and the per-shard planner (`Ctx` is DecayContext or
/// ShardPlanContext) so both paths take identical skip decisions and
/// produce identical stats — the determinism contract of sharded ticks.
///
/// Zone-map skips, cheapest first:
///  * live_count == 0 — nothing left to decay;
///  * frozen-fresh — every row was inserted at or after `now`
///    (min_ts >= now) and every live freshness is exactly 1.0
///    (the conservative [min_f, max_f] collapses to [1, 1], and the
///    storage layer never lets freshness exceed 1), so every write this
///    tick would set the value it already has.
/// When max_ts is at least `retention` old, every row is expired and the
/// segment bulk-kills without computing per-row ages.
template <typename Ctx>
void TickSegment(const Segment& seg, Timestamp now, Duration retention,
                 Ctx& ctx) {
  if (seg.live_count() == 0) {
    ctx.NoteSegmentSkipped();
    return;
  }
  const ZoneMap& zone = seg.zone_map();
  if (zone.min_ts >= now && zone.min_f == 1.0 && zone.max_f == 1.0) {
    ctx.NoteSegmentSkipped();
    return;
  }
  const bool all_expired = now - zone.max_ts >= retention;
  const size_t n = seg.num_rows();
  for (size_t off = 0; off < n; ++off) {
    if (!seg.IsLive(off)) continue;
    const RowId row = seg.first_row() + off;
    if (all_expired) {
      ctx.Kill(row);
      continue;
    }
    const Duration age = now - seg.InsertTime(off);
    if (age >= retention) {
      ctx.Kill(row);
      continue;
    }
    const double f =
        age <= 0 ? 1.0
                 : 1.0 - static_cast<double>(age) /
                             static_cast<double>(retention);
    ctx.SetFreshness(row, f);
  }
}

}  // namespace

RetentionFungus::RetentionFungus(Duration retention) : retention_(retention) {
  assert(retention > 0);
}

void RetentionFungus::Tick(DecayContext& ctx) {
  const Timestamp now = ctx.now();
  Table& table = ctx.table();
  // Freshness under retention is the remaining-life fraction; at or past
  // the retention age it hits 0 and the tuple is discarded. Killing and
  // freshness updates only flip per-row state, so mutating during the
  // segment walk is safe (the segment map itself is untouched).
  for (const auto& [seg_no, seg] : table.segment_index()) {
    TickSegment(*seg, now, retention_, ctx);
  }
}

void RetentionFungus::PlanShard(ShardPlanContext& ctx) {
  const Timestamp now = ctx.now();
  const Shard& shard = ctx.shard();
  for (const auto& [seg_no, seg] : shard.segments()) {
    TickSegment(*seg, now, retention_, ctx);
  }
}

std::string RetentionFungus::Describe() const {
  return "retention(" + FormatDuration(retention_) + ")";
}

}  // namespace fungusdb
