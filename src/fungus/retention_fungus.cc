#include "fungus/retention_fungus.h"

#include <cassert>

namespace fungusdb {

RetentionFungus::RetentionFungus(Duration retention) : retention_(retention) {
  assert(retention > 0);
}

void RetentionFungus::Tick(DecayContext& ctx) {
  const Timestamp now = ctx.now();
  Table& table = ctx.table();
  // Freshness under retention is the remaining-life fraction; at or past
  // the retention age it hits 0 and the tuple is discarded. Killing and
  // freshness updates only flip per-row state, so mutating during the
  // live scan is safe (the segment map itself is untouched).
  table.ForEachLive([&](RowId row) {
    const Timestamp t = table.InsertTime(row).value();
    const Duration age = now - t;
    if (age >= retention_) {
      ctx.Kill(row);
      return;
    }
    const double f =
        age <= 0 ? 1.0
                 : 1.0 - static_cast<double>(age) /
                             static_cast<double>(retention_);
    ctx.SetFreshness(row, f);
  });
}

void RetentionFungus::PlanShard(ShardPlanContext& ctx) {
  const Timestamp now = ctx.now();
  const Shard& shard = ctx.shard();
  for (const auto& [seg_no, seg] : shard.segments()) {
    if (seg->live_count() == 0) continue;
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (!seg->IsLive(off)) continue;
      const RowId row = seg->first_row() + off;
      const Duration age = now - seg->InsertTime(off);
      if (age >= retention_) {
        ctx.Kill(row);
        continue;
      }
      const double f =
          age <= 0 ? 1.0
                   : 1.0 - static_cast<double>(age) /
                               static_cast<double>(retention_);
      ctx.SetFreshness(row, f);
    }
  }
}

std::string RetentionFungus::Describe() const {
  return "retention(" + FormatDuration(retention_) + ")";
}

}  // namespace fungusdb
