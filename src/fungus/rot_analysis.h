#ifndef FUNGUSDB_FUNGUS_ROT_ANALYSIS_H_
#define FUNGUSDB_FUNGUS_ROT_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fungus/scheduler.h"
#include "storage/table.h"

namespace fungusdb {

/// Structure of the dead regions on a table's time axis — how
/// "Blue-Cheese-like" the decay pattern is. Used by experiments F2/F5 to
/// contrast EGI's contiguous rotting spots with uniform random decay.
struct RotStructure {
  uint64_t live_tuples = 0;
  uint64_t dead_tuples = 0;       // tombstoned but not yet reclaimed
  uint64_t reclaimed_tuples = 0;  // rows whose segment has been freed
  uint64_t num_spots = 0;         // maximal runs of consecutive dead rows
  uint64_t max_spot = 0;          // length of the longest run
  double mean_spot = 0.0;
  /// Spot lengths, ascending (reclaimed ranges merge into their
  /// surrounding spots since they are dead by definition).
  std::vector<uint64_t> spot_lengths;
};

/// Scans [first appended row, last appended row] and measures the dead
/// runs. O(total_appended) — intended for experiment checkpoints, not
/// hot paths.
RotStructure AnalyzeRot(const Table& table);

/// Freshness histogram over live tuples with `buckets` equal-width bins
/// on [0, 1]; result[i] counts freshness in [i/buckets, (i+1)/buckets).
/// Freshness exactly 1.0 lands in the last bucket.
std::vector<uint64_t> FreshnessHistogram(const Table& table, size_t buckets);

/// One-character-per-range ASCII strip of the time axis ('#' mostly
/// live, '.' mostly dead, digits in between) — the Blue-Cheese view used
/// by examples/blue_cheese.cpp.
std::string RenderTimeAxis(const Table& table, size_t width);

/// One-character-per-range freshness heatmap along the time axis: each
/// column shows the mean freshness of its live rows through the ramp
/// " .:-=+*#%@" (space = no live rows, '@' = fully fresh).
std::string RenderFreshnessAxis(const Table& table, size_t width);

/// One-character-per-range storage-tier strip along the time axis:
/// 'F' = every surviving segment in the range is frozen, '.' = all
/// plain, '~' = mixed, ' ' = fully reclaimed. Lines up under the
/// freshness heatmap so the cold tier's march along the rot front is
/// visible at a glance.
std::string RenderTierAxis(const Table& table, size_t width);

/// Everything the `\rot <table>` meta command shows: rot structure,
/// freshness histogram, the rot front, a decay-rate-based death
/// estimate, and the freshness heatmap.
struct RotReport {
  std::string table_name;
  RotStructure structure;
  std::vector<uint64_t> freshness_histogram;  // 10 equal-width buckets
  int64_t oldest_live_ts = -1;  // virtual micros; -1 when no live rows
  /// Live rows divided by the attachment's mean kills per tick; -1 when
  /// no fungus is attached or no tick has killed anything yet.
  double estimated_ticks_to_death = -1.0;
  uint64_t decay_ticks = 0;  // ticks the attachment has run
  /// Lazy-decay effectiveness: segments whose tick was folded into the
  /// pending-decrement vector instead of walking rows, rows rewritten
  /// when pending decay materialized, and folded segments per tick as a
  /// fraction of the table's current segment count (1.0 = every tick
  /// was pure O(segments); 0.0 = eager row walks throughout).
  uint64_t segments_folded = 0;
  uint64_t rows_materialized = 0;
  double fold_ratio = 0.0;
  /// Cold-tier occupancy (DESIGN.md §15): segments frozen right now,
  /// the encoded bytes they occupy, and the plain bytes they held at
  /// freeze time. Physical annotation only — every logical field above
  /// is identical whichever tier the rows live on (the freeze-on/off
  /// differential test pins that).
  uint64_t total_segments = 0;
  uint64_t frozen_segments = 0;
  uint64_t encoded_bytes = 0;
  uint64_t plain_bytes_before = 0;
  std::string heatmap;   // RenderFreshnessAxis at width 60
  std::string tier_map;  // RenderTierAxis at width 60

  std::string ToString() const;

  /// Machine-readable rendering for the HTTP plane's /rotz endpoint:
  /// one JSON object with the same fields ToString() prints, plus the
  /// compression ratio when the frozen tier is occupied.
  std::string ToJson() const;
};

/// Builds the `\rot` report. `scheduler` may be null (no decay info).
RotReport BuildRotReport(const Table& table,
                         const DecayScheduler* scheduler);

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_ROT_ANALYSIS_H_
