#include "fungus/scheduler.h"

#include <algorithm>
#include <chrono>

#include "common/trace.h"

namespace fungusdb {

namespace {
int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Result<DecayScheduler::AttachmentId> DecayScheduler::Attach(
    Table* table, std::unique_ptr<Fungus> fungus, Duration period,
    Timestamp start_time) {
  if (table == nullptr) return Status::InvalidArgument("table is null");
  if (fungus == nullptr) return Status::InvalidArgument("fungus is null");
  if (period <= 0) {
    return Status::InvalidArgument("decay period must be positive");
  }
  Attachment a;
  a.table = table;
  a.fungus = std::move(fungus);
  a.period = period;
  a.next_tick = start_time + period;
  a.active = true;
  attachments_.push_back(std::move(a));
  return attachments_.size() - 1;
}

Status DecayScheduler::Detach(AttachmentId id) {
  if (id >= attachments_.size() || !attachments_[id].active) {
    return Status::NotFound("no attachment " + std::to_string(id));
  }
  attachments_[id].active = false;
  attachments_[id].fungus.reset();
  return Status::OK();
}

void DecayScheduler::AddDeathObserver(DeathObserver observer) {
  observers_.push_back(std::move(observer));
}

std::vector<RowId> DecayScheduler::RunShardedTick(Attachment& a,
                                                  Timestamp tick_time,
                                                  DecayStats* tick_stats) {
  Table& table = *a.table;
  const size_t num_shards = table.num_shards();
  const uint64_t tick_index = a.stats.ticks;
  const uint64_t barrier_before =
      pool_ != nullptr ? pool_->barrier_wait_micros() : 0;

  a.fungus->BeginShardedTick(table, tick_time);

  // Phase 1 — plan: read-only over the frozen table, one planner per
  // shard, mutations recorded instead of applied.
  std::vector<ShardPlan> plans(num_shards);
  auto plan_one = [&](size_t s) {
    FUNGUS_TRACE_SPAN("decay.plan.shard", s);
    ShardPlanContext ctx(&table, static_cast<uint32_t>(s), tick_time,
                         tick_index);
    a.fungus->PlanShard(ctx);
    plans[s] = ctx.TakePlan();
  };

  // Phase 2 — apply: each worker owns exactly one shard, so all writes
  // are disjoint; killed rows and stats accumulate per shard.
  std::vector<std::vector<RowId>> killed(num_shards);
  std::vector<DecayStats> stats(num_shards);
  auto apply_one = [&](size_t s) {
    FUNGUS_TRACE_SPAN("decay.apply.shard", s);
    Shard& shard = table.shard(s);
    // Folds first: the plan-time foldability proof assumes the segment
    // is untouched since the barrier, and the planner never mixes a
    // fold with row actions against the same segment.
    for (const ShardFold& fold : plans[s].folds) {
      auto it = shard.segments().find(fold.seg_no);
      if (it == shard.segments().end()) continue;
      const uint64_t live = it->second->live_count();
      if (shard.TryFoldUniformDecay(fold.seg_no, fold.delta)) {
        stats[s].tuples_touched += live;
        ++stats[s].segments_folded;
      } else {
        // Unreachable while the stability argument holds; decay row by
        // row so a soft refusal still yields the planned state.
        const Segment& seg = *it->second;
        const size_t n = seg.num_rows();
        for (size_t off = 0; off < n; ++off) {
          if (!seg.IsLive(off)) continue;
          const RowId row = seg.first_row() + off;
          ++stats[s].tuples_touched;
          FUNGUSDB_CHECK_OK(shard.DecayFreshness(row, fold.delta));
          if (!shard.IsLive(row)) {
            killed[s].push_back(row);
            ++stats[s].tuples_killed;
          }
        }
      }
    }
    for (const ShardAction& action : plans[s].actions) {
      if (!shard.IsLive(action.row)) continue;  // killed earlier this plan
      ++stats[s].tuples_touched;
      // Rows were checked live under this plan, so the shard mutators
      // cannot fail; a failure means the planner saw a different table.
      switch (action.op) {
        case ShardAction::Op::kDecay:
          FUNGUSDB_CHECK_OK(shard.DecayFreshness(action.row, action.amount));
          break;
        case ShardAction::Op::kSet:
          FUNGUSDB_CHECK_OK(shard.SetFreshness(action.row, action.amount));
          break;
        case ShardAction::Op::kKill:
          FUNGUSDB_CHECK_OK(shard.Kill(action.row));
          break;
      }
      if (!shard.IsLive(action.row)) {
        killed[s].push_back(action.row);
        ++stats[s].tuples_killed;
      }
    }
    stats[s].seeds_planted = plans[s].seeds_planted;
    stats[s].segments_skipped = plans[s].segments_skipped;
  };

  {
    FUNGUS_TRACE_SPAN("decay.plan", num_shards);
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_shards, plan_one);
    } else {
      for (size_t s = 0; s < num_shards; ++s) plan_one(s);
    }
  }
  {
    FUNGUS_TRACE_SPAN("decay.apply", num_shards);
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_shards, apply_one);
    } else {
      for (size_t s = 0; s < num_shards; ++s) apply_one(s);
    }
  }

  // Merge: death observers (and the Kitchen behind them) see one list
  // per tick in insertion order, independent of shard/thread schedule.
  std::vector<RowId> all_killed;
  size_t total_killed = 0;
  for (const auto& k : killed) total_killed += k.size();
  all_killed.reserve(total_killed);
  for (const auto& k : killed) {
    all_killed.insert(all_killed.end(), k.begin(), k.end());
  }
  std::sort(all_killed.begin(), all_killed.end());
  for (const DecayStats& s : stats) *tick_stats += s;

  a.fungus->FinishShardedTick(table, all_killed);

  if (metrics_ != nullptr) {
    metrics_->IncrementCounter("fungusdb.parallel.shard_ticks",
                               static_cast<int64_t>(num_shards));
    if (pool_ != nullptr) {
      metrics_->IncrementCounter(
          "fungusdb.parallel.barrier_wait_us",
          static_cast<int64_t>(pool_->barrier_wait_micros() -
                               barrier_before));
    }
  }
  return all_killed;
}

uint64_t DecayScheduler::AdvanceTo(Timestamp now) {
  uint64_t ticks = 0;
  while (true) {
    // Earliest due attachment; ties resolve by attachment order.
    Attachment* due = nullptr;
    for (Attachment& a : attachments_) {
      if (!a.active || a.next_tick > now) continue;
      if (due == nullptr || a.next_tick < due->next_tick) due = &a;
    }
    if (due == nullptr) break;

    const Timestamp tick_time = due->next_tick;
    const int64_t tick_begin_us = SteadyMicros();
    // One tick == one decay epoch on every shard of the table; folds
    // stamp the advanced value into the segments they cover.
    due->table->AdvanceDecayEpochs();
    const uint64_t materialized_before = due->table->rows_materialized();
    DecayStats tick_stats;
    std::vector<RowId> tick_killed;
    {
      FUNGUS_TRACE_SPAN("decay.tick");
      if (due->fungus->SupportsShardedTick() &&
          due->table->num_shards() > 1) {
        tick_killed = RunShardedTick(*due, tick_time, &tick_stats);
      } else {
        DecayContext ctx(due->table, tick_time);
        due->fungus->Tick(ctx);
        tick_stats = ctx.stats();
        tick_killed = ctx.killed();
      }
    }
    // Materialization this tick triggered (per-row fallbacks landing on
    // previously folded segments) — the lazy path's deferred cost.
    tick_stats.rows_materialized =
        due->table->rows_materialized() - materialized_before;
    due->next_tick += due->period;
    ++due->stats.ticks;
    due->stats.decay += tick_stats;
    ++ticks;

    if (!tick_killed.empty()) {
      for (const DeathObserver& obs : observers_) {
        obs(*due->table, tick_killed, tick_time);
      }
    }
    due->table->ReclaimDeadSegments();
    // Freeze pass (DESIGN.md §15): full segments idle for the
    // configured number of ticks move to the encoded cold tier. Still
    // inside the tick's write section, so readers never observe a
    // representation swap mid-pin — and before the post-tick check, so
    // an armed fsck audits the frozen image every tick.
    const uint64_t freeze_idle =
        due->table->options().freeze_after_idle_ticks;
    if (freeze_idle > 0) due->table->FreezeColdSegments(freeze_idle);
    if (post_tick_check_) post_tick_check_(*due->table, tick_time);
    // Apply phase fully published (kills, cooking, reclamation, check):
    // this tick is now its own epoch on the owner's virtual timeline.
    if (epoch_publisher_) epoch_publisher_();

    if (metrics_ != nullptr) {
      const std::string table_label = "table=" + due->table->name();
      metrics_->IncrementCounter("fungusdb.decay.ticks");
      metrics_->IncrementCounter("fungusdb.decay.ticks", table_label);
      metrics_->IncrementCounter("fungusdb.decay.tuples_touched",
                                 tick_stats.tuples_touched);
      metrics_->IncrementCounter("fungusdb.decay.tuples_killed",
                                 tick_stats.tuples_killed);
      metrics_->IncrementCounter("fungusdb.decay.tuples_killed", table_label,
                                 tick_stats.tuples_killed);
      metrics_->IncrementCounter("fungusdb.decay.seeds_planted",
                                 tick_stats.seeds_planted);
      metrics_->IncrementCounter("fungusdb.decay.segments_skipped",
                                 tick_stats.segments_skipped);
      metrics_->IncrementCounter("fungusdb.decay.segments_folded",
                                 tick_stats.segments_folded);
      metrics_->IncrementCounter("fungusdb.decay.rows_materialized",
                                 tick_stats.rows_materialized);
      metrics_->RecordHistogram("fungusdb.decay.tick_duration_us",
                                table_label,
                                SteadyMicros() - tick_begin_us);
      // Storage tiers: current frozen census plus the cumulative thaw
      // count (mutating touches that pulled a segment back to plain).
      const StorageStats storage = due->table->GetStorageStats();
      metrics_->SetGauge("fungusdb.storage.frozen_segments", table_label,
                         static_cast<double>(storage.frozen_segments));
      metrics_->SetGauge("fungusdb.storage.encoded_bytes", table_label,
                         static_cast<double>(storage.encoded_bytes));
      metrics_->SetGauge("fungusdb.storage.plain_bytes_before", table_label,
                         static_cast<double>(storage.plain_bytes_before));
      metrics_->SetGauge("fungusdb.storage.thaw_count", table_label,
                         static_cast<double>(storage.thaw_count));
      // Rot front: virtual insertion time of the oldest tuple still
      // alive. -1 means the table has fully decayed.
      const std::optional<RowId> oldest = due->table->OldestLive();
      double front = -1.0;
      if (oldest.has_value()) {
        const Result<Timestamp> ts = due->table->InsertTime(*oldest);
        if (ts.ok()) front = static_cast<double>(ts.value());
      }
      metrics_->SetGauge("fungusdb.rot.oldest_live_ts", table_label, front);
    }
  }
  return ticks;
}

const DecayScheduler::Attachment* DecayScheduler::AttachmentForTable(
    const Table* table) const {
  for (const Attachment& a : attachments_) {
    if (a.active && a.table == table) return &a;
  }
  return nullptr;
}

std::optional<DecayScheduler::TableDecayInfo> DecayScheduler::StatsForTable(
    const Table* table) const {
  const Attachment* a = AttachmentForTable(table);
  if (a == nullptr) return std::nullopt;
  TableDecayInfo info;
  info.period = a->period;
  info.next_tick = a->next_tick;
  info.ticks = a->stats.ticks;
  info.decay = a->stats.decay;
  return info;
}

DecayScheduler::AttachmentStats DecayScheduler::StatsFor(
    AttachmentId id) const {
  if (id >= attachments_.size()) return AttachmentStats{};
  return attachments_[id].stats;
}

size_t DecayScheduler::num_attachments() const {
  return static_cast<size_t>(
      std::count_if(attachments_.begin(), attachments_.end(),
                    [](const Attachment& a) { return a.active; }));
}

}  // namespace fungusdb
