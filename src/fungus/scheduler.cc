#include "fungus/scheduler.h"

#include <algorithm>

namespace fungusdb {

Result<DecayScheduler::AttachmentId> DecayScheduler::Attach(
    Table* table, std::unique_ptr<Fungus> fungus, Duration period,
    Timestamp start_time) {
  if (table == nullptr) return Status::InvalidArgument("table is null");
  if (fungus == nullptr) return Status::InvalidArgument("fungus is null");
  if (period <= 0) {
    return Status::InvalidArgument("decay period must be positive");
  }
  Attachment a;
  a.table = table;
  a.fungus = std::move(fungus);
  a.period = period;
  a.next_tick = start_time + period;
  a.active = true;
  attachments_.push_back(std::move(a));
  return attachments_.size() - 1;
}

Status DecayScheduler::Detach(AttachmentId id) {
  if (id >= attachments_.size() || !attachments_[id].active) {
    return Status::NotFound("no attachment " + std::to_string(id));
  }
  attachments_[id].active = false;
  attachments_[id].fungus.reset();
  return Status::OK();
}

void DecayScheduler::AddDeathObserver(DeathObserver observer) {
  observers_.push_back(std::move(observer));
}

uint64_t DecayScheduler::AdvanceTo(Timestamp now) {
  uint64_t ticks = 0;
  while (true) {
    // Earliest due attachment; ties resolve by attachment order.
    Attachment* due = nullptr;
    for (Attachment& a : attachments_) {
      if (!a.active || a.next_tick > now) continue;
      if (due == nullptr || a.next_tick < due->next_tick) due = &a;
    }
    if (due == nullptr) break;

    const Timestamp tick_time = due->next_tick;
    DecayContext ctx(due->table, tick_time);
    due->fungus->Tick(ctx);
    due->next_tick += due->period;
    ++due->stats.ticks;
    due->stats.decay += ctx.stats();
    ++ticks;

    if (!ctx.killed().empty()) {
      for (const DeathObserver& obs : observers_) {
        obs(*due->table, ctx.killed(), tick_time);
      }
    }
    due->table->ReclaimDeadSegments();

    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("decay.ticks");
      metrics_->IncrementCounter("decay.tuples_touched",
                                 ctx.stats().tuples_touched);
      metrics_->IncrementCounter("decay.tuples_killed",
                                 ctx.stats().tuples_killed);
      metrics_->IncrementCounter("decay.seeds_planted",
                                 ctx.stats().seeds_planted);
    }
  }
  return ticks;
}

DecayScheduler::AttachmentStats DecayScheduler::StatsFor(
    AttachmentId id) const {
  if (id >= attachments_.size()) return AttachmentStats{};
  return attachments_[id].stats;
}

size_t DecayScheduler::num_attachments() const {
  return static_cast<size_t>(
      std::count_if(attachments_.begin(), attachments_.end(),
                    [](const Attachment& a) { return a.active; }));
}

}  // namespace fungusdb
