#include "fungus/fungus_factory.h"

#include <cstdlib>

#include "fungus/egi_fungus.h"
#include "fungus/exponential_fungus.h"
#include "fungus/quota_fungus.h"
#include "fungus/retention_fungus.h"
#include "fungus/sliding_window_fungus.h"

namespace fungusdb {
namespace {

Result<uint64_t> ParseCount(const std::string& text,
                            const std::string& what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::ParseError("bad " + what + " '" + text + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

Result<std::unique_ptr<Fungus>> MakeFungusFromSpec(
    const std::string& kind, const std::optional<std::string>& arg,
    Timestamp now) {
  if (kind == "retention") {
    if (!arg.has_value()) {
      return Status::InvalidArgument("retention needs a duration arg");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(Duration retention, ParseDuration(*arg));
    return std::unique_ptr<Fungus>(
        std::make_unique<RetentionFungus>(retention));
  }
  if (kind == "exponential") {
    if (!arg.has_value()) {
      return Status::InvalidArgument("exponential needs a half-life arg");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(Duration half_life, ParseDuration(*arg));
    return std::unique_ptr<Fungus>(std::make_unique<ExponentialFungus>(
        ExponentialFungus::FromHalfLife(half_life, now)));
  }
  if (kind == "egi") {
    if (arg.has_value()) {
      return Status::InvalidArgument("egi takes no arg");
    }
    return std::unique_ptr<Fungus>(
        std::make_unique<EgiFungus>(EgiFungus::Params{}));
  }
  if (kind == "window") {
    if (!arg.has_value()) {
      return Status::InvalidArgument("window needs a row-count arg");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t rows, ParseCount(*arg, "row count"));
    return std::unique_ptr<Fungus>(
        std::make_unique<SlidingWindowFungus>(rows));
  }
  if (kind == "quota") {
    if (!arg.has_value()) {
      return Status::InvalidArgument("quota needs a byte-count arg");
    }
    FUNGUSDB_ASSIGN_OR_RETURN(uint64_t bytes, ParseCount(*arg, "byte count"));
    return std::unique_ptr<Fungus>(std::make_unique<QuotaFungus>(bytes));
  }
  return Status::InvalidArgument("unknown fungus '" + kind + "'");
}

}  // namespace fungusdb
