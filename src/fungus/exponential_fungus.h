#ifndef FUNGUSDB_FUNGUS_EXPONENTIAL_FUNGUS_H_
#define FUNGUSDB_FUNGUS_EXPONENTIAL_FUNGUS_H_

#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// Uniform exponential decay: every live tuple's freshness is multiplied
/// by exp(-lambda * dt) each tick, where dt is the time since the
/// previous tick. A tuple is discarded when its freshness falls to or
/// below `kill_threshold` (pure exponential decay never reaches zero).
///
/// Half-life relation: half_life = ln(2) / lambda.
class ExponentialFungus : public Fungus {
 public:
  struct Params {
    /// Decay rate per second of elapsed (virtual) time.
    double lambda_per_second = 0.0;

    /// Freshness at or below this value discards the tuple.
    double kill_threshold = 0.01;

    /// Time of the attachment; the first tick decays from here.
    Timestamp start_time = 0;
  };

  explicit ExponentialFungus(Params params);

  /// Convenience: rate chosen so freshness halves every `half_life`.
  static ExponentialFungus::Params FromHalfLife(Duration half_life,
                                                Timestamp start_time = 0);

  std::string_view name() const override { return "exponential"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  /// Uniform decay is embarrassingly partitionable: every shard applies
  /// the same multiplicative factor to its own rows. Outcomes are
  /// identical to the serial Tick for any shard count.
  bool SupportsShardedTick() const override { return true; }
  void BeginShardedTick(const Table& table, Timestamp now) override;
  void PlanShard(ShardPlanContext& ctx) override;

  const Params& params() const { return params_; }

 private:
  Params params_;
  Timestamp last_tick_;
  double tick_factor_ = 1.0;  // exp(-lambda*dt) of the tick being planned
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_EXPONENTIAL_FUNGUS_H_
