#ifndef FUNGUSDB_FUNGUS_IMPORTANCE_FUNGUS_H_
#define FUNGUSDB_FUNGUS_IMPORTANCE_FUNGUS_H_

#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// Access-aware decay — the paper's "what to decay" axis. Tuples the
/// workload keeps touching decay slowly; tuples nobody reads rot at the
/// base rate. Per tick, a live tuple with access count `a` loses
///
///     decay_step / (1 + access_weight * log2(1 + a))
///
/// freshness. Requires the table to be created with
/// TableOptions::track_access = true (access counts are bumped by the
/// query engine); without tracking it degrades to uniform linear decay.
class ImportanceFungus : public Fungus {
 public:
  struct Params {
    /// Base freshness lost per tick by a never-accessed tuple.
    double decay_step = 0.05;

    /// How strongly accesses protect a tuple (0 disables protection).
    double access_weight = 1.0;
  };

  explicit ImportanceFungus(Params params);

  std::string_view name() const override { return "importance"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_IMPORTANCE_FUNGUS_H_
