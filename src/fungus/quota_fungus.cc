#include "fungus/quota_fungus.h"

#include <cassert>

#include "common/string_util.h"

namespace fungusdb {

QuotaFungus::QuotaFungus(size_t max_bytes) : max_bytes_(max_bytes) {
  assert(max_bytes > 0);
}

void QuotaFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();
  // Evict oldest-first, reclaiming as we go so MemoryUsage() reflects
  // progress. Eviction proceeds one segment-stride at a time.
  while (table.MemoryUsage() > max_bytes_) {
    std::optional<RowId> victim = table.OldestLive();
    if (!victim.has_value()) break;  // empty but over quota: fixed cost
    // Kill up to one segment's worth of the oldest tuples.
    const size_t stride = table.options().rows_per_segment;
    for (size_t i = 0; i < stride && victim.has_value(); ++i) {
      const RowId row = *victim;
      victim = table.NextLive(row);
      ctx.Kill(row);
    }
    if (table.ReclaimDeadSegments() == 0 && !victim.has_value()) {
      break;  // nothing left to free
    }
  }
}

std::string QuotaFungus::Describe() const {
  return "quota(" + FormatBytes(max_bytes_) + ")";
}

}  // namespace fungusdb
