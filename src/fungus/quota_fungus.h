#ifndef FUNGUSDB_FUNGUS_QUOTA_FUNGUS_H_
#define FUNGUSDB_FUNGUS_QUOTA_FUNGUS_H_

#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// A hard fridge-size cap: when the table's heap footprint exceeds
/// `max_bytes`, the oldest tuples are evicted (and their segments
/// reclaimed) until the footprint fits again. The paper's chess-board
/// lesson applied literally — the fridge simply refuses to grow.
///
/// Memory is reclaimed at segment granularity, so the fungus evicts in
/// whole-segment strides from the old end of the time axis; the actual
/// footprint lands at or below the quota after each tick.
class QuotaFungus : public Fungus {
 public:
  explicit QuotaFungus(size_t max_bytes);

  std::string_view name() const override { return "quota"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;

  size_t max_bytes() const { return max_bytes_; }

 private:
  size_t max_bytes_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_QUOTA_FUNGUS_H_
