#include "fungus/rot_analysis.h"

#include <algorithm>

namespace fungusdb {

RotStructure AnalyzeRot(const Table& table) {
  RotStructure out;
  const uint64_t total = table.total_appended();
  uint64_t run = 0;
  for (RowId row = 0; row < total; ++row) {
    const bool contained = table.Contains(row);
    const bool live = contained && table.IsLive(row);
    if (live) {
      ++out.live_tuples;
      if (run > 0) {
        out.spot_lengths.push_back(run);
        run = 0;
      }
    } else {
      if (contained) {
        ++out.dead_tuples;
      } else {
        ++out.reclaimed_tuples;
      }
      ++run;
    }
  }
  if (run > 0) out.spot_lengths.push_back(run);
  std::sort(out.spot_lengths.begin(), out.spot_lengths.end());
  out.num_spots = out.spot_lengths.size();
  if (out.num_spots > 0) {
    out.max_spot = out.spot_lengths.back();
    uint64_t sum = 0;
    for (uint64_t len : out.spot_lengths) sum += len;
    out.mean_spot =
        static_cast<double>(sum) / static_cast<double>(out.num_spots);
  }
  return out;
}

std::vector<uint64_t> FreshnessHistogram(const Table& table,
                                         size_t buckets) {
  std::vector<uint64_t> hist(buckets, 0);
  if (buckets == 0) return hist;
  table.ForEachLive([&](RowId row) {
    const double f = table.Freshness(row);
    size_t bucket = static_cast<size_t>(f * static_cast<double>(buckets));
    if (bucket >= buckets) bucket = buckets - 1;
    ++hist[bucket];
  });
  return hist;
}

std::string RenderTimeAxis(const Table& table, size_t width) {
  const uint64_t total = table.total_appended();
  if (total == 0 || width == 0) return std::string(width, ' ');
  std::string strip;
  strip.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    const uint64_t begin = total * i / width;
    uint64_t end = total * (i + 1) / width;
    if (end == begin) end = begin + 1;
    uint64_t live = 0;
    for (RowId row = begin; row < end && row < total; ++row) {
      if (table.IsLive(row)) ++live;
    }
    const double frac =
        static_cast<double>(live) / static_cast<double>(end - begin);
    if (frac >= 0.95) {
      strip.push_back('#');
    } else if (frac <= 0.05) {
      strip.push_back('.');
    } else {
      strip.push_back(static_cast<char>('1' + static_cast<int>(frac * 8)));
    }
  }
  return strip;
}

}  // namespace fungusdb
