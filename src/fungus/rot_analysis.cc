#include "fungus/rot_analysis.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace fungusdb {

RotStructure AnalyzeRot(const Table& table) {
  RotStructure out;
  const uint64_t total = table.total_appended();
  uint64_t run = 0;
  for (RowId row = 0; row < total; ++row) {
    const bool contained = table.Contains(row);
    const bool live = contained && table.IsLive(row);
    if (live) {
      ++out.live_tuples;
      if (run > 0) {
        out.spot_lengths.push_back(run);
        run = 0;
      }
    } else {
      if (contained) {
        ++out.dead_tuples;
      } else {
        ++out.reclaimed_tuples;
      }
      ++run;
    }
  }
  if (run > 0) out.spot_lengths.push_back(run);
  std::sort(out.spot_lengths.begin(), out.spot_lengths.end());
  out.num_spots = out.spot_lengths.size();
  if (out.num_spots > 0) {
    out.max_spot = out.spot_lengths.back();
    uint64_t sum = 0;
    for (uint64_t len : out.spot_lengths) sum += len;
    out.mean_spot =
        static_cast<double>(sum) / static_cast<double>(out.num_spots);
  }
  return out;
}

std::vector<uint64_t> FreshnessHistogram(const Table& table,
                                         size_t buckets) {
  std::vector<uint64_t> hist(buckets, 0);
  if (buckets == 0) return hist;
  table.ForEachLive([&](RowId row) {
    const double f = table.Freshness(row);
    size_t bucket = static_cast<size_t>(f * static_cast<double>(buckets));
    if (bucket >= buckets) bucket = buckets - 1;
    ++hist[bucket];
  });
  return hist;
}

std::string RenderTimeAxis(const Table& table, size_t width) {
  const uint64_t total = table.total_appended();
  if (total == 0 || width == 0) return std::string(width, ' ');
  std::string strip;
  strip.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    const uint64_t begin = total * i / width;
    uint64_t end = total * (i + 1) / width;
    if (end == begin) end = begin + 1;
    uint64_t live = 0;
    for (RowId row = begin; row < end && row < total; ++row) {
      if (table.IsLive(row)) ++live;
    }
    const double frac =
        static_cast<double>(live) / static_cast<double>(end - begin);
    if (frac >= 0.95) {
      strip.push_back('#');
    } else if (frac <= 0.05) {
      strip.push_back('.');
    } else {
      strip.push_back(static_cast<char>('1' + static_cast<int>(frac * 8)));
    }
  }
  return strip;
}

std::string RenderFreshnessAxis(const Table& table, size_t width) {
  // Darker glyph = fresher. 10 steps over [0, 1].
  static constexpr char kRamp[] = " .:-=+*#%@";
  const uint64_t total = table.total_appended();
  if (total == 0 || width == 0) return std::string(width, ' ');
  std::string strip;
  strip.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    const uint64_t begin = total * i / width;
    uint64_t end = total * (i + 1) / width;
    if (end == begin) end = begin + 1;
    uint64_t live = 0;
    double freshness_sum = 0.0;
    for (RowId row = begin; row < end && row < total; ++row) {
      if (!table.Contains(row) || !table.IsLive(row)) continue;
      ++live;
      freshness_sum += table.Freshness(row);
    }
    if (live == 0) {
      strip.push_back(' ');
      continue;
    }
    const double mean = freshness_sum / static_cast<double>(live);
    int step = 1 + static_cast<int>(mean * 9.0);  // live rows never blank
    step = std::clamp(step, 1, 9);
    strip.push_back(kRamp[step]);
  }
  return strip;
}

std::string RenderTierAxis(const Table& table, size_t width) {
  const uint64_t total = table.total_appended();
  if (total == 0 || width == 0) return std::string(width, ' ');
  const uint64_t rps = table.options().rows_per_segment;
  std::string strip;
  strip.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    const uint64_t begin = total * i / width;
    uint64_t end = total * (i + 1) / width;
    if (end == begin) end = begin + 1;
    bool any_frozen = false;
    bool any_plain = false;
    for (uint64_t seg_no = begin / rps; seg_no <= (end - 1) / rps;
         ++seg_no) {
      auto it = table.segment_index().find(seg_no);
      if (it == table.segment_index().end()) continue;  // reclaimed
      (it->second->is_frozen() ? any_frozen : any_plain) = true;
    }
    strip.push_back(any_frozen ? (any_plain ? '~' : 'F')
                               : (any_plain ? '.' : ' '));
  }
  return strip;
}

RotReport BuildRotReport(const Table& table,
                         const DecayScheduler* scheduler) {
  RotReport report;
  report.table_name = table.name();
  report.structure = AnalyzeRot(table);
  report.freshness_histogram = FreshnessHistogram(table, 10);
  if (const std::optional<RowId> oldest = table.OldestLive()) {
    if (const Result<Timestamp> ts = table.InsertTime(*oldest); ts.ok()) {
      report.oldest_live_ts = ts.value();
    }
  }
  if (scheduler != nullptr) {
    if (const auto info = scheduler->StatsForTable(&table)) {
      report.decay_ticks = info->ticks;
      report.segments_folded = info->decay.segments_folded;
      report.rows_materialized = info->decay.rows_materialized;
      if (info->ticks > 0 && table.num_segments() > 0) {
        report.fold_ratio =
            static_cast<double>(info->decay.segments_folded) /
            static_cast<double>(info->ticks) /
            static_cast<double>(table.num_segments());
      }
      if (info->ticks > 0 && info->decay.tuples_killed > 0) {
        const double kills_per_tick =
            static_cast<double>(info->decay.tuples_killed) /
            static_cast<double>(info->ticks);
        report.estimated_ticks_to_death =
            static_cast<double>(report.structure.live_tuples) /
            kills_per_tick;
      }
    }
  }
  const StorageStats storage = table.GetStorageStats();
  report.total_segments = storage.total_segments;
  report.frozen_segments = storage.frozen_segments;
  report.encoded_bytes = storage.encoded_bytes;
  report.plain_bytes_before = storage.plain_bytes_before;
  report.heatmap = RenderFreshnessAxis(table, 60);
  report.tier_map = RenderTierAxis(table, 60);
  return report;
}

std::string RotReport::ToString() const {
  std::ostringstream os;
  os << "rot report for " << table_name << "\n";
  os << "  rows: live=" << structure.live_tuples
     << " dead=" << structure.dead_tuples
     << " reclaimed=" << structure.reclaimed_tuples << "\n";
  os << "  spots: n=" << structure.num_spots
     << " max=" << structure.max_spot << " mean=" << structure.mean_spot
     << "\n";
  os << "  rot_front_oldest_live_ts=" << oldest_live_ts
     << " decay_ticks=" << decay_ticks
     << " est_ticks_to_death=" << estimated_ticks_to_death << "\n";
  os << "  lazy decay: segments_folded=" << segments_folded
     << " rows_materialized=" << rows_materialized
     << " fold_ratio=" << fold_ratio << "\n";
  os << "  storage tiers: frozen_segments=" << frozen_segments << "/"
     << total_segments << " encoded_bytes=" << encoded_bytes
     << " plain_bytes_before=" << plain_bytes_before;
  if (frozen_segments > 0 && encoded_bytes > 0) {
    os << " ratio=" << (static_cast<double>(plain_bytes_before) /
                        static_cast<double>(encoded_bytes));
  }
  os << "\n";
  os << "  freshness histogram (0.0 .. 1.0):\n";
  uint64_t max_count = 1;
  for (uint64_t c : freshness_histogram) max_count = std::max(max_count, c);
  for (size_t i = 0; i < freshness_histogram.size(); ++i) {
    const double lo = static_cast<double>(i) /
                      static_cast<double>(freshness_histogram.size());
    const size_t bar_len = static_cast<size_t>(
        40.0 * static_cast<double>(freshness_histogram[i]) /
        static_cast<double>(max_count));
    os << "    [" << lo << ") " << std::string(bar_len, '#') << " "
       << freshness_histogram[i] << "\n";
  }
  os << "  freshness heatmap (time axis, ' '=gone '@'=fresh):\n";
  os << "    |" << heatmap << "|\n";
  os << "  storage tier    (time axis, 'F'=frozen '.'=plain '~'=mixed):\n";
  os << "    |" << tier_map << "|\n";
  return os.str();
}

std::string RotReport::ToJson() const {
  std::ostringstream os;
  os << "{\"table\":\"" << JsonEscape(table_name) << "\""
     << ",\"live_tuples\":" << structure.live_tuples
     << ",\"dead_tuples\":" << structure.dead_tuples
     << ",\"reclaimed_tuples\":" << structure.reclaimed_tuples
     << ",\"num_spots\":" << structure.num_spots
     << ",\"max_spot\":" << structure.max_spot
     << ",\"mean_spot\":" << structure.mean_spot
     << ",\"oldest_live_ts\":" << oldest_live_ts
     << ",\"estimated_ticks_to_death\":" << estimated_ticks_to_death
     << ",\"decay_ticks\":" << decay_ticks
     << ",\"segments_folded\":" << segments_folded
     << ",\"rows_materialized\":" << rows_materialized
     << ",\"fold_ratio\":" << fold_ratio
     << ",\"total_segments\":" << total_segments
     << ",\"frozen_segments\":" << frozen_segments
     << ",\"encoded_bytes\":" << encoded_bytes
     << ",\"plain_bytes_before\":" << plain_bytes_before;
  if (frozen_segments > 0 && encoded_bytes > 0) {
    os << ",\"compression_ratio\":"
       << (static_cast<double>(plain_bytes_before) /
           static_cast<double>(encoded_bytes));
  }
  os << ",\"freshness_histogram\":[";
  for (size_t i = 0; i < freshness_histogram.size(); ++i) {
    if (i > 0) os << ",";
    os << freshness_histogram[i];
  }
  os << "]"
     << ",\"heatmap\":\"" << JsonEscape(heatmap) << "\""
     << ",\"tier_map\":\"" << JsonEscape(tier_map) << "\"}";
  return os.str();
}

}  // namespace fungusdb
