#ifndef FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_
#define FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_

#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// The paper's "old-fashioned decay function": a fixed retention time.
/// On each tick every tuple older than `retention` is discarded outright.
/// Freshness degrades linearly with age in between, so dashboards can
/// still rank tuples by remaining life.
class RetentionFungus : public Fungus {
 public:
  explicit RetentionFungus(Duration retention);

  std::string_view name() const override { return "retention"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;

  /// Age-based decay is a pure per-row function of (now, insert time),
  /// so shards plan independently with outcomes identical to the serial
  /// Tick for any shard count.
  bool SupportsShardedTick() const override { return true; }
  void PlanShard(ShardPlanContext& ctx) override;

  Duration retention() const { return retention_; }

 private:
  Duration retention_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_
