#ifndef FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_
#define FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_

#include <optional>
#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// The paper's "old-fashioned decay function": a fixed retention time.
/// On each tick every tuple older than `retention` is discarded outright.
/// Freshness degrades linearly with age in between, so dashboards can
/// still rank tuples by remaining life.
///
/// Tick shape (what makes lazy decay pay off): a row's first tick sets
/// its freshness from the formula 1 - age/retention. From then on age
/// grows uniformly for every row, so any segment whose rows all predate
/// the previous tick decays by ONE uniform decrement
/// (now - prev_tick) / retention — the foldable shape
/// DecaySegmentUniform turns into an O(1) segment-metadata write when
/// the table runs lazy decay. Accumulated decrements track the formula
/// to within float rounding; a row dies when its freshness reaches 0 or
/// its segment ages past retention wholesale. Both execution modes and
/// both tick paths (serial / sharded) take identical branches, so
/// outcomes stay bit-identical across all four combinations.
class RetentionFungus : public Fungus {
 public:
  explicit RetentionFungus(Duration retention);

  std::string_view name() const override { return "retention"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;

  /// Age-based decay is a pure per-row function of (now, insert time,
  /// previous tick time), so shards plan independently with outcomes
  /// identical to the serial Tick for any shard count.
  bool SupportsShardedTick() const override { return true; }
  void BeginShardedTick(const Table& table, Timestamp now) override;
  void PlanShard(ShardPlanContext& ctx) override;

  /// Drops the previous-tick marker; the next tick runs formula passes
  /// everywhere, exactly like a freshly attached fungus.
  void Reset() override { last_tick_.reset(); }

  Duration retention() const { return retention_; }

 private:
  Duration retention_;
  /// Time of the last executed tick; nullopt before the first one.
  /// Segments entirely older than this already had their formula pass,
  /// making them candidates for the uniform-decrement branch.
  std::optional<Timestamp> last_tick_;
  /// last_tick_ as of the start of the in-flight sharded tick — what
  /// the (possibly concurrent) planners read.
  std::optional<Timestamp> plan_prev_tick_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_RETENTION_FUNGUS_H_
