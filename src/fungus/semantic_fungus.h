#ifndef FUNGUSDB_FUNGUS_SEMANTIC_FUNGUS_H_
#define FUNGUSDB_FUNGUS_SEMANTIC_FUNGUS_H_

#include <optional>
#include <string>

#include "fungus/fungus.h"
#include "query/binder.h"
#include "query/expr.h"

namespace fungusdb {

/// Content-aware decay — the paper's "what to decay" axis taken to its
/// logical end: tuples matching a predicate rot at one rate, everything
/// else at another. Setting matched_step = 0 makes the predicate a
/// preservation order ("keep all FAULT readings"); setting
/// unmatched_step = 0 makes it a targeted purge.
///
/// The predicate is an ordinary query expression (it may reference
/// `__ts` and `__freshness`); it is bound against the table's schema on
/// the first tick. Tuples on which the predicate errors or evaluates to
/// null decay at the unmatched rate.
class SemanticFungus : public Fungus {
 public:
  struct Params {
    /// Freshness lost per tick by tuples satisfying the predicate.
    double matched_step = 0.2;

    /// Freshness lost per tick by every other live tuple.
    double unmatched_step = 0.02;
  };

  /// `predicate` must be a boolean expression over the target table's
  /// columns; it is validated lazily at the first tick.
  SemanticFungus(ExprPtr predicate, Params params);

  std::string_view name() const override { return "semantic"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  /// Binding failure (unknown column, non-bool predicate) detected on a
  /// previous tick; OK before the first tick and on healthy fungi.
  const Status& bind_status() const { return bind_status_; }

 private:
  ExprPtr predicate_;
  Params params_;
  std::optional<BoundExpr> bound_;
  Status bind_status_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_SEMANTIC_FUNGUS_H_
