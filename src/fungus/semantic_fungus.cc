#include "fungus/semantic_fungus.h"

#include <cassert>

#include "common/logging.h"
#include "common/string_util.h"
#include "query/evaluator.h"

namespace fungusdb {

SemanticFungus::SemanticFungus(ExprPtr predicate, Params params)
    : predicate_(std::move(predicate)), params_(params) {
  assert(predicate_ != nullptr);
  assert(params_.matched_step >= 0.0 && params_.matched_step <= 1.0);
  assert(params_.unmatched_step >= 0.0 && params_.unmatched_step <= 1.0);
}

void SemanticFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();
  if (!bound_.has_value()) {
    if (!bind_status_.ok()) return;  // permanently broken; already logged
    Result<BoundExpr> bound = Bind(*predicate_, table.schema());
    if (bound.ok() && bound->result_type.has_value() &&
        bound->result_type != DataType::kBool) {
      bound = Status::TypeMismatch(
          "semantic fungus predicate must be boolean");
    }
    if (!bound.ok()) {
      bind_status_ = bound.status();
      FUNGUSDB_LOG(Error) << "semantic fungus disabled on table '"
                          << table.name()
                          << "': " << bind_status_.ToString();
      return;
    }
    bound_ = std::move(bound).value();
  }
  table.ForEachLive([&](RowId row) {
    Result<bool> matched = EvalPredicate(*bound_, table, row);
    const double step = (matched.ok() && *matched)
                            ? params_.matched_step
                            : params_.unmatched_step;
    if (step > 0.0) ctx.Decay(row, step);
  });
}

std::string SemanticFungus::Describe() const {
  return "semantic(" + predicate_->ToString() +
         " ? " + FormatDouble(params_.matched_step, 3) + " : " +
         FormatDouble(params_.unmatched_step, 3) + "/tick)";
}

void SemanticFungus::Reset() {
  bound_.reset();
  bind_status_ = Status::OK();
}

}  // namespace fungusdb
