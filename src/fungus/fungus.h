#ifndef FUNGUSDB_FUNGUS_FUNGUS_H_
#define FUNGUSDB_FUNGUS_FUNGUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/table.h"

namespace fungusdb {

/// Outcome of one fungus application (one clock tick).
struct DecayStats {
  uint64_t tuples_touched = 0;  // freshness updates applied
  uint64_t tuples_killed = 0;   // tuples whose freshness reached 0
  uint64_t seeds_planted = 0;   // new infections (EGI-style fungi)

  DecayStats& operator+=(const DecayStats& other) {
    tuples_touched += other.tuples_touched;
    tuples_killed += other.tuples_killed;
    seeds_planted += other.seeds_planted;
    return *this;
  }
};

/// Mutation interface handed to a fungus during one tick. All freshness
/// changes flow through the context so the scheduler can observe which
/// tuples died this tick (their attribute values remain readable until
/// segment reclamation — that window is where the Kitchen cooks them).
class DecayContext {
 public:
  DecayContext(Table* table, Timestamp now);

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  Timestamp now() const { return now_; }

  /// Decreases freshness by `delta` >= 0; the tuple dies at 0.
  /// Silently ignores rows that are already dead or reclaimed.
  void Decay(RowId row, double delta);

  /// Sets freshness outright (clamped to [0, 1]; 0 kills).
  void SetFreshness(RowId row, double f);

  /// Kills the tuple immediately.
  void Kill(RowId row);

  /// Records a seed planted (bookkeeping only).
  void NoteSeed() { ++stats_.seeds_planted; }

  /// Tuples killed during this tick, in kill order.
  const std::vector<RowId>& killed() const { return killed_; }

  const DecayStats& stats() const { return stats_; }

 private:
  Table* table_;
  Timestamp now_;
  std::vector<RowId> killed_;
  DecayStats stats_;
};

/// A data fungus: the decay operator applied to a relation on each tick
/// of the periodic clock `T` (the paper's first natural law). A fungus
/// decides *what* to decay, *how*, and at what *rate*; the Table enforces
/// that freshness only moves downward through fungi and that tuples are
/// discarded exactly when freshness reaches zero.
///
/// Implementations may keep per-table state (e.g. EGI's infection set)
/// but must tolerate tuples dying or being reclaimed between ticks.
class Fungus {
 public:
  virtual ~Fungus() = default;

  Fungus(const Fungus&) = delete;
  Fungus& operator=(const Fungus&) = delete;

  /// Stable identifier, e.g. "egi", "retention".
  virtual std::string_view name() const = 0;

  /// Applies one decay step at ctx.now().
  virtual void Tick(DecayContext& ctx) = 0;

  /// Human-readable parameterization, e.g. "retention(7d)".
  virtual std::string Describe() const = 0;

  /// Drops any per-table state (used when a table is rebuilt).
  virtual void Reset() {}

 protected:
  Fungus() = default;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_FUNGUS_H_
