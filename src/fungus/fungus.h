#ifndef FUNGUSDB_FUNGUS_FUNGUS_H_
#define FUNGUSDB_FUNGUS_FUNGUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "storage/table.h"

namespace fungusdb {

/// Outcome of one fungus application (one clock tick).
struct DecayStats {
  uint64_t tuples_touched = 0;    // freshness updates applied (folds
                                  // count their covered live rows — the
                                  // tick logically decayed them)
  uint64_t tuples_killed = 0;     // tuples whose freshness reached 0
  uint64_t seeds_planted = 0;     // new infections (EGI-style fungi)
  uint64_t segments_skipped = 0;  // segments bypassed via zone maps
  uint64_t segments_folded = 0;   // uniform decays folded as pending
                                  // decrements instead of row rewrites
  uint64_t rows_materialized = 0; // deferred decrements later applied
                                  // to rows (the lazy path's true cost;
                                  // filled in by the scheduler)

  DecayStats& operator+=(const DecayStats& other) {
    tuples_touched += other.tuples_touched;
    tuples_killed += other.tuples_killed;
    seeds_planted += other.seeds_planted;
    segments_skipped += other.segments_skipped;
    segments_folded += other.segments_folded;
    rows_materialized += other.rows_materialized;
    return *this;
  }
};

/// Mutation interface handed to a fungus during one tick. All freshness
/// changes flow through the context so the scheduler can observe which
/// tuples died this tick (their attribute values remain readable until
/// segment reclamation — that window is where the Kitchen cooks them).
class DecayContext {
 public:
  DecayContext(Table* table, Timestamp now);

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  Timestamp now() const { return now_; }

  /// Decreases freshness by `delta` >= 0; the tuple dies at 0.
  /// Silently ignores rows that are already dead or reclaimed.
  void Decay(RowId row, double delta);

  /// Sets freshness outright (clamped to [0, 1]; 0 kills).
  void SetFreshness(RowId row, double f);

  /// Kills the tuple immediately.
  void Kill(RowId row);

  /// Decreases every live row of segment `seg_no` by the same `delta`,
  /// none of which can die from it. Folds the decrement as segment
  /// metadata when the table allows it (lazy decay on and the segment
  /// proves no death possible — DESIGN.md §14), otherwise decays row by
  /// row; observable state is bit-identical either way. A fungus must
  /// not mix this with per-row ops against the same segment in one tick.
  void DecaySegmentUniform(uint64_t seg_no, const Segment& seg,
                           double delta);

  /// Records a seed planted (bookkeeping only).
  void NoteSeed() { ++stats_.seeds_planted; }

  /// Records one segment bypassed whole because its zone map proved the
  /// tick cannot change it (bookkeeping only).
  void NoteSegmentSkipped() { ++stats_.segments_skipped; }

  /// Tuples killed during this tick, in kill order.
  const std::vector<RowId>& killed() const { return killed_; }

  const DecayStats& stats() const { return stats_; }

 private:
  Table* table_;
  Timestamp now_;
  std::vector<RowId> killed_;
  DecayStats stats_;
};

/// One planned freshness action against a row of a single shard,
/// recorded during the read-only planning phase of a parallel tick and
/// applied by the scheduler after the barrier.
struct ShardAction {
  enum class Op : uint8_t { kDecay, kSet, kKill };

  RowId row = 0;
  Op op = Op::kDecay;
  double amount = 0.0;  // delta for kDecay, target freshness for kSet
};

/// One planned segment-uniform decrement (lazy decay): the whole
/// segment proved foldable at plan time, so the apply worker records a
/// pending decrement instead of row writes.
struct ShardFold {
  uint64_t seg_no = 0;
  double delta = 0.0;
};

/// Everything one shard's planner produced for one tick.
struct ShardPlan {
  std::vector<ShardAction> actions;  // own-shard rows, in plan order
  std::vector<ShardFold> folds;      // own-shard segments, in plan order
  uint64_t seeds_planted = 0;
  uint64_t segments_skipped = 0;  // segments bypassed via zone maps
};

/// Planning context for one (tick, shard) pair of a parallel decay tick.
///
/// The sharded tick is a strict two-phase protocol: during planning the
/// whole table is frozen — PlanShard may *read* any shard (so EGI can
/// look across shard boundaries for time-axis neighbours) but records
/// mutations here instead of applying them, and may only target rows of
/// its own shard (cross-shard effects go through fungus-private state
/// merged in FinishShardedTick). After a barrier the scheduler applies
/// every shard's plan with one worker per shard, so writes are disjoint
/// and outcomes are independent of thread count by construction.
class ShardPlanContext {
 public:
  ShardPlanContext(const Table* table, uint32_t shard_id, Timestamp now,
                   uint64_t tick_index);

  const Table& table() const { return *table_; }
  const Shard& shard() const { return table_->shard(shard_id_); }
  uint32_t shard_id() const { return shard_id_; }
  Timestamp now() const { return now_; }

  /// Ticks this attachment has executed before this one; combined with
  /// the shard id it identifies the RNG stream.
  uint64_t tick_index() const { return tick_index_; }

  /// Deterministic per-(tick, shard) stream seed derived from the
  /// fungus's own base seed: SplitSeed(SplitSeed(base, tick), shard).
  uint64_t StreamSeed(uint64_t base_seed) const;

  /// Plans a freshness decrease by `delta` >= 0 (dies at 0).
  /// Ignores rows that are dead at plan time. `row` must belong to this
  /// shard.
  void Decay(RowId row, double delta);

  /// Plans setting freshness outright (clamped to [0, 1]; 0 kills).
  void SetFreshness(RowId row, double f);

  /// Plans an immediate kill.
  void Kill(RowId row);

  /// Plans a uniform decrement over every live row of segment `seg_no`
  /// (which must belong to this shard). Folds when the table allows it,
  /// otherwise expands into per-row Decay actions — the apply phase
  /// then produces bit-identical state either way. Same contract as
  /// DecayContext::DecaySegmentUniform: no mixing with per-row ops
  /// against the same segment in one tick.
  void DecaySegmentUniform(uint64_t seg_no, const Segment& seg,
                           double delta);

  /// Records a seed planted (bookkeeping only).
  void NoteSeed() { ++plan_.seeds_planted; }

  /// Records one segment bypassed whole because its zone map proved the
  /// tick cannot change it (bookkeeping only).
  void NoteSegmentSkipped() { ++plan_.segments_skipped; }

  ShardPlan TakePlan() { return std::move(plan_); }

 private:
  void Record(RowId row, ShardAction::Op op, double amount);

  const Table* table_;
  uint32_t shard_id_;
  Timestamp now_;
  uint64_t tick_index_;
  ShardPlan plan_;
};

/// A data fungus: the decay operator applied to a relation on each tick
/// of the periodic clock `T` (the paper's first natural law). A fungus
/// decides *what* to decay, *how*, and at what *rate*; the Table enforces
/// that freshness only moves downward through fungi and that tuples are
/// discarded exactly when freshness reaches zero.
///
/// Implementations may keep per-table state (e.g. EGI's infection set)
/// but must tolerate tuples dying or being reclaimed between ticks.
class Fungus {
 public:
  virtual ~Fungus() = default;

  Fungus(const Fungus&) = delete;
  Fungus& operator=(const Fungus&) = delete;

  /// Stable identifier, e.g. "egi", "retention".
  virtual std::string_view name() const = 0;

  /// Applies one decay step at ctx.now().
  virtual void Tick(DecayContext& ctx) = 0;

  // --- Sharded (parallel) tick protocol. ---
  //
  // When SupportsShardedTick() is true and the table has more than one
  // shard, the scheduler runs BeginShardedTick (serial), then PlanShard
  // once per shard (possibly concurrently), applies the recorded plans
  // (one worker per shard), and finishes with FinishShardedTick (serial,
  // receiving the tick's merged death list in insertion order).
  // PlanShard must be read-only apart from the context and state keyed
  // by its own shard id; any RNG use must flow through streams derived
  // from ShardPlanContext::StreamSeed so outcomes depend only on the
  // (seed, tick, shard) triple, never on thread scheduling.

  /// True when the fungus implements the per-shard planning protocol.
  virtual bool SupportsShardedTick() const { return false; }

  /// Serial prologue: compute whole-tick values, size per-shard state.
  virtual void BeginShardedTick(const Table& table, Timestamp now) {
    (void)table;
    (void)now;
  }

  /// Plans one shard's share of the tick (see class comment above).
  virtual void PlanShard(ShardPlanContext& ctx) { (void)ctx; }

  /// Serial epilogue after all plans were applied; `killed` holds every
  /// row that died this tick, sorted by RowId (== insertion order).
  virtual void FinishShardedTick(const Table& table,
                                 const std::vector<RowId>& killed) {
    (void)table;
    (void)killed;
  }

  /// Human-readable parameterization, e.g. "retention(7d)".
  virtual std::string Describe() const = 0;

  /// Drops any per-table state (used when a table is rebuilt).
  virtual void Reset() {}

 protected:
  Fungus() = default;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_FUNGUS_H_
