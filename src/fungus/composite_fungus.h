#ifndef FUNGUSDB_FUNGUS_COMPOSITE_FUNGUS_H_
#define FUNGUSDB_FUNGUS_COMPOSITE_FUNGUS_H_

#include <memory>
#include <string>
#include <vector>

#include "fungus/fungus.h"

namespace fungusdb {

/// Applies several fungi in sequence on each tick. Lets experiments
/// combine, e.g., a hard retention cap with EGI rot inside the window.
class CompositeFungus : public Fungus {
 public:
  explicit CompositeFungus(std::vector<std::unique_ptr<Fungus>> children);

  std::string_view name() const override { return "composite"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;
  void Reset() override;

  size_t num_children() const { return children_.size(); }
  Fungus& child(size_t i) { return *children_[i]; }

 private:
  std::vector<std::unique_ptr<Fungus>> children_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_COMPOSITE_FUNGUS_H_
