#ifndef FUNGUSDB_FUNGUS_SLIDING_WINDOW_FUNGUS_H_
#define FUNGUSDB_FUNGUS_SLIDING_WINDOW_FUNGUS_H_

#include <string>

#include "fungus/fungus.h"

namespace fungusdb {

/// Count-based sliding window, the streaming-systems baseline the paper
/// nods to ("fundamental to streaming database systems"): keep only the
/// newest `max_rows` tuples; each tick evicts the oldest surplus.
/// Freshness reflects position in the window (newest = 1.0, about to be
/// evicted = near 0).
class SlidingWindowFungus : public Fungus {
 public:
  explicit SlidingWindowFungus(uint64_t max_rows);

  std::string_view name() const override { return "sliding_window"; }
  void Tick(DecayContext& ctx) override;
  std::string Describe() const override;

  uint64_t max_rows() const { return max_rows_; }

 private:
  uint64_t max_rows_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_SLIDING_WINDOW_FUNGUS_H_
