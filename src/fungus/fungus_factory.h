#ifndef FUNGUSDB_FUNGUS_FUNGUS_FACTORY_H_
#define FUNGUSDB_FUNGUS_FUNGUS_FACTORY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/result.h"
#include "fungus/fungus.h"

namespace fungusdb {

/// Builds a fungus from the `\attach` spec shared by fungusql and the
/// server meta subset:
///
///   retention <duration> | exponential <half-life> | egi |
///   window <rows> | quota <bytes>
///
/// `arg` is the optional trailing argument; `now` seeds fungi that
/// anchor to the current virtual time (exponential).
Result<std::unique_ptr<Fungus>> MakeFungusFromSpec(
    const std::string& kind, const std::optional<std::string>& arg,
    Timestamp now);

}  // namespace fungusdb

#endif  // FUNGUSDB_FUNGUS_FUNGUS_FACTORY_H_
