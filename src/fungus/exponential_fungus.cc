#include "fungus/exponential_fungus.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace fungusdb {

ExponentialFungus::ExponentialFungus(Params params)
    : params_(params), last_tick_(params.start_time) {
  assert(params_.lambda_per_second > 0.0);
  assert(params_.kill_threshold >= 0.0 && params_.kill_threshold < 1.0);
}

ExponentialFungus::Params ExponentialFungus::FromHalfLife(
    Duration half_life, Timestamp start_time) {
  assert(half_life > 0);
  Params p;
  p.lambda_per_second =
      std::log(2.0) / (static_cast<double>(half_life) / kSecond);
  p.start_time = start_time;
  return p;
}

void ExponentialFungus::Tick(DecayContext& ctx) {
  const Timestamp now = ctx.now();
  const double dt_seconds =
      static_cast<double>(now - last_tick_) / static_cast<double>(kSecond);
  last_tick_ = now;
  if (dt_seconds <= 0.0) return;
  const double factor = std::exp(-params_.lambda_per_second * dt_seconds);
  Table& table = ctx.table();
  table.ForEachLive([&](RowId row) {
    const double f = table.Freshness(row) * factor;
    ctx.SetFreshness(row, f <= params_.kill_threshold ? 0.0 : f);
  });
}

void ExponentialFungus::BeginShardedTick(const Table& table,
                                         Timestamp now) {
  (void)table;
  const double dt_seconds =
      static_cast<double>(now - last_tick_) / static_cast<double>(kSecond);
  last_tick_ = now;
  tick_factor_ = dt_seconds <= 0.0
                     ? 1.0
                     : std::exp(-params_.lambda_per_second * dt_seconds);
}

void ExponentialFungus::PlanShard(ShardPlanContext& ctx) {
  if (tick_factor_ >= 1.0) return;
  const Shard& shard = ctx.shard();
  for (const auto& [seg_no, seg] : shard.segments()) {
    if (seg->live_count() == 0) continue;
    const size_t n = seg->num_rows();
    for (size_t off = 0; off < n; ++off) {
      if (!seg->IsLive(off)) continue;
      const double f = seg->Freshness(off) * tick_factor_;
      ctx.SetFreshness(seg->first_row() + off,
                       f <= params_.kill_threshold ? 0.0 : f);
    }
  }
}

std::string ExponentialFungus::Describe() const {
  return "exponential(lambda=" + FormatDouble(params_.lambda_per_second, 6) +
         "/s, kill<=" + FormatDouble(params_.kill_threshold, 3) + ")";
}

void ExponentialFungus::Reset() { last_tick_ = params_.start_time; }

}  // namespace fungusdb
