#include "fungus/sliding_window_fungus.h"

#include <cassert>
#include <vector>

namespace fungusdb {

SlidingWindowFungus::SlidingWindowFungus(uint64_t max_rows)
    : max_rows_(max_rows) {
  assert(max_rows > 0);
}

void SlidingWindowFungus::Tick(DecayContext& ctx) {
  Table& table = ctx.table();
  const uint64_t live = table.live_rows();
  // Evict the oldest surplus tuples.
  if (live > max_rows_) {
    uint64_t surplus = live - max_rows_;
    std::optional<RowId> cursor = table.OldestLive();
    while (surplus > 0 && cursor.has_value()) {
      const RowId victim = *cursor;
      cursor = table.NextLive(victim);
      ctx.Kill(victim);
      --surplus;
    }
  }
  // Freshness = fraction of the window still ahead of this tuple.
  const uint64_t in_window = table.live_rows();
  if (in_window == 0) return;
  uint64_t position = 0;  // 0 = oldest in window
  table.ForEachLive([&](RowId row) {
    const double f = static_cast<double>(position + 1) /
                     static_cast<double>(in_window);
    ctx.SetFreshness(row, f);
    ++position;
  });
}

std::string SlidingWindowFungus::Describe() const {
  return "sliding_window(max_rows=" + std::to_string(max_rows_) + ")";
}

}  // namespace fungusdb
