#ifndef FUNGUSDB_QUERY_ENGINE_H_
#define FUNGUSDB_QUERY_ENGINE_H_

#include <functional>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "query/query.h"
#include "query/result_set.h"
#include "storage/table.h"

namespace fungusdb {

struct QueryEngineOptions {
  /// Bump per-tuple access counters for matched tuples (feeds
  /// ImportanceFungus). No-op on tables without track_access.
  bool record_access = true;

  /// Worker pool for morsel-driven parallel scans (not owned). With no
  /// pool — or one execution thread — scans run serially; results are
  /// byte-identical either way because morsel outputs merge in segment
  /// order.
  ThreadPool* pool = nullptr;

  /// Sink for "fungusdb.parallel.*" counters (not owned).
  MetricsRegistry* metrics = nullptr;

  /// Minimum live segments before a scan fans out; tiny tables are not
  /// worth the fork/join overhead.
  size_t parallel_scan_min_segments = 8;

  /// Consult per-segment zone maps to skip segments whose bounds cannot
  /// satisfy the WHERE conjuncts. Off exists for benchmarking the
  /// pruning win (bench_t7_scan_pruning), not for production use.
  bool enable_pruning = true;
};

/// Executes select-from-where queries against decaying tables.
///
/// Two execution modes:
///  * observing (classical): the table is untouched;
///  * consuming (the paper's second law): every tuple satisfying P is
///    discarded from R as part of execution — "the extent of table R is
///    replaced by the union of the answer set of Q and the reduced
///    extent of R". LIMIT restricts the *returned* rows only; the whole
///    σ_P(R) is consumed, exactly as the law states.
///
/// Consume observers fire after the kill with the consumed row ids while
/// their attribute values are still readable (tombstoned, not yet
/// reclaimed) — the hook used to distill consumed tuples into cellar
/// summaries.
class QueryEngine {
 public:
  using ConsumeObserver =
      std::function<void(Table&, const std::vector<RowId>&, Timestamp)>;

  explicit QueryEngine(QueryEngineOptions options = {});

  void AddConsumeObserver(ConsumeObserver observer);

  /// Runs `query` against `table` at (virtual) time `now`.
  Result<ResultSet> Execute(const Query& query, Table& table,
                            Timestamp now);

 private:
  QueryEngineOptions options_;
  std::vector<ConsumeObserver> observers_;
};

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_ENGINE_H_
