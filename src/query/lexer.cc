#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace fungusdb {
namespace {

constexpr std::string_view kKeywords[] = {
    "SELECT", "CONSUME", "FROM",  "WHERE", "GROUP",  "BY",    "ORDER",
    "LIMIT",  "AND",     "OR",    "NOT",   "IS",     "NULL",  "TRUE",
    "FALSE",  "AS",      "ASC",   "DESC",  "BETWEEN", "DISTINCT"};

bool IsKeywordWord(std::string_view upper) {
  for (std::string_view kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::ParseError("malformed exponent at offset " +
                                    std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        std::string(input.substr(start, i - start)), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string payload;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            payload.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        payload.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(payload), start});
      continue;
    }
    if (c == '*') {
      tokens.push_back({TokenType::kStar, "*", start});
      ++i;
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      const std::string_view two = input.substr(i, 2);
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        tokens.push_back(
            {TokenType::kOperator, two == "<>" ? "!=" : std::string(two),
             start});
        i += 2;
        continue;
      }
    }
    if (std::string_view("=<>+-/%(),.").find(c) != std::string_view::npos) {
      tokens.push_back({TokenType::kOperator, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace fungusdb
