#ifndef FUNGUSDB_QUERY_PARSER_H_
#define FUNGUSDB_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/query.h"

namespace fungusdb {

/// Parses one statement of the FungusDB dialect:
///
///   [CONSUME] SELECT <list> FROM <table>
///       [WHERE <expr>]
///       [GROUP BY <col> [, <col>...]]
///       [ORDER BY <col> [ASC | DESC]]
///       [LIMIT <n>]
///
/// <list> is `*` or comma-separated expressions with optional `AS`
/// aliases; aggregates are COUNT(*), COUNT(e), SUM(e), MIN(e), MAX(e),
/// AVG(e). Expressions support arithmetic, comparisons, AND/OR/NOT,
/// BETWEEN, IS [NOT] NULL, string/int/float/bool/null literals and the
/// system columns __ts and __freshness.
Result<Query> ParseQuery(std::string_view sql);

/// Parses a bare expression (useful for tests and tooling).
Result<ExprPtr> ParseExpression(std::string_view text);

/// Splits a script into `;`-separated statements for ExecuteBatch,
/// respecting single-quoted string literals (a ';' inside '...' does
/// not split). Statements are trimmed and empty ones dropped, so a
/// trailing ';' yields no phantom statement. The views alias `script`.
std::vector<std::string_view> SplitStatements(std::string_view script);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_PARSER_H_
