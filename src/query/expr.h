#ifndef FUNGUSDB_QUERY_EXPR_H_
#define FUNGUSDB_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace fungusdb {

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

enum class AggFn {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  // Freshness-weighted variants: each tuple contributes its current
  // freshness f instead of 1. FCOUNT(*) is the "effective" extent size,
  // FSUM(x) = sum(f * x), FAVG(x) = FSUM(x) / FCOUNT(x) — answers fade
  // as the data that produced them rots.
  kFCount,
  kFSum,
  kFAvg,
};

/// Scalar (per-tuple) builtin functions.
enum class ScalarFn {
  kAbs,         // abs(numeric) -> same numeric type
  kFloor,       // floor(float64) -> float64
  kCeil,        // ceil(float64) -> float64
  kRound,       // round(float64) -> float64
  kLength,      // length(string) -> int64
  kLower,       // lower(string) -> string
  kUpper,       // upper(string) -> string
  kTimeBucket,  // time_bucket(timestamp, width_us) -> timestamp, start
                // of the tumbling window containing the timestamp
};

std::string_view BinaryOpName(BinaryOp op);
std::string_view UnaryOpName(UnaryOp op);
std::string_view AggFnName(AggFn fn);
std::string_view ScalarFnName(ScalarFn fn);

class Expr;
/// Expressions are immutable trees shared by value; subtrees may be
/// reused across queries.
using ExprPtr = std::shared_ptr<const Expr>;

/// Unbound expression AST produced by the parser or the programmatic
/// query builder. Column names are resolved against a schema by the
/// Binder before evaluation.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumnRef,
    kBinary,
    kUnary,
    kAggregate,
    kFunction,
  };

  static ExprPtr Literal(Value value);
  static ExprPtr Column(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  /// Aggregate call; `arg` is null for COUNT(*).
  static ExprPtr Aggregate(AggFn fn, ExprPtr arg);
  /// Scalar builtin call.
  static ExprPtr Function(ScalarFn fn, std::vector<ExprPtr> args);

  Kind kind() const { return kind_; }

  const Value& literal() const { return literal_; }
  const std::string& column_name() const { return column_name_; }
  BinaryOp binary_op() const { return binary_op_; }
  UnaryOp unary_op() const { return unary_op_; }
  AggFn agg_fn() const { return agg_fn_; }
  ScalarFn scalar_fn() const { return scalar_fn_; }
  bool agg_is_star() const { return children_.empty(); }

  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }

  /// True if this subtree contains an aggregate call.
  bool ContainsAggregate() const;

  /// SQL-ish rendering, e.g. "(a + 1) >= 10 AND b = 'x'".
  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Value literal_;
  std::string column_name_;
  BinaryOp binary_op_ = BinaryOp::kEq;
  UnaryOp unary_op_ = UnaryOp::kNot;
  AggFn agg_fn_ = AggFn::kCount;
  ScalarFn scalar_fn_ = ScalarFn::kAbs;
  std::vector<ExprPtr> children_;
};

/// Convenience builders for programmatic queries:
///   Ge(Col("temp"), Lit(30.0)), via free functions below.
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(std::string v);
ExprPtr Lit(bool v);
ExprPtr LitTimestamp(Timestamp t);
ExprPtr LitNull();
ExprPtr Col(std::string name);

// Named combinators (operator overloads on shared_ptr would shadow the
// standard pointer comparisons, so they are deliberately not provided).
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
ExprPtr Div(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);
ExprPtr IsNull(ExprPtr operand);
ExprPtr IsNotNull(ExprPtr operand);

}  // namespace fungusdb

#endif  // FUNGUSDB_QUERY_EXPR_H_
